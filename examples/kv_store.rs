//! A miniature key-value store resident in the cube — the kind of
//! user-space shared structure the paper's mutex operations are for:
//! every bucket is guarded by its own 16-byte CMC lock, so concurrent
//! clients synchronize entirely in memory, with no kernel involvement
//! (§V-A's motivation).
//!
//! Layout per bucket (one lock block + `SLOTS` entry blocks):
//!
//! ```text
//! [ lock (16 B) | (key, value) x SLOTS (16 B each) ]
//! ```
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use hmcsim::prelude::*;
use hmcsim::workloads::HostRuntime;

const BUCKETS: u64 = 64;
const SLOTS: u64 = 4;
const BASE: u64 = 0x0E00_0000;
const BUCKET_BYTES: u64 = 16 * (1 + SLOTS);

struct KvStore;

impl KvStore {
    fn bucket_of(key: u64) -> u64 {
        // The full splitmix64 finalizer, bucketed by the high bits
        // (the low product bits are badly distributed for small keys).
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 32) % BUCKETS
    }

    fn lock_addr(bucket: u64) -> u64 {
        BASE + bucket * BUCKET_BYTES
    }

    fn slot_addr(bucket: u64, slot: u64) -> u64 {
        Self::lock_addr(bucket) + 16 + slot * 16
    }

    fn init(rt: &HostRuntime, sim: &mut HmcSim) -> Result<(), HmcError> {
        for b in 0..BUCKETS {
            rt.mutex_init(sim, Self::lock_addr(b))?;
            for s in 0..SLOTS {
                rt.write_block(sim, Self::slot_addr(b, s), 0, 0)?;
            }
        }
        Ok(())
    }

    /// Inserts or updates `key` under the bucket lock. Returns false
    /// when the bucket is full.
    fn put(rt: &HostRuntime, sim: &mut HmcSim, key: u64, value: u64) -> Result<bool, HmcError> {
        assert!(key != 0, "key 0 marks an empty slot");
        let bucket = Self::bucket_of(key);
        rt.mutex_lock(sim, Self::lock_addr(bucket))?;
        let mut stored = false;
        for s in 0..SLOTS {
            let addr = Self::slot_addr(bucket, s);
            let existing = rt.read_u64(sim, addr)?;
            if existing == key || existing == 0 {
                rt.write_block(sim, addr, key, value)?;
                stored = true;
                break;
            }
        }
        let released = rt.mutex_unlock(sim, Self::lock_addr(bucket))?;
        assert!(released);
        Ok(stored)
    }

    /// Looks up `key` under the bucket lock.
    fn get(rt: &HostRuntime, sim: &mut HmcSim, key: u64) -> Result<Option<u64>, HmcError> {
        let bucket = Self::bucket_of(key);
        rt.mutex_lock(sim, Self::lock_addr(bucket))?;
        let mut found = None;
        for s in 0..SLOTS {
            let addr = Self::slot_addr(bucket, s);
            if rt.read_u64(sim, addr)? == key {
                found = Some(rt.read_u64(sim, addr + 8)?);
                break;
            }
        }
        let released = rt.mutex_unlock(sim, Self::lock_addr(bucket))?;
        assert!(released);
        Ok(found)
    }
}

fn main() -> Result<(), HmcError> {
    hmcsim::cmc::ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
    sim.load_cmc_library(0, hmcsim::cmc::ops::MUTEX_LIBRARY)?;

    // Two clients on different links share the store.
    let alice = HostRuntime::new(0, 0, 1);
    let bob = HostRuntime::new(0, 1, 2);
    KvStore::init(&alice, &mut sim)?;

    let n = 150u64;
    let mut stored = 0u64;
    for key in 1..=n {
        let client = if key % 2 == 0 { &alice } else { &bob };
        if KvStore::put(client, &mut sim, key, key * 100)? {
            stored += 1;
        }
    }
    println!("inserted {stored}/{n} keys ({} bucket-full rejections)", n - stored);

    // Reads see every stored value; updates overwrite in place.
    let mut hits = 0u64;
    for key in 1..=n {
        if let Some(v) = KvStore::get(&alice, &mut sim, key)? {
            assert_eq!(v, key * 100, "key {key}");
            hits += 1;
        }
    }
    assert_eq!(hits, stored);
    KvStore::put(&bob, &mut sim, 7, 777_777)?;
    assert_eq!(KvStore::get(&alice, &mut sim, 7)?, Some(777_777));
    println!("all {hits} lookups verified; in-place update OK");

    let stats = sim.stats(0)?;
    println!(
        "\ndevice: {} CMC lock ops, {} reads, {} writes over {} cycles",
        stats.cmc_ops,
        stats.reads,
        stats.writes,
        sim.cycle()
    );
    Ok(())
}
