//! The paper's case study (§V): load the CMC mutex shared library and
//! run Algorithm 1 — every thread locks, critical-sections, and
//! unlocks one shared 16-byte HMC lock structure.
//!
//! ```text
//! cargo run --release --example cmc_mutex -- [threads] [--links 8] [--honest]
//! ```

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::workloads::{MutexKernel, MutexKernelConfig, SpinPolicy};

fn main() -> Result<(), HmcError> {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let links = if args.iter().any(|a| a == "--links")
        && args.windows(2).any(|w| w[0] == "--links" && w[1] == "8")
    {
        8
    } else {
        4
    };
    let spin = if args.iter().any(|a| a == "--honest") {
        SpinPolicy::until_owned()
    } else {
        SpinPolicy::PaperBounded
    };

    let config = if links == 8 {
        DeviceConfig::gen2_8link_8gb()
    } else {
        DeviceConfig::gen2_4link_4gb()
    };
    println!("device: {}, threads: {threads}, spin: {spin:?}", config.label());

    // Make the builtin libraries loadable, then load the mutex suite
    // by its path-like name — the dlopen/dlsym flow of §IV-C2.
    ops::register_builtin_libraries();
    let mut sim = HmcSim::new(config)?;
    let codes = sim.load_cmc_library(0, ops::MUTEX_LIBRARY)?;
    println!("loaded {} CMC ops from {}: {codes:?}", codes.len(), ops::MUTEX_LIBRARY);
    for reg in sim.cmc_registrations(0)? {
        println!(
            "  CMC{:<3} {:<12} rqst {} FLITs, rsp {} ({} FLITs)",
            reg.cmd, reg.op_name, reg.rqst_len, reg.rsp_cmd, reg.rsp_len
        );
    }

    // Run Algorithm 1 and report the paper's three metrics.
    let kernel = MutexKernel::new(MutexKernelConfig {
        threads,
        spin,
        ..Default::default()
    });
    let result = kernel.run(&mut sim).expect("kernel runs");
    println!(
        "\nMIN_CYCLE = {}  MAX_CYCLE = {}  AVG_CYCLE = {:.2}",
        result.metrics.min_cycle(),
        result.metrics.max_cycle(),
        result.metrics.avg_cycle()
    );
    println!(
        "{} lock acquisitions; final lock word {:#x} (0 = released)",
        result.acquisitions, result.final_lock_word
    );
    let stats = sim.stats(0)?;
    println!(
        "device saw {} CMC ops, {} xbar stalls, {} vault stalls",
        stats.cmc_ops, stats.xbar_stalls, stats.vault_stalls
    );
    Ok(())
}
