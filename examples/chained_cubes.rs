//! Multi-cube chaining: a host driving a chain of HMC devices via
//! CUB routing (the topology support carried forward from HMC-Sim
//! 1.0), plus trace analysis of the run.
//!
//! ```text
//! cargo run --release --example chained_cubes -- [cubes]
//! ```

use hmcsim::prelude::*;
use hmcsim::sim::trace_analysis::TraceSummary;
use hmcsim::sim::{SimConfig, TraceBuffer, TraceLevel, Tracer};

fn main() -> Result<(), HmcError> {
    let cubes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .clamp(2, 8);

    let mut sim = HmcSim::with_config(SimConfig::chain(
        DeviceConfig::gen2_4link_4gb(),
        cubes,
    ))?;
    let buf = TraceBuffer::new();
    sim.set_tracer(Tracer::to_buffer(TraceLevel::CMD | TraceLevel::LATENCY, buf.clone()));
    println!("chain of {cubes} cubes, host attached to cube 0\n");

    // Scatter a value onto every cube, then gather and time each hop.
    for cub in 0..cubes as u8 {
        let req = Request::new(
            HmcRqst::Wr16,
            Tag::new(cub as u32).unwrap(),
            0x100,
            Cub::new(cub).unwrap(),
            vec![0xC0DE + cub as u64, 0],
        )?;
        sim.send(0, (cub % 4) as usize, req)?;
    }
    sim.drain(10_000);
    for link in 0..4 {
        while sim.recv(0, link).is_some() {}
    }

    println!("cube  hops  read latency (cycles)");
    for cub in 0..cubes as u8 {
        let req = Request::new(
            HmcRqst::Rd16,
            Tag::new(100 + cub as u32).unwrap(),
            0x100,
            Cub::new(cub).unwrap(),
            vec![],
        )?;
        sim.send(0, 0, req)?;
        let rsp = loop {
            sim.clock();
            if let Some(rsp) = sim.recv(0, 0) {
                break rsp;
            }
        };
        assert_eq!(rsp.rsp.payload[0], 0xC0DE + cub as u64, "cube {cub} data");
        println!("  {cub}     {cub:>2}    {:>3}", rsp.latency);
    }

    // Per-device load.
    println!("\nper-cube requests executed / forwarded:");
    for dev in 0..cubes {
        let stats = sim.stats(dev)?;
        println!(
            "  cube {dev}: {:>2} executed, {:>2} forwarded",
            stats.total_requests(),
            stats.forwarded
        );
    }

    // Trace analysis of the whole run.
    let summary = TraceSummary::from_lines(buf.lines().iter().map(String::as_str));
    println!("\ntrace summary:\n{}", summary.render());
    Ok(())
}
