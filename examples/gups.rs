//! HPCC RandomAccess (GUPS) on a Gen2 cube, comparing host-side
//! read-modify-write updates against `XOR16` atomic offload — the
//! bandwidth argument of the paper's §III worked example, on a real
//! kernel.
//!
//! ```text
//! cargo run --release --example gups -- [updates]
//! ```

use hmcsim::prelude::*;
use hmcsim::workloads::kernels::gups::{GupsConfig, GupsKernel, GupsMode};

fn main() -> Result<(), HmcError> {
    let updates: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    println!("RandomAccess: {updates} updates over a 64 KiB table, 4Link-4GB\n");

    let mut results = Vec::new();
    for (name, mode) in [
        ("RD16 + host XOR + WR16", GupsMode::ReadModifyWrite),
        ("XOR16 atomic offload  ", GupsMode::Xor16Amo),
    ] {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
        let result = GupsKernel::new(GupsConfig {
            updates,
            mode,
            ..Default::default()
        })
        .run(&mut sim)
        .expect("gups runs");
        println!(
            "  {name}: {:>7} cycles, {:>7} FLITs, {:.4} updates/cycle, {} oracle mismatches",
            result.cycles, result.link_flits, result.updates_per_cycle, result.errors
        );
        results.push(result);
    }

    let (rmw, amo) = (&results[0], &results[1]);
    println!(
        "\nAMO offload: {:.2}x less link traffic, {:.2}x higher update rate.",
        rmw.link_flits as f64 / amo.link_flits as f64,
        amo.updates_per_cycle / rmw.updates_per_cycle
    );
    println!(
        "The RMW mode also loses updates under concurrency ({} mismatches) —",
        rmw.errors
    );
    println!("the atomic performs the read-modify-write in the logic layer, so it is exact.");
    Ok(())
}
