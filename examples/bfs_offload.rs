//! BFS with check-and-update offload (the related work the paper
//! cites, Nai & Kim): replace the visit test of a breadth-first
//! traversal with `CASEQ8` so the check-and-update happens inside the
//! cube, and compare link traffic against the cache-line pattern.
//!
//! ```text
//! cargo run --release --example bfs_offload -- [vertices] [extra_edges]
//! ```

use hmcsim::prelude::*;
use hmcsim::workloads::kernels::bfs::{BfsConfig, BfsKernel, BfsMode, Graph};

fn main() -> Result<(), HmcError> {
    let mut args = std::env::args().skip(1);
    let vertices: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let extra: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4096);

    let graph = Graph::random(vertices, extra, 0xBF5);
    println!(
        "BFS over {} vertices / {} directed edges, 4Link-4GB\n",
        graph.vertices(),
        graph.directed_edges()
    );

    let mut results = Vec::new();
    for (name, mode) in [
        ("RD64 line + check + WR16", BfsMode::ReadCheckWrite),
        ("CASEQ8 offload          ", BfsMode::CasOffload),
    ] {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
        let result = BfsKernel::new(BfsConfig { mode, ..Default::default() })
            .run(&mut sim, &graph)
            .expect("bfs runs");
        assert_eq!(result.errors, 0, "BFS levels verified against host reference");
        println!(
            "  {name}: {:>7} cycles, {:>7} FLITs, {} edges relaxed, {} vertices reached",
            result.cycles, result.link_flits, result.edges_relaxed, result.reached
        );
        results.push(result);
    }

    let (rmw, cas) = (&results[0], &results[1]);
    println!(
        "\nCAS offload saves {:.1}% of link traffic and {:.1}% of cycles",
        100.0 * (1.0 - cas.link_flits as f64 / rmw.link_flits as f64),
        100.0 * (1.0 - cas.cycles as f64 / rmw.cycles as f64),
    );
    println!("by folding the check-and-update into one in-cube operation per edge.");
    Ok(())
}
