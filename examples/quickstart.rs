//! Quickstart: bring up a Gen2 device, move data through the full
//! packet pipeline, run an atomic, and peek at registers and
//! statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hmcsim::prelude::*;
use hmcsim::sim::regs;

fn main() -> Result<(), HmcError> {
    // The paper's 4Link-4GB evaluation part: 4 links, 32 vaults,
    // 64-slot vault queues, 128-slot crossbar queues.
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
    println!("device 0: {}", sim.device_config(0)?.label());

    // Write 16 bytes, read them back through the pipeline.
    let tag = sim
        .send_simple(0, 0, HmcRqst::Wr16, 0x1000, vec![0xdead_beef, 0x0123_4567])?
        .expect("WR16 is acknowledged");
    let rsp = sim.run_until_response(0, 0, tag, 1000)?;
    println!("WR16  -> {} after {} cycles", rsp.rsp.head.cmd, rsp.latency);

    let tag = sim
        .send_simple(0, 0, HmcRqst::Rd16, 0x1000, vec![])?
        .expect("RD16 responds");
    let rsp = sim.run_until_response(0, 0, tag, 1000)?;
    println!(
        "RD16  -> {} payload={:#x},{:#x} after {} cycles",
        rsp.rsp.head.cmd, rsp.rsp.payload[0], rsp.rsp.payload[1], rsp.latency
    );

    // A Gen2 atomic: increment an 8-byte counter in the logic layer.
    sim.mem_write_u64(0, 0x2000, 41)?;
    let tag = sim
        .send_simple(0, 0, HmcRqst::Inc8, 0x2000, vec![])?
        .expect("INC8 responds");
    sim.run_until_response(0, 0, tag, 1000)?;
    println!("INC8  -> counter now {}", sim.mem_read_u64(0, 0x2000)?);

    // A compare-and-swap: succeeds because the counter is 42.
    let tag = sim
        .send_simple(0, 0, HmcRqst::CasEq8, 0x2000, vec![100, 42])?
        .expect("CASEQ8 responds");
    let rsp = sim.run_until_response(0, 0, tag, 1000)?;
    println!(
        "CASEQ8 -> swapped={} old={} new={}",
        rsp.rsp.head.af,
        rsp.rsp.payload[0],
        sim.mem_read_u64(0, 0x2000)?
    );

    // The register file, over the simulated JTAG interface and over
    // the in-band MD_RD mode command.
    let feat = sim.jtag_reg_read(0, regs::REG_FEAT)?;
    println!(
        "FEAT register: {:#x} (capacity {} GB, {} links)",
        feat,
        feat & 0xF,
        (feat >> 4) & 0xF
    );
    let tag = sim
        .send_simple(0, 1, HmcRqst::MdRd, regs::REG_RVID as u64, vec![])?
        .expect("MD_RD responds");
    let rsp = sim.run_until_response(0, 1, tag, 1000)?;
    println!("MD_RD(RVID) -> {:#x}", rsp.rsp.payload[0]);

    // Statistics.
    let stats = sim.stats(0)?;
    println!(
        "\nstats: {} reads, {} writes, {} atomics, {} mode ops; \
         {} rqst FLITs in, {} rsp FLITs out; mean latency {:.1} cycles",
        stats.reads,
        stats.writes,
        stats.atomics,
        stats.mode_ops,
        stats.rqst_flits,
        stats.rsp_flits,
        stats.latency.mean()
    );
    let power = sim.power_report(0)?;
    println!(
        "power: {:.1} nJ total over {} cycles ({:.2} mW at 1.25 GHz)",
        power.total_pj / 1000.0,
        power.cycles,
        power.avg_watts * 1000.0
    );
    Ok(())
}
