//! Writing your own Custom Memory Cube operation (paper §IV-D).
//!
//! This example plays the role of a CMC library author: it defines a
//! brand-new operation (`hmc_csum16` — a ones-complement checksum of
//! a 16-byte block folded into memory), publishes it as a simulated
//! shared library, loads it into a device, and executes it — with the
//! trace showing the operation by name next to standard commands.
//!
//! ```text
//! cargo run --example custom_cmc
//! ```

use hmcsim::cmc::{register_library, CmcContext, CmcOp, CmcRegistration, CmcResult, LibrarySpec};
use hmcsim::prelude::*;
use hmcsim::sim::{TraceBuffer, TraceLevel, Tracer};

/// Command code for the new operation (one of the 70 free Gen2 codes;
/// see `HmcRqst::cmc_codes()`).
const CSUM16_CMD: u8 = 36;

/// `hmc_csum16`: computes the 16-bit ones-complement checksum of the
/// 16-byte block at `addr`, stores it into the block's last two
/// bytes, and returns the checksum. One round trip replaces a
/// read + host checksum + write sequence.
struct Checksum16;

impl Checksum16 {
    fn checksum(words: [u64; 2]) -> u16 {
        let mut acc: u32 = 0;
        for w in words {
            for i in 0..4 {
                acc += ((w >> (16 * i)) & 0xFFFF) as u32;
            }
        }
        while acc > 0xFFFF {
            acc = (acc & 0xFFFF) + (acc >> 16);
        }
        !(acc as u16)
    }
}

impl CmcOp for Checksum16 {
    // The `cmc_register` entry point: the static globals of Table III.
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_csum16", CSUM16_CMD, 1, 2, HmcResponse::RdRs)
    }

    // The `hmcsim_execute_cmc` entry point: Table IV's argument list.
    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        if !ctx.addr.is_multiple_of(16) {
            return Err(HmcError::UnalignedAddress { addr: ctx.addr, align: 16 });
        }
        let lo = ctx.mem.read_u64(ctx.addr)?;
        let hi = ctx.mem.read_u64(ctx.addr + 8)?;
        // Checksum the block with its checksum field zeroed.
        let sum = Self::checksum([lo, hi & 0x0000_FFFF_FFFF_FFFF]);
        ctx.mem
            .write_u64(ctx.addr + 8, (hi & 0x0000_FFFF_FFFF_FFFF) | ((sum as u64) << 48))?;
        ctx.rsp_payload[0] = sum as u64;
        ctx.rsp_payload[1] = 0;
        Ok(CmcResult { af: false })
    }

    // The `cmc_str` entry point: the trace-log name.
    fn name(&self) -> &str {
        "hmc_csum16"
    }
}

fn main() -> Result<(), HmcError> {
    // "Compile and install" the library, then dlopen it by path.
    register_library("libhmc_csum.so", LibrarySpec::new(|| vec![Box::new(Checksum16)]));

    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
    let buf = TraceBuffer::new();
    sim.set_tracer(Tracer::to_buffer(TraceLevel::CMD | TraceLevel::CMC, buf.clone()));

    let codes = sim.load_cmc_library(0, "libhmc_csum.so")?;
    println!("registered hmc_csum16 on command code {:?}", codes);

    // Put some data in a block and checksum it in-cube.
    sim.mem_write(0, 0x4000, b"HMC-Sim 2.0!\0\0\0\0")?;
    let tag = sim
        .send_cmc(0, 0, CSUM16_CMD, 0x4000, vec![])?
        .expect("hmc_csum16 responds");
    let rsp = sim.run_until_response(0, 0, tag, 1000)?;
    println!(
        "checksum = {:#06x} (latency {} cycles, response {})",
        rsp.rsp.payload[0], rsp.latency, rsp.rsp.head.cmd
    );
    let stored = sim.mem_read_u64(0, 0x4008)? >> 48;
    assert_eq!(stored, rsp.rsp.payload[0], "checksum folded into the block");

    // A standard command next to it, to show discrete tracing.
    let tag = sim
        .send_simple(0, 0, HmcRqst::Rd16, 0x4000, vec![])?
        .expect("RD16 responds");
    sim.run_until_response(0, 0, tag, 1000)?;

    println!("\ntrace (CMC ops resolve by name, like any command):");
    for line in buf.lines() {
        println!("  {line}");
    }

    // Error behaviour: a library that is missing an entry point fails
    // to load exactly like a dlsym failure.
    register_library(
        "libbroken.so",
        LibrarySpec::new(|| vec![Box::new(Checksum16)]).without_symbol("cmc_str"),
    );
    match sim.load_cmc_library(0, "libbroken.so") {
        Err(e) => println!("\nloading a broken library fails as expected: {e}"),
        Ok(_) => unreachable!("libbroken.so must not load"),
    }
    Ok(())
}
