//! STREAM Triad on a Gen2 cube (the prior-work kernel of the original
//! HMC-Sim papers): `a[i] = b[i] + scalar * c[i]` streamed in
//! block-sized chunks, with a bandwidth comparison between acked and
//! posted writes and between request sizes.
//!
//! ```text
//! cargo run --release --example stream_triad -- [elements]
//! ```

use hmcsim::prelude::*;
use hmcsim::workloads::kernels::triad::{TriadConfig, TriadKernel};

fn run(elements: usize, chunk_bytes: usize, posted: bool) -> Result<(), HmcError> {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
    let result = TriadKernel::new(TriadConfig {
        elements,
        chunk_bytes,
        posted_writes: posted,
        ..Default::default()
    })
    .run(&mut sim)
    .expect("triad runs");
    assert_eq!(result.errors, 0, "triad verification");
    println!(
        "  chunk {:>3} B, {} writes: {:>6} cycles, {:>6} FLITs, {:.2} B/cycle",
        chunk_bytes,
        if posted { "posted" } else { "acked " },
        result.cycles,
        result.link_flits,
        result.bytes_per_cycle
    );
    Ok(())
}

fn main() -> Result<(), HmcError> {
    let elements: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8192);
    println!("STREAM Triad, {elements} f64 elements per array, 4Link-4GB:\n");
    for chunk in [16, 64, 128, 256] {
        run(elements, chunk, false)?;
    }
    println!();
    run(elements, 64, true)?;
    println!("\nLarger requests amortize the header/tail FLIT; posted writes");
    println!("drop the write acknowledgements entirely.");
    Ok(())
}
