//! Beyond the paper's mutex: the "more expressive locks" its lock
//! encoding space reserves (§V-A) — a reader-writer lock and a fair
//! ticket lock, both as CMC libraries, compared head to head.
//!
//! ```text
//! cargo run --release --example expressive_locks
//! ```

use hmcsim::cmc::ops;
use hmcsim::prelude::*;
use hmcsim::workloads::kernels::rwlock::{RwLockKernel, RwLockKernelConfig};
use hmcsim::workloads::{MutexKernel, MutexKernelConfig, MutexMechanism, SpinPolicy};

fn main() -> Result<(), HmcError> {
    ops::register_builtin_libraries();
    let threads = 24;

    // --- fairness: test-and-set CMC mutex vs ticket lock ---
    println!("mutex fairness, {threads} threads, honest spin:");
    let mut results = Vec::new();
    for (name, mechanism, library) in [
        ("hmc_lock (test-and-set)", MutexMechanism::Cmc, ops::MUTEX_LIBRARY),
        ("hmc_ticket (FIFO)       ", MutexMechanism::Ticket, ops::TICKET_LIBRARY),
    ] {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
        sim.load_cmc_library(0, library)?;
        let result = MutexKernel::new(MutexKernelConfig {
            threads,
            spin: SpinPolicy::until_owned(),
            mechanism,
            ..Default::default()
        })
        .run(&mut sim)
        .expect("kernel runs");
        // Fairness: spread between the luckiest and unluckiest thread.
        let spread = result.metrics.max_cycle() - result.metrics.min_cycle();
        println!(
            "  {name}: min {:>4} max {:>5} avg {:>8.2} spread {:>5}",
            result.metrics.min_cycle(),
            result.metrics.max_cycle(),
            result.metrics.avg_cycle(),
            spread,
        );
        results.push((result, spread));
    }
    println!(
        "  (the ticket lock trades a higher floor for ordered service;\n\
         the test-and-set lock lets lucky threads finish early)"
    );

    // --- reader-writer sharing ---
    println!("\nreader-writer lock, 12 readers + 4 writers, 6 sections each:");
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
    sim.load_cmc_library(0, ops::RWLOCK_LIBRARY)?;
    let rw = RwLockKernel::new(RwLockKernelConfig {
        readers: 12,
        writers: 4,
        sections: 6,
        ..Default::default()
    })
    .run(&mut sim)
    .expect("rwlock kernel runs");
    println!(
        "  finished in {} cycles; protected counter {} (expected {}), {} torn reads",
        rw.metrics.max_cycle(),
        rw.final_value,
        rw.expected_value,
        rw.torn_reads
    );
    assert_eq!(rw.final_value, rw.expected_value, "exclusive writes never lost");
    assert_eq!(rw.torn_reads, 0, "readers never observe torn state");

    // Read-only scaling: shared holds do not serialize.
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
    sim.load_cmc_library(0, ops::RWLOCK_LIBRARY)?;
    let ro = RwLockKernel::new(RwLockKernelConfig {
        readers: 16,
        writers: 0,
        sections: 6,
        ..Default::default()
    })
    .run(&mut sim)
    .expect("read-only run");
    println!(
        "  read-only (16 readers): {} cycles — shared holds overlap freely",
        ro.metrics.max_cycle()
    );
    Ok(())
}
