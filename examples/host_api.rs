//! The host-side user API (paper §V-A's "User API" assumption):
//! pthread-flavoured blocking calls over the CMC mutex, plus the
//! end-of-run device report.
//!
//! ```text
//! cargo run --release --example host_api
//! ```

use hmcsim::prelude::*;
use hmcsim::sim::report;
use hmcsim::workloads::HostRuntime;

const LOCK: u64 = 0x4000;
const SHARED: u64 = 0x5000;

fn main() -> Result<(), HmcError> {
    hmcsim::cmc::ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb())?;
    sim.load_cmc_library(0, hmcsim::cmc::ops::MUTEX_LIBRARY)?;

    // Two units of parallelism on different links.
    let alice = HostRuntime::new(0, 0, 1);
    let bob = HostRuntime::new(0, 1, 2);

    alice.mutex_init(&mut sim, LOCK)?;
    alice.write_block(&mut sim, SHARED, 0, 0)?;

    // Alice takes the lock; Bob's try_lock observes the hold.
    alice.mutex_lock(&mut sim, LOCK)?;
    println!("alice holds the lock (owner id {})", sim.mem_read_u64(0, LOCK + 8)?);
    assert!(!bob.mutex_try_lock(&mut sim, LOCK)?);
    println!("bob's try_lock fails while alice holds it");

    // Critical section under the guard pattern.
    alice.with_mutex(&mut sim, SHARED + 0x10, |sim| {
        let v = sim.mem_read_u64(0, SHARED)?;
        sim.mem_write_u64(0, SHARED, v + 1)
    })?;
    alice.mutex_unlock(&mut sim, LOCK)?;
    println!("alice released; bob acquires...");
    bob.mutex_lock(&mut sim, LOCK)?;
    assert_eq!(sim.mem_read_u64(0, LOCK + 8)?, 2);
    bob.mutex_unlock(&mut sim, LOCK)?;

    // Plain memory + atomics through the same API.
    for _ in 0..10 {
        bob.fetch_inc(&mut sim, SHARED)?;
    }
    println!("shared counter = {}", alice.read_u64(&mut sim, SHARED)?);

    // The end-of-run report (the `hmcsim_free`-time summary).
    println!("\n{}", report::text_report(&sim, 0)?);
    println!("CSV: {}", report::CSV_HEADER);
    println!("     {}", report::csv_row(&sim, 0)?);
    Ok(())
}
