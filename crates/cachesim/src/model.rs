//! The cache-based atomic baseline (paper Table II).
//!
//! A conventional CPU performs an atomic on HMC-resident data by
//! pulling the enclosing cache line over the link, mutating it in the
//! cache and flushing it back: a full read-modify-write cycle of
//! `RD<line>` + `WR<line>`. The paper quantifies the link cost for a
//! 64-byte line as `(1 FLIT + 5 FLITs) + (5 FLITs + 1 FLIT)` = 12
//! FLITs, against 2 FLITs for the in-cube `INC8` (Table II).
//!
//! This model reproduces that accounting for any line size, plus a
//! simple MESI-style coherence-traffic estimate for multi-core
//! sharing (the "lack of cache locality will induce significant
//! coherency traffic" remark in §III).

use hmc_types::flit::packet_flits_for_bytes;
use hmc_types::HmcError;

/// Configuration of the cache baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache-line size in bytes (a Gen2 read/write size: 16..=128 or
    /// 256).
    pub line_bytes: usize,
    /// Cores sharing the target line (drives the coherence estimate).
    pub sharers: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { line_bytes: 64, sharers: 1 }
    }
}

/// Link-traffic accounting for one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficReport {
    /// Request FLITs sent host → cube.
    pub rqst_flits: u64,
    /// Response FLITs sent cube → host.
    pub rsp_flits: u64,
    /// Total FLITs.
    pub total_flits: u64,
    /// Total bytes under the paper's 128-byte-per-FLIT convention
    /// (the unit Table II reports).
    pub paper_bytes: u64,
    /// Total bytes on the wire (16-byte FLITs).
    pub wire_bytes: u64,
}

impl TrafficReport {
    fn from_flits(rqst: u64, rsp: u64) -> Self {
        let total = rqst + rsp;
        TrafficReport {
            rqst_flits: rqst,
            rsp_flits: rsp,
            total_flits: total,
            paper_bytes: total * 128,
            wire_bytes: total * 16,
        }
    }
}

/// The cache-based atomic model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheAtomicModel {
    config: CacheConfig,
}

impl CacheAtomicModel {
    /// Creates the model, validating the line size against the Gen2
    /// command set.
    pub fn new(config: CacheConfig) -> Result<Self, HmcError> {
        match config.line_bytes {
            16 | 32 | 48 | 64 | 80 | 96 | 112 | 128 | 256 => {}
            other => return Err(HmcError::InvalidRequestSize(other)),
        }
        if config.sharers == 0 {
            return Err(HmcError::InvalidRequestSize(0));
        }
        Ok(CacheAtomicModel { config })
    }

    /// The model's configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Link traffic of one cache-based atomic: fetch the line
    /// (`RD<line>`: 1 request FLIT, `1 + line/16` response FLITs) and
    /// flush it (`WR<line>`: `1 + line/16` request FLITs, 1 response
    /// FLIT) — the paper's "Read 64 Bytes + Write 64 Bytes" row.
    pub fn atomic_rmw_traffic(&self) -> TrafficReport {
        let data_flits = packet_flits_for_bytes(self.config.line_bytes) as u64;
        // RD: 1 rqst + data_flits rsp; WR: data_flits rqst + 1 rsp.
        TrafficReport::from_flits(1 + data_flits, data_flits + 1)
    }

    /// Link traffic of `n` consecutive atomics by a single core with
    /// the line cached between them: one fetch, `n-1` cache hits, one
    /// final flush.
    pub fn cached_burst_traffic(&self, n: u64) -> TrafficReport {
        if n == 0 {
            return TrafficReport::from_flits(0, 0);
        }
        let data_flits = packet_flits_for_bytes(self.config.line_bytes) as u64;
        TrafficReport::from_flits(1 + data_flits, data_flits + 1)
    }

    /// Link traffic of `n` atomics round-robined across the
    /// configured sharers: every handoff invalidates the previous
    /// owner's copy, forcing a fresh read-modify-write per atomic —
    /// the coherence pathology §III describes.
    pub fn shared_burst_traffic(&self, n: u64) -> TrafficReport {
        if self.config.sharers <= 1 {
            return self.cached_burst_traffic(n);
        }
        let one = self.atomic_rmw_traffic();
        TrafficReport::from_flits(one.rqst_flits * n, one.rsp_flits * n)
    }

    /// Coherence messages (invalidations + acknowledgements) for `n`
    /// round-robin atomics among the sharers, in a snooping MESI
    /// estimate: each ownership transfer invalidates `sharers - 1`
    /// copies and collects as many acks.
    pub fn coherence_messages(&self, n: u64) -> u64 {
        if self.config.sharers <= 1 {
            return 0;
        }
        2 * n * (self.config.sharers as u64 - 1)
    }
}

/// Traffic of the HMC-native atomic for comparison: `flits = rqst +
/// rsp` from the command's Table I row.
pub fn hmc_atomic_traffic(rqst_flits: u64, rsp_flits: u64) -> TrafficReport {
    TrafficReport::from_flits(rqst_flits, rsp_flits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_cache_row() {
        let model = CacheAtomicModel::new(CacheConfig::default()).unwrap();
        let t = model.atomic_rmw_traffic();
        // (1 FLIT + 5 FLITs) + (5 FLITs + 1 FLIT) = 12 FLITs.
        assert_eq!(t.rqst_flits, 6);
        assert_eq!(t.rsp_flits, 6);
        assert_eq!(t.total_flits, 12);
        // Table II reports 1536 bytes (128-byte FLIT convention).
        assert_eq!(t.paper_bytes, 1536);
    }

    #[test]
    fn table_two_hmc_row() {
        let t = hmc_atomic_traffic(1, 1);
        assert_eq!(t.total_flits, 2);
        assert_eq!(t.paper_bytes, 256);
    }

    #[test]
    fn table_two_ratio_is_six() {
        let cache = CacheAtomicModel::new(CacheConfig::default())
            .unwrap()
            .atomic_rmw_traffic();
        let hmc = hmc_atomic_traffic(1, 1);
        assert_eq!(cache.paper_bytes / hmc.paper_bytes, 6);
    }

    #[test]
    fn line_size_scales_traffic() {
        let t128 = CacheAtomicModel::new(CacheConfig { line_bytes: 128, sharers: 1 })
            .unwrap()
            .atomic_rmw_traffic();
        assert_eq!(t128.total_flits, (1 + 9) + (9 + 1));
        let t16 = CacheAtomicModel::new(CacheConfig { line_bytes: 16, sharers: 1 })
            .unwrap()
            .atomic_rmw_traffic();
        assert_eq!(t16.total_flits, (1 + 2) + (2 + 1));
    }

    #[test]
    fn invalid_line_rejected() {
        assert!(CacheAtomicModel::new(CacheConfig { line_bytes: 24, sharers: 1 }).is_err());
        assert!(CacheAtomicModel::new(CacheConfig { line_bytes: 64, sharers: 0 }).is_err());
    }

    #[test]
    fn single_core_burst_amortizes() {
        let model = CacheAtomicModel::new(CacheConfig::default()).unwrap();
        let burst = model.cached_burst_traffic(100);
        assert_eq!(
            burst.total_flits,
            model.atomic_rmw_traffic().total_flits,
            "a private line costs one RMW regardless of burst length"
        );
        assert_eq!(model.cached_burst_traffic(0).total_flits, 0);
    }

    #[test]
    fn sharing_destroys_amortization() {
        let shared = CacheAtomicModel::new(CacheConfig { line_bytes: 64, sharers: 4 }).unwrap();
        let t = shared.shared_burst_traffic(100);
        assert_eq!(t.total_flits, 12 * 100);
        assert_eq!(shared.coherence_messages(100), 2 * 100 * 3);
        let private = CacheAtomicModel::new(CacheConfig::default()).unwrap();
        assert_eq!(private.coherence_messages(100), 0);
    }
}
