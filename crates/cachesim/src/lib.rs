//! # hmc-cachesim
//!
//! The cache-based atomic-operation baseline of the paper's Table II:
//! a model of a conventional CPU cache hierarchy performing atomic
//! read-modify-write cycles over an HMC link (fetch a cache line,
//! modify it in the cache, flush it back), with FLIT/byte traffic
//! accounting and a simple MESI-style coherence-traffic estimate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod model;

pub use model::{CacheAtomicModel, CacheConfig, TrafficReport};
