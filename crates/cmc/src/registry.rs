//! The per-device CMC registration table.
//!
//! [`CmcRegistry`] is the Rust counterpart of HMC-Sim's array of
//! `hmc_cmc_t` structures: one slot per command code, populated by
//! `hmc_load_cmc` and consulted by `hmcsim_process_rqst` when a packet
//! carrying a CMC command reaches a vault (paper §IV-C).

use crate::op::{CmcContext, CmcOp, CmcRegistration, CmcResult};
use hmc_types::cmd::CMD_CODE_SPACE;
use hmc_types::HmcError;

/// A loaded CMC operation: the registration data plus the resolved
/// entry points (the `hmc_cmc_t` function pointers).
pub struct LoadedCmc {
    reg: CmcRegistration,
    op: Box<dyn CmcOp>,
}

impl LoadedCmc {
    /// The registration data captured at load time.
    #[inline]
    pub fn registration(&self) -> &CmcRegistration {
        &self.reg
    }

    /// Executes the operation (`cmc_execute` via its function
    /// pointer).
    pub fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        self.op.execute(ctx)
    }

    /// The trace-log name (`cmc_str` via its function pointer).
    pub fn trace_name(&self) -> &str {
        self.op.name()
    }
}

impl std::fmt::Debug for LoadedCmc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedCmc").field("reg", &self.reg).finish()
    }
}

/// The table of active CMC operations for one simulation context.
///
/// Up to all 70 free Gen2 command codes may be active concurrently
/// (paper §I: "the ability to load up to seventy disparate operations
/// concurrently").
#[derive(Debug, Default)]
pub struct CmcRegistry {
    slots: Vec<Option<LoadedCmc>>,
}

impl CmcRegistry {
    /// An empty registry (no CMC command active).
    pub fn new() -> Self {
        CmcRegistry {
            slots: (0..CMD_CODE_SPACE).map(|_| None).collect(),
        }
    }

    /// Registers an operation, performing the full `hmc_load_cmc`
    /// validation sequence: the registration must be well-formed, the
    /// command code must be one of the 70 free codes, and the slot
    /// must not already be active.
    pub fn register(&mut self, op: Box<dyn CmcOp>) -> Result<u8, HmcError> {
        let reg = op.register();
        reg.validate()?;
        let slot = &mut self.slots[reg.cmd as usize];
        if slot.is_some() {
            return Err(HmcError::CmcSlotBusy(reg.cmd));
        }
        let cmd = reg.cmd;
        *slot = Some(LoadedCmc { reg, op });
        Ok(cmd)
    }

    /// Unregisters the operation at `cmd`, freeing the slot.
    pub fn unregister(&mut self, cmd: u8) -> Result<(), HmcError> {
        let slot = self
            .slots
            .get_mut(cmd as usize)
            .ok_or(HmcError::InvalidCommandCode(cmd))?;
        if slot.take().is_none() {
            return Err(HmcError::CmcNotActive(cmd));
        }
        Ok(())
    }

    /// Looks up the active operation for a command code, returning
    /// [`HmcError::CmcNotActive`] when nothing is loaded — the error
    /// `hmcsim_process_rqst` raises for packets carrying an inactive
    /// CMC command.
    pub fn lookup(&self, cmd: u8) -> Result<&LoadedCmc, HmcError> {
        self.slots
            .get(cmd as usize)
            .and_then(|s| s.as_ref())
            .ok_or(HmcError::CmcNotActive(cmd))
    }

    /// True when a CMC operation is active on `cmd`.
    pub fn is_active(&self, cmd: u8) -> bool {
        self.slots.get(cmd as usize).is_some_and(|s| s.is_some())
    }

    /// Number of active operations.
    pub fn active_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterator over active registrations in command-code order.
    pub fn active(&self) -> impl Iterator<Item = &CmcRegistration> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|l| &l.reg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::{HmcResponse, HmcRqst};

    /// A minimal no-op CMC used to exercise the registry.
    struct Nop {
        cmd: u8,
    }

    impl CmcOp for Nop {
        fn register(&self) -> CmcRegistration {
            CmcRegistration::new("nop", self.cmd, 1, 1, HmcResponse::WrRs)
        }
        fn execute(&self, _ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
            Ok(CmcResult::default())
        }
        fn name(&self) -> &str {
            "nop"
        }
    }

    #[test]
    fn register_lookup_cycle() {
        let mut reg = CmcRegistry::new();
        assert!(!reg.is_active(125));
        assert_eq!(reg.register(Box::new(Nop { cmd: 125 })).unwrap(), 125);
        assert!(reg.is_active(125));
        assert_eq!(reg.lookup(125).unwrap().registration().cmd, 125);
        assert_eq!(reg.active_count(), 1);
    }

    #[test]
    fn inactive_lookup_errors() {
        let reg = CmcRegistry::new();
        assert!(matches!(reg.lookup(125), Err(HmcError::CmcNotActive(125))));
    }

    #[test]
    fn busy_slot_rejected() {
        let mut reg = CmcRegistry::new();
        reg.register(Box::new(Nop { cmd: 125 })).unwrap();
        assert!(matches!(
            reg.register(Box::new(Nop { cmd: 125 })),
            Err(HmcError::CmcSlotBusy(125))
        ));
    }

    #[test]
    fn reserved_code_rejected_at_registry() {
        let mut reg = CmcRegistry::new();
        assert!(matches!(
            reg.register(Box::new(Nop { cmd: 0x30 })), // RD16
            Err(HmcError::CmcCodeReserved(0x30))
        ));
    }

    #[test]
    fn unregister_frees_slot() {
        let mut reg = CmcRegistry::new();
        reg.register(Box::new(Nop { cmd: 125 })).unwrap();
        reg.unregister(125).unwrap();
        assert!(!reg.is_active(125));
        assert!(reg.unregister(125).is_err());
        // Slot can be reused after unregistration.
        reg.register(Box::new(Nop { cmd: 125 })).unwrap();
    }

    #[test]
    fn all_seventy_slots_fill_concurrently() {
        let mut reg = CmcRegistry::new();
        for code in HmcRqst::cmc_codes() {
            reg.register(Box::new(Nop { cmd: code })).unwrap();
        }
        assert_eq!(reg.active_count(), 70);
        let codes: Vec<u8> = reg.active().map(|r| r.cmd).collect();
        assert_eq!(codes, HmcRqst::cmc_codes().collect::<Vec<_>>());
    }
}
