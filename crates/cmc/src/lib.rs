//! # hmc-cmc
//!
//! The Custom Memory Cube (CMC) plugin framework of HMC-Sim 2.0
//! (paper §IV), plus a suite of builtin operations including the
//! paper's mutex trio (§V, Table V).
//!
//! The Gen2 command space leaves **70 command codes unused**; HMC-Sim
//! 2.0 maps each of them to a user-defined operation loaded at runtime
//! from a shared library, resolved through three `dlsym`'d entry
//! points: `cmc_register`, `cmc_execute` (symbol `hmcsim_execute_cmc`)
//! and `cmc_str`. This crate reproduces that architecture with safe
//! Rust plugins:
//!
//! * [`CmcOp`] — the three entry points as a trait
//!   ([`CmcOp::register`], [`CmcOp::execute`], [`CmcOp::name`]).
//! * [`CmcRegistry`] — the per-device `hmc_cmc_t` table over the 70
//!   free command codes, with the same failure modes as the C
//!   implementation (inactive command, busy slot, reserved code,
//!   malformed registration).
//! * [`library`] — a simulated dynamic loader: CMC "shared libraries"
//!   are registered under path-like names in a process-global table
//!   and opened by name, preserving `dlopen`/`dlsym` error behaviour
//!   (`CmcLibraryNotFound`, `CmcSymbolMissing`) without unsafe ABI.
//! * [`ops`] — builtin operation libraries: the mutex trio
//!   (`libhmc_mutex.so`) and demonstration extras
//!   (`libhmc_extras.so`).
//!
//! The simulator core (`hmc-sim`) depends only on the framework types;
//! it has no knowledge of any concrete operation — the decoupling the
//! paper's "Separable Implementation" requirement demands.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod library;
pub mod op;
pub mod ops;
pub mod registry;

pub use library::{open_library, register_library, registered_libraries, LibrarySpec};
pub use op::{CmcContext, CmcOp, CmcRegistration, CmcResult};
pub use registry::CmcRegistry;
