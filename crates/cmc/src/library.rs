//! Simulated dynamic loading of CMC shared libraries.
//!
//! HMC-Sim 2.0 loads CMC implementations with `dlopen` and resolves
//! `cmc_register` / `hmcsim_execute_cmc` / `cmc_str` with `dlsym`
//! (paper §IV-C2). A Rust reproduction using real `dlopen` of cdylibs
//! would add unsafe ABI hazards without changing any simulated
//! quantity, so this module substitutes a process-global table of
//! *library specifications* keyed by path-like names (see DESIGN.md
//! §3). The contract is preserved:
//!
//! * opening an unknown path fails like `dlopen` —
//!   [`HmcError::CmcLibraryNotFound`];
//! * a library missing one of the three entry points fails like
//!   `dlsym` — [`HmcError::CmcSymbolMissing`];
//! * a successfully opened library yields operations whose entry
//!   points the core invokes through dynamic dispatch, exactly as the
//!   C core invokes its stored function pointers.
//!
//! ```
//! use hmc_cmc::{register_library, open_library, LibrarySpec};
//!
//! hmc_cmc::ops::register_builtin_libraries();
//! let ops = open_library("libhmc_mutex.so").unwrap();
//! assert_eq!(ops.len(), 3); // lock, trylock, unlock
//! assert!(open_library("libmissing.so").is_err());
//! ```

use crate::op::CmcOp;
use hmc_types::HmcError;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A factory producing the operations a library implements.
pub type OpFactory = Arc<dyn Fn() -> Vec<Box<dyn CmcOp>> + Send + Sync>;

/// A registered CMC "shared library": its factory plus flags
/// describing which of the three required symbols the library
/// exports. Real libraries export all three; the flags exist so tests
/// and examples can reproduce `dlsym` failures.
#[derive(Clone)]
pub struct LibrarySpec {
    factory: OpFactory,
    has_register: bool,
    has_execute: bool,
    has_str: bool,
}

impl LibrarySpec {
    /// A well-formed library exporting all three entry points.
    pub fn new(factory: impl Fn() -> Vec<Box<dyn CmcOp>> + Send + Sync + 'static) -> Self {
        LibrarySpec {
            factory: Arc::new(factory),
            has_register: true,
            has_execute: true,
            has_str: true,
        }
    }

    /// Marks a symbol as missing, to simulate a broken library.
    /// `symbol` is one of `cmc_register`, `hmcsim_execute_cmc`,
    /// `cmc_str`; unknown names are ignored.
    pub fn without_symbol(mut self, symbol: &str) -> Self {
        match symbol {
            "cmc_register" => self.has_register = false,
            "hmcsim_execute_cmc" => self.has_execute = false,
            "cmc_str" => self.has_str = false,
            _ => {}
        }
        self
    }
}

fn global() -> &'static RwLock<BTreeMap<String, LibrarySpec>> {
    use std::sync::OnceLock;
    static LIBS: OnceLock<RwLock<BTreeMap<String, LibrarySpec>>> = OnceLock::new();
    LIBS.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Installs a library under a path-like name (the analogue of placing
/// a compiled `.so` on disk). Re-registering a name replaces the
/// previous library, as re-linking would.
pub fn register_library(path: impl Into<String>, spec: LibrarySpec) {
    global().write().insert(path.into(), spec);
}

/// Opens a library by name — the analogue of
/// `dlopen(path)` + `dlsym` of the three entry points — and returns
/// the operations it implements.
pub fn open_library(path: &str) -> Result<Vec<Box<dyn CmcOp>>, HmcError> {
    let libs = global().read();
    let spec = libs
        .get(path)
        .ok_or_else(|| HmcError::CmcLibraryNotFound(path.to_string()))?;
    for (present, symbol) in [
        (spec.has_register, "cmc_register"),
        (spec.has_execute, "hmcsim_execute_cmc"),
        (spec.has_str, "cmc_str"),
    ] {
        if !present {
            return Err(HmcError::CmcSymbolMissing {
                library: path.to_string(),
                symbol: symbol.to_string(),
            });
        }
    }
    Ok((spec.factory)())
}

/// Names of all registered libraries, in sorted order.
pub fn registered_libraries() -> Vec<String> {
    global().read().keys().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{CmcContext, CmcRegistration, CmcResult};
    use hmc_types::HmcResponse;

    struct Nop;
    impl CmcOp for Nop {
        fn register(&self) -> CmcRegistration {
            CmcRegistration::new("nop", 4, 1, 1, HmcResponse::WrRs)
        }
        fn execute(&self, _ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
            Ok(CmcResult::default())
        }
        fn name(&self) -> &str {
            "nop"
        }
    }

    #[test]
    fn open_unknown_library_fails_like_dlopen() {
        assert!(matches!(
            open_library("does/not/exist.so"),
            Err(HmcError::CmcLibraryNotFound(_))
        ));
    }

    #[test]
    fn open_registered_library() {
        register_library("libtest_nop.so", LibrarySpec::new(|| vec![Box::new(Nop)]));
        let ops = open_library("libtest_nop.so").unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].name(), "nop");
        assert!(registered_libraries().contains(&"libtest_nop.so".to_string()));
    }

    #[test]
    fn missing_symbol_fails_like_dlsym() {
        register_library(
            "libtest_broken.so",
            LibrarySpec::new(|| vec![Box::new(Nop)]).without_symbol("hmcsim_execute_cmc"),
        );
        match open_library("libtest_broken.so") {
            Err(HmcError::CmcSymbolMissing { library, symbol }) => {
                assert_eq!(library, "libtest_broken.so");
                assert_eq!(symbol, "hmcsim_execute_cmc");
            }
            Err(other) => panic!("expected CmcSymbolMissing, got {other:?}"),
            Ok(_) => panic!("expected CmcSymbolMissing, got Ok"),
        }
    }

    #[test]
    fn reregistering_replaces() {
        register_library("libtest_swap.so", LibrarySpec::new(Vec::new));
        assert_eq!(open_library("libtest_swap.so").unwrap().len(), 0);
        register_library(
            "libtest_swap.so",
            LibrarySpec::new(|| vec![Box::new(Nop)]),
        );
        assert_eq!(open_library("libtest_swap.so").unwrap().len(), 1);
    }
}
