//! The CMC operation contract: registration metadata, execution
//! context and the plugin trait.
//!
//! These mirror the C artifacts of HMC-Sim 2.0: [`CmcRegistration`] is
//! the set of required static globals of a CMC shared library (paper
//! Table III), [`CmcContext`] is the argument list of
//! `hmcsim_execute_cmc` (paper Table IV) and [`CmcOp`] bundles the
//! three `dlsym`'d entry points.

use hmc_mem::SparseMemory;
use hmc_types::packet::payload_words;
use hmc_types::{HmcError, HmcResponse, HmcRqst, MAX_PACKET_FLITS};

/// The registration data a CMC operation publishes — the Rust
/// equivalent of the required static globals of a CMC shared library
/// (paper Table III) and the convenience members of `hmc_cmc_t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmcRegistration {
    /// `op_name` — unique human-readable identifier used in traces.
    pub op_name: String,
    /// `rqst` — the enumerated command type; must be a CMC variant.
    pub rqst: HmcRqst,
    /// `cmd` — the raw command code; must match `rqst`.
    pub cmd: u8,
    /// `rqst_len` — total request packet length in FLITs (1..=17).
    pub rqst_len: u8,
    /// `rsp_len` — total response packet length in FLITs (0 for
    /// posted operations, otherwise 1..=17).
    pub rsp_len: u8,
    /// `rsp_cmd` — the response packet type.
    pub rsp_cmd: HmcResponse,
    /// `rsp_cmd_code` — the raw response code when `rsp_cmd` is
    /// [`HmcResponse::RspCmc`].
    pub rsp_cmd_code: u8,
}

impl CmcRegistration {
    /// Builds a registration for a CMC command with a standard
    /// response type.
    pub fn new(
        op_name: impl Into<String>,
        cmd: u8,
        rqst_len: u8,
        rsp_len: u8,
        rsp_cmd: HmcResponse,
    ) -> Self {
        let rsp_cmd_code = match rsp_cmd {
            HmcResponse::RspCmc(code) => code,
            other => other.code(),
        };
        CmcRegistration {
            op_name: op_name.into(),
            rqst: HmcRqst::Cmc(cmd),
            cmd,
            rqst_len,
            rsp_len,
            rsp_cmd,
            rsp_cmd_code,
        }
    }

    /// Validates the registration exactly as HMC-Sim's
    /// `hmc_load_cmc` does before accepting an operation.
    pub fn validate(&self) -> Result<(), HmcError> {
        match self.rqst {
            HmcRqst::Cmc(code) if code == self.cmd => {}
            HmcRqst::Cmc(code) => {
                return Err(HmcError::CmcBadRegistration(format!(
                    "rqst enum CMC{code} does not match cmd field {}",
                    self.cmd
                )));
            }
            other => {
                return Err(HmcError::CmcBadRegistration(format!(
                    "rqst must be a CMC command, got {other}"
                )));
            }
        }
        if !HmcRqst::cmc_codes().any(|c| c == self.cmd) {
            return Err(HmcError::CmcCodeReserved(self.cmd));
        }
        if self.rqst_len == 0 || self.rqst_len as usize > MAX_PACKET_FLITS {
            return Err(HmcError::CmcBadRegistration(format!(
                "rqst_len {} outside 1..=17 FLITs",
                self.rqst_len
            )));
        }
        if self.rsp_len as usize > MAX_PACKET_FLITS {
            return Err(HmcError::CmcBadRegistration(format!(
                "rsp_len {} exceeds 17 FLITs",
                self.rsp_len
            )));
        }
        if self.rsp_len == 0 && self.rsp_cmd != HmcResponse::RspNone {
            return Err(HmcError::CmcBadRegistration(
                "posted operation (rsp_len 0) must use RSP_NONE".into(),
            ));
        }
        if self.rsp_len > 0 && self.rsp_cmd == HmcResponse::RspNone {
            return Err(HmcError::CmcBadRegistration(
                "non-posted operation must declare a response command".into(),
            ));
        }
        if self.op_name.is_empty() {
            return Err(HmcError::CmcBadRegistration("empty op_name".into()));
        }
        Ok(())
    }

    /// True when the operation is posted (generates no response).
    #[inline]
    pub fn is_posted(&self) -> bool {
        self.rsp_len == 0
    }

    /// Number of request payload words the packet carries.
    #[inline]
    pub fn rqst_payload_words(&self) -> usize {
        payload_words(self.rqst_len)
    }

    /// Number of response payload words the packet carries.
    #[inline]
    pub fn rsp_payload_words(&self) -> usize {
        if self.rsp_len == 0 {
            0
        } else {
            payload_words(self.rsp_len)
        }
    }
}

/// The execution context handed to a CMC operation — the Rust
/// equivalent of the `hmcsim_execute_cmc` argument list (paper
/// Table IV). Instead of the raw `void *hmc` context pointer, the
/// operation receives a mutable view of the target vault's backing
/// store, which is what the C implementations cast the pointer for.
#[derive(Debug)]
pub struct CmcContext<'a> {
    /// The device where the operation is executing.
    pub dev: u32,
    /// The quad within the device.
    pub quad: u32,
    /// The vault within the quad.
    pub vault: u32,
    /// The bank within the vault.
    pub bank: u32,
    /// The target base address of the incoming request.
    pub addr: u64,
    /// The length of the incoming request in FLITs.
    pub length: u32,
    /// The raw packet header.
    pub head: u64,
    /// The raw packet tail.
    pub tail: u64,
    /// The device cycle at which the operation executes (enables
    /// time-based operations such as leased "soft" locks).
    pub cycle: u64,
    /// The raw request payload words.
    pub rqst_payload: &'a [u64],
    /// The raw response payload buffer, pre-sized to the registered
    /// `rsp_len` (the implementor must stay within it, paper §IV-D's
    /// buffer-overflow caution made structural).
    pub rsp_payload: &'a mut [u64],
    /// The device memory (the `hmc_sim_t` internals the C code
    /// reaches through the context pointer). Shared rather than
    /// exclusive: `SparseMemory` accessors take `&self`, and the
    /// parallel tick engine never runs a CMC op concurrently with
    /// anything else (CMC cycles use the sequential reference path).
    pub mem: &'a SparseMemory,
}

impl CmcContext<'_> {
    /// Decodes the raw packet header (the C implementations do this
    /// by hand when they need header fields beyond the convenience
    /// arguments).
    pub fn decoded_head(&self) -> Result<hmc_types::ReqHead, HmcError> {
        hmc_types::ReqHead::decode(self.head)
    }

    /// The request tag, decoded from the raw header.
    pub fn tag(&self) -> Result<u16, HmcError> {
        Ok(self.decoded_head()?.tag.value())
    }

    /// The source link id, decoded from the raw tail.
    pub fn slid(&self) -> Result<u8, HmcError> {
        Ok(hmc_types::ReqTail::decode(self.tail)?.slid.value())
    }
}

/// The outcome of a CMC execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CmcResult {
    /// Atomic-flag bit to set in the response header.
    pub af: bool,
}

/// A Custom Memory Cube operation: the three entry points HMC-Sim
/// resolves from a CMC shared library.
///
/// * [`CmcOp::register`] ⇔ `cmc_register`
/// * [`CmcOp::execute`] ⇔ `cmc_execute` (symbol `hmcsim_execute_cmc`)
/// * [`CmcOp::name`] ⇔ `cmc_str`
pub trait CmcOp: Send + Sync {
    /// Publishes the operation's registration data; called once at
    /// load time.
    fn register(&self) -> CmcRegistration;

    /// Executes the operation against the device state. Errors abort
    /// the request and surface as an ERROR response.
    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError>;

    /// The human-readable operation name resolved for trace logs.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(cmd: u8, rqst_len: u8, rsp_len: u8, rsp: HmcResponse) -> CmcRegistration {
        CmcRegistration::new("test_op", cmd, rqst_len, rsp_len, rsp)
    }

    #[test]
    fn valid_registration() {
        assert!(reg(125, 2, 2, HmcResponse::WrRs).validate().is_ok());
        assert!(reg(4, 1, 1, HmcResponse::RspCmc(0x70)).validate().is_ok());
    }

    #[test]
    fn posted_registration() {
        assert!(reg(5, 2, 0, HmcResponse::RspNone).validate().is_ok());
        assert!(reg(5, 2, 0, HmcResponse::WrRs).validate().is_err());
        assert!(reg(5, 2, 1, HmcResponse::RspNone).validate().is_err());
    }

    #[test]
    fn reserved_code_rejected() {
        // 0x50 is INC8 — not a free CMC slot.
        let r = reg(0x50, 2, 2, HmcResponse::WrRs);
        assert!(matches!(r.validate(), Err(HmcError::CmcCodeReserved(0x50))));
    }

    #[test]
    fn enum_code_mismatch_rejected() {
        let mut r = reg(125, 2, 2, HmcResponse::WrRs);
        r.rqst = HmcRqst::Cmc(126);
        assert!(r.validate().is_err());
        r.rqst = HmcRqst::Inc8;
        assert!(r.validate().is_err());
    }

    #[test]
    fn length_bounds() {
        assert!(reg(125, 0, 2, HmcResponse::WrRs).validate().is_err());
        assert!(reg(125, 18, 2, HmcResponse::WrRs).validate().is_err());
        assert!(reg(125, 17, 17, HmcResponse::RdRs).validate().is_ok());
        assert!(reg(125, 2, 18, HmcResponse::RdRs).validate().is_err());
    }

    #[test]
    fn empty_name_rejected() {
        assert!(reg(125, 2, 2, HmcResponse::WrRs).validate().is_ok());
        let r = CmcRegistration::new("", 125, 2, 2, HmcResponse::WrRs);
        assert!(r.validate().is_err());
    }

    #[test]
    fn payload_word_math() {
        let r = reg(125, 2, 2, HmcResponse::WrRs);
        assert_eq!(r.rqst_payload_words(), 2);
        assert_eq!(r.rsp_payload_words(), 2);
        let p = reg(5, 1, 0, HmcResponse::RspNone);
        assert_eq!(p.rqst_payload_words(), 0);
        assert_eq!(p.rsp_payload_words(), 0);
        assert!(p.is_posted());
    }

    #[test]
    fn context_header_helpers_decode_raw_fields() {
        use hmc_types::{Cub, ReqHead, ReqTail, Slid, Tag};
        let head = ReqHead::new_cmc(125, 2, Tag::new(77).unwrap(), 0x4000, Cub::new(0).unwrap());
        let tail = ReqTail { slid: Slid::new(3).unwrap(), ..ReqTail::default() };
        let mut mem = hmc_mem::SparseMemory::new(1 << 16);
        let rqst = [1u64, 0];
        let mut rsp = [0u64; 2];
        let ctx = CmcContext {
            dev: 0,
            quad: 0,
            vault: 0,
            bank: 0,
            addr: 0x4000,
            length: 2,
            head: head.encode(),
            tail: tail.encode(),
            cycle: 9,
            rqst_payload: &rqst,
            rsp_payload: &mut rsp,
            mem: &mut mem,
        };
        assert_eq!(ctx.tag().unwrap(), 77);
        assert_eq!(ctx.slid().unwrap(), 3);
        assert_eq!(ctx.decoded_head().unwrap().addr, 0x4000);
    }

    #[test]
    fn rsp_cmd_code_defaults_from_response() {
        let r = reg(125, 2, 2, HmcResponse::WrRs);
        assert_eq!(r.rsp_cmd_code, HmcResponse::WrRs.code());
        let c = reg(125, 2, 2, HmcResponse::RspCmc(0x71));
        assert_eq!(c.rsp_cmd_code, 0x71);
    }
}
