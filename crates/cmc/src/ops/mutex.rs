//! The CMC mutex suite (paper §V, Table V).
//!
//! Three operations modeled after `pthread_mutex_lock`,
//! `pthread_mutex_trylock` and `pthread_mutex_unlock`, executing
//! entirely in the cube's logic layer so no kernel context switch is
//! required.
//!
//! The lock lives in one 16-byte (one-FLIT) block (paper Figure 4):
//!
//! ```text
//! | 127 .. 64 : thread/task id | 63 .. 0 : lock value |
//! ```
//!
//! stored little-endian: the lock word at `addr`, the owner id at
//! `addr + 8`. Any nonzero lock value means the lock is held; when the
//! lock word is clear the owner field is undefined.
//!
//! | op          | enum   | code | rqst | rsp        | semantics |
//! |-------------|--------|------|------|------------|-----------|
//! | `hmc_lock`    | CMC125 | 125 | 2 FLITs | WR_RS, 2 | acquire if free; returns 1 on success, else 0 |
//! | `hmc_trylock` | CMC126 | 126 | 2 FLITs | RD_RS, 2 | acquire if free; returns the owner id |
//! | `hmc_unlock`  | CMC127 | 127 | 2 FLITs | WR_RS, 2 | release if owned by the caller; returns 1/0 |

use crate::op::{CmcContext, CmcOp, CmcRegistration, CmcResult};
use hmc_types::{HmcError, HmcResponse};

/// Command code of `hmc_lock` (Table V).
pub const LOCK_CMD: u8 = 125;
/// Command code of `hmc_trylock` (Table V).
pub const TRYLOCK_CMD: u8 = 126;
/// Command code of `hmc_unlock` (Table V).
pub const UNLOCK_CMD: u8 = 127;

/// Request packet length shared by the three operations (2 FLITs: the
/// header/tail FLIT plus one data FLIT carrying the caller's id).
pub const MUTEX_RQST_FLITS: u8 = 2;
/// Response packet length shared by the three operations.
pub const MUTEX_RSP_FLITS: u8 = 2;

fn require_alignment(addr: u64) -> Result<(), HmcError> {
    if !addr.is_multiple_of(16) {
        return Err(HmcError::UnalignedAddress { addr, align: 16 });
    }
    Ok(())
}

fn caller_tid(ctx: &CmcContext<'_>) -> Result<u64, HmcError> {
    ctx.rqst_payload
        .first()
        .copied()
        .ok_or_else(|| HmcError::MalformedPacket("mutex request missing TID payload".into()))
}

/// `hmc_lock` — CMC125.
///
/// `IF (ADDR[63:0] == 0) { ADDR[127:64] = TID; ADDR[63:0] = 1; RET 1 }
/// ELSE { RET 0 }` (Table V). The response's first payload word is the
/// success flag; AF mirrors it.
pub struct HmcLock;

impl CmcOp for HmcLock {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new(
            "hmc_lock",
            LOCK_CMD,
            MUTEX_RQST_FLITS,
            MUTEX_RSP_FLITS,
            HmcResponse::WrRs,
        )
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        require_alignment(ctx.addr)?;
        let tid = caller_tid(ctx)?;
        let lock = ctx.mem.read_u64(ctx.addr)?;
        let acquired = lock == 0;
        if acquired {
            ctx.mem.write_u64(ctx.addr + 8, tid)?;
            ctx.mem.write_u64(ctx.addr, 1)?;
        }
        ctx.rsp_payload[0] = acquired as u64;
        ctx.rsp_payload[1] = 0;
        Ok(CmcResult { af: acquired })
    }

    fn name(&self) -> &str {
        "hmc_lock"
    }
}

/// `hmc_trylock` — CMC126.
///
/// Attempts the same acquisition as `hmc_lock`, but the response
/// payload carries the thread id that holds the lock *after* the
/// attempt; the encountering thread compares it against its own id to
/// learn whether it now owns the lock (paper §V-A).
pub struct HmcTrylock;

impl CmcOp for HmcTrylock {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new(
            "hmc_trylock",
            TRYLOCK_CMD,
            MUTEX_RQST_FLITS,
            MUTEX_RSP_FLITS,
            HmcResponse::RdRs,
        )
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        require_alignment(ctx.addr)?;
        let tid = caller_tid(ctx)?;
        let lock = ctx.mem.read_u64(ctx.addr)?;
        let acquired = lock == 0;
        if acquired {
            ctx.mem.write_u64(ctx.addr + 8, tid)?;
            ctx.mem.write_u64(ctx.addr, 1)?;
        }
        let owner = ctx.mem.read_u64(ctx.addr + 8)?;
        ctx.rsp_payload[0] = owner;
        ctx.rsp_payload[1] = ctx.mem.read_u64(ctx.addr)?;
        Ok(CmcResult { af: acquired })
    }

    fn name(&self) -> &str {
        "hmc_trylock"
    }
}

/// `hmc_unlock` — CMC127.
///
/// `IF (ADDR[127:64] == TID && ADDR[63:0] == 1) { ADDR[63:0] = 0;
/// RET 1 } ELSE { RET 0 }` (Table V).
pub struct HmcUnlock;

impl CmcOp for HmcUnlock {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new(
            "hmc_unlock",
            UNLOCK_CMD,
            MUTEX_RQST_FLITS,
            MUTEX_RSP_FLITS,
            HmcResponse::WrRs,
        )
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        require_alignment(ctx.addr)?;
        let tid = caller_tid(ctx)?;
        let lock = ctx.mem.read_u64(ctx.addr)?;
        let owner = ctx.mem.read_u64(ctx.addr + 8)?;
        let released = lock == 1 && owner == tid;
        if released {
            ctx.mem.write_u64(ctx.addr, 0)?;
        }
        ctx.rsp_payload[0] = released as u64;
        ctx.rsp_payload[1] = 0;
        Ok(CmcResult { af: released })
    }

    fn name(&self) -> &str {
        "hmc_unlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mem::SparseMemory;

    fn exec(
        op: &dyn CmcOp,
        mem: &mut SparseMemory,
        addr: u64,
        tid: u64,
    ) -> (Vec<u64>, CmcResult) {
        let rqst = [tid, 0];
        let mut rsp = [0u64; 2];
        let mut ctx = CmcContext {
            dev: 0,
            quad: 0,
            vault: 0,
            bank: 0,
            addr,
            length: 2,
            head: 0,
            tail: 0,
            cycle: 0,
            rqst_payload: &rqst,
            rsp_payload: &mut rsp,
            mem,
        };
        let result = op.execute(&mut ctx).unwrap();
        (rsp.to_vec(), result)
    }

    #[test]
    fn registrations_match_table_v() {
        for (op, cmd, rsp) in [
            (&HmcLock as &dyn CmcOp, 125u8, HmcResponse::WrRs),
            (&HmcTrylock, 126, HmcResponse::RdRs),
            (&HmcUnlock, 127, HmcResponse::WrRs),
        ] {
            let reg = op.register();
            reg.validate().unwrap();
            assert_eq!(reg.cmd, cmd);
            assert_eq!(reg.rqst_len, 2);
            assert_eq!(reg.rsp_len, 2);
            assert_eq!(reg.rsp_cmd, rsp);
        }
    }

    #[test]
    fn lock_acquires_when_free() {
        let mut mem = SparseMemory::new(1 << 16);
        let (rsp, r) = exec(&HmcLock, &mut mem, 0x40, 7);
        assert_eq!(rsp[0], 1);
        assert!(r.af);
        assert_eq!(mem.read_u64(0x40).unwrap(), 1);
        assert_eq!(mem.read_u64(0x48).unwrap(), 7);
    }

    #[test]
    fn lock_fails_when_held() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&HmcLock, &mut mem, 0x40, 7);
        let (rsp, r) = exec(&HmcLock, &mut mem, 0x40, 9);
        assert_eq!(rsp[0], 0);
        assert!(!r.af);
        assert_eq!(mem.read_u64(0x48).unwrap(), 7, "owner unchanged");
    }

    #[test]
    fn trylock_returns_owner_id() {
        let mut mem = SparseMemory::new(1 << 16);
        // Free lock: caller acquires and sees itself as owner.
        let (rsp, r) = exec(&HmcTrylock, &mut mem, 0x40, 11);
        assert_eq!(rsp[0], 11);
        assert!(r.af);
        // Held lock: a different caller sees the current owner.
        let (rsp, r) = exec(&HmcTrylock, &mut mem, 0x40, 22);
        assert_eq!(rsp[0], 11);
        assert!(!r.af);
    }

    #[test]
    fn unlock_requires_matching_tid() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&HmcLock, &mut mem, 0x40, 7);
        let (rsp, _) = exec(&HmcUnlock, &mut mem, 0x40, 9);
        assert_eq!(rsp[0], 0, "wrong owner cannot unlock");
        assert_eq!(mem.read_u64(0x40).unwrap(), 1);
        let (rsp, _) = exec(&HmcUnlock, &mut mem, 0x40, 7);
        assert_eq!(rsp[0], 1);
        assert_eq!(mem.read_u64(0x40).unwrap(), 0);
    }

    #[test]
    fn unlock_of_free_lock_fails() {
        let mut mem = SparseMemory::new(1 << 16);
        let (rsp, r) = exec(&HmcUnlock, &mut mem, 0x40, 7);
        assert_eq!(rsp[0], 0);
        assert!(!r.af);
    }

    #[test]
    fn lock_handoff_cycle() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&HmcLock, &mut mem, 0x40, 1);
        exec(&HmcUnlock, &mut mem, 0x40, 1);
        let (rsp, _) = exec(&HmcLock, &mut mem, 0x40, 2);
        assert_eq!(rsp[0], 1, "lock reusable after unlock");
        assert_eq!(mem.read_u64(0x48).unwrap(), 2);
    }

    #[test]
    fn misaligned_lock_address_rejected() {
        let mut mem = SparseMemory::new(1 << 16);
        let rqst = [1u64, 0];
        let mut rsp = [0u64; 2];
        let mut ctx = CmcContext {
            dev: 0,
            quad: 0,
            vault: 0,
            bank: 0,
            addr: 0x44,
            length: 2,
            head: 0,
            tail: 0,
            cycle: 0,
            rqst_payload: &rqst,
            rsp_payload: &mut rsp,
            mem: &mut mem,
        };
        assert!(HmcLock.execute(&mut ctx).is_err());
    }

    #[test]
    fn distinct_locks_are_independent() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&HmcLock, &mut mem, 0x40, 1);
        let (rsp, _) = exec(&HmcLock, &mut mem, 0x50, 2);
        assert_eq!(rsp[0], 1, "adjacent 16-byte block is a separate lock");
    }
}
