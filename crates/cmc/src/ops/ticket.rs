//! A CMC ticket-lock suite — a *fair* mutex in a 16-byte block.
//!
//! The paper's test-and-set mutex admits starvation under contention;
//! a ticket lock grants the critical section in arrival order. The
//! block holds `next_ticket` in bits 63:0 and `now_serving` in bits
//! 127:64.
//!
//! | op | code | rqst | rsp | semantics |
//! |----|------|------|-----|-----------|
//! | `hmc_ticket_take`    | CMC112 | 1 FLIT  | RD_RS, 2 | fetch-and-increment `next_ticket`; returns `[my_ticket, now_serving]` |
//! | `hmc_ticket_poll`    | CMC113 | 2 FLITs | RD_RS, 2 | returns `[now_serving, next_ticket]`; AF set when the caller's ticket is being served |
//! | `hmc_ticket_release` | CMC114 | 1 FLIT  | WR_RS, 2 | increment `now_serving`; returns the new value |

use crate::op::{CmcContext, CmcOp, CmcRegistration, CmcResult};
use hmc_types::{HmcError, HmcResponse};

/// Command code of [`TicketTake`].
pub const TICKET_TAKE_CMD: u8 = 112;
/// Command code of [`TicketPoll`].
pub const TICKET_POLL_CMD: u8 = 113;
/// Command code of [`TicketRelease`].
pub const TICKET_RELEASE_CMD: u8 = 114;

fn check_align(addr: u64) -> Result<(), HmcError> {
    if !addr.is_multiple_of(16) {
        return Err(HmcError::UnalignedAddress { addr, align: 16 });
    }
    Ok(())
}

/// `hmc_ticket_take` — CMC112: draws the next ticket.
pub struct TicketTake;

impl CmcOp for TicketTake {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_ticket_take", TICKET_TAKE_CMD, 1, 2, HmcResponse::RdRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        check_align(ctx.addr)?;
        let ticket = ctx.mem.read_u64(ctx.addr)?;
        let serving = ctx.mem.read_u64(ctx.addr + 8)?;
        ctx.mem.write_u64(ctx.addr, ticket.wrapping_add(1))?;
        ctx.rsp_payload[0] = ticket;
        ctx.rsp_payload[1] = serving;
        // AF reports an immediately-granted ticket.
        Ok(CmcResult { af: ticket == serving })
    }

    fn name(&self) -> &str {
        "hmc_ticket_take"
    }
}

/// `hmc_ticket_poll` — CMC113: checks whether the caller's ticket
/// (request payload word 0) is being served.
pub struct TicketPoll;

impl CmcOp for TicketPoll {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_ticket_poll", TICKET_POLL_CMD, 2, 2, HmcResponse::RdRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        check_align(ctx.addr)?;
        let my_ticket = ctx
            .rqst_payload
            .first()
            .copied()
            .ok_or_else(|| HmcError::MalformedPacket("poll missing ticket payload".into()))?;
        let serving = ctx.mem.read_u64(ctx.addr + 8)?;
        ctx.rsp_payload[0] = serving;
        ctx.rsp_payload[1] = ctx.mem.read_u64(ctx.addr)?;
        Ok(CmcResult { af: serving == my_ticket })
    }

    fn name(&self) -> &str {
        "hmc_ticket_poll"
    }
}

/// `hmc_ticket_release` — CMC114: passes the lock to the next ticket.
pub struct TicketRelease;

impl CmcOp for TicketRelease {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new(
            "hmc_ticket_release",
            TICKET_RELEASE_CMD,
            1,
            2,
            HmcResponse::WrRs,
        )
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        check_align(ctx.addr)?;
        let serving = ctx.mem.read_u64(ctx.addr + 8)?.wrapping_add(1);
        ctx.mem.write_u64(ctx.addr + 8, serving)?;
        ctx.rsp_payload[0] = serving;
        ctx.rsp_payload[1] = 0;
        Ok(CmcResult { af: false })
    }

    fn name(&self) -> &str {
        "hmc_ticket_release"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mem::SparseMemory;

    fn exec(op: &dyn CmcOp, mem: &mut SparseMemory, payload: &[u64]) -> (Vec<u64>, bool) {
        let mut rsp = [0u64; 2];
        let mut ctx = CmcContext {
            dev: 0,
            quad: 0,
            vault: 0,
            bank: 0,
            addr: 0x40,
            length: op.register().rqst_len as u32,
            head: 0,
            tail: 0,
            cycle: 0,
            rqst_payload: payload,
            rsp_payload: &mut rsp,
            mem,
        };
        let r = op.execute(&mut ctx).unwrap();
        (rsp.to_vec(), r.af)
    }

    #[test]
    fn tickets_issue_in_order() {
        let mut mem = SparseMemory::new(1 << 16);
        let (r0, granted0) = exec(&TicketTake, &mut mem, &[]);
        let (r1, granted1) = exec(&TicketTake, &mut mem, &[]);
        let (r2, _) = exec(&TicketTake, &mut mem, &[]);
        assert_eq!(r0[0], 0);
        assert_eq!(r1[0], 1);
        assert_eq!(r2[0], 2);
        assert!(granted0, "ticket 0 is served immediately");
        assert!(!granted1);
    }

    #[test]
    fn poll_reports_serving_state() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&TicketTake, &mut mem, &[]); // ticket 0
        exec(&TicketTake, &mut mem, &[]); // ticket 1
        let (_, af) = exec(&TicketPoll, &mut mem, &[1]);
        assert!(!af, "ticket 1 not yet served");
        let (rsp, af) = exec(&TicketPoll, &mut mem, &[0]);
        assert!(af, "ticket 0 served");
        assert_eq!(rsp[0], 0, "now_serving");
        assert_eq!(rsp[1], 2, "next_ticket");
    }

    #[test]
    fn release_advances_serving() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&TicketTake, &mut mem, &[]);
        exec(&TicketTake, &mut mem, &[]);
        let (rsp, _) = exec(&TicketRelease, &mut mem, &[]);
        assert_eq!(rsp[0], 1);
        let (_, af) = exec(&TicketPoll, &mut mem, &[1]);
        assert!(af, "ticket 1 now served");
    }

    #[test]
    fn fairness_full_cycle() {
        // Three contenders are served strictly in ticket order.
        let mut mem = SparseMemory::new(1 << 16);
        let tickets: Vec<u64> = (0..3).map(|_| exec(&TicketTake, &mut mem, &[]).0[0]).collect();
        assert_eq!(tickets, vec![0, 1, 2]);
        for t in 0..3u64 {
            // Exactly one contender polls true.
            let served: Vec<bool> =
                tickets.iter().map(|&k| exec(&TicketPoll, &mut mem, &[k]).1).collect();
            assert_eq!(served.iter().filter(|&&s| s).count(), 1);
            assert!(served[t as usize], "ticket {t} served in order");
            exec(&TicketRelease, &mut mem, &[]);
        }
    }

    #[test]
    fn registrations_valid() {
        for op in [&TicketTake as &dyn CmcOp, &TicketPoll, &TicketRelease] {
            op.register().validate().unwrap();
        }
        assert_eq!(TicketTake.register().rqst_len, 1, "take needs no payload");
        assert_eq!(TicketPoll.register().rqst_len, 2, "poll carries the ticket");
    }
}
