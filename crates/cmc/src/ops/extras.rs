//! Demonstration CMC operations beyond the paper's mutex suite.
//!
//! These exercise the parts of the framework surface the mutex trio
//! does not: single-FLIT requests with no payload, custom (`RSP_CMC`)
//! response command codes, posted CMC operations, and multi-word
//! in-memory data structures (a Bloom filter block).
//!
//! | op | code | rqst | rsp | semantics |
//! |----|------|------|-----|-----------|
//! | `hmc_popcnt8`   | CMC4 | 1 FLIT  | RSP_CMC(0x70), 2 | population count of the 8 bytes at `addr` |
//! | `hmc_fmax8`     | CMC5 | 2 FLITs | RD_RS, 2 | signed fetch-max of an 8-byte value |
//! | `hmc_fmin8`     | CMC6 | 2 FLITs | RD_RS, 2 | signed fetch-min of an 8-byte value |
//! | `hmc_bloom_ins` | CMC7 | 2 FLITs | RD_RS, 2 | insert a key into a 128-bit Bloom block |
//! | `hmc_pfill16`   | CMC20 | 2 FLITs | posted  | fill a 16-byte block with a pattern |

use crate::op::{CmcContext, CmcOp, CmcRegistration, CmcResult};
use hmc_types::{HmcError, HmcResponse};

/// Command code of [`Popcount8`].
pub const POPCNT8_CMD: u8 = 4;
/// Command code of [`FetchMax8`].
pub const FMAX8_CMD: u8 = 5;
/// Command code of [`FetchMin8`].
pub const FMIN8_CMD: u8 = 6;
/// Command code of [`BloomInsert`].
pub const BLOOM_INS_CMD: u8 = 7;
/// Command code of [`PostedFill16`].
pub const PFILL16_CMD: u8 = 20;

/// Custom response command code published by [`Popcount8`].
pub const POPCNT8_RSP_CODE: u8 = 0x70;

fn operand(ctx: &CmcContext<'_>) -> Result<u64, HmcError> {
    ctx.rqst_payload
        .first()
        .copied()
        .ok_or_else(|| HmcError::MalformedPacket("CMC request missing operand".into()))
}

/// `hmc_popcnt8` — counts the set bits of the 8-byte value at `addr`.
///
/// A single-FLIT request (no payload) with a *custom* response command
/// code, demonstrating `RSP_CMC` (paper §IV-C1).
pub struct Popcount8;

impl CmcOp for Popcount8 {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new(
            "hmc_popcnt8",
            POPCNT8_CMD,
            1,
            2,
            HmcResponse::RspCmc(POPCNT8_RSP_CODE),
        )
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        let value = ctx.mem.read_u64(ctx.addr)?;
        ctx.rsp_payload[0] = value.count_ones() as u64;
        ctx.rsp_payload[1] = 0;
        Ok(CmcResult::default())
    }

    fn name(&self) -> &str {
        "hmc_popcnt8"
    }
}

/// `hmc_fmax8` — signed fetch-and-max: `mem = max(mem, operand)`,
/// returning the original value. AF is set when memory was updated.
pub struct FetchMax8;

impl CmcOp for FetchMax8 {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_fmax8", FMAX8_CMD, 2, 2, HmcResponse::RdRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        let candidate = operand(ctx)?;
        let old = ctx.mem.read_u64(ctx.addr)?;
        let updated = (candidate as i64) > (old as i64);
        if updated {
            ctx.mem.write_u64(ctx.addr, candidate)?;
        }
        ctx.rsp_payload[0] = old;
        ctx.rsp_payload[1] = 0;
        Ok(CmcResult { af: updated })
    }

    fn name(&self) -> &str {
        "hmc_fmax8"
    }
}

/// `hmc_fmin8` — signed fetch-and-min: `mem = min(mem, operand)`,
/// returning the original value. AF is set when memory was updated.
pub struct FetchMin8;

impl CmcOp for FetchMin8 {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_fmin8", FMIN8_CMD, 2, 2, HmcResponse::RdRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        let candidate = operand(ctx)?;
        let old = ctx.mem.read_u64(ctx.addr)?;
        let updated = (candidate as i64) < (old as i64);
        if updated {
            ctx.mem.write_u64(ctx.addr, candidate)?;
        }
        ctx.rsp_payload[0] = old;
        ctx.rsp_payload[1] = 0;
        Ok(CmcResult { af: updated })
    }

    fn name(&self) -> &str {
        "hmc_fmin8"
    }
}

/// Number of hash probes [`BloomInsert`] sets per key.
pub const BLOOM_HASHES: u32 = 3;

/// The three bit positions a key maps to in a 128-bit Bloom block.
pub fn bloom_bits(key: u64) -> [u32; BLOOM_HASHES as usize] {
    // Three independent multiplicative hashes into 0..128.
    let h1 = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let h2 = key.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (key >> 32);
    let h3 = key.wrapping_mul(0x1656_67B1_9E37_79F9).rotate_left(31);
    [(h1 >> 57) as u32, (h2 >> 57) as u32, (h3 >> 57) as u32]
}

/// `hmc_bloom_ins` — inserts a key into the 128-bit Bloom-filter
/// block at `addr`, setting [`BLOOM_HASHES`] bits in one in-situ
/// read-modify-write. The response returns the pre-insert block and
/// AF reports whether the key was (probabilistically) already
/// present, letting hosts build memory-side duplicate filters without
/// a read-test-write round trip.
pub struct BloomInsert;

impl CmcOp for BloomInsert {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_bloom_ins", BLOOM_INS_CMD, 2, 2, HmcResponse::RdRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        if !ctx.addr.is_multiple_of(16) {
            return Err(HmcError::UnalignedAddress { addr: ctx.addr, align: 16 });
        }
        let key = operand(ctx)?;
        let old = ctx.mem.read_u128(ctx.addr)?;
        let mut new = old;
        let mut present = true;
        for bit in bloom_bits(key) {
            let mask = 1u128 << bit;
            present &= old & mask != 0;
            new |= mask;
        }
        ctx.mem.write_u128(ctx.addr, new)?;
        ctx.rsp_payload[0] = old as u64;
        ctx.rsp_payload[1] = (old >> 64) as u64;
        Ok(CmcResult { af: present })
    }

    fn name(&self) -> &str {
        "hmc_bloom_ins"
    }
}

/// `hmc_pfill16` — a *posted* CMC: fills the 16-byte block at `addr`
/// with the operand pattern in both words and generates no response,
/// demonstrating `rsp_len = 0` registrations.
pub struct PostedFill16;

impl CmcOp for PostedFill16 {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_pfill16", PFILL16_CMD, 2, 0, HmcResponse::RspNone)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        if !ctx.addr.is_multiple_of(16) {
            return Err(HmcError::UnalignedAddress { addr: ctx.addr, align: 16 });
        }
        let pattern = operand(ctx)?;
        ctx.mem.write_u64(ctx.addr, pattern)?;
        ctx.mem.write_u64(ctx.addr + 8, pattern)?;
        Ok(CmcResult::default())
    }

    fn name(&self) -> &str {
        "hmc_pfill16"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mem::SparseMemory;

    fn exec_with(
        op: &dyn CmcOp,
        mem: &mut SparseMemory,
        addr: u64,
        payload: &[u64],
    ) -> Result<(Vec<u64>, CmcResult), HmcError> {
        let reg = op.register();
        let mut rsp = vec![0u64; reg.rsp_payload_words()];
        let mut ctx = CmcContext {
            dev: 0,
            quad: 0,
            vault: 0,
            bank: 0,
            addr,
            length: reg.rqst_len as u32,
            head: 0,
            tail: 0,
            cycle: 0,
            rqst_payload: payload,
            rsp_payload: &mut rsp,
            mem,
        };
        let result = op.execute(&mut ctx)?;
        Ok((rsp, result))
    }

    #[test]
    fn popcount_counts_bits() {
        let mut mem = SparseMemory::new(1 << 16);
        mem.write_u64(0x40, 0x0F0F).unwrap();
        let (rsp, _) = exec_with(&Popcount8, &mut mem, 0x40, &[]).unwrap();
        assert_eq!(rsp[0], 8);
    }

    #[test]
    fn popcount_uses_custom_response_code() {
        let reg = Popcount8.register();
        assert_eq!(reg.rsp_cmd, HmcResponse::RspCmc(POPCNT8_RSP_CODE));
        assert_eq!(reg.rsp_cmd_code, POPCNT8_RSP_CODE);
        reg.validate().unwrap();
    }

    #[test]
    fn fetch_max_semantics() {
        let mut mem = SparseMemory::new(1 << 16);
        mem.write_u64(0x40, 10).unwrap();
        let (rsp, r) = exec_with(&FetchMax8, &mut mem, 0x40, &[25]).unwrap();
        assert_eq!(rsp[0], 10);
        assert!(r.af);
        assert_eq!(mem.read_u64(0x40).unwrap(), 25);
        let (_, r) = exec_with(&FetchMax8, &mut mem, 0x40, &[5]).unwrap();
        assert!(!r.af);
        assert_eq!(mem.read_u64(0x40).unwrap(), 25);
    }

    #[test]
    fn fetch_max_is_signed() {
        let mut mem = SparseMemory::new(1 << 16);
        mem.write_u64(0x40, (-10i64) as u64).unwrap();
        let (_, r) = exec_with(&FetchMax8, &mut mem, 0x40, &[3]).unwrap();
        assert!(r.af, "3 > -10 in signed comparison");
        assert_eq!(mem.read_u64(0x40).unwrap(), 3);
    }

    #[test]
    fn fetch_min_semantics() {
        let mut mem = SparseMemory::new(1 << 16);
        mem.write_u64(0x40, 10).unwrap();
        let (rsp, r) = exec_with(&FetchMin8, &mut mem, 0x40, &[(-4i64) as u64]).unwrap();
        assert_eq!(rsp[0], 10);
        assert!(r.af);
        assert_eq!(mem.read_u64(0x40).unwrap() as i64, -4);
    }

    #[test]
    fn bloom_insert_sets_bits_and_detects_duplicates() {
        let mut mem = SparseMemory::new(1 << 16);
        let (_, first) = exec_with(&BloomInsert, &mut mem, 0x40, &[42]).unwrap();
        assert!(!first.af, "fresh key not present");
        let block = mem.read_u128(0x40).unwrap();
        for bit in bloom_bits(42) {
            assert!(block & (1u128 << bit) != 0, "bit {bit} set");
        }
        let (_, second) = exec_with(&BloomInsert, &mut mem, 0x40, &[42]).unwrap();
        assert!(second.af, "re-inserted key present");
    }

    #[test]
    fn bloom_bits_in_range_and_spread() {
        for key in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            for bit in bloom_bits(key) {
                assert!(bit < 128);
            }
        }
        assert_ne!(bloom_bits(1), bloom_bits(2));
    }

    #[test]
    fn posted_fill_writes_and_has_no_response() {
        let mut mem = SparseMemory::new(1 << 16);
        let (rsp, _) = exec_with(&PostedFill16, &mut mem, 0x40, &[0xAB, 0]).unwrap();
        assert!(rsp.is_empty());
        assert_eq!(mem.read_u64(0x40).unwrap(), 0xAB);
        assert_eq!(mem.read_u64(0x48).unwrap(), 0xAB);
        assert!(PostedFill16.register().is_posted());
    }

    #[test]
    fn all_extras_have_valid_registrations_on_distinct_codes() {
        let ops: Vec<Box<dyn CmcOp>> = vec![
            Box::new(Popcount8),
            Box::new(FetchMax8),
            Box::new(FetchMin8),
            Box::new(BloomInsert),
            Box::new(PostedFill16),
        ];
        let mut codes = std::collections::HashSet::new();
        for op in &ops {
            let reg = op.register();
            reg.validate().unwrap();
            assert!(codes.insert(reg.cmd), "duplicate code {}", reg.cmd);
        }
    }
}
