//! A CMC *soft lock* — the leased lock the paper explicitly reserves
//! encoding space for ("We reserve the ability to encode more
//! expressive locks (such as soft locks) in this space in the
//! future", §V-A).
//!
//! The holder's claim expires after a lease: a crashed or descheduled
//! owner cannot wedge the lock forever. The 16-byte block holds the
//! lease-expiry cycle in bits 63:0 (0 = free) and the owner id in
//! bits 127:64.
//!
//! | op | code | rqst | rsp | semantics |
//! |----|------|------|-----|-----------|
//! | `hmc_softlock_acquire` | CMC120 | 2 FLITs | RD_RS, 2 | acquire when free **or expired**; payload `[tid, lease_cycles]`; returns `[owner, expiry]` |
//! | `hmc_softlock_renew`   | CMC121 | 2 FLITs | RD_RS, 2 | extend the holder's lease; returns `[owner, expiry]` |
//! | `hmc_softlock_release` | CMC122 | 2 FLITs | WR_RS, 2 | release when owned by the caller (an expired claim releases trivially) |

use crate::op::{CmcContext, CmcOp, CmcRegistration, CmcResult};
use hmc_types::{HmcError, HmcResponse};

/// Command code of [`SoftLockAcquire`].
pub const SOFTLOCK_ACQUIRE_CMD: u8 = 120;
/// Command code of [`SoftLockRenew`].
pub const SOFTLOCK_RENEW_CMD: u8 = 121;
/// Command code of [`SoftLockRelease`].
pub const SOFTLOCK_RELEASE_CMD: u8 = 122;

fn args(ctx: &CmcContext<'_>) -> Result<(u64, u64), HmcError> {
    if !ctx.addr.is_multiple_of(16) {
        return Err(HmcError::UnalignedAddress { addr: ctx.addr, align: 16 });
    }
    match ctx.rqst_payload {
        [a, b, ..] => Ok((*a, *b)),
        _ => Err(HmcError::MalformedPacket("softlock request missing payload".into())),
    }
}

fn state(ctx: &CmcContext<'_>) -> Result<(u64, u64), HmcError> {
    Ok((ctx.mem.read_u64(ctx.addr)?, ctx.mem.read_u64(ctx.addr + 8)?))
}

fn respond(ctx: &mut CmcContext<'_>, ok: bool) -> Result<CmcResult, HmcError> {
    let (expiry, owner) = state(ctx)?;
    ctx.rsp_payload[0] = owner;
    ctx.rsp_payload[1] = expiry;
    Ok(CmcResult { af: ok })
}

/// True when the lock word represents a live claim at `cycle`.
fn held(expiry: u64, cycle: u64) -> bool {
    expiry != 0 && expiry > cycle
}

/// `hmc_softlock_acquire` — CMC120.
pub struct SoftLockAcquire;

impl CmcOp for SoftLockAcquire {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_softlock_acquire", SOFTLOCK_ACQUIRE_CMD, 2, 2, HmcResponse::RdRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        let (tid, lease) = args(ctx)?;
        if lease == 0 {
            return Err(HmcError::MalformedPacket("zero-length lease".into()));
        }
        let (expiry, _) = state(ctx)?;
        let acquired = !held(expiry, ctx.cycle);
        if acquired {
            ctx.mem.write_u64(ctx.addr + 8, tid)?;
            ctx.mem.write_u64(ctx.addr, ctx.cycle + lease)?;
        }
        respond(ctx, acquired)
    }

    fn name(&self) -> &str {
        "hmc_softlock_acquire"
    }
}

/// `hmc_softlock_renew` — CMC121: the live holder extends its lease
/// by `lease` cycles from *now*.
pub struct SoftLockRenew;

impl CmcOp for SoftLockRenew {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_softlock_renew", SOFTLOCK_RENEW_CMD, 2, 2, HmcResponse::RdRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        let (tid, lease) = args(ctx)?;
        let (expiry, owner) = state(ctx)?;
        let renewed = held(expiry, ctx.cycle) && owner == tid && lease > 0;
        if renewed {
            ctx.mem.write_u64(ctx.addr, ctx.cycle + lease)?;
        }
        respond(ctx, renewed)
    }

    fn name(&self) -> &str {
        "hmc_softlock_renew"
    }
}

/// `hmc_softlock_release` — CMC122.
pub struct SoftLockRelease;

impl CmcOp for SoftLockRelease {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new(
            "hmc_softlock_release",
            SOFTLOCK_RELEASE_CMD,
            2,
            2,
            HmcResponse::WrRs,
        )
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        let (tid, _) = args(ctx)?;
        let (expiry, owner) = state(ctx)?;
        let released = held(expiry, ctx.cycle) && owner == tid;
        if released {
            ctx.mem.write_u64(ctx.addr, 0)?;
        }
        ctx.rsp_payload[0] = released as u64;
        ctx.rsp_payload[1] = 0;
        Ok(CmcResult { af: released })
    }

    fn name(&self) -> &str {
        "hmc_softlock_release"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mem::SparseMemory;

    fn exec(
        op: &dyn CmcOp,
        mem: &mut SparseMemory,
        cycle: u64,
        tid: u64,
        lease: u64,
    ) -> (Vec<u64>, bool) {
        let rqst = [tid, lease];
        let mut rsp = [0u64; 2];
        let mut ctx = CmcContext {
            dev: 0,
            quad: 0,
            vault: 0,
            bank: 0,
            addr: 0x40,
            length: 2,
            head: 0,
            tail: 0,
            cycle,
            rqst_payload: &rqst,
            rsp_payload: &mut rsp,
            mem,
        };
        let r = op.execute(&mut ctx).unwrap();
        (rsp.to_vec(), r.af)
    }

    #[test]
    fn acquire_and_release_within_lease() {
        let mut mem = SparseMemory::new(1 << 16);
        let (rsp, ok) = exec(&SoftLockAcquire, &mut mem, 100, 7, 50);
        assert!(ok);
        assert_eq!(rsp[0], 7, "owner");
        assert_eq!(rsp[1], 150, "expiry");
        let (_, ok) = exec(&SoftLockRelease, &mut mem, 120, 7, 0);
        assert!(ok);
        assert_eq!(mem.read_u64(0x40).unwrap(), 0);
    }

    #[test]
    fn live_lease_excludes_others() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&SoftLockAcquire, &mut mem, 100, 7, 50);
        let (rsp, ok) = exec(&SoftLockAcquire, &mut mem, 130, 9, 50);
        assert!(!ok, "lease still live at 130");
        assert_eq!(rsp[0], 7, "reports the current owner");
    }

    #[test]
    fn expired_lease_is_stealable() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&SoftLockAcquire, &mut mem, 100, 7, 50);
        let (rsp, ok) = exec(&SoftLockAcquire, &mut mem, 151, 9, 20);
        assert!(ok, "lease expired at 150");
        assert_eq!(rsp[0], 9);
        assert_eq!(rsp[1], 171);
    }

    #[test]
    fn renew_extends_only_the_live_owner() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&SoftLockAcquire, &mut mem, 100, 7, 50);
        let (_, ok) = exec(&SoftLockRenew, &mut mem, 140, 7, 100);
        assert!(ok);
        assert_eq!(mem.read_u64(0x40).unwrap(), 240);
        let (_, ok) = exec(&SoftLockRenew, &mut mem, 150, 9, 100);
        assert!(!ok, "non-owner cannot renew");
        let (_, ok) = exec(&SoftLockRenew, &mut mem, 500, 7, 100);
        assert!(!ok, "expired owner cannot renew");
    }

    #[test]
    fn release_after_expiry_is_a_noop() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&SoftLockAcquire, &mut mem, 100, 7, 10);
        let (rsp, ok) = exec(&SoftLockRelease, &mut mem, 200, 7, 0);
        assert!(!ok, "claim already lapsed");
        assert_eq!(rsp[0], 0);
    }

    #[test]
    fn zero_lease_rejected() {
        let mut mem = SparseMemory::new(1 << 16);
        let rqst = [7u64, 0];
        let mut rsp = [0u64; 2];
        let mut ctx = CmcContext {
            dev: 0,
            quad: 0,
            vault: 0,
            bank: 0,
            addr: 0x40,
            length: 2,
            head: 0,
            tail: 0,
            cycle: 0,
            rqst_payload: &rqst,
            rsp_payload: &mut rsp,
            mem: &mut mem,
        };
        assert!(SoftLockAcquire.execute(&mut ctx).is_err());
    }

    #[test]
    fn registrations_valid_on_free_codes() {
        for op in [&SoftLockAcquire as &dyn CmcOp, &SoftLockRenew, &SoftLockRelease] {
            op.register().validate().unwrap();
        }
    }
}
