//! Builtin CMC operation libraries.
//!
//! * [`mutex`] — the paper's case study (§V): `hmc_lock`,
//!   `hmc_trylock`, `hmc_unlock` on a 16-byte lock structure.
//! * [`rwlock`] — a reader-writer lock using the "more expressive
//!   locks" encoding space §V-A reserves.
//! * [`ticket`] — a fair (FIFO) ticket lock.
//! * [`softlock`] — a leased "soft" lock (§V-A's reserved concept).
//! * [`extras`] — demonstration operations exercising the rest of the
//!   framework surface (custom response codes, posted CMCs,
//!   request-payload-free CMCs).
//!
//! Call [`register_builtin_libraries`] once to make them loadable by
//! name, then `HmcSim::load_cmc_library(dev, "libhmc_mutex.so")`.

pub mod extras;
pub mod mutex;
pub mod rwlock;
pub mod softlock;
pub mod ticket;

use crate::library::{register_library, LibrarySpec};

/// Path-like name of the mutex suite library.
pub const MUTEX_LIBRARY: &str = "libhmc_mutex.so";

/// Path-like name of the reader-writer lock library.
pub const RWLOCK_LIBRARY: &str = "libhmc_rwlock.so";

/// Path-like name of the ticket lock library.
pub const TICKET_LIBRARY: &str = "libhmc_ticket.so";

/// Path-like name of the soft-lock library.
pub const SOFTLOCK_LIBRARY: &str = "libhmc_softlock.so";

/// Path-like name of the extras library.
pub const EXTRAS_LIBRARY: &str = "libhmc_extras.so";

/// Installs the builtin libraries in the simulated dynamic-loader
/// table. Idempotent.
pub fn register_builtin_libraries() {
    register_library(
        MUTEX_LIBRARY,
        LibrarySpec::new(|| {
            vec![
                Box::new(mutex::HmcLock),
                Box::new(mutex::HmcTrylock),
                Box::new(mutex::HmcUnlock),
            ]
        }),
    );
    register_library(
        RWLOCK_LIBRARY,
        LibrarySpec::new(|| {
            vec![
                Box::new(rwlock::RdLock),
                Box::new(rwlock::RdUnlock),
                Box::new(rwlock::WrLock),
                Box::new(rwlock::WrUnlock),
            ]
        }),
    );
    register_library(
        TICKET_LIBRARY,
        LibrarySpec::new(|| {
            vec![
                Box::new(ticket::TicketTake),
                Box::new(ticket::TicketPoll),
                Box::new(ticket::TicketRelease),
            ]
        }),
    );
    register_library(
        SOFTLOCK_LIBRARY,
        LibrarySpec::new(|| {
            vec![
                Box::new(softlock::SoftLockAcquire),
                Box::new(softlock::SoftLockRenew),
                Box::new(softlock::SoftLockRelease),
            ]
        }),
    );
    register_library(
        EXTRAS_LIBRARY,
        LibrarySpec::new(|| {
            vec![
                Box::new(extras::Popcount8),
                Box::new(extras::FetchMax8),
                Box::new(extras::FetchMin8),
                Box::new(extras::BloomInsert),
                Box::new(extras::PostedFill16),
            ]
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::open_library;

    #[test]
    fn builtin_libraries_open_by_name() {
        register_builtin_libraries();
        assert_eq!(open_library(MUTEX_LIBRARY).unwrap().len(), 3);
        assert_eq!(open_library(RWLOCK_LIBRARY).unwrap().len(), 4);
        assert_eq!(open_library(TICKET_LIBRARY).unwrap().len(), 3);
        assert_eq!(open_library(SOFTLOCK_LIBRARY).unwrap().len(), 3);
        assert_eq!(open_library(EXTRAS_LIBRARY).unwrap().len(), 5);
    }

    #[test]
    fn all_builtin_ops_use_distinct_free_codes() {
        register_builtin_libraries();
        let mut codes = std::collections::HashSet::new();
        for lib in [
            MUTEX_LIBRARY,
            RWLOCK_LIBRARY,
            TICKET_LIBRARY,
            SOFTLOCK_LIBRARY,
            EXTRAS_LIBRARY,
        ] {
            for op in open_library(lib).unwrap() {
                let reg = op.register();
                reg.validate().unwrap();
                assert!(codes.insert(reg.cmd), "duplicate code {} in {lib}", reg.cmd);
            }
        }
        assert_eq!(codes.len(), 18);
    }

    #[test]
    fn registration_is_idempotent() {
        register_builtin_libraries();
        register_builtin_libraries();
        assert_eq!(open_library(MUTEX_LIBRARY).unwrap().len(), 3);
    }
}
