//! A CMC reader-writer lock suite.
//!
//! The paper reserves the lock word's encoding space for "more
//! expressive locks" (§V-A); this library uses it: the 16-byte block
//! holds a reader count / writer sentinel in bits 63:0 and the writer
//! id in bits 127:64.
//!
//! ```text
//! state == 0          : free
//! state == u64::MAX   : write-locked (owner id in bits 127:64)
//! 0 < state < u64::MAX: `state` concurrent readers
//! ```
//!
//! | op | code | rqst | rsp | semantics |
//! |----|------|------|-----|-----------|
//! | `hmc_rdlock`   | CMC107 | 2 FLITs | WR_RS, 2 | acquire shared; returns 1/0 |
//! | `hmc_rdunlock` | CMC108 | 2 FLITs | WR_RS, 2 | release shared; returns 1/0 |
//! | `hmc_wrlock`   | CMC109 | 2 FLITs | WR_RS, 2 | acquire exclusive; returns 1/0 |
//! | `hmc_wrunlock` | CMC110 | 2 FLITs | WR_RS, 2 | release exclusive (owner only) |

use crate::op::{CmcContext, CmcOp, CmcRegistration, CmcResult};
use hmc_types::{HmcError, HmcResponse};

/// Command code of [`RdLock`].
pub const RDLOCK_CMD: u8 = 107;
/// Command code of [`RdUnlock`].
pub const RDUNLOCK_CMD: u8 = 108;
/// Command code of [`WrLock`].
pub const WRLOCK_CMD: u8 = 109;
/// Command code of [`WrUnlock`].
pub const WRUNLOCK_CMD: u8 = 110;

/// The write-locked sentinel in the state word.
pub const WRITE_LOCKED: u64 = u64::MAX;

fn check(ctx: &CmcContext<'_>) -> Result<u64, HmcError> {
    if !ctx.addr.is_multiple_of(16) {
        return Err(HmcError::UnalignedAddress { addr: ctx.addr, align: 16 });
    }
    ctx.rqst_payload
        .first()
        .copied()
        .ok_or_else(|| HmcError::MalformedPacket("rwlock request missing TID payload".into()))
}

fn reply(ctx: &mut CmcContext<'_>, ok: bool) -> CmcResult {
    ctx.rsp_payload[0] = ok as u64;
    ctx.rsp_payload[1] = 0;
    CmcResult { af: ok }
}

/// `hmc_rdlock` — CMC107: acquire the lock shared. Succeeds unless a
/// writer holds it (readers never starve writers out of *acquiring*
/// here; fairness policies belong to the host).
pub struct RdLock;

impl CmcOp for RdLock {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_rdlock", RDLOCK_CMD, 2, 2, HmcResponse::WrRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        check(ctx)?;
        let state = ctx.mem.read_u64(ctx.addr)?;
        let ok = state != WRITE_LOCKED && state != WRITE_LOCKED - 1;
        if ok {
            ctx.mem.write_u64(ctx.addr, state + 1)?;
        }
        Ok(reply(ctx, ok))
    }

    fn name(&self) -> &str {
        "hmc_rdlock"
    }
}

/// `hmc_rdunlock` — CMC108: release a shared hold.
pub struct RdUnlock;

impl CmcOp for RdUnlock {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_rdunlock", RDUNLOCK_CMD, 2, 2, HmcResponse::WrRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        check(ctx)?;
        let state = ctx.mem.read_u64(ctx.addr)?;
        let ok = state > 0 && state != WRITE_LOCKED;
        if ok {
            ctx.mem.write_u64(ctx.addr, state - 1)?;
        }
        Ok(reply(ctx, ok))
    }

    fn name(&self) -> &str {
        "hmc_rdunlock"
    }
}

/// `hmc_wrlock` — CMC109: acquire the lock exclusive; records the
/// caller's id as the owner.
pub struct WrLock;

impl CmcOp for WrLock {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_wrlock", WRLOCK_CMD, 2, 2, HmcResponse::WrRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        let tid = check(ctx)?;
        let state = ctx.mem.read_u64(ctx.addr)?;
        let ok = state == 0;
        if ok {
            ctx.mem.write_u64(ctx.addr + 8, tid)?;
            ctx.mem.write_u64(ctx.addr, WRITE_LOCKED)?;
        }
        Ok(reply(ctx, ok))
    }

    fn name(&self) -> &str {
        "hmc_wrlock"
    }
}

/// `hmc_wrunlock` — CMC110: release the exclusive hold; only the
/// recorded owner may release.
pub struct WrUnlock;

impl CmcOp for WrUnlock {
    fn register(&self) -> CmcRegistration {
        CmcRegistration::new("hmc_wrunlock", WRUNLOCK_CMD, 2, 2, HmcResponse::WrRs)
    }

    fn execute(&self, ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        let tid = check(ctx)?;
        let state = ctx.mem.read_u64(ctx.addr)?;
        let owner = ctx.mem.read_u64(ctx.addr + 8)?;
        let ok = state == WRITE_LOCKED && owner == tid;
        if ok {
            ctx.mem.write_u64(ctx.addr, 0)?;
        }
        Ok(reply(ctx, ok))
    }

    fn name(&self) -> &str {
        "hmc_wrunlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mem::SparseMemory;

    fn exec(op: &dyn CmcOp, mem: &mut SparseMemory, tid: u64) -> (u64, bool) {
        let rqst = [tid, 0];
        let mut rsp = [0u64; 2];
        let mut ctx = CmcContext {
            dev: 0,
            quad: 0,
            vault: 0,
            bank: 0,
            addr: 0x40,
            length: 2,
            head: 0,
            tail: 0,
            cycle: 0,
            rqst_payload: &rqst,
            rsp_payload: &mut rsp,
            mem,
        };
        let r = op.execute(&mut ctx).unwrap();
        (rsp[0], r.af)
    }

    #[test]
    fn registrations_are_valid_and_distinct() {
        let ops: [&dyn CmcOp; 4] = [&RdLock, &RdUnlock, &WrLock, &WrUnlock];
        let mut codes = std::collections::HashSet::new();
        for op in ops {
            let reg = op.register();
            reg.validate().unwrap();
            assert!(codes.insert(reg.cmd));
        }
    }

    #[test]
    fn multiple_readers_share() {
        let mut mem = SparseMemory::new(1 << 16);
        assert_eq!(exec(&RdLock, &mut mem, 1).0, 1);
        assert_eq!(exec(&RdLock, &mut mem, 2).0, 1);
        assert_eq!(exec(&RdLock, &mut mem, 3).0, 1);
        assert_eq!(mem.read_u64(0x40).unwrap(), 3);
        // A writer cannot enter while readers hold the lock.
        assert_eq!(exec(&WrLock, &mut mem, 9).0, 0);
    }

    #[test]
    fn writer_excludes_everyone() {
        let mut mem = SparseMemory::new(1 << 16);
        assert_eq!(exec(&WrLock, &mut mem, 7).0, 1);
        assert_eq!(mem.read_u64(0x40).unwrap(), WRITE_LOCKED);
        assert_eq!(mem.read_u64(0x48).unwrap(), 7);
        assert_eq!(exec(&RdLock, &mut mem, 1).0, 0);
        assert_eq!(exec(&WrLock, &mut mem, 8).0, 0);
    }

    #[test]
    fn reader_release_cycle() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&RdLock, &mut mem, 1);
        exec(&RdLock, &mut mem, 2);
        assert_eq!(exec(&RdUnlock, &mut mem, 1).0, 1);
        assert_eq!(mem.read_u64(0x40).unwrap(), 1);
        assert_eq!(exec(&RdUnlock, &mut mem, 2).0, 1);
        // The lock is free again: a writer may enter.
        assert_eq!(exec(&WrLock, &mut mem, 9).0, 1);
    }

    #[test]
    fn rdunlock_of_free_or_writelocked_fails() {
        let mut mem = SparseMemory::new(1 << 16);
        assert_eq!(exec(&RdUnlock, &mut mem, 1).0, 0, "free lock");
        exec(&WrLock, &mut mem, 7);
        assert_eq!(exec(&RdUnlock, &mut mem, 1).0, 0, "write-locked");
    }

    #[test]
    fn wrunlock_requires_ownership() {
        let mut mem = SparseMemory::new(1 << 16);
        exec(&WrLock, &mut mem, 7);
        assert_eq!(exec(&WrUnlock, &mut mem, 8).0, 0, "non-owner");
        assert_eq!(exec(&WrUnlock, &mut mem, 7).0, 1);
        assert_eq!(mem.read_u64(0x40).unwrap(), 0);
        assert_eq!(exec(&WrUnlock, &mut mem, 7).0, 0, "already free");
    }

    #[test]
    fn reader_count_saturation_guard() {
        // One below the sentinel must not increment into WRITE_LOCKED.
        let mut mem = SparseMemory::new(1 << 16);
        mem.write_u64(0x40, WRITE_LOCKED - 1).unwrap();
        assert_eq!(exec(&RdLock, &mut mem, 1).0, 0);
        assert_eq!(mem.read_u64(0x40).unwrap(), WRITE_LOCKED - 1);
    }
}
