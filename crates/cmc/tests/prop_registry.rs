//! Property tests for the CMC registry and registration validation.

use hmc_cmc::{CmcContext, CmcOp, CmcRegistration, CmcRegistry, CmcResult};
use hmc_types::{HmcError, HmcResponse, HmcRqst};
use proptest::prelude::*;

/// A configurable do-nothing operation.
struct Cfg {
    reg: CmcRegistration,
}

impl CmcOp for Cfg {
    fn register(&self) -> CmcRegistration {
        self.reg.clone()
    }
    fn execute(&self, _ctx: &mut CmcContext<'_>) -> Result<CmcResult, HmcError> {
        Ok(CmcResult::default())
    }
    fn name(&self) -> &str {
        &self.reg.op_name
    }
}

fn free_codes() -> Vec<u8> {
    HmcRqst::cmc_codes().collect()
}

fn pick_rsp(rsp_len: u8, seed: u64) -> HmcResponse {
    if rsp_len == 0 {
        HmcResponse::RspNone
    } else {
        match seed % 3 {
            0 => HmcResponse::RdRs,
            1 => HmcResponse::WrRs,
            _ => HmcResponse::RspCmc((seed % 255 + 1) as u8),
        }
    }
}

proptest! {
    /// Any registration on a free code with in-range lengths and a
    /// consistent response class validates; registry registration
    /// succeeds and the slot becomes active.
    #[test]
    fn wellformed_registrations_always_register(
        code in prop::sample::select(free_codes()),
        rqst_len in 1u8..=17,
        rsp_len in 0u8..=17,
        seed in any::<u64>(),
    ) {
        let rsp_cmd = pick_rsp(rsp_len, seed);
        let reg = CmcRegistration::new("prop_op", code, rqst_len, rsp_len, rsp_cmd);
        prop_assert!(reg.validate().is_ok(), "reg {:?}", reg);
        let mut registry = CmcRegistry::new();
        prop_assert_eq!(registry.register(Box::new(Cfg { reg })).unwrap(), code);
        prop_assert!(registry.is_active(code));
        let dup = registry.register(Box::new(Cfg {
            reg: CmcRegistration::new("dup", code, 1, 1, HmcResponse::WrRs),
        }));
        prop_assert!(matches!(dup, Err(HmcError::CmcSlotBusy(_))));
    }

    /// Reserved (standard) codes are always rejected.
    #[test]
    fn reserved_codes_always_rejected(
        cmd in prop::sample::select(HmcRqst::STANDARD.to_vec()),
    ) {
        let reg = CmcRegistration::new("bad", cmd.code(), 2, 2, HmcResponse::WrRs);
        prop_assert!(matches!(reg.validate(), Err(HmcError::CmcCodeReserved(_))));
    }

    /// Out-of-range lengths are always rejected.
    #[test]
    fn bad_lengths_always_rejected(
        code in prop::sample::select(free_codes()),
        rqst_len in 18u8..=31,
        rsp_len in 18u8..=31,
    ) {
        let r = CmcRegistration::new("bad", code, rqst_len, 2, HmcResponse::WrRs);
        prop_assert!(r.validate().is_err());
        let r = CmcRegistration::new("bad", code, 2, rsp_len, HmcResponse::WrRs);
        prop_assert!(r.validate().is_err());
        let r = CmcRegistration::new("bad", code, 0, 2, HmcResponse::WrRs);
        prop_assert!(r.validate().is_err());
    }

    /// Random register/unregister sequences keep the registry's
    /// active-count bookkeeping exact.
    #[test]
    fn registry_bookkeeping_is_exact(
        ops in prop::collection::vec((prop::sample::select(free_codes()), any::<bool>()), 0..128),
    ) {
        let mut registry = CmcRegistry::new();
        let mut model = std::collections::HashSet::new();
        for (code, register) in ops {
            if register {
                let reg = CmcRegistration::new("op", code, 1, 1, HmcResponse::WrRs);
                match registry.register(Box::new(Cfg { reg })) {
                    Ok(c) => {
                        prop_assert_eq!(c, code);
                        prop_assert!(model.insert(code), "registered into a busy slot");
                    }
                    Err(HmcError::CmcSlotBusy(_)) => prop_assert!(model.contains(&code)),
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            } else {
                match registry.unregister(code) {
                    Ok(()) => prop_assert!(model.remove(&code), "unregistered a free slot"),
                    Err(HmcError::CmcNotActive(_)) => prop_assert!(!model.contains(&code)),
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
            prop_assert_eq!(registry.active_count(), model.len());
        }
        let active: std::collections::HashSet<u8> =
            registry.active().map(|r| r.cmd).collect();
        prop_assert_eq!(active, model);
    }
}
