//! FLIT geometry.
//!
//! The HMC link protocol moves data in *FLITs* (flow units) of 128 bits.
//! Every packet is an integral number of FLITs; the first FLIT carries
//! the 64-bit packet header in its low half and the last FLIT carries
//! the 64-bit packet tail in its high half. A one-FLIT packet is just
//! `header | tail`.

/// Width of one FLIT in bits.
pub const FLIT_BITS: usize = 128;

/// Width of one FLIT in bytes (16).
pub const FLIT_BYTES: usize = FLIT_BITS / 8;

/// Number of 64-bit words per FLIT (2).
pub const FLIT_WORDS: usize = FLIT_BITS / 64;

/// Maximum packet length in FLITs.
///
/// A 256-byte write carries 16 data FLITs plus the header/tail FLIT,
/// so the longest legal Gen2 packet is 17 FLITs.
pub const MAX_PACKET_FLITS: usize = 17;

/// Maximum data payload in bytes (256) for Gen2 packets.
pub const MAX_DATA_BYTES: usize = 256;

/// One 128-bit FLIT, stored as two little-endian 64-bit words
/// (`words[0]` = bits 63:0, `words[1]` = bits 127:64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flit {
    /// The two 64-bit halves of the FLIT, least-significant first.
    pub words: [u64; FLIT_WORDS],
}

impl Flit {
    /// A FLIT of all-zero bits.
    pub const ZERO: Flit = Flit { words: [0; FLIT_WORDS] };

    /// Builds a FLIT from its low and high 64-bit words.
    #[inline]
    pub const fn new(lo: u64, hi: u64) -> Self {
        Flit { words: [lo, hi] }
    }

    /// The low 64 bits (bits 63:0).
    #[inline]
    pub const fn lo(&self) -> u64 {
        self.words[0]
    }

    /// The high 64 bits (bits 127:64).
    #[inline]
    pub const fn hi(&self) -> u64 {
        self.words[1]
    }

    /// Serializes the FLIT to 16 little-endian bytes.
    pub fn to_bytes(&self) -> [u8; FLIT_BYTES] {
        let mut out = [0u8; FLIT_BYTES];
        out[..8].copy_from_slice(&self.words[0].to_le_bytes());
        out[8..].copy_from_slice(&self.words[1].to_le_bytes());
        out
    }

    /// Deserializes a FLIT from 16 little-endian bytes.
    pub fn from_bytes(bytes: &[u8; FLIT_BYTES]) -> Self {
        let lo = u64::from_le_bytes(bytes[..8].try_into().expect("flit lo"));
        let hi = u64::from_le_bytes(bytes[8..].try_into().expect("flit hi"));
        Flit::new(lo, hi)
    }
}

/// Converts a data length in bytes to the number of *data* FLITs needed
/// to carry it (excluding the header/tail FLIT), rounding up.
#[inline]
pub const fn data_flits_for_bytes(bytes: usize) -> usize {
    bytes.div_ceil(FLIT_BYTES)
}

/// Total packet FLITs for a request carrying `bytes` of write data:
/// one header/tail FLIT plus the data FLITs.
#[inline]
pub const fn packet_flits_for_bytes(bytes: usize) -> usize {
    1 + data_flits_for_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_geometry_constants() {
        assert_eq!(FLIT_BITS, 128);
        assert_eq!(FLIT_BYTES, 16);
        assert_eq!(FLIT_WORDS, 2);
        assert_eq!(MAX_PACKET_FLITS, 17);
    }

    #[test]
    fn byte_round_trip() {
        let f = Flit::new(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        assert_eq!(Flit::from_bytes(&f.to_bytes()), f);
    }

    #[test]
    fn zero_flit_is_zero() {
        assert_eq!(Flit::ZERO.lo(), 0);
        assert_eq!(Flit::ZERO.hi(), 0);
        assert_eq!(Flit::ZERO.to_bytes(), [0u8; FLIT_BYTES]);
    }

    #[test]
    fn data_flit_math_matches_spec_examples() {
        // 16-byte request -> 1 data FLIT -> 2 total; 256-byte -> 16 -> 17.
        assert_eq!(data_flits_for_bytes(16), 1);
        assert_eq!(packet_flits_for_bytes(16), 2);
        assert_eq!(data_flits_for_bytes(128), 8);
        assert_eq!(packet_flits_for_bytes(128), 9);
        assert_eq!(data_flits_for_bytes(256), 16);
        assert_eq!(packet_flits_for_bytes(256), 17);
        assert_eq!(packet_flits_for_bytes(0), 1);
    }

    #[test]
    fn partial_flit_rounds_up() {
        assert_eq!(data_flits_for_bytes(1), 1);
        assert_eq!(data_flits_for_bytes(17), 2);
        assert_eq!(data_flits_for_bytes(255), 16);
    }
}
