//! # hmc-types
//!
//! Foundational types for the hmcsim-rs Hybrid Memory Cube (HMC) Gen2
//! simulator: FLIT geometry, the complete Gen2 request/response command
//! set (including the 70 Custom Memory Cube command slots), packet
//! head/tail encode/decode, CRC-32K link protection, tag allocation and
//! the common error type.
//!
//! The bit layouts follow the HMC 2.0/2.1 specification shape used by
//! HMC-Sim 2.0: 128-bit FLITs, a 64-bit request header carrying
//! `CMD[6:0] | LNG[11:7] | TAG[22:12] | ADRS[57:24] | CUB[63:61]` and a
//! 64-bit tail carrying retry pointers, sequence numbers, the source
//! link identifier and a CRC-32K over the packet body.
//!
//! ```
//! use hmc_types::{HmcRqst, ReqHead, Cub, Tag};
//!
//! let head = ReqHead::new(HmcRqst::Inc8, Tag::new(7).unwrap(), 0x4000, Cub::new(0).unwrap());
//! let raw = head.encode();
//! assert_eq!(ReqHead::decode(raw).unwrap(), head);
//! assert_eq!(head.cmd, HmcRqst::Inc8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cmd;
pub mod crc;
pub mod error;
pub mod flit;
pub mod packet;
pub mod payload;
pub mod rsp;
pub mod tag;

pub use cmd::{CmdInfo, CmdKind, HmcRqst, CMC_CODE_COUNT};
pub use crc::crc32k;
pub use error::HmcError;
pub use flit::{Flit, FLIT_BITS, FLIT_BYTES, FLIT_WORDS, MAX_PACKET_FLITS};
pub use packet::{Cub, ReqHead, ReqTail, Request, Response, RspHead, RspTail, Slid};
pub use payload::{PayloadBuf, PAYLOAD_INLINE_WORDS};
pub use rsp::HmcResponse;
pub use tag::{Tag, TagPool, TAG_BITS, TAG_SPACE};

/// Result alias used across all hmcsim-rs crates.
pub type Result<T> = std::result::Result<T, HmcError>;
