//! The HMC Gen2 response command set.
//!
//! Responses carry an 8-bit command field. Beyond the standard read,
//! write and mode responses, HMC-Sim 2.0 adds a single [`HmcResponse::RspCmc`]
//! class that lets a CMC library define an arbitrary non-standard
//! response command code (paper §IV-C1).

use crate::error::HmcError;

/// Response command code assigned to RD_RS by the Gen2 specification.
pub const RD_RS_CODE: u8 = 0x38;
/// Response command code assigned to WR_RS.
pub const WR_RS_CODE: u8 = 0x39;
/// Response command code assigned to MD_RD_RS.
pub const MD_RD_RS_CODE: u8 = 0x3A;
/// Response command code assigned to MD_WR_RS.
pub const MD_WR_RS_CODE: u8 = 0x3B;
/// Response command code assigned to ERROR responses.
pub const ERROR_CODE: u8 = 0x3E;

/// An HMC Gen2 response command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HmcResponse {
    /// Read response carrying data FLITs.
    RdRs,
    /// Write acknowledgement.
    WrRs,
    /// Mode (register) read response.
    MdRdRs,
    /// Mode (register) write acknowledgement.
    MdWrRs,
    /// Error response.
    Error,
    /// Custom response defined by a CMC library; carries the
    /// registered `rsp_cmd_code`.
    RspCmc(u8),
    /// No response (posted request). Never appears on the link; used
    /// internally to mark posted completions.
    #[default]
    RspNone,
}

impl HmcResponse {
    /// The 8-bit response command code carried in the packet header.
    ///
    /// [`HmcResponse::RspNone`] has no wire representation and returns 0.
    pub fn code(self) -> u8 {
        match self {
            HmcResponse::RdRs => RD_RS_CODE,
            HmcResponse::WrRs => WR_RS_CODE,
            HmcResponse::MdRdRs => MD_RD_RS_CODE,
            HmcResponse::MdWrRs => MD_WR_RS_CODE,
            HmcResponse::Error => ERROR_CODE,
            HmcResponse::RspCmc(code) => code,
            HmcResponse::RspNone => 0,
        }
    }

    /// Decodes an 8-bit response command code.
    ///
    /// Standard codes map to their variant; any other nonzero code is
    /// treated as a CMC-defined response. Code 0 is reserved (no
    /// packet) and is rejected.
    pub fn from_code(code: u8) -> Result<Self, HmcError> {
        Ok(match code {
            RD_RS_CODE => HmcResponse::RdRs,
            WR_RS_CODE => HmcResponse::WrRs,
            MD_RD_RS_CODE => HmcResponse::MdRdRs,
            MD_WR_RS_CODE => HmcResponse::MdWrRs,
            ERROR_CODE => HmcResponse::Error,
            0 => return Err(HmcError::InvalidResponseCode(0)),
            other => HmcResponse::RspCmc(other),
        })
    }

    /// Canonical mnemonic, as printed in trace files.
    pub fn mnemonic(self) -> String {
        match self {
            HmcResponse::RdRs => "RD_RS".into(),
            HmcResponse::WrRs => "WR_RS".into(),
            HmcResponse::MdRdRs => "MD_RD_RS".into(),
            HmcResponse::MdWrRs => "MD_WR_RS".into(),
            HmcResponse::Error => "ERROR".into(),
            HmcResponse::RspCmc(code) => format!("RSP_CMC[{code}]"),
            HmcResponse::RspNone => "RSP_NONE".into(),
        }
    }
}

impl std::fmt::Display for HmcResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_codes_round_trip() {
        for rsp in [
            HmcResponse::RdRs,
            HmcResponse::WrRs,
            HmcResponse::MdRdRs,
            HmcResponse::MdWrRs,
            HmcResponse::Error,
        ] {
            assert_eq!(HmcResponse::from_code(rsp.code()).unwrap(), rsp);
        }
    }

    #[test]
    fn cmc_codes_round_trip() {
        for code in [1u8, 0x37, 0x3C, 0x7F, 0xFF] {
            assert_eq!(
                HmcResponse::from_code(code).unwrap(),
                HmcResponse::RspCmc(code)
            );
        }
    }

    #[test]
    fn zero_code_rejected() {
        assert!(HmcResponse::from_code(0).is_err());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(HmcResponse::RdRs.mnemonic(), "RD_RS");
        assert_eq!(HmcResponse::RspCmc(0x42).mnemonic(), "RSP_CMC[66]");
        assert_eq!(format!("{}", HmcResponse::WrRs), "WR_RS");
    }
}
