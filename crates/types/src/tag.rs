//! Request tag allocation.
//!
//! Every non-posted request carries a tag that the host uses to match
//! the eventual response. The Gen2 header provides an 11-bit tag field,
//! so up to 2048 requests may be in flight per requester. [`TagPool`]
//! hands out tags in FIFO order and recycles them on response receipt,
//! mirroring the tag management in HMC-Sim host drivers.

use crate::error::HmcError;
use std::collections::VecDeque;

/// Width of the tag field in the request header.
pub const TAG_BITS: u32 = 11;

/// Number of distinct tags (2048).
pub const TAG_SPACE: u32 = 1 << TAG_BITS;

/// A validated request tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tag(u16);

impl Tag {
    /// Creates a tag, validating it against the 11-bit tag space.
    pub fn new(value: u32) -> Result<Self, HmcError> {
        if value < TAG_SPACE {
            Ok(Tag(value as u16))
        } else {
            Err(HmcError::InvalidTag(value))
        }
    }

    /// The raw tag value.
    #[inline]
    pub fn value(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// A FIFO pool of request tags.
///
/// ```
/// use hmc_types::TagPool;
/// let mut pool = TagPool::with_capacity(4);
/// let t0 = pool.acquire().unwrap();
/// let t1 = pool.acquire().unwrap();
/// assert_ne!(t0, t1);
/// pool.release(t0).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct TagPool {
    free: VecDeque<Tag>,
    in_flight: Vec<bool>,
    capacity: u32,
}

impl TagPool {
    /// A pool over the full 11-bit tag space.
    pub fn full() -> Self {
        Self::with_capacity(TAG_SPACE)
    }

    /// A pool restricted to tags `0..capacity` (capacity clamped to
    /// the tag space). Smaller pools model hosts with limited MSHRs.
    pub fn with_capacity(capacity: u32) -> Self {
        let capacity = capacity.min(TAG_SPACE);
        TagPool {
            free: (0..capacity).map(|v| Tag(v as u16)).collect(),
            in_flight: vec![false; capacity as usize],
            capacity,
        }
    }

    /// Acquires the next free tag, or [`HmcError::TagsExhausted`] when
    /// every tag is in flight.
    pub fn acquire(&mut self) -> Result<Tag, HmcError> {
        let tag = self.free.pop_front().ok_or(HmcError::TagsExhausted)?;
        self.in_flight[tag.0 as usize] = true;
        Ok(tag)
    }

    /// Returns a tag to the pool. Rejects tags that were not in flight
    /// (double release or foreign tag), which would otherwise corrupt
    /// response matching.
    pub fn release(&mut self, tag: Tag) -> Result<(), HmcError> {
        let idx = tag.0 as usize;
        if idx >= self.in_flight.len() || !self.in_flight[idx] {
            return Err(HmcError::InvalidTag(tag.0 as u32));
        }
        self.in_flight[idx] = false;
        self.free.push_back(tag);
        Ok(())
    }

    /// Number of tags currently in flight.
    pub fn in_flight(&self) -> usize {
        self.capacity as usize - self.free.len()
    }

    /// Number of tags available for acquisition.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// The pool's configured capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// True when `tag` is currently in flight (acquired and not yet
    /// released). Tags outside the pool's range are never live.
    pub fn is_live(&self, tag: Tag) -> bool {
        self.in_flight.get(tag.0 as usize).copied().unwrap_or(false)
    }

    /// The free list in FIFO order (front = next tag to be handed
    /// out). Checkpoint serialization must preserve this order — the
    /// in-flight map is derivable, the recycling order is not.
    pub fn free_tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.free.iter().copied()
    }

    /// Rebuilds a pool from a checkpointed capacity and ordered free
    /// list. The in-flight map is derived as the complement of `free`.
    /// Rejects out-of-range capacity, out-of-range tags and duplicate
    /// free entries with a description of the inconsistency.
    pub fn from_free_list(capacity: u32, free: Vec<Tag>) -> Result<Self, String> {
        if capacity > TAG_SPACE {
            return Err(format!("capacity {capacity} exceeds tag space {TAG_SPACE}"));
        }
        let mut in_flight = vec![true; capacity as usize];
        for tag in &free {
            let idx = tag.0 as usize;
            if idx >= capacity as usize {
                return Err(format!("free tag {} outside capacity {capacity}", tag.0));
            }
            if !in_flight[idx] {
                return Err(format!("tag {} duplicated on the free list", tag.0));
            }
            in_flight[idx] = false;
        }
        Ok(TagPool { free: free.into(), in_flight, capacity })
    }

    /// Checks the pool's internal consistency: the free list and the
    /// in-flight map must partition the capacity exactly, with no tag
    /// both free and marked in flight and no duplicate free entries.
    /// Returns a description of the first inconsistency found.
    pub fn audit(&self) -> Result<(), String> {
        let live = self.in_flight.iter().filter(|&&b| b).count();
        if self.free.len() + live != self.capacity as usize {
            return Err(format!(
                "free ({}) + live ({live}) != capacity ({})",
                self.free.len(),
                self.capacity
            ));
        }
        let mut seen = vec![false; self.capacity as usize];
        for tag in &self.free {
            let idx = tag.0 as usize;
            if idx >= self.capacity as usize {
                return Err(format!("free tag {} outside capacity {}", tag.0, self.capacity));
            }
            if self.in_flight[idx] {
                return Err(format!("tag {} is both free and in flight", tag.0));
            }
            if seen[idx] {
                return Err(format!("tag {} duplicated on the free list", tag.0));
            }
            seen[idx] = true;
        }
        Ok(())
    }
}

impl Default for TagPool {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_validation() {
        assert!(Tag::new(0).is_ok());
        assert!(Tag::new(TAG_SPACE - 1).is_ok());
        assert!(Tag::new(TAG_SPACE).is_err());
    }

    #[test]
    fn acquire_release_cycle() {
        let mut pool = TagPool::with_capacity(2);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.in_flight(), 2);
        assert!(pool.acquire().is_err());
        pool.release(a).unwrap();
        assert_eq!(pool.available(), 1);
        let c = pool.acquire().unwrap();
        assert_eq!(c, a, "FIFO recycling");
    }

    #[test]
    fn double_release_rejected() {
        let mut pool = TagPool::with_capacity(2);
        let a = pool.acquire().unwrap();
        pool.release(a).unwrap();
        assert!(pool.release(a).is_err());
    }

    #[test]
    fn foreign_tag_rejected() {
        let mut pool = TagPool::with_capacity(2);
        assert!(pool.release(Tag(7)).is_err());
    }

    #[test]
    fn full_pool_spans_tag_space() {
        let mut pool = TagPool::full();
        assert_eq!(pool.available(), TAG_SPACE as usize);
        let t = pool.acquire().unwrap();
        assert_eq!(t.value(), 0);
    }

    #[test]
    fn introspection_tracks_liveness() {
        let mut pool = TagPool::with_capacity(3);
        assert_eq!(pool.capacity(), 3);
        let a = pool.acquire().unwrap();
        assert!(pool.is_live(a));
        assert!(!pool.is_live(Tag(2)));
        assert!(!pool.is_live(Tag(100)), "out-of-range tag is never live");
        pool.release(a).unwrap();
        assert!(!pool.is_live(a));
    }

    #[test]
    fn audit_accepts_consistent_pools() {
        let mut pool = TagPool::with_capacity(8);
        pool.audit().unwrap();
        let a = pool.acquire().unwrap();
        let _ = pool.acquire().unwrap();
        pool.audit().unwrap();
        pool.release(a).unwrap();
        pool.audit().unwrap();
    }

    #[test]
    fn audit_detects_corruption() {
        let mut pool = TagPool::with_capacity(4);
        let a = pool.acquire().unwrap();
        // Simulate a double-add of a live tag onto the free list.
        pool.free.push_back(a);
        let err = pool.audit().unwrap_err();
        assert!(err.contains("!= capacity"), "got: {err}");

        // A tag marked in flight while still on the free list.
        let mut pool = TagPool::with_capacity(4);
        let _ = pool.acquire().unwrap();
        pool.in_flight[0] = false;
        pool.in_flight[1] = true;
        let err = pool.audit().unwrap_err();
        assert!(err.contains("free and in flight"), "got: {err}");
    }
}
