//! The common error type for hmcsim-rs.

use std::fmt;

/// Errors surfaced by the simulator and its substrates.
///
/// Mirrors the negative return codes of the C HMC-Sim API
/// (`HMC_STALL`, `HMC_ERROR`, ...) as a structured enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HmcError {
    /// A queue (link, crossbar or vault) was full; the caller must
    /// retry on a later cycle. Equivalent to C `HMC_STALL`.
    Stall,
    /// A command code outside the 7-bit space.
    InvalidCommandCode(u8),
    /// A response command code with no wire meaning.
    InvalidResponseCode(u8),
    /// A request size with no matching Gen2 command.
    InvalidRequestSize(usize),
    /// A packet length field outside 1..=17 FLITs.
    InvalidPacketLength(usize),
    /// A tag outside the tag space.
    InvalidTag(u32),
    /// The tag pool is exhausted (all tags in flight).
    TagsExhausted,
    /// A cube (device) id outside the configured topology.
    InvalidCube(u8),
    /// A link id outside the device configuration.
    InvalidLink(usize),
    /// A device id outside the simulation context.
    InvalidDevice(usize),
    /// An address beyond the device capacity.
    AddressOutOfRange(u64),
    /// An unaligned address for a command requiring alignment.
    UnalignedAddress {
        /// The offending address.
        addr: u64,
        /// The required alignment in bytes.
        align: u64,
    },
    /// CRC mismatch while decoding a packet.
    CrcMismatch {
        /// CRC carried in the packet tail.
        expected: u32,
        /// CRC recomputed over the packet.
        computed: u32,
    },
    /// A CMC command code that has no registered (active) operation.
    /// Equivalent to HMC-Sim's "command not marked active" error.
    CmcNotActive(u8),
    /// Attempt to register a CMC operation on a code already in use.
    CmcSlotBusy(u8),
    /// Attempt to register a CMC operation on a standard command code.
    CmcCodeReserved(u8),
    /// A CMC registration with inconsistent metadata (e.g. lengths
    /// out of range, enum/code mismatch).
    CmcBadRegistration(String),
    /// A simulated CMC shared library could not be found by name.
    CmcLibraryNotFound(String),
    /// A simulated CMC shared library is missing a required symbol.
    CmcSymbolMissing {
        /// Library name.
        library: String,
        /// Missing symbol name.
        symbol: String,
    },
    /// The simulation context was used before initialization or after
    /// shutdown.
    NotInitialized,
    /// A device register that does not exist.
    InvalidRegister(u32),
    /// The target link is down (fault-plan schedule); retry on a
    /// surviving link or after the scheduled link-up.
    LinkDown(usize),
    /// Malformed packet contents (payload/declared-length mismatch...).
    MalformedPacket(String),
    /// Trace subsystem I/O failure.
    TraceIo(String),
}

impl fmt::Display for HmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmcError::Stall => write!(f, "queue full: request stalled (HMC_STALL)"),
            HmcError::InvalidCommandCode(c) => write!(f, "invalid 7-bit command code {c:#x}"),
            HmcError::InvalidResponseCode(c) => write!(f, "invalid response command code {c:#x}"),
            HmcError::InvalidRequestSize(s) => write!(f, "no Gen2 command for request size {s} bytes"),
            HmcError::InvalidPacketLength(l) => write!(f, "packet length {l} FLITs outside 1..=17"),
            HmcError::InvalidTag(t) => write!(f, "tag {t} outside tag space"),
            HmcError::TagsExhausted => write!(f, "tag pool exhausted: too many requests in flight"),
            HmcError::InvalidCube(c) => write!(f, "cube id {c} outside topology"),
            HmcError::InvalidLink(l) => write!(f, "link id {l} outside device configuration"),
            HmcError::InvalidDevice(d) => write!(f, "device id {d} outside simulation context"),
            HmcError::AddressOutOfRange(a) => write!(f, "address {a:#x} beyond device capacity"),
            HmcError::UnalignedAddress { addr, align } => {
                write!(f, "address {addr:#x} not aligned to {align} bytes")
            }
            HmcError::CrcMismatch { expected, computed } => {
                write!(f, "CRC mismatch: packet carries {expected:#010x}, computed {computed:#010x}")
            }
            HmcError::CmcNotActive(c) => write!(f, "CMC command code {c} not active (no operation loaded)"),
            HmcError::CmcSlotBusy(c) => write!(f, "CMC command code {c} already registered"),
            HmcError::CmcCodeReserved(c) => {
                write!(f, "command code {c} is reserved by the Gen2 specification")
            }
            HmcError::CmcBadRegistration(why) => write!(f, "invalid CMC registration: {why}"),
            HmcError::CmcLibraryNotFound(path) => {
                write!(f, "CMC library '{path}' not found (dlopen failed)")
            }
            HmcError::CmcSymbolMissing { library, symbol } => {
                write!(f, "CMC library '{library}' missing symbol '{symbol}' (dlsym failed)")
            }
            HmcError::NotInitialized => write!(f, "simulation context not initialized"),
            HmcError::InvalidRegister(r) => write!(f, "no device register at {r:#x}"),
            HmcError::LinkDown(l) => write!(f, "link {l} is down"),
            HmcError::MalformedPacket(why) => write!(f, "malformed packet: {why}"),
            HmcError::TraceIo(why) => write!(f, "trace I/O failure: {why}"),
        }
    }
}

impl std::error::Error for HmcError {}

impl HmcError {
    /// True when the error is a transient stall the caller should
    /// retry rather than a hard failure.
    #[inline]
    pub fn is_stall(&self) -> bool {
        matches!(self, HmcError::Stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_is_transient() {
        assert!(HmcError::Stall.is_stall());
        assert!(!HmcError::TagsExhausted.is_stall());
    }

    #[test]
    fn display_is_informative() {
        let msg = HmcError::CmcSymbolMissing {
            library: "libhmc_mutex.so".into(),
            symbol: "hmcsim_execute_cmc".into(),
        }
        .to_string();
        assert!(msg.contains("libhmc_mutex.so"));
        assert!(msg.contains("hmcsim_execute_cmc"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(HmcError::Stall);
        assert!(e.to_string().contains("STALL"));
    }
}
