//! Gen2 request and response packets.
//!
//! A packet is 1..=17 FLITs. The first FLIT's low 64 bits carry the
//! packet *header* and the last FLIT's high 64 bits carry the packet
//! *tail*; everything between is data payload. A one-FLIT packet is
//! just `header | tail`. An `n`-FLIT packet therefore carries
//! `2n - 2` payload words (16(n-1) bytes).
//!
//! ## Request header layout (64 bits)
//!
//! | bits    | field | meaning                         |
//! |---------|-------|---------------------------------|
//! | 6:0     | CMD   | 7-bit command code              |
//! | 11:7    | LNG   | packet length in FLITs (1..=17) |
//! | 22:12   | TAG   | 11-bit request tag              |
//! | 57:24   | ADRS  | 34-bit byte address             |
//! | 59:58   | —     | reserved                        |
//! | 60      | CUB[3]| cube id bit 3 (fabric extension)|
//! | 63:61   | CUB   | cube (device) id bits 2:0       |
//!
//! The spec's CUB field is 3 bits ([63:61]); this simulator extends it
//! with one formerly-reserved bit (60, in both the request and the
//! response header) so fabrics of up to 16 cubes stay addressable.
//! Packets addressing cubes 0..=7 are bit-identical to the spec
//! layout.
//!
//! ## Request tail layout (64 bits)
//!
//! | bits    | field | meaning                          |
//! |---------|-------|----------------------------------|
//! | 7:0     | RRP   | return retry pointer             |
//! | 15:8    | FRP   | forward retry pointer            |
//! | 18:16   | SEQ   | 3-bit sequence number            |
//! | 19      | Pb    | poison bit                       |
//! | 22:20   | SLID  | source link id                   |
//! | 26:23   | —     | reserved                         |
//! | 31:27   | RTC   | return token count               |
//! | 63:32   | CRC   | CRC-32K over the packet          |
//!
//! Response header: `CMD[7:0]` (8-bit — see paper §IV-C1),
//! `LNG[12:8]`, `TAG[23:13]`, `AF[24]`, `SLID[34:32]`, `CUB[63:61]`
//! with the same `CUB[3]` extension at bit 60.
//! Response tail mirrors the request tail with `DINV[19]` and
//! `ERRSTAT[26:20]` in place of Pb/SLID.

use crate::cmd::HmcRqst;
use crate::crc::packet_crc_with_tail;
use crate::error::HmcError;
use crate::flit::{Flit, MAX_PACKET_FLITS};
use crate::payload::PayloadBuf;
use crate::rsp::HmcResponse;
use crate::tag::Tag;

/// A validated cube (device) identifier.
///
/// The HMC spec's CUB field is 3 bits; the simulator's fabric
/// extension widens it to 4 (see the header-layout note above), so
/// valid cube ids are `0..=15`. Ids `0..=7` encode exactly as the
/// spec lays them out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Cub(u8);

impl Cub {
    /// Number of addressable cubes (4-bit extended CUB field).
    pub const MAX_CUBES: usize = 16;

    /// Creates a cube id, validating the 4-bit range.
    pub fn new(value: u8) -> Result<Self, HmcError> {
        if (value as usize) < Self::MAX_CUBES {
            Ok(Cub(value))
        } else {
            Err(HmcError::InvalidCube(value))
        }
    }

    /// The raw cube id.
    #[inline]
    pub fn value(self) -> u8 {
        self.0
    }
}

/// A validated 3-bit source link identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Slid(u8);

impl Slid {
    /// Creates a source link id, validating the 3-bit range.
    pub fn new(value: u8) -> Result<Self, HmcError> {
        if value < 8 {
            Ok(Slid(value))
        } else {
            Err(HmcError::InvalidLink(value as usize))
        }
    }

    /// The raw link id.
    #[inline]
    pub fn value(self) -> u8 {
        self.0
    }
}

/// Maximum byte address representable in the 34-bit ADRS field.
pub const MAX_ADDR: u64 = (1 << 34) - 1;

#[inline]
fn field(word: u64, lo: u32, bits: u32) -> u64 {
    (word >> lo) & ((1u64 << bits) - 1)
}

#[inline]
fn place(value: u64, lo: u32, bits: u32) -> u64 {
    debug_assert!(value < (1u64 << bits), "field value {value} overflows {bits} bits");
    (value & ((1u64 << bits) - 1)) << lo
}

/// A decoded request packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqHead {
    /// The request command.
    pub cmd: HmcRqst,
    /// Total packet length in FLITs (1..=17).
    pub lng: u8,
    /// Request tag (ignored on the wire for posted commands, but
    /// carried anyway as the spec does).
    pub tag: Tag,
    /// Target byte address (34 bits).
    pub addr: u64,
    /// Target cube.
    pub cub: Cub,
}

impl ReqHead {
    /// Builds a header for a standard command, deriving LNG from the
    /// command's fixed metadata. For CMC commands use
    /// [`ReqHead::new_cmc`], which takes the registered length.
    pub fn new(cmd: HmcRqst, tag: Tag, addr: u64, cub: Cub) -> Self {
        let lng = cmd.fixed_info().map_or(1, |i| i.rqst_flits);
        ReqHead { cmd, lng, tag, addr, cub }
    }

    /// Builds a header for a CMC command with an explicit FLIT length
    /// (as registered by the CMC library).
    pub fn new_cmc(code: u8, lng: u8, tag: Tag, addr: u64, cub: Cub) -> Self {
        ReqHead { cmd: HmcRqst::Cmc(code), lng, tag, addr, cub }
    }

    /// Encodes the header to its 64-bit wire form. CUB bits 2:0 land
    /// in the spec position [63:61]; CUB[3] in the reserved bit 60.
    pub fn encode(&self) -> u64 {
        place(self.cmd.code() as u64, 0, 7)
            | place(self.lng as u64, 7, 5)
            | place(self.tag.value() as u64, 12, 11)
            | place(self.addr & MAX_ADDR, 24, 34)
            | place((self.cub.value() >> 3) as u64, 60, 1)
            | place((self.cub.value() & 0x7) as u64, 61, 3)
    }

    /// Decodes a 64-bit wire header.
    pub fn decode(raw: u64) -> Result<Self, HmcError> {
        let cmd = HmcRqst::from_code(field(raw, 0, 7) as u8)?;
        let lng = field(raw, 7, 5) as u8;
        if lng == 0 || lng as usize > MAX_PACKET_FLITS {
            return Err(HmcError::InvalidPacketLength(lng as usize));
        }
        Ok(ReqHead {
            cmd,
            lng,
            tag: Tag::new(field(raw, 12, 11) as u32)?,
            addr: field(raw, 24, 34),
            cub: Cub::new((field(raw, 61, 3) | (field(raw, 60, 1) << 3)) as u8)?,
        })
    }
}

/// A decoded request packet tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReqTail {
    /// Return retry pointer.
    pub rrp: u8,
    /// Forward retry pointer.
    pub frp: u8,
    /// 3-bit sequence number.
    pub seq: u8,
    /// Poison bit.
    pub pb: bool,
    /// Source link id (which host link the request entered on).
    pub slid: Slid,
    /// 5-bit return token count.
    pub rtc: u8,
    /// CRC-32K over the packet (filled by [`Request::pack`]).
    pub crc: u32,
}

impl ReqTail {
    /// Encodes the tail to its 64-bit wire form.
    pub fn encode(&self) -> u64 {
        place(self.rrp as u64, 0, 8)
            | place(self.frp as u64, 8, 8)
            | place((self.seq & 0x7) as u64, 16, 3)
            | place(self.pb as u64, 19, 1)
            | place(self.slid.value() as u64, 20, 3)
            | place((self.rtc & 0x1F) as u64, 27, 5)
            | place(self.crc as u64, 32, 32)
    }

    /// Decodes a 64-bit wire tail.
    pub fn decode(raw: u64) -> Result<Self, HmcError> {
        Ok(ReqTail {
            rrp: field(raw, 0, 8) as u8,
            frp: field(raw, 8, 8) as u8,
            seq: field(raw, 16, 3) as u8,
            pb: field(raw, 19, 1) != 0,
            slid: Slid::new(field(raw, 20, 3) as u8)?,
            rtc: field(raw, 27, 5) as u8,
            crc: field(raw, 32, 32) as u32,
        })
    }
}

/// A decoded response packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RspHead {
    /// The response command (8-bit space; CMC libraries may define
    /// custom codes via [`HmcResponse::RspCmc`]).
    pub cmd: HmcResponse,
    /// Total packet length in FLITs (1..=17).
    pub lng: u8,
    /// Tag echoed from the originating request.
    pub tag: Tag,
    /// Atomic-flag bit (set by comparison atomics that report
    /// success/failure, e.g. EQ8/EQ16).
    pub af: bool,
    /// Link the response is returned on.
    pub slid: Slid,
    /// Originating cube.
    pub cub: Cub,
}

impl RspHead {
    /// Encodes the header to its 64-bit wire form. CUB bits 2:0 land
    /// in the spec position [63:61]; CUB[3] in the reserved bit 60.
    pub fn encode(&self) -> u64 {
        place(self.cmd.code() as u64, 0, 8)
            | place(self.lng as u64, 8, 5)
            | place(self.tag.value() as u64, 13, 11)
            | place(self.af as u64, 24, 1)
            | place(self.slid.value() as u64, 32, 3)
            | place((self.cub.value() >> 3) as u64, 60, 1)
            | place((self.cub.value() & 0x7) as u64, 61, 3)
    }

    /// Decodes a 64-bit wire header.
    pub fn decode(raw: u64) -> Result<Self, HmcError> {
        let lng = field(raw, 8, 5) as u8;
        if lng == 0 || lng as usize > MAX_PACKET_FLITS {
            return Err(HmcError::InvalidPacketLength(lng as usize));
        }
        Ok(RspHead {
            cmd: HmcResponse::from_code(field(raw, 0, 8) as u8)?,
            lng,
            tag: Tag::new(field(raw, 13, 11) as u32)?,
            af: field(raw, 24, 1) != 0,
            slid: Slid::new(field(raw, 32, 3) as u8)?,
            cub: Cub::new((field(raw, 61, 3) | (field(raw, 60, 1) << 3)) as u8)?,
        })
    }
}

/// A decoded response packet tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RspTail {
    /// Return retry pointer.
    pub rrp: u8,
    /// Forward retry pointer.
    pub frp: u8,
    /// 3-bit sequence number.
    pub seq: u8,
    /// Data-invalid bit.
    pub dinv: bool,
    /// 7-bit error status.
    pub errstat: u8,
    /// 5-bit return token count.
    pub rtc: u8,
    /// CRC-32K over the packet (filled by [`Response::pack`]).
    pub crc: u32,
}

impl RspTail {
    /// Encodes the tail to its 64-bit wire form.
    pub fn encode(&self) -> u64 {
        place(self.rrp as u64, 0, 8)
            | place(self.frp as u64, 8, 8)
            | place((self.seq & 0x7) as u64, 16, 3)
            | place(self.dinv as u64, 19, 1)
            | place((self.errstat & 0x7F) as u64, 20, 7)
            | place((self.rtc & 0x1F) as u64, 27, 5)
            | place(self.crc as u64, 32, 32)
    }

    /// Decodes a 64-bit wire tail.
    pub fn decode(raw: u64) -> Self {
        RspTail {
            rrp: field(raw, 0, 8) as u8,
            frp: field(raw, 8, 8) as u8,
            seq: field(raw, 16, 3) as u8,
            dinv: field(raw, 19, 1) != 0,
            errstat: field(raw, 20, 7) as u8,
            rtc: field(raw, 27, 5) as u8,
            crc: field(raw, 32, 32) as u32,
        }
    }
}

/// Number of payload words an `lng`-FLIT packet carries.
#[inline]
pub const fn payload_words(lng: u8) -> usize {
    2 * (lng as usize) - 2
}

/// A complete request packet: header, payload words and tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Packet header.
    pub head: ReqHead,
    /// Data payload (`2*lng - 2` 64-bit words), stored inline up to
    /// 16 words.
    pub payload: PayloadBuf,
    /// Packet tail.
    pub tail: ReqTail,
}

impl Request {
    /// Builds a request for a standard command, validating that the
    /// payload length matches the command's fixed FLIT count.
    pub fn new(
        cmd: HmcRqst,
        tag: Tag,
        addr: u64,
        cub: Cub,
        payload: impl Into<PayloadBuf>,
    ) -> Result<Self, HmcError> {
        let payload = payload.into();
        let info = cmd
            .fixed_info()
            .ok_or_else(|| HmcError::MalformedPacket("use Request::new_cmc for CMC commands".into()))?;
        let expect = payload_words(info.rqst_flits);
        if payload.len() != expect {
            return Err(HmcError::MalformedPacket(format!(
                "{cmd} expects {expect} payload words, got {}",
                payload.len()
            )));
        }
        if addr > MAX_ADDR {
            return Err(HmcError::AddressOutOfRange(addr));
        }
        Ok(Request {
            head: ReqHead::new(cmd, tag, addr, cub),
            payload,
            tail: ReqTail::default(),
        })
    }

    /// Builds a CMC request with an explicit registered FLIT length.
    pub fn new_cmc(
        code: u8,
        lng: u8,
        tag: Tag,
        addr: u64,
        cub: Cub,
        payload: impl Into<PayloadBuf>,
    ) -> Result<Self, HmcError> {
        let payload = payload.into();
        if lng == 0 || lng as usize > MAX_PACKET_FLITS {
            return Err(HmcError::InvalidPacketLength(lng as usize));
        }
        let expect = payload_words(lng);
        if payload.len() != expect {
            return Err(HmcError::MalformedPacket(format!(
                "CMC{code} with LNG={lng} expects {expect} payload words, got {}",
                payload.len()
            )));
        }
        if addr > MAX_ADDR {
            return Err(HmcError::AddressOutOfRange(addr));
        }
        Ok(Request {
            head: ReqHead::new_cmc(code, lng, tag, addr, cub),
            payload,
            tail: ReqTail::default(),
        })
    }

    /// Total packet length in FLITs.
    #[inline]
    pub fn flits(&self) -> u8 {
        self.head.lng
    }

    /// Serializes the packet to FLITs, computing and embedding the CRC.
    pub fn pack(&self) -> Vec<Flit> {
        let mut out = [Flit::ZERO; MAX_PACKET_FLITS];
        let n = self.pack_into(&mut out);
        out[..n].to_vec()
    }

    /// Serializes the packet into a caller-provided FLIT buffer and
    /// returns the packet length in FLITs. Allocation-free.
    pub fn pack_into(&self, out: &mut [Flit; MAX_PACKET_FLITS]) -> usize {
        pack_words_into(self.head.encode(), &self.payload, |crc| {
            let mut tail = self.tail;
            tail.crc = crc;
            tail.encode()
        }, out)
    }

    /// Deserializes a packet from FLITs, verifying LNG and CRC.
    pub fn unpack(flits: &[Flit]) -> Result<Self, HmcError> {
        let (head_raw, payload, tail_raw, crc) = unpack_words(flits)?;
        let head = ReqHead::decode(head_raw)?;
        if head.lng as usize != flits.len() {
            return Err(HmcError::MalformedPacket(format!(
                "header LNG {} != wire length {}",
                head.lng,
                flits.len()
            )));
        }
        let tail = ReqTail::decode(tail_raw)?;
        if tail.crc != crc {
            return Err(HmcError::CrcMismatch { expected: tail.crc, computed: crc });
        }
        Ok(Request { head, payload, tail })
    }
}

/// A complete response packet: header, payload words and tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Packet header.
    pub head: RspHead,
    /// Data payload (`2*lng - 2` 64-bit words), stored inline up to
    /// 16 words.
    pub payload: PayloadBuf,
    /// Packet tail.
    pub tail: RspTail,
}

impl Response {
    /// Builds a response packet; LNG is derived from the payload.
    pub fn new(
        cmd: HmcResponse,
        tag: Tag,
        slid: Slid,
        cub: Cub,
        payload: impl Into<PayloadBuf>,
    ) -> Result<Self, HmcError> {
        let payload = payload.into();
        if !payload.len().is_multiple_of(2) || payload.len() > 2 * (MAX_PACKET_FLITS - 1) {
            return Err(HmcError::MalformedPacket(format!(
                "response payload of {} words is not a whole number of FLITs",
                payload.len()
            )));
        }
        let lng = (1 + payload.len() / 2) as u8;
        Ok(Response {
            head: RspHead { cmd, lng, tag, af: false, slid, cub },
            payload,
            tail: RspTail::default(),
        })
    }

    /// Total packet length in FLITs.
    #[inline]
    pub fn flits(&self) -> u8 {
        self.head.lng
    }

    /// Serializes the packet to FLITs, computing and embedding the CRC.
    pub fn pack(&self) -> Vec<Flit> {
        let mut out = [Flit::ZERO; MAX_PACKET_FLITS];
        let n = self.pack_into(&mut out);
        out[..n].to_vec()
    }

    /// Serializes the packet into a caller-provided FLIT buffer and
    /// returns the packet length in FLITs. Allocation-free.
    pub fn pack_into(&self, out: &mut [Flit; MAX_PACKET_FLITS]) -> usize {
        pack_words_into(self.head.encode(), &self.payload, |crc| {
            let mut tail = self.tail;
            tail.crc = crc;
            tail.encode()
        }, out)
    }

    /// Deserializes a packet from FLITs, verifying LNG and CRC.
    pub fn unpack(flits: &[Flit]) -> Result<Self, HmcError> {
        let (head_raw, payload, tail_raw, crc) = unpack_words(flits)?;
        let head = RspHead::decode(head_raw)?;
        if head.lng as usize != flits.len() {
            return Err(HmcError::MalformedPacket(format!(
                "header LNG {} != wire length {}",
                head.lng,
                flits.len()
            )));
        }
        let tail = RspTail::decode(tail_raw);
        if tail.crc != crc {
            return Err(HmcError::CrcMismatch { expected: tail.crc, computed: crc });
        }
        Ok(Response { head, payload, tail })
    }
}

impl Request {
    /// Serializes the packet to its byte-level wire image
    /// (little-endian FLITs, CRC embedded).
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        self.pack().iter().flat_map(|f| f.to_bytes()).collect()
    }

    /// Deserializes a packet from its byte-level wire image.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, HmcError> {
        Self::unpack(&flits_from_bytes(bytes)?)
    }
}

impl Response {
    /// Serializes the packet to its byte-level wire image.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        self.pack().iter().flat_map(|f| f.to_bytes()).collect()
    }

    /// Deserializes a packet from its byte-level wire image.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, HmcError> {
        Self::unpack(&flits_from_bytes(bytes)?)
    }
}

/// Splits a byte stream into whole FLITs.
fn flits_from_bytes(bytes: &[u8]) -> Result<Vec<Flit>, HmcError> {
    use crate::flit::FLIT_BYTES;
    if bytes.is_empty() || !bytes.len().is_multiple_of(FLIT_BYTES) {
        return Err(HmcError::MalformedPacket(format!(
            "wire image of {} bytes is not a whole number of FLITs",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(FLIT_BYTES)
        .map(|c| Flit::from_bytes(c.try_into().expect("16-byte chunk")))
        .collect())
}

/// Lays out `[head, payload..., tail]` words into the FLIT buffer,
/// invoking `finish_tail` with the computed CRC (tail word hashed as
/// zero) to produce the final tail word. Returns the FLIT count;
/// allocation-free.
fn pack_words_into(
    head: u64,
    payload: &[u64],
    finish_tail: impl FnOnce(u32) -> u64,
    out: &mut [Flit; MAX_PACKET_FLITS],
) -> usize {
    let crc = packet_crc_with_tail(head, payload, 0);
    let tail = finish_tail(crc);
    // Payloads are always a whole number of FLITs (2*lng - 2 words),
    // so head + payload + tail is exactly 2 words per FLIT.
    debug_assert!(payload.len().is_multiple_of(2));
    let n_words = payload.len() + 2;
    let word = |i: usize| -> u64 {
        if i == 0 {
            head
        } else if i == n_words - 1 {
            tail
        } else {
            payload[i - 1]
        }
    };
    let flits = n_words / 2;
    for (fi, slot) in out[..flits].iter_mut().enumerate() {
        *slot = Flit::new(word(2 * fi), word(2 * fi + 1));
    }
    flits
}

/// Splits FLITs back into `(head, payload, tail, computed_crc)`.
/// Allocation-free for payloads within the inline capacity.
fn unpack_words(flits: &[Flit]) -> Result<(u64, PayloadBuf, u64, u32), HmcError> {
    if flits.is_empty() || flits.len() > MAX_PACKET_FLITS {
        return Err(HmcError::InvalidPacketLength(flits.len()));
    }
    // Flat word layout: [f0.lo, f0.hi, f1.lo, f1.hi, ...]; the head
    // is the first word, the tail the last, payload everything
    // between.
    let head = flits[0].lo();
    let tail = flits[flits.len() - 1].hi();
    let n_words = 2 * flits.len();
    let mut payload = PayloadBuf::new();
    for i in 1..n_words - 1 {
        payload.push(flits[i / 2].words[i % 2]);
    }
    let crc = packet_crc_with_tail(head, &payload, tail);
    Ok((head, payload, tail, crc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(v: u32) -> Tag {
        Tag::new(v).unwrap()
    }

    #[test]
    fn req_head_round_trip() {
        let head = ReqHead::new(HmcRqst::Wr64, tag(513), 0x3_1234_5678, Cub::new(5).unwrap());
        assert_eq!(head.lng, 5);
        let decoded = ReqHead::decode(head.encode()).unwrap();
        assert_eq!(decoded, head);
    }

    #[test]
    fn wide_cub_round_trips_and_bounds_enforced() {
        // Cubes 8..=15 use the formerly-reserved bit 60 in both
        // headers; ids 0..=7 must keep the exact spec encoding.
        for v in 0..16u8 {
            let cub = Cub::new(v).unwrap();
            let head = ReqHead::new(HmcRqst::Rd16, tag(9), 0x80, cub);
            let decoded = ReqHead::decode(head.encode()).unwrap();
            assert_eq!(decoded.cub.value(), v, "request CUB {v}");
            if v < 8 {
                assert_eq!(field(head.encode(), 60, 1), 0, "bit 60 clear for spec cubes");
            }
            let rsp = RspHead {
                cmd: HmcResponse::RdRs,
                lng: 1,
                tag: tag(9),
                af: false,
                slid: Slid::new(0).unwrap(),
                cub,
            };
            assert_eq!(RspHead::decode(rsp.encode()).unwrap().cub.value(), v, "response CUB {v}");
        }
        assert!(matches!(Cub::new(16), Err(HmcError::InvalidCube(16))));
        assert!(matches!(Cub::new(255), Err(HmcError::InvalidCube(255))));
    }

    #[test]
    fn wide_cub_survives_full_packet_round_trip() {
        let req = Request::new(HmcRqst::Wr16, tag(40), 0x40, Cub::new(13).unwrap(), vec![1, 2])
            .unwrap();
        let back = Request::unpack(&req.pack()).unwrap();
        assert_eq!(back.head.cub.value(), 13);
    }

    #[test]
    fn req_head_cmc_round_trip() {
        let head = ReqHead::new_cmc(125, 2, tag(7), 0x40, Cub::new(0).unwrap());
        let decoded = ReqHead::decode(head.encode()).unwrap();
        assert_eq!(decoded.cmd, HmcRqst::Cmc(125));
        assert_eq!(decoded.lng, 2);
    }

    #[test]
    fn req_tail_round_trip() {
        let tail = ReqTail {
            rrp: 0xAB,
            frp: 0xCD,
            seq: 5,
            pb: true,
            slid: Slid::new(3).unwrap(),
            rtc: 17,
            crc: 0xDEAD_BEEF,
        };
        assert_eq!(ReqTail::decode(tail.encode()).unwrap(), tail);
    }

    #[test]
    fn rsp_head_round_trip() {
        let head = RspHead {
            cmd: HmcResponse::RdRs,
            lng: 2,
            tag: tag(2047),
            af: true,
            slid: Slid::new(7).unwrap(),
            cub: Cub::new(1).unwrap(),
        };
        assert_eq!(RspHead::decode(head.encode()).unwrap(), head);
    }

    #[test]
    fn rsp_tail_round_trip() {
        let tail = RspTail {
            rrp: 1,
            frp: 2,
            seq: 7,
            dinv: true,
            errstat: 0x55,
            rtc: 31,
            crc: 0x1234_5678,
        };
        assert_eq!(RspTail::decode(tail.encode()), tail);
    }

    #[test]
    fn zero_lng_rejected() {
        // A zeroed header decodes cmd NULL but LNG 0 must be rejected.
        assert!(matches!(
            ReqHead::decode(0),
            Err(HmcError::InvalidPacketLength(0))
        ));
    }

    #[test]
    fn request_payload_length_enforced() {
        assert!(Request::new(HmcRqst::Wr16, tag(0), 0, Cub::new(0).unwrap(), vec![]).is_err());
        assert!(Request::new(HmcRqst::Wr16, tag(0), 0, Cub::new(0).unwrap(), vec![1, 2]).is_ok());
        assert!(Request::new(HmcRqst::Rd64, tag(0), 0, Cub::new(0).unwrap(), vec![]).is_ok());
        assert!(Request::new(HmcRqst::Rd64, tag(0), 0, Cub::new(0).unwrap(), vec![9]).is_err());
    }

    #[test]
    fn request_rejects_cmc_without_length() {
        assert!(Request::new(HmcRqst::Cmc(125), tag(0), 0, Cub::new(0).unwrap(), vec![]).is_err());
        assert!(Request::new_cmc(125, 2, tag(0), 0, Cub::new(0).unwrap(), vec![1, 2]).is_ok());
        assert!(Request::new_cmc(125, 2, tag(0), 0, Cub::new(0).unwrap(), vec![1]).is_err());
        assert!(Request::new_cmc(125, 0, tag(0), 0, Cub::new(0).unwrap(), vec![]).is_err());
        assert!(Request::new_cmc(125, 18, tag(0), 0, Cub::new(0).unwrap(), vec![0; 34]).is_err());
    }

    #[test]
    fn request_pack_unpack_round_trip() {
        let req = Request::new(
            HmcRqst::Wr64,
            tag(99),
            0x1000,
            Cub::new(2).unwrap(),
            (0..8u64).map(|i| i * 0x1111).collect::<PayloadBuf>(),
        )
        .unwrap();
        let flits = req.pack();
        assert_eq!(flits.len(), 5);
        let back = Request::unpack(&flits).unwrap();
        assert_eq!(back.head, req.head);
        assert_eq!(back.payload, req.payload);
        assert_ne!(back.tail.crc, 0, "CRC was embedded");
    }

    #[test]
    fn corrupted_packet_fails_crc() {
        let req = Request::new(HmcRqst::Wr16, tag(3), 0x40, Cub::new(0).unwrap(), vec![7, 8])
            .unwrap();
        let mut flits = req.pack();
        flits[1].words[0] ^= 1;
        assert!(matches!(
            Request::unpack(&flits),
            Err(HmcError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn lng_wire_mismatch_detected() {
        let req = Request::new(HmcRqst::Rd16, tag(0), 0, Cub::new(0).unwrap(), vec![]).unwrap();
        let mut flits = req.pack();
        flits.push(Flit::ZERO);
        assert!(Request::unpack(&flits).is_err());
    }

    #[test]
    fn response_round_trip() {
        let rsp = Response::new(
            HmcResponse::RdRs,
            tag(1),
            Slid::new(2).unwrap(),
            Cub::new(0).unwrap(),
            vec![0xAA, 0xBB],
        )
        .unwrap();
        assert_eq!(rsp.flits(), 2);
        let flits = rsp.pack();
        let back = Response::unpack(&flits).unwrap();
        assert_eq!(back.head, rsp.head);
        assert_eq!(back.payload, rsp.payload);
    }

    #[test]
    fn response_odd_payload_rejected() {
        assert!(Response::new(
            HmcResponse::RdRs,
            tag(0),
            Slid::new(0).unwrap(),
            Cub::new(0).unwrap(),
            vec![1],
        )
        .is_err());
    }

    #[test]
    fn response_oversize_payload_rejected() {
        assert!(Response::new(
            HmcResponse::RdRs,
            tag(0),
            Slid::new(0).unwrap(),
            Cub::new(0).unwrap(),
            vec![0; 34],
        )
        .is_err());
    }

    #[test]
    fn cmc_response_code_round_trips_on_wire() {
        let rsp = Response::new(
            HmcResponse::RspCmc(0x42),
            tag(12),
            Slid::new(1).unwrap(),
            Cub::new(0).unwrap(),
            vec![1, 2],
        )
        .unwrap();
        let back = Response::unpack(&rsp.pack()).unwrap();
        assert_eq!(back.head.cmd, HmcResponse::RspCmc(0x42));
    }

    #[test]
    fn wire_bytes_round_trip() {
        let req = Request::new(
            HmcRqst::Wr32,
            tag(17),
            0x2040,
            Cub::new(1).unwrap(),
            vec![1, 2, 3, 4],
        )
        .unwrap();
        let bytes = req.to_wire_bytes();
        assert_eq!(bytes.len(), 3 * 16, "3 FLITs on the wire");
        let back = Request::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back.head, req.head);
        assert_eq!(back.payload, req.payload);

        let rsp = Response::new(
            HmcResponse::RdRs,
            tag(3),
            Slid::new(1).unwrap(),
            Cub::new(0).unwrap(),
            vec![9, 10],
        )
        .unwrap();
        let back = Response::from_wire_bytes(&rsp.to_wire_bytes()).unwrap();
        assert_eq!(back.head, rsp.head);
        assert_eq!(back.payload, rsp.payload);
    }

    #[test]
    fn wire_bytes_reject_partial_flits() {
        assert!(Request::from_wire_bytes(&[]).is_err());
        assert!(Request::from_wire_bytes(&[0u8; 17]).is_err());
        let req = Request::new(HmcRqst::Rd16, tag(0), 0, Cub::new(0).unwrap(), vec![]).unwrap();
        let mut bytes = req.to_wire_bytes();
        bytes[3] ^= 0x10;
        assert!(Request::from_wire_bytes(&bytes).is_err(), "CRC catches the flip");
    }

    #[test]
    fn payload_words_math() {
        assert_eq!(payload_words(1), 0);
        assert_eq!(payload_words(2), 2);
        assert_eq!(payload_words(17), 32);
    }

    #[test]
    fn address_out_of_range_rejected() {
        let too_big = MAX_ADDR + 1;
        assert!(Request::new(HmcRqst::Rd16, tag(0), too_big, Cub::new(0).unwrap(), vec![]).is_err());
    }
}
