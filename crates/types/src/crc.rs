//! CRC-32K (Koopman) packet protection.
//!
//! The HMC specification protects every packet with a 32-bit CRC using
//! the Koopman polynomial (0x741B8CD7), chosen for its Hamming-distance
//! properties at HMC packet lengths. The CRC is computed over the
//! packet with the CRC field itself zeroed, then stored in the tail's
//! upper 32 bits.

/// The Koopman CRC-32K polynomial in normal (MSB-first) form.
pub const CRC32K_POLY: u32 = 0x741B_8CD7;

/// Reflected form of [`CRC32K_POLY`] used by the table-driven,
/// LSB-first implementation.
const CRC32K_POLY_REFLECTED: u32 = 0xEB31_D82E;

/// 256-entry lookup table for the reflected CRC-32K computation.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ CRC32K_POLY_REFLECTED
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the CRC-32K of `data` (init all-ones, final XOR all-ones,
/// reflected I/O — the conventional CRC-32 framing with the Koopman
/// polynomial).
pub fn crc32k(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = u32::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ t[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Folds the 8 little-endian bytes of one word into a running
/// (reflected, pre-final-XOR) CRC state.
#[inline]
fn fold_word(t: &[u32; 256], mut crc: u32, word: u64) -> u32 {
    for byte in word.to_le_bytes() {
        crc = (crc >> 8) ^ t[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc
}

/// Computes the CRC-32K over a packet expressed as 64-bit words,
/// with the tail CRC field (bits 63:32 of the last word) masked to
/// zero, as the specification requires.
///
/// Streams the words through the reflected table directly — no
/// intermediate byte buffer is allocated. Byte-for-byte equivalent to
/// serializing the masked words little-endian and calling [`crc32k`].
pub fn packet_crc(words: &[u64]) -> u32 {
    match words.split_last() {
        None => crc32k(&[]),
        Some((&tail, body)) => {
            let t = table();
            let mut crc = u32::MAX;
            for &w in body {
                crc = fold_word(t, crc, w);
            }
            !fold_word(t, crc, tail & 0x0000_0000_FFFF_FFFF)
        }
    }
}

/// [`packet_crc`] over the logical word sequence
/// `[head, payload..., tail]` without materializing it: the packet
/// serializers hash head/payload/tail in place. `tail` is masked like
/// the last word of [`packet_crc`] (CRC field zeroed).
pub fn packet_crc_with_tail(head: u64, payload: &[u64], tail: u64) -> u32 {
    let t = table();
    let mut crc = fold_word(t, u32::MAX, head);
    for &w in payload {
        crc = fold_word(t, crc, w);
    }
    !fold_word(t, crc, tail & 0x0000_0000_FFFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        // CRC of nothing is the framing constant (init ^ final-xor).
        assert_eq!(crc32k(&[]), 0);
    }

    #[test]
    fn deterministic_and_data_dependent() {
        let a = crc32k(b"hybrid memory cube");
        let b = crc32k(b"hybrid memory cube");
        let c = crc32k(b"hybrid memory cubE");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_bit_flip_detected() {
        let data = [0x5Au8; 32];
        let base = crc32k(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data;
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32k(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    /// The pre-optimization implementation: serialize the masked
    /// words to a byte buffer, then CRC the buffer.
    fn packet_crc_by_bytes(words: &[u64]) -> u32 {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for (i, &w) in words.iter().enumerate() {
            let w = if i == words.len() - 1 { w & 0x0000_0000_FFFF_FFFF } else { w };
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        crc32k(&bytes)
    }

    proptest::proptest! {
        /// The streaming word path is byte-for-byte equivalent to the
        /// old allocate-and-serialize path on arbitrary word slices.
        #[test]
        fn streaming_equals_byte_buffer_reference(
            words in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..64),
        ) {
            proptest::prop_assert_eq!(packet_crc(&words), packet_crc_by_bytes(&words));
        }

        /// `packet_crc_with_tail` is `packet_crc` over the assembled
        /// `[head, payload..., tail]` sequence.
        #[test]
        fn with_tail_matches_assembled_sequence(
            head in proptest::prelude::any::<u64>(),
            payload in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..34),
            tail in proptest::prelude::any::<u64>(),
        ) {
            let mut words = Vec::with_capacity(payload.len() + 2);
            words.push(head);
            words.extend_from_slice(&payload);
            words.push(tail);
            proptest::prop_assert_eq!(packet_crc_with_tail(head, &payload, tail), packet_crc(&words));
        }
    }

    #[test]
    fn empty_word_slice_matches_empty_bytes() {
        assert_eq!(packet_crc(&[]), crc32k(&[]));
    }

    #[test]
    fn packet_crc_ignores_crc_field() {
        // Two packets that differ only in the tail CRC bits must hash equal.
        let p1 = [0x1111_2222_3333_4444u64, 0xAAAA_BBBB_0000_0001];
        let p2 = [0x1111_2222_3333_4444u64, 0x5555_6666_0000_0001];
        assert_eq!(packet_crc(&p1), packet_crc(&p2));
        // ...but a change in the protected region must not.
        let p3 = [0x1111_2222_3333_4445u64, 0xAAAA_BBBB_0000_0001];
        assert_ne!(packet_crc(&p1), packet_crc(&p3));
    }
}
