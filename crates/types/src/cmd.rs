//! The HMC Gen2 request command set.
//!
//! The Gen2 packet header carries a 7-bit command field, giving 128
//! command codes. The 2.0/2.1 specification assigns 58 of them to flow
//! control, read, write, posted write, mode and atomic commands; the
//! remaining **70 codes are unused** and are exactly the slots HMC-Sim
//! 2.0 exposes as Custom Memory Cube (CMC) operations (paper §IV-A).
//!
//! Every standard command carries static metadata ([`CmdInfo`]): its
//! command code, the request and response lengths in FLITs (paper
//! Table I) and its operational class. CMC commands have no static
//! metadata — their lengths are defined at registration time by the
//! loaded CMC library.

use crate::error::HmcError;

/// Number of distinct command codes (7-bit field).
pub const CMD_CODE_SPACE: usize = 128;

/// Number of command codes left unassigned by the Gen2 specification
/// and therefore available to CMC operations.
pub const CMC_CODE_COUNT: usize = 70;

/// Operational class of a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdKind {
    /// Link flow-control packets (NULL, PRET, TRET, IRTRY).
    Flow,
    /// Memory read returning data.
    Read,
    /// Memory write returning a write acknowledgement.
    Write,
    /// Memory write with no response packet.
    PostedWrite,
    /// Mode (device register) read.
    ModeRead,
    /// Mode (device register) write.
    ModeWrite,
    /// Atomic read-modify-write executed in the logic layer.
    Atomic,
    /// Atomic read-modify-write with no response packet.
    PostedAtomic,
    /// Custom Memory Cube operation (user defined).
    Cmc,
}

impl CmdKind {
    /// True for posted classes (no response packet is generated).
    #[inline]
    pub fn is_posted(self) -> bool {
        matches!(self, CmdKind::PostedWrite | CmdKind::PostedAtomic)
    }
}

/// Static metadata for one standard Gen2 command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdInfo {
    /// The 7-bit command code carried in the packet header.
    pub code: u8,
    /// Total request packet length in FLITs (header/tail included).
    pub rqst_flits: u8,
    /// Total response packet length in FLITs (0 for posted commands).
    pub rsp_flits: u8,
    /// Operational class.
    pub kind: CmdKind,
    /// Bytes of memory touched by the command (read or write size;
    /// 8 or 16 for atomics, 0 for flow commands).
    pub data_bytes: u16,
    /// Canonical mnemonic, as printed in trace files.
    pub name: &'static str,
}

macro_rules! hmc_commands {
    ($( $variant:ident { code: $code:expr, rqst: $rq:expr, rsp: $rs:expr,
         kind: $kind:ident, bytes: $bytes:expr, name: $name:expr } ),+ $(,)?) => {
        /// An HMC Gen2 request command.
        ///
        /// All 58 standard commands are explicit variants; the 70 free
        /// command codes are represented by [`HmcRqst::Cmc`] carrying
        /// the raw code, mirroring HMC-Sim's `CMCnn` enumeration.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum HmcRqst {
            $(#[doc = $name] $variant,)+
            /// A Custom Memory Cube command occupying one of the 70
            /// unused Gen2 command codes.
            Cmc(u8),
        }

        impl HmcRqst {
            /// Every standard (non-CMC) command.
            pub const STANDARD: &'static [HmcRqst] = &[ $(HmcRqst::$variant,)+ ];

            /// Static metadata for a standard command; `None` for CMC
            /// commands, whose lengths live in the CMC registry.
            pub fn fixed_info(self) -> Option<CmdInfo> {
                match self {
                    $(HmcRqst::$variant => Some(CmdInfo {
                        code: $code,
                        rqst_flits: $rq,
                        rsp_flits: $rs,
                        kind: CmdKind::$kind,
                        data_bytes: $bytes,
                        name: $name,
                    }),)+
                    HmcRqst::Cmc(_) => None,
                }
            }

            /// The 7-bit command code for this command.
            pub fn code(self) -> u8 {
                match self {
                    $(HmcRqst::$variant => $code,)+
                    HmcRqst::Cmc(code) => code,
                }
            }
        }
    };
}

hmc_commands! {
    // -------- flow control --------
    Null      { code: 0x00, rqst: 1, rsp: 0, kind: Flow, bytes: 0, name: "NULL" },
    Pret      { code: 0x01, rqst: 1, rsp: 0, kind: Flow, bytes: 0, name: "PRET" },
    Tret      { code: 0x02, rqst: 1, rsp: 0, kind: Flow, bytes: 0, name: "TRET" },
    Irtry     { code: 0x03, rqst: 1, rsp: 0, kind: Flow, bytes: 0, name: "IRTRY" },
    // -------- writes (ack'd) --------
    Wr16      { code: 0x08, rqst: 2,  rsp: 1, kind: Write, bytes: 16,  name: "WR16" },
    Wr32      { code: 0x09, rqst: 3,  rsp: 1, kind: Write, bytes: 32,  name: "WR32" },
    Wr48      { code: 0x0A, rqst: 4,  rsp: 1, kind: Write, bytes: 48,  name: "WR48" },
    Wr64      { code: 0x0B, rqst: 5,  rsp: 1, kind: Write, bytes: 64,  name: "WR64" },
    Wr80      { code: 0x0C, rqst: 6,  rsp: 1, kind: Write, bytes: 80,  name: "WR80" },
    Wr96      { code: 0x0D, rqst: 7,  rsp: 1, kind: Write, bytes: 96,  name: "WR96" },
    Wr112     { code: 0x0E, rqst: 8,  rsp: 1, kind: Write, bytes: 112, name: "WR112" },
    Wr128     { code: 0x0F, rqst: 9,  rsp: 1, kind: Write, bytes: 128, name: "WR128" },
    Wr256     { code: 0x4F, rqst: 17, rsp: 1, kind: Write, bytes: 256, name: "WR256" },
    // -------- mode & bit-write & add immediates (write-class atomics) --------
    MdWr      { code: 0x10, rqst: 2, rsp: 1, kind: ModeWrite, bytes: 4, name: "MD_WR" },
    Bwr       { code: 0x11, rqst: 2, rsp: 1, kind: Atomic, bytes: 8,  name: "BWR" },
    TwoAdd8   { code: 0x12, rqst: 2, rsp: 1, kind: Atomic, bytes: 16, name: "2ADD8" },
    Add16     { code: 0x13, rqst: 2, rsp: 1, kind: Atomic, bytes: 16, name: "ADD16" },
    // -------- posted writes --------
    PWr16     { code: 0x18, rqst: 2,  rsp: 0, kind: PostedWrite, bytes: 16,  name: "P_WR16" },
    PWr32     { code: 0x19, rqst: 3,  rsp: 0, kind: PostedWrite, bytes: 32,  name: "P_WR32" },
    PWr48     { code: 0x1A, rqst: 4,  rsp: 0, kind: PostedWrite, bytes: 48,  name: "P_WR48" },
    PWr64     { code: 0x1B, rqst: 5,  rsp: 0, kind: PostedWrite, bytes: 64,  name: "P_WR64" },
    PWr80     { code: 0x1C, rqst: 6,  rsp: 0, kind: PostedWrite, bytes: 80,  name: "P_WR80" },
    PWr96     { code: 0x1D, rqst: 7,  rsp: 0, kind: PostedWrite, bytes: 96,  name: "P_WR96" },
    PWr112    { code: 0x1E, rqst: 8,  rsp: 0, kind: PostedWrite, bytes: 112, name: "P_WR112" },
    PWr128    { code: 0x1F, rqst: 9,  rsp: 0, kind: PostedWrite, bytes: 128, name: "P_WR128" },
    PWr256    { code: 0x5F, rqst: 17, rsp: 0, kind: PostedWrite, bytes: 256, name: "P_WR256" },
    // -------- posted bit-write & posted add immediates --------
    PBwr      { code: 0x21, rqst: 2, rsp: 0, kind: PostedAtomic, bytes: 8,  name: "P_BWR" },
    P2Add8    { code: 0x22, rqst: 2, rsp: 0, kind: PostedAtomic, bytes: 16, name: "P_2ADD8" },
    PAdd16    { code: 0x23, rqst: 2, rsp: 0, kind: PostedAtomic, bytes: 16, name: "P_ADD16" },
    // -------- mode read --------
    MdRd      { code: 0x28, rqst: 1, rsp: 2, kind: ModeRead, bytes: 4, name: "MD_RD" },
    // -------- reads --------
    Rd16      { code: 0x30, rqst: 1, rsp: 2,  kind: Read, bytes: 16,  name: "RD16" },
    Rd32      { code: 0x31, rqst: 1, rsp: 3,  kind: Read, bytes: 32,  name: "RD32" },
    Rd48      { code: 0x32, rqst: 1, rsp: 4,  kind: Read, bytes: 48,  name: "RD48" },
    Rd64      { code: 0x33, rqst: 1, rsp: 5,  kind: Read, bytes: 64,  name: "RD64" },
    Rd80      { code: 0x34, rqst: 1, rsp: 6,  kind: Read, bytes: 80,  name: "RD80" },
    Rd96      { code: 0x35, rqst: 1, rsp: 7,  kind: Read, bytes: 96,  name: "RD96" },
    Rd112     { code: 0x36, rqst: 1, rsp: 8,  kind: Read, bytes: 112, name: "RD112" },
    Rd128     { code: 0x37, rqst: 1, rsp: 9,  kind: Read, bytes: 128, name: "RD128" },
    Rd256     { code: 0x77, rqst: 1, rsp: 17, kind: Read, bytes: 256, name: "RD256" },
    // -------- boolean atomics --------
    Xor16     { code: 0x40, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "XOR16" },
    Or16      { code: 0x41, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "OR16" },
    Nor16     { code: 0x42, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "NOR16" },
    And16     { code: 0x43, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "AND16" },
    Nand16    { code: 0x44, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "NAND16" },
    // -------- arithmetic atomics with return --------
    Inc8      { code: 0x50, rqst: 1, rsp: 1, kind: Atomic, bytes: 8,  name: "INC8" },
    Bwr8R     { code: 0x51, rqst: 2, rsp: 2, kind: Atomic, bytes: 8,  name: "BWR8R" },
    TwoAddS8R { code: 0x52, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "2ADDS8R" },
    AddS16R   { code: 0x53, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "ADDS16R" },
    PInc8     { code: 0x54, rqst: 1, rsp: 0, kind: PostedAtomic, bytes: 8, name: "P_INC8" },
    // -------- comparison atomics --------
    CasGt8    { code: 0x60, rqst: 2, rsp: 2, kind: Atomic, bytes: 8,  name: "CASGT8" },
    CasLt8    { code: 0x61, rqst: 2, rsp: 2, kind: Atomic, bytes: 8,  name: "CASLT8" },
    CasGt16   { code: 0x62, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "CASGT16" },
    CasLt16   { code: 0x63, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "CASLT16" },
    CasEq8    { code: 0x64, rqst: 2, rsp: 2, kind: Atomic, bytes: 8,  name: "CASEQ8" },
    CasZero16 { code: 0x65, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "CASZERO16" },
    Eq16      { code: 0x68, rqst: 2, rsp: 1, kind: Atomic, bytes: 16, name: "EQ16" },
    Eq8       { code: 0x69, rqst: 2, rsp: 1, kind: Atomic, bytes: 8,  name: "EQ8" },
    Swap16    { code: 0x6A, rqst: 2, rsp: 2, kind: Atomic, bytes: 16, name: "SWAP16" },
}

impl HmcRqst {
    /// Decodes a 7-bit command code into a command. Codes assigned by
    /// the Gen2 specification map to their standard variant; every
    /// unassigned code maps to [`HmcRqst::Cmc`].
    ///
    /// Returns an error if the code does not fit in 7 bits.
    pub fn from_code(code: u8) -> Result<Self, HmcError> {
        if code as usize >= CMD_CODE_SPACE {
            return Err(HmcError::InvalidCommandCode(code));
        }
        Ok(Self::decode_table()[code as usize])
    }

    /// The decode table indexed by command code.
    fn decode_table() -> &'static [HmcRqst; CMD_CODE_SPACE] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[HmcRqst; CMD_CODE_SPACE]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut table = [HmcRqst::Cmc(0); CMD_CODE_SPACE];
            for (code, slot) in table.iter_mut().enumerate() {
                *slot = HmcRqst::Cmc(code as u8);
            }
            for &cmd in HmcRqst::STANDARD {
                table[cmd.code() as usize] = cmd;
            }
            table
        })
    }

    /// The operational class of this command (CMC commands report
    /// [`CmdKind::Cmc`]).
    pub fn kind(self) -> CmdKind {
        self.fixed_info().map_or(CmdKind::Cmc, |i| i.kind)
    }

    /// True if this is a CMC (user-defined) command.
    #[inline]
    pub fn is_cmc(self) -> bool {
        matches!(self, HmcRqst::Cmc(_))
    }

    /// True if the command never generates a response packet.
    ///
    /// For CMC commands postedness is registry-defined, so this returns
    /// `false`; the simulator consults the CMC registry instead.
    pub fn is_posted(self) -> bool {
        self.fixed_info().is_some_and(|i| i.kind.is_posted())
    }

    /// Canonical mnemonic. CMC commands render as `CMCnn` with the
    /// decimal command code, matching HMC-Sim's enumeration.
    pub fn mnemonic(self) -> String {
        match self.fixed_info() {
            Some(info) => info.name.to_string(),
            None => format!("CMC{}", self.code()),
        }
    }

    /// Iterator over the 70 command codes available to CMC operations,
    /// in ascending order.
    pub fn cmc_codes() -> impl Iterator<Item = u8> {
        (0..CMD_CODE_SPACE as u8)
            .filter(|&c| matches!(Self::decode_table()[c as usize], HmcRqst::Cmc(_)))
    }

    /// Selects the read command for a given transfer size in bytes.
    ///
    /// Sizes must be a multiple of 16 between 16 and 256 with a single
    /// command mapping (16..=128 in steps of 16, or 256).
    pub fn read_for_bytes(bytes: usize) -> Result<Self, HmcError> {
        Ok(match bytes {
            16 => HmcRqst::Rd16,
            32 => HmcRqst::Rd32,
            48 => HmcRqst::Rd48,
            64 => HmcRqst::Rd64,
            80 => HmcRqst::Rd80,
            96 => HmcRqst::Rd96,
            112 => HmcRqst::Rd112,
            128 => HmcRqst::Rd128,
            256 => HmcRqst::Rd256,
            _ => return Err(HmcError::InvalidRequestSize(bytes)),
        })
    }

    /// Selects the (acknowledged) write command for a transfer size.
    pub fn write_for_bytes(bytes: usize) -> Result<Self, HmcError> {
        Ok(match bytes {
            16 => HmcRqst::Wr16,
            32 => HmcRqst::Wr32,
            48 => HmcRqst::Wr48,
            64 => HmcRqst::Wr64,
            80 => HmcRqst::Wr80,
            96 => HmcRqst::Wr96,
            112 => HmcRqst::Wr112,
            128 => HmcRqst::Wr128,
            256 => HmcRqst::Wr256,
            _ => return Err(HmcError::InvalidRequestSize(bytes)),
        })
    }

    /// Selects the posted write command for a transfer size.
    pub fn posted_write_for_bytes(bytes: usize) -> Result<Self, HmcError> {
        Ok(match bytes {
            16 => HmcRqst::PWr16,
            32 => HmcRqst::PWr32,
            48 => HmcRqst::PWr48,
            64 => HmcRqst::PWr64,
            80 => HmcRqst::PWr80,
            96 => HmcRqst::PWr96,
            112 => HmcRqst::PWr112,
            128 => HmcRqst::PWr128,
            256 => HmcRqst::PWr256,
            _ => return Err(HmcError::InvalidRequestSize(bytes)),
        })
    }
}

impl std::fmt::Display for HmcRqst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.fixed_info() {
            Some(info) => f.write_str(info.name),
            None => write!(f, "CMC{}", self.code()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::packet_flits_for_bytes;
    use std::collections::HashSet;

    #[test]
    fn exactly_58_standard_commands() {
        assert_eq!(HmcRqst::STANDARD.len(), 58);
    }

    #[test]
    fn exactly_70_cmc_codes() {
        // Paper §IV-A: "room for an additional 70 unused command codes".
        assert_eq!(HmcRqst::cmc_codes().count(), CMC_CODE_COUNT);
    }

    #[test]
    fn command_codes_are_unique_and_seven_bit() {
        let mut seen = HashSet::new();
        for &cmd in HmcRqst::STANDARD {
            let code = cmd.code();
            assert!(code < 128, "{cmd} code {code} exceeds 7 bits");
            assert!(seen.insert(code), "duplicate code {code} for {cmd}");
        }
    }

    #[test]
    fn code_round_trips_through_from_code() {
        for &cmd in HmcRqst::STANDARD {
            assert_eq!(HmcRqst::from_code(cmd.code()).unwrap(), cmd);
        }
        for code in HmcRqst::cmc_codes() {
            assert_eq!(HmcRqst::from_code(code).unwrap(), HmcRqst::Cmc(code));
        }
        assert!(HmcRqst::from_code(0x80).is_err());
    }

    #[test]
    fn mutex_codes_from_the_paper_are_free() {
        // Table V uses CMC125, CMC126, CMC127.
        let free: HashSet<u8> = HmcRqst::cmc_codes().collect();
        assert!(free.contains(&125));
        assert!(free.contains(&126));
        assert!(free.contains(&127));
    }

    #[test]
    fn table_one_request_flit_counts() {
        // Spot checks against paper Table I.
        let cases = [
            (HmcRqst::Rd256, 1, 17),
            (HmcRqst::Wr256, 17, 1),
            (HmcRqst::PWr256, 17, 0),
            (HmcRqst::TwoAdd8, 2, 1),
            (HmcRqst::Add16, 2, 1),
            (HmcRqst::P2Add8, 2, 0),
            (HmcRqst::PAdd16, 2, 0),
            (HmcRqst::TwoAddS8R, 2, 2),
            (HmcRqst::AddS16R, 2, 2),
            (HmcRqst::Inc8, 1, 1),
            (HmcRqst::PInc8, 1, 0),
            (HmcRqst::Xor16, 2, 2),
            (HmcRqst::Or16, 2, 2),
            (HmcRqst::Nor16, 2, 2),
            (HmcRqst::And16, 2, 2),
            (HmcRqst::Nand16, 2, 2),
            (HmcRqst::CasGt8, 2, 2),
            (HmcRqst::CasGt16, 2, 2),
            (HmcRqst::CasLt8, 2, 2),
            (HmcRqst::CasLt16, 2, 2),
            (HmcRqst::CasEq8, 2, 2),
            (HmcRqst::CasZero16, 2, 2),
            (HmcRqst::Eq8, 2, 1),
            (HmcRqst::Eq16, 2, 1),
            (HmcRqst::Bwr, 2, 1),
            (HmcRqst::PBwr, 2, 0),
            (HmcRqst::Bwr8R, 2, 2),
            (HmcRqst::Swap16, 2, 2),
        ];
        for (cmd, rqst, rsp) in cases {
            let info = cmd.fixed_info().unwrap();
            assert_eq!(info.rqst_flits, rqst, "{cmd} request flits");
            assert_eq!(info.rsp_flits, rsp, "{cmd} response flits");
        }
    }

    #[test]
    fn write_request_lengths_match_payload_math() {
        for &cmd in HmcRqst::STANDARD {
            let info = cmd.fixed_info().unwrap();
            if matches!(info.kind, CmdKind::Write | CmdKind::PostedWrite) {
                assert_eq!(
                    info.rqst_flits as usize,
                    packet_flits_for_bytes(info.data_bytes as usize),
                    "{cmd}"
                );
            }
            if matches!(info.kind, CmdKind::Read) {
                assert_eq!(info.rqst_flits, 1, "{cmd}");
                assert_eq!(
                    info.rsp_flits as usize,
                    packet_flits_for_bytes(info.data_bytes as usize),
                    "{cmd}"
                );
            }
        }
    }

    #[test]
    fn size_selectors() {
        assert_eq!(HmcRqst::read_for_bytes(64).unwrap(), HmcRqst::Rd64);
        assert_eq!(HmcRqst::write_for_bytes(256).unwrap(), HmcRqst::Wr256);
        assert_eq!(HmcRqst::posted_write_for_bytes(16).unwrap(), HmcRqst::PWr16);
        assert!(HmcRqst::read_for_bytes(24).is_err());
        assert!(HmcRqst::write_for_bytes(0).is_err());
        assert!(HmcRqst::posted_write_for_bytes(192).is_err());
    }

    #[test]
    fn mnemonics_and_display() {
        assert_eq!(HmcRqst::Inc8.mnemonic(), "INC8");
        assert_eq!(HmcRqst::Cmc(125).mnemonic(), "CMC125");
        assert_eq!(format!("{}", HmcRqst::CasZero16), "CASZERO16");
        assert_eq!(format!("{}", HmcRqst::Cmc(4)), "CMC4");
    }

    #[test]
    fn posted_classification() {
        assert!(HmcRqst::PWr64.is_posted());
        assert!(HmcRqst::PInc8.is_posted());
        assert!(!HmcRqst::Inc8.is_posted());
        assert!(!HmcRqst::Cmc(125).is_posted());
        assert_eq!(HmcRqst::Cmc(99).kind(), CmdKind::Cmc);
    }
}
