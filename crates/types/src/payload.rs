//! Inline-capacity packet payload storage.
//!
//! Every Gen2 command in Table I carries at most 128 bytes of write
//! data — 16 payload words — so [`PayloadBuf`] stores up to
//! [`PAYLOAD_INLINE_WORDS`] words inline and only spills to the heap
//! for oversized CMC payloads (up to the 32-word maximum of a 17-FLIT
//! packet). Moving request/response payloads off `Vec<u64>` removes
//! one heap allocation per packet on the simulator's hot path.
//!
//! The buffer dereferences to `&[u64]`, compares equal to `Vec<u64>`
//! and prints like a slice, so code that only *reads* payloads is
//! unaffected by the representation.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Words stored inline before spilling to the heap. 16 words = 128
/// bytes covers every standard Gen2 command payload.
pub const PAYLOAD_INLINE_WORDS: usize = 16;

#[derive(Clone)]
enum Repr {
    Inline { buf: [u64; PAYLOAD_INLINE_WORDS], len: u8 },
    Spilled(Vec<u64>),
}

/// A packet payload: inline up to [`PAYLOAD_INLINE_WORDS`] 64-bit
/// words, heap-backed beyond that.
#[derive(Clone)]
pub struct PayloadBuf(Repr);

impl PayloadBuf {
    /// An empty payload (no allocation).
    pub const fn new() -> Self {
        PayloadBuf(Repr::Inline { buf: [0; PAYLOAD_INLINE_WORDS], len: 0 })
    }

    /// Copies a slice into a payload; allocates only when `words`
    /// exceeds the inline capacity.
    pub fn from_slice(words: &[u64]) -> Self {
        if words.len() <= PAYLOAD_INLINE_WORDS {
            let mut buf = [0; PAYLOAD_INLINE_WORDS];
            buf[..words.len()].copy_from_slice(words);
            PayloadBuf(Repr::Inline { buf, len: words.len() as u8 })
        } else {
            PayloadBuf(Repr::Spilled(words.to_vec()))
        }
    }

    /// Appends one word, spilling to the heap when the inline
    /// capacity is exceeded.
    pub fn push(&mut self, word: u64) {
        match &mut self.0 {
            Repr::Inline { buf, len } => {
                if (*len as usize) < PAYLOAD_INLINE_WORDS {
                    buf[*len as usize] = word;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(PAYLOAD_INLINE_WORDS * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(word);
                    self.0 = Repr::Spilled(v);
                }
            }
            Repr::Spilled(v) => v.push(word),
        }
    }

    /// The payload as a word slice.
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            Repr::Inline { buf, len } => &buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// The payload as a mutable word slice.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.0 {
            Repr::Inline { buf, len } => &mut buf[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// True when the words live inline (no heap allocation backing
    /// this payload).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }
}

impl Default for PayloadBuf {
    fn default() -> Self {
        PayloadBuf::new()
    }
}

impl Deref for PayloadBuf {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl DerefMut for PayloadBuf {
    fn deref_mut(&mut self) -> &mut [u64] {
        self.as_mut_slice()
    }
}

impl From<Vec<u64>> for PayloadBuf {
    /// Small vectors are copied inline (and freed); oversized ones
    /// are adopted without copying.
    fn from(v: Vec<u64>) -> Self {
        if v.len() <= PAYLOAD_INLINE_WORDS {
            PayloadBuf::from_slice(&v)
        } else {
            PayloadBuf(Repr::Spilled(v))
        }
    }
}

impl From<&[u64]> for PayloadBuf {
    fn from(words: &[u64]) -> Self {
        PayloadBuf::from_slice(words)
    }
}

impl<const N: usize> From<[u64; N]> for PayloadBuf {
    fn from(words: [u64; N]) -> Self {
        PayloadBuf::from_slice(&words)
    }
}

impl FromIterator<u64> for PayloadBuf {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut buf = PayloadBuf::new();
        for word in iter {
            buf.push(word);
        }
        buf
    }
}

impl PartialEq for PayloadBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PayloadBuf {}

impl PartialEq<Vec<u64>> for PayloadBuf {
    fn eq(&self, other: &Vec<u64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<PayloadBuf> for Vec<u64> {
    fn eq(&self, other: &PayloadBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u64]> for PayloadBuf {
    fn eq(&self, other: &[u64]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u64; N]> for PayloadBuf {
    fn eq(&self, other: &[u64; N]) -> bool {
        self.as_slice() == other
    }
}

/// Prints like a slice — identical text whether inline or spilled, so
/// `Debug`-based state fingerprints are representation-independent.
impl fmt::Debug for PayloadBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<'a> IntoIterator for &'a PayloadBuf {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut buf = PayloadBuf::new();
        for i in 0..PAYLOAD_INLINE_WORDS as u64 {
            buf.push(i);
            assert!(buf.is_inline());
        }
        assert_eq!(buf.len(), PAYLOAD_INLINE_WORDS);
        buf.push(99);
        assert!(!buf.is_inline());
        assert_eq!(buf.len(), PAYLOAD_INLINE_WORDS + 1);
        assert_eq!(buf[PAYLOAD_INLINE_WORDS], 99);
    }

    #[test]
    fn conversions_round_trip() {
        let v: Vec<u64> = (0..10).collect();
        let buf = PayloadBuf::from(v.clone());
        assert!(buf.is_inline());
        assert_eq!(buf, v);
        assert_eq!(v, buf);

        let big: Vec<u64> = (0..32).collect();
        let buf = PayloadBuf::from(big.clone());
        assert!(!buf.is_inline());
        assert_eq!(buf, big);

        let collected: PayloadBuf = (0..5u64).collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn debug_matches_slice_regardless_of_repr() {
        let inline = PayloadBuf::from_slice(&[1, 2, 3]);
        let spilled = {
            let mut b = PayloadBuf(Repr::Spilled(vec![1, 2, 3]));
            b.push(4);
            b.as_mut_slice();
            b
        };
        assert_eq!(format!("{inline:?}"), format!("{:?}", [1u64, 2, 3]));
        assert_eq!(format!("{spilled:?}"), format!("{:?}", [1u64, 2, 3, 4]));
    }

    #[test]
    fn deref_gives_slice_methods() {
        let mut buf = PayloadBuf::from_slice(&[5, 6]);
        assert_eq!(buf.iter().sum::<u64>(), 11);
        buf[0] = 7;
        assert_eq!(buf.to_vec(), vec![7, 6]);
        assert!(!buf.is_empty());
        assert!(PayloadBuf::new().is_empty());
    }
}
