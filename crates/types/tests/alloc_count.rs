//! Proof that the packet hot path is allocation-free for standard
//! Gen2 payloads (≤ 16 words): a counting global allocator wraps the
//! system allocator, and the build → CRC → pack → unpack cycle must
//! not allocate at all once payloads fit the `PayloadBuf` inline
//! capacity.
//!
//! Everything runs inside one `#[test]` so no concurrently-running
//! test can perturb the global counter.

use hmc_types::packet::payload_words;
use hmc_types::{
    crc32k, Cub, Flit, HmcResponse, HmcRqst, PayloadBuf, Request, Response, Slid, Tag,
    MAX_PACKET_FLITS, PAYLOAD_INLINE_WORDS,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn packet_cycle_is_allocation_free_within_inline_capacity() {
    // Warm up lazily-initialized state (the CRC table) and touch
    // every code path once before counting.
    let warm = Request::new(
        HmcRqst::Wr128,
        Tag::new(5).unwrap(),
        0x1000,
        Cub::new(0).unwrap(),
        PayloadBuf::from_slice(&[7; 16]),
    )
    .unwrap();
    let mut flits = [Flit::ZERO; MAX_PACKET_FLITS];
    let n = warm.pack_into(&mut flits);
    let _ = Request::unpack(&flits[..n]).unwrap();

    // The full per-packet cycle for the largest standard command
    // (WR128 = 16 payload words): build, clone, pack with CRC,
    // unpack with CRC verification, read the payload back.
    let count = allocations_in(|| {
        let payload = PayloadBuf::from_slice(&[0xAB; 16]);
        assert!(payload.is_inline());
        let req = Request::new(
            HmcRqst::Wr128,
            Tag::new(9).unwrap(),
            0x2000,
            Cub::new(1).unwrap(),
            payload,
        )
        .unwrap();
        assert_eq!(payload_words(req.head.lng), 16);
        let copy = req.clone();
        let mut flits = [Flit::ZERO; MAX_PACKET_FLITS];
        let n = copy.pack_into(&mut flits);
        assert_eq!(n, 9);
        let back = Request::unpack(&flits[..n]).unwrap();
        assert!(back.payload.is_inline());
        assert_eq!(back.payload, req.payload);
    });
    assert_eq!(count, 0, "request cycle allocated {count} times");

    // Same for responses (RD128 response = 16 payload words).
    let count = allocations_in(|| {
        let rsp = Response::new(
            HmcResponse::RdRs,
            Tag::new(3).unwrap(),
            Slid::new(2).unwrap(),
            Cub::new(0).unwrap(),
            PayloadBuf::from_slice(&[0x55; 16]),
        )
        .unwrap();
        let copy = rsp.clone();
        let mut flits = [Flit::ZERO; MAX_PACKET_FLITS];
        let n = copy.pack_into(&mut flits);
        assert_eq!(n, 9);
        let back = Response::unpack(&flits[..n]).unwrap();
        assert!(back.payload.is_inline());
        assert_eq!(back.payload, rsp.payload);
    });
    assert_eq!(count, 0, "response cycle allocated {count} times");

    // The streaming CRC itself is allocation-free.
    let words = [0xDEAD_BEEFu64; 8];
    let count = allocations_in(|| {
        let _ = hmc_types::crc::packet_crc(&words);
        let _ = crc32k(&[1, 2, 3]);
    });
    assert_eq!(count, 0, "CRC allocated {count} times");

    // Oversized CMC payloads (> 16 words) are the only case allowed
    // to touch the heap.
    let big: Vec<u64> = (0..2 * (MAX_PACKET_FLITS as u64 - 1)).collect();
    let spilled = PayloadBuf::from(big);
    assert!(!spilled.is_inline());
    assert_eq!(spilled.len(), 32);
    assert!(PAYLOAD_INLINE_WORDS < spilled.len());
}
