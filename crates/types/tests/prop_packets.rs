//! Property tests for packet encode/decode invariants.

use hmc_types::packet::{payload_words, MAX_ADDR};
use hmc_types::{
    crc32k, Cub, HmcError, HmcResponse, HmcRqst, ReqHead, ReqTail, Request, Response, RspHead,
    RspTail, Slid, Tag,
};
use proptest::prelude::*;

fn arb_tag() -> impl Strategy<Value = Tag> {
    (0u32..hmc_types::TAG_SPACE).prop_map(|v| Tag::new(v).unwrap())
}

fn arb_cub() -> impl Strategy<Value = Cub> {
    (0u8..8).prop_map(|v| Cub::new(v).unwrap())
}

fn arb_slid() -> impl Strategy<Value = Slid> {
    (0u8..8).prop_map(|v| Slid::new(v).unwrap())
}

fn arb_standard_cmd() -> impl Strategy<Value = HmcRqst> {
    prop::sample::select(HmcRqst::STANDARD.to_vec())
}

proptest! {
    #[test]
    fn req_head_encode_decode_round_trip(
        cmd in arb_standard_cmd(),
        tag in arb_tag(),
        addr in 0u64..=MAX_ADDR,
        cub in arb_cub(),
    ) {
        let head = ReqHead::new(cmd, tag, addr, cub);
        prop_assert_eq!(ReqHead::decode(head.encode()).unwrap(), head);
    }

    #[test]
    fn req_head_cmc_encode_decode_round_trip(
        code in prop::sample::select(HmcRqst::cmc_codes().collect::<Vec<_>>()),
        lng in 1u8..=17,
        tag in arb_tag(),
        addr in 0u64..=MAX_ADDR,
        cub in arb_cub(),
    ) {
        let head = ReqHead::new_cmc(code, lng, tag, addr, cub);
        prop_assert_eq!(ReqHead::decode(head.encode()).unwrap(), head);
    }

    #[test]
    fn req_tail_encode_decode_round_trip(
        rrp in any::<u8>(), frp in any::<u8>(), seq in 0u8..8,
        pb in any::<bool>(), slid in arb_slid(), rtc in 0u8..32,
        crc in any::<u32>(),
    ) {
        let tail = ReqTail { rrp, frp, seq, pb, slid, rtc, crc };
        prop_assert_eq!(ReqTail::decode(tail.encode()).unwrap(), tail);
    }

    #[test]
    fn rsp_head_encode_decode_round_trip(
        code in 1u8..=255,
        lng in 1u8..=17,
        tag in arb_tag(),
        af in any::<bool>(),
        slid in arb_slid(),
        cub in arb_cub(),
    ) {
        let cmd = HmcResponse::from_code(code).unwrap();
        let head = RspHead { cmd, lng, tag, af, slid, cub };
        prop_assert_eq!(RspHead::decode(head.encode()).unwrap(), head);
    }

    #[test]
    fn rsp_tail_encode_decode_round_trip(
        rrp in any::<u8>(), frp in any::<u8>(), seq in 0u8..8,
        dinv in any::<bool>(), errstat in 0u8..128, rtc in 0u8..32,
        crc in any::<u32>(),
    ) {
        let tail = RspTail { rrp, frp, seq, dinv, errstat, rtc, crc };
        prop_assert_eq!(RspTail::decode(tail.encode()), tail);
    }

    #[test]
    fn request_pack_unpack_round_trip(
        cmd in arb_standard_cmd(),
        tag in arb_tag(),
        addr in 0u64..=MAX_ADDR,
        cub in arb_cub(),
        seed in any::<u64>(),
    ) {
        let info = cmd.fixed_info().unwrap();
        let words = payload_words(info.rqst_flits);
        let payload: Vec<u64> =
            (0..words as u64).map(|i| seed.wrapping_mul(i + 1)).collect();
        let req = Request::new(cmd, tag, addr, cub, payload).unwrap();
        let back = Request::unpack(&req.pack()).unwrap();
        prop_assert_eq!(back.head, req.head);
        prop_assert_eq!(back.payload, req.payload);
    }

    #[test]
    fn corrupting_any_packet_bit_breaks_crc_or_structure(
        tag in arb_tag(),
        addr in 0u64..=MAX_ADDR,
        word in 0usize..4,
        bit in 0u32..64,
    ) {
        // WR16 is a 2-flit packet = 4 words; flip any single bit.
        let req = Request::new(
            HmcRqst::Wr16, tag, addr, Cub::new(0).unwrap(), vec![0xAB, 0xCD],
        ).unwrap();
        let mut flits = req.pack();
        flits[word / 2].words[word % 2] ^= 1u64 << bit;
        match Request::unpack(&flits) {
            // Either the CRC catches it or a field becomes invalid.
            Err(_) => {}
            Ok(back) => {
                // The only undetectable flips would be inside the CRC
                // field itself combined with a colliding recompute,
                // which cannot happen for a single-bit flip.
                prop_assert!(
                    back != req,
                    "single-bit corruption silently preserved packet"
                );
                prop_assert!(false, "corruption not detected");
            }
        }
    }

    #[test]
    fn response_pack_unpack_round_trip(
        tag in arb_tag(),
        slid in arb_slid(),
        cub in arb_cub(),
        n_flits in 1usize..=17,
        seed in any::<u64>(),
    ) {
        let payload: Vec<u64> =
            (0..2 * (n_flits as u64 - 1)).map(|i| seed.rotate_left(i as u32)).collect();
        let rsp = Response::new(HmcResponse::RdRs, tag, slid, cub, payload).unwrap();
        prop_assert_eq!(rsp.flits() as usize, n_flits);
        let back = Response::unpack(&rsp.pack()).unwrap();
        prop_assert_eq!(back.head, rsp.head);
        prop_assert_eq!(back.payload, rsp.payload);
    }

    #[test]
    fn crc_differs_on_appended_byte(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let base = crc32k(&data);
        let mut longer = data.clone();
        longer.push(0);
        // Appending a zero byte must change the CRC (length is encoded
        // in the rolling state thanks to the all-ones init).
        prop_assert_ne!(crc32k(&longer), base);
    }

    #[test]
    fn from_code_is_total_on_seven_bits(code in 0u8..128) {
        let cmd = HmcRqst::from_code(code).unwrap();
        prop_assert_eq!(cmd.code(), code);
    }

    #[test]
    fn tag_pool_never_hands_out_duplicates(
        capacity in 1u32..64,
        ops in prop::collection::vec(any::<bool>(), 0..256),
    ) {
        let mut pool = hmc_types::TagPool::with_capacity(capacity);
        let mut live = std::collections::HashSet::new();
        for acquire in ops {
            if acquire {
                match pool.acquire() {
                    Ok(t) => prop_assert!(live.insert(t), "duplicate live tag"),
                    Err(e) => prop_assert!(matches!(e, HmcError::TagsExhausted)),
                }
            } else if let Some(&t) = live.iter().next() {
                live.remove(&t);
                pool.release(t).unwrap();
            }
            prop_assert_eq!(pool.in_flight(), live.len());
        }
    }
}
