//! # hmc-mem
//!
//! The memory substrate for hmcsim-rs: a sparse byte-addressable
//! backing store sized to a cube's capacity ([`SparseMemory`]) and the
//! read-modify-write semantics of every Gen2 atomic memory operation
//! ([`amo`]), executed "in the logic layer" exactly as the vault
//! controllers of HMC-Sim do.
//!
//! ```
//! use hmc_mem::SparseMemory;
//! use hmc_types::HmcRqst;
//!
//! let mem = SparseMemory::new(4 << 30); // a 4 GiB cube
//! mem.write_u64(0x100, 41).unwrap();
//! let out = hmc_mem::amo::execute(HmcRqst::Inc8, &mem, 0x100, &[]).unwrap();
//! assert_eq!(mem.read_u64(0x100).unwrap(), 42);
//! assert!(out.payload.is_empty()); // INC8 acks with a bare WR_RS
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod amo;
pub mod store;

pub use amo::{execute, AmoResult};
pub use store::SparseMemory;
