//! Sparse byte-addressable backing store.
//!
//! A cube holds 4 or 8 GiB; simulations touch a tiny fraction of it, so
//! the store allocates 4 KiB pages on first write. Unwritten memory
//! reads as zero, matching HMC-Sim's calloc'd vault storage.
//!
//! The page table is split across a fixed number of mutex-guarded
//! shards (`page_id % SHARD_COUNT`) so the parallel tick engine's vault
//! workers can read *and* write through a shared `&SparseMemory`.
//! Every access method therefore takes `&self`; the mutation methods
//! keep their old names. Within one simulated cycle the engine only
//! runs data-independent accesses concurrently (conflicting cycles fall
//! back to the sequential reference path), so shard locking is a memory
//! -safety device, not an ordering device — results never depend on
//! lock acquisition order.

use hmc_types::HmcError;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Size of one lazily-allocated page in bytes.
pub const PAGE_BYTES: usize = 4096;

/// Number of page-table shards. A small power of two: enough to keep
/// vault workers off each other's locks, few enough that cloning and
/// digesting stay cheap.
const SHARD_COUNT: usize = 16;

type PageMap = HashMap<u64, Box<[u8; PAGE_BYTES]>>;

/// A sparse, zero-initialized, byte-addressable memory of fixed
/// capacity. Shareable across threads: all accessors take `&self`.
#[derive(Default)]
pub struct SparseMemory {
    shards: Vec<Mutex<PageMap>>,
    capacity: u64,
}

impl SparseMemory {
    /// Creates a store of `capacity` bytes. All bytes read as zero
    /// until written.
    pub fn new(capacity: u64) -> Self {
        SparseMemory {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(PageMap::new())).collect(),
            capacity,
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    #[inline]
    fn shard(&self, page: u64) -> &Mutex<PageMap> {
        // `Default` builds an empty shard vector; treat it as a
        // zero-capacity store that never materializes pages.
        &self.shards[page as usize % self.shards.len()]
    }

    /// Number of pages materialized so far (for memory-footprint
    /// diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Deterministic digest of the resident content: page indices and
    /// bytes hashed in ascending page order, so two stores holding the
    /// same pages produce the same digest regardless of the order the
    /// pages were materialized in. Used by checkpoint/replay equality
    /// checks.
    pub fn content_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.capacity.hash(&mut h);
        let mut ids: Vec<u64> = Vec::new();
        for shard in &self.shards {
            ids.extend(shard.lock().keys().copied());
        }
        ids.sort_unstable();
        for id in ids {
            id.hash(&mut h);
            let shard = self.shard(id).lock();
            shard[&id][..].hash(&mut h);
        }
        h.finish()
    }

    /// Every resident page as `(page_id, bytes)`, sorted by page id —
    /// the checkpoint exporter's view. All materialized pages are
    /// included, even all-zero ones, because `resident_pages` (and
    /// therefore the `Debug` output and `content_digest`) counts them.
    pub fn export_pages(&self) -> Vec<(u64, Box<[u8; PAGE_BYTES]>)> {
        let mut pages: Vec<(u64, Box<[u8; PAGE_BYTES]>)> = Vec::new();
        for shard in &self.shards {
            for (id, page) in shard.lock().iter() {
                pages.push((*id, page.clone()));
            }
        }
        pages.sort_unstable_by_key(|(id, _)| *id);
        pages
    }

    /// Materializes `page_id` with exactly `bytes`, replacing any
    /// existing content (checkpoint restore). Rejects pages beyond the
    /// store's capacity.
    pub fn insert_page(&self, page_id: u64, bytes: &[u8; PAGE_BYTES]) -> Result<(), HmcError> {
        let start = page_id
            .checked_mul(PAGE_BYTES as u64)
            .ok_or(HmcError::AddressOutOfRange(page_id))?;
        self.check_range(start, PAGE_BYTES.min(self.capacity.saturating_sub(start) as usize))?;
        if start >= self.capacity {
            return Err(HmcError::AddressOutOfRange(start));
        }
        self.shard(page_id).lock().insert(page_id, Box::new(*bytes));
        Ok(())
    }

    fn check_range(&self, addr: u64, len: usize) -> Result<(), HmcError> {
        let end = addr
            .checked_add(len as u64)
            .ok_or(HmcError::AddressOutOfRange(addr))?;
        if end > self.capacity {
            return Err(HmcError::AddressOutOfRange(addr));
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), HmcError> {
        self.check_range(addr, buf.len())?;
        let mut off = 0usize;
        while off < buf.len() {
            let cur = addr + off as u64;
            let page = cur / PAGE_BYTES as u64;
            let in_page = (cur % PAGE_BYTES as u64) as usize;
            let n = (PAGE_BYTES - in_page).min(buf.len() - off);
            match self.shard(page).lock().get(&page) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`, materializing pages as needed.
    pub fn write(&self, addr: u64, buf: &[u8]) -> Result<(), HmcError> {
        self.check_range(addr, buf.len())?;
        let mut off = 0usize;
        while off < buf.len() {
            let cur = addr + off as u64;
            let page = cur / PAGE_BYTES as u64;
            let in_page = (cur % PAGE_BYTES as u64) as usize;
            let n = (PAGE_BYTES - in_page).min(buf.len() - off);
            let mut shard = self.shard(page).lock();
            let p = shard
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            p[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            off += n;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr` (no alignment required).
    pub fn read_u64(&self, addr: u64) -> Result<u64, HmcError> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&self, addr: u64, value: u64) -> Result<(), HmcError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u128` (one 16-byte DRAM block) at `addr`.
    pub fn read_u128(&self, addr: u64) -> Result<u128, HmcError> {
        let mut b = [0u8; 16];
        self.read(addr, &mut b)?;
        Ok(u128::from_le_bytes(b))
    }

    /// Writes a little-endian `u128` at `addr`.
    pub fn write_u128(&self, addr: u64, value: u128) -> Result<(), HmcError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads `n` little-endian 64-bit words starting at `addr`.
    pub fn read_words(&self, addr: u64, n: usize) -> Result<Vec<u64>, HmcError> {
        let mut bytes = vec![0u8; n * 8];
        self.read(addr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    /// Writes 64-bit words starting at `addr`.
    pub fn write_words(&self, addr: u64, words: &[u64]) -> Result<(), HmcError> {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.write(addr, &bytes)
    }
}

impl Clone for SparseMemory {
    fn clone(&self) -> Self {
        SparseMemory {
            shards: self.shards.iter().map(|s| Mutex::new(s.lock().clone())).collect(),
            capacity: self.capacity,
        }
    }
}

impl std::fmt::Debug for SparseMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Page contents are excluded on purpose: checkpoint equality
        // goes through `content_digest()`, and the derived map output
        // would be iteration-order dependent anyway.
        f.debug_struct("SparseMemory")
            .field("capacity", &self.capacity)
            .field("resident_pages", &self.resident_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = SparseMemory::new(1 << 20);
        assert_eq!(mem.read_u64(0x500).unwrap(), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mem = SparseMemory::new(1 << 20);
        mem.write(0x100, b"hybrid memory cube").unwrap();
        let mut buf = [0u8; 18];
        mem.read(0x100, &mut buf).unwrap();
        assert_eq!(&buf, b"hybrid memory cube");
    }

    #[test]
    fn cross_page_access() {
        let mem = SparseMemory::new(1 << 20);
        let addr = PAGE_BYTES as u64 - 4;
        mem.write_u64(addr, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.read_u64(addr).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn capacity_enforced() {
        let mem = SparseMemory::new(4096);
        assert!(mem.write_u64(4092, 1).is_err());
        assert!(mem.read_u64(4092).is_err());
        assert!(mem.write_u64(4088, 1).is_ok());
    }

    #[test]
    fn overflow_addr_rejected() {
        let mem = SparseMemory::new(u64::MAX);
        let mut b = [0u8; 16];
        assert!(mem.read(u64::MAX - 4, &mut b).is_err());
    }

    #[test]
    fn u128_round_trip() {
        let mem = SparseMemory::new(1 << 16);
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        mem.write_u128(0x40, v).unwrap();
        assert_eq!(mem.read_u128(0x40).unwrap(), v);
        // Little-endian halves land as two u64s.
        assert_eq!(mem.read_u64(0x40).unwrap(), v as u64);
        assert_eq!(mem.read_u64(0x48).unwrap(), (v >> 64) as u64);
    }

    #[test]
    fn word_vector_round_trip() {
        let mem = SparseMemory::new(1 << 16);
        let words: Vec<u64> = (0..32).map(|i| i * 0x0101_0101).collect();
        mem.write_words(0x200, &words).unwrap();
        assert_eq!(mem.read_words(0x200, 32).unwrap(), words);
    }

    #[test]
    fn sparse_pages_only_materialize_on_write() {
        let mem = SparseMemory::new(4 << 30);
        mem.write_u64(3 << 30, 7).unwrap();
        assert_eq!(mem.resident_pages(), 1);
        assert_eq!(mem.read_u64(1 << 30).unwrap(), 0);
        assert_eq!(mem.resident_pages(), 1, "reads do not allocate");
    }

    #[test]
    fn digest_is_materialization_order_independent() {
        let a = SparseMemory::new(1 << 24);
        let b = SparseMemory::new(1 << 24);
        for i in 0..64u64 {
            a.write_u64(i * 4096, i).unwrap();
            b.write_u64((63 - i) * 4096, 63 - i).unwrap();
        }
        assert_eq!(a.content_digest(), b.content_digest());
        b.write_u64(0, 99).unwrap();
        assert_ne!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn shared_reference_writes_from_threads() {
        let mem = std::sync::Arc::new(SparseMemory::new(1 << 24));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let m = std::sync::Arc::clone(&mem);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        m.write_u64((t << 20) + i * 8, t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in 0..256u64 {
                assert_eq!(mem.read_u64((t << 20) + i * 8).unwrap(), t * 1000 + i);
            }
        }
    }
}
