//! Gen2 atomic memory operation (AMO) semantics.
//!
//! Each AMO is a read-modify-write performed by the vault controller
//! in the cube's logic layer (paper §III). [`execute`] applies one AMO
//! to the backing store and produces the response payload and the
//! atomic flag (AF) bit.
//!
//! Operand conventions (all little-endian):
//!
//! * `2ADD8` family — payload = two 8-byte signed immediates, added to
//!   the two 8-byte values at `addr` and `addr+8`. The `R` variant
//!   returns the two *original* values (fetch-and-add).
//! * `ADD16` family — payload = one 16-byte signed immediate added to
//!   the 16-byte value at `addr`; `R` variant returns the original.
//! * `INC8` — no payload; increments the 8-byte value at `addr`.
//! * Boolean 16-byte ops — payload = one 16-byte operand; the response
//!   carries the original 16 bytes.
//! * CAS family — payload word 0 = swap value, word 1 = compare value
//!   (8-byte ops) or words 0..2 = 16-byte swap value (`CASZERO16`).
//!   The response carries the original memory value; AF is set when
//!   the swap occurred.
//! * `EQ8`/`EQ16` — payload = comparand; 1-FLIT response with AF set
//!   on equality.
//! * `BWR` family — payload word 0 = data, word 1 = bit mask;
//!   `mem = (mem & !mask) | (data & mask)`. `BWR8R` returns the
//!   original 8 bytes.
//! * `SWAP16` — payload = 16-byte new value; returns the original.

use crate::store::SparseMemory;
use hmc_types::{HmcError, HmcRqst};

/// Result of executing an AMO: the response data payload (already in
/// 64-bit words, padded to whole FLITs by the caller's packetizer) and
/// the atomic flag.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AmoResult {
    /// Response data words (empty for ack-only AMOs such as INC8/EQ8).
    pub payload: Vec<u64>,
    /// The AF (atomic flag) bit: comparison outcome for CAS/EQ ops.
    pub af: bool,
}

fn check_align(addr: u64, align: u64) -> Result<(), HmcError> {
    if !addr.is_multiple_of(align) {
        return Err(HmcError::UnalignedAddress { addr, align });
    }
    Ok(())
}

fn want_operands(cmd: HmcRqst, got: usize, want: usize) -> Result<(), HmcError> {
    if got != want {
        return Err(HmcError::MalformedPacket(format!(
            "{cmd} expects {want} operand words, got {got}"
        )));
    }
    Ok(())
}

/// Executes one atomic memory operation against `mem`.
///
/// `operand` is the request's data payload in 64-bit words (2 words
/// for 2-FLIT atomics, empty for INC8). Returns the response payload
/// and AF bit; rejects non-atomic commands, misaligned addresses and
/// malformed operand lengths.
pub fn execute(
    cmd: HmcRqst,
    mem: &SparseMemory,
    addr: u64,
    operand: &[u64],
) -> Result<AmoResult, HmcError> {
    match cmd {
        // ---- dual 8-byte signed add immediate ----
        HmcRqst::TwoAdd8 | HmcRqst::P2Add8 | HmcRqst::TwoAddS8R => {
            check_align(addr, 16)?;
            want_operands(cmd, operand.len(), 2)?;
            let old0 = mem.read_u64(addr)?;
            let old1 = mem.read_u64(addr + 8)?;
            mem.write_u64(addr, (old0 as i64).wrapping_add(operand[0] as i64) as u64)?;
            mem.write_u64(addr + 8, (old1 as i64).wrapping_add(operand[1] as i64) as u64)?;
            let payload = if cmd == HmcRqst::TwoAddS8R { vec![old0, old1] } else { vec![] };
            Ok(AmoResult { payload, af: false })
        }
        // ---- single 16-byte signed add immediate ----
        HmcRqst::Add16 | HmcRqst::PAdd16 | HmcRqst::AddS16R => {
            check_align(addr, 16)?;
            want_operands(cmd, operand.len(), 2)?;
            let old = mem.read_u128(addr)?;
            let imm = (operand[0] as u128) | ((operand[1] as u128) << 64);
            mem.write_u128(addr, (old as i128).wrapping_add(imm as i128) as u128)?;
            let payload = if cmd == HmcRqst::AddS16R {
                vec![old as u64, (old >> 64) as u64]
            } else {
                vec![]
            };
            Ok(AmoResult { payload, af: false })
        }
        // ---- 8-byte increment ----
        HmcRqst::Inc8 | HmcRqst::PInc8 => {
            check_align(addr, 8)?;
            want_operands(cmd, operand.len(), 0)?;
            let old = mem.read_u64(addr)?;
            mem.write_u64(addr, old.wrapping_add(1))?;
            Ok(AmoResult::default())
        }
        // ---- 16-byte boolean ops (return original data) ----
        HmcRqst::Xor16 | HmcRqst::Or16 | HmcRqst::Nor16 | HmcRqst::And16 | HmcRqst::Nand16 => {
            check_align(addr, 16)?;
            want_operands(cmd, operand.len(), 2)?;
            let old = mem.read_u128(addr)?;
            let op = (operand[0] as u128) | ((operand[1] as u128) << 64);
            let new = match cmd {
                HmcRqst::Xor16 => old ^ op,
                HmcRqst::Or16 => old | op,
                HmcRqst::Nor16 => !(old | op),
                HmcRqst::And16 => old & op,
                HmcRqst::Nand16 => !(old & op),
                _ => unreachable!("boolean arm"),
            };
            mem.write_u128(addr, new)?;
            Ok(AmoResult { payload: vec![old as u64, (old >> 64) as u64], af: false })
        }
        // ---- 8-byte compare-and-swap family ----
        HmcRqst::CasGt8 | HmcRqst::CasLt8 | HmcRqst::CasEq8 => {
            check_align(addr, 8)?;
            want_operands(cmd, operand.len(), 2)?;
            let (swap, cmp) = (operand[0], operand[1]);
            let old = mem.read_u64(addr)?;
            let hit = match cmd {
                HmcRqst::CasGt8 => (old as i64) > (cmp as i64),
                HmcRqst::CasLt8 => (old as i64) < (cmp as i64),
                HmcRqst::CasEq8 => old == cmp,
                _ => unreachable!("cas8 arm"),
            };
            if hit {
                mem.write_u64(addr, swap)?;
            }
            Ok(AmoResult { payload: vec![old, 0], af: hit })
        }
        // ---- 16-byte compare-and-swap family ----
        HmcRqst::CasGt16 | HmcRqst::CasLt16 | HmcRqst::CasZero16 => {
            check_align(addr, 16)?;
            want_operands(cmd, operand.len(), 2)?;
            let swap = (operand[0] as u128) | ((operand[1] as u128) << 64);
            let old = mem.read_u128(addr)?;
            let hit = match cmd {
                // 16-byte comparisons are against the swap operand
                // itself (the spec's "CAS if greater/less than").
                HmcRqst::CasGt16 => (old as i128) > (swap as i128),
                HmcRqst::CasLt16 => (old as i128) < (swap as i128),
                HmcRqst::CasZero16 => old == 0,
                _ => unreachable!("cas16 arm"),
            };
            if hit {
                mem.write_u128(addr, swap)?;
            }
            Ok(AmoResult { payload: vec![old as u64, (old >> 64) as u64], af: hit })
        }
        // ---- equality probes (ack-only responses, AF = outcome) ----
        HmcRqst::Eq8 => {
            check_align(addr, 8)?;
            want_operands(cmd, operand.len(), 2)?;
            let old = mem.read_u64(addr)?;
            Ok(AmoResult { payload: vec![], af: old == operand[0] })
        }
        HmcRqst::Eq16 => {
            check_align(addr, 16)?;
            want_operands(cmd, operand.len(), 2)?;
            let old = mem.read_u128(addr)?;
            let cmp = (operand[0] as u128) | ((operand[1] as u128) << 64);
            Ok(AmoResult { payload: vec![], af: old == cmp })
        }
        // ---- 8-byte bit write ----
        HmcRqst::Bwr | HmcRqst::PBwr | HmcRqst::Bwr8R => {
            check_align(addr, 8)?;
            want_operands(cmd, operand.len(), 2)?;
            let (data, mask) = (operand[0], operand[1]);
            let old = mem.read_u64(addr)?;
            mem.write_u64(addr, (old & !mask) | (data & mask))?;
            let payload = if cmd == HmcRqst::Bwr8R { vec![old, 0] } else { vec![] };
            Ok(AmoResult { payload, af: false })
        }
        // ---- 16-byte swap/exchange ----
        HmcRqst::Swap16 => {
            check_align(addr, 16)?;
            want_operands(cmd, operand.len(), 2)?;
            let new = (operand[0] as u128) | ((operand[1] as u128) << 64);
            let old = mem.read_u128(addr)?;
            mem.write_u128(addr, new)?;
            Ok(AmoResult { payload: vec![old as u64, (old >> 64) as u64], af: false })
        }
        other => Err(HmcError::MalformedPacket(format!(
            "{other} is not an atomic memory operation"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> SparseMemory {
        SparseMemory::new(1 << 20)
    }

    #[test]
    fn two_add8_adds_both_lanes() {
        let m = mem();
        m.write_u64(0x40, 100).unwrap();
        m.write_u64(0x48, u64::MAX).unwrap(); // -1 as i64
        let r = execute(HmcRqst::TwoAdd8, &m, 0x40, &[5, 2]).unwrap();
        assert!(r.payload.is_empty());
        assert_eq!(m.read_u64(0x40).unwrap(), 105);
        assert_eq!(m.read_u64(0x48).unwrap(), 1);
    }

    #[test]
    fn two_adds8r_returns_originals() {
        let m = mem();
        m.write_u64(0x40, 7).unwrap();
        m.write_u64(0x48, 9).unwrap();
        let r = execute(HmcRqst::TwoAddS8R, &m, 0x40, &[1, 1]).unwrap();
        assert_eq!(r.payload, vec![7, 9]);
        assert_eq!(m.read_u64(0x40).unwrap(), 8);
    }

    #[test]
    fn two_add8_negative_immediate() {
        let m = mem();
        m.write_u64(0x40, 10).unwrap();
        let minus_three = (-3i64) as u64;
        execute(HmcRqst::P2Add8, &m, 0x40, &[minus_three, 0]).unwrap();
        assert_eq!(m.read_u64(0x40).unwrap(), 7);
    }

    #[test]
    fn add16_full_width_carry() {
        let m = mem();
        m.write_u128(0x40, u64::MAX as u128).unwrap();
        execute(HmcRqst::Add16, &m, 0x40, &[1, 0]).unwrap();
        assert_eq!(m.read_u128(0x40).unwrap(), (u64::MAX as u128) + 1);
    }

    #[test]
    fn adds16r_returns_original() {
        let m = mem();
        m.write_u128(0x40, 0xAAAA_0000_BBBBu128).unwrap();
        let r = execute(HmcRqst::AddS16R, &m, 0x40, &[1, 0]).unwrap();
        assert_eq!(r.payload, vec![0xAAAA_0000_BBBB, 0]);
    }

    #[test]
    fn inc8_wraps() {
        let m = mem();
        m.write_u64(0x8, u64::MAX).unwrap();
        execute(HmcRqst::Inc8, &m, 0x8, &[]).unwrap();
        assert_eq!(m.read_u64(0x8).unwrap(), 0);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn boolean_ops_semantics() {
        let cases: [(HmcRqst, fn(u128, u128) -> u128); 5] = [
            (HmcRqst::Xor16, |a, b| a ^ b),
            (HmcRqst::Or16, |a, b| a | b),
            (HmcRqst::Nor16, |a, b| !(a | b)),
            (HmcRqst::And16, |a, b| a & b),
            (HmcRqst::Nand16, |a, b| !(a & b)),
        ];
        for (cmd, f) in cases {
            let m = mem();
            let init = 0xF0F0_F0F0_F0F0_F0F0_0F0F_0F0F_0F0F_0F0Fu128;
            let op = 0x00FF_00FF_00FF_00FF_FF00_FF00_FF00_FF00u128;
            m.write_u128(0x40, init).unwrap();
            let r = execute(cmd, &m, 0x40, &[op as u64, (op >> 64) as u64]).unwrap();
            assert_eq!(m.read_u128(0x40).unwrap(), f(init, op), "{cmd}");
            assert_eq!(r.payload, vec![init as u64, (init >> 64) as u64], "{cmd} returns old");
        }
    }

    #[test]
    fn caseq8_swaps_only_on_equality() {
        let m = mem();
        m.write_u64(0x40, 5).unwrap();
        let miss = execute(HmcRqst::CasEq8, &m, 0x40, &[99, 4]).unwrap();
        assert!(!miss.af);
        assert_eq!(m.read_u64(0x40).unwrap(), 5);
        let hit = execute(HmcRqst::CasEq8, &m, 0x40, &[99, 5]).unwrap();
        assert!(hit.af);
        assert_eq!(hit.payload[0], 5);
        assert_eq!(m.read_u64(0x40).unwrap(), 99);
    }

    #[test]
    fn casgt8_signed_comparison() {
        let m = mem();
        m.write_u64(0x40, (-2i64) as u64).unwrap();
        // mem (-2) > cmp (-5) -> swap
        let r = execute(HmcRqst::CasGt8, &m, 0x40, &[1, (-5i64) as u64]).unwrap();
        assert!(r.af);
        assert_eq!(m.read_u64(0x40).unwrap(), 1);
        // mem (1) > cmp (3)? no
        let r = execute(HmcRqst::CasGt8, &m, 0x40, &[7, 3]).unwrap();
        assert!(!r.af);
        assert_eq!(m.read_u64(0x40).unwrap(), 1);
    }

    #[test]
    fn caslt8() {
        let m = mem();
        m.write_u64(0x40, 3).unwrap();
        let r = execute(HmcRqst::CasLt8, &m, 0x40, &[10, 5]).unwrap();
        assert!(r.af, "3 < 5 swaps");
        assert_eq!(m.read_u64(0x40).unwrap(), 10);
    }

    #[test]
    fn caszero16() {
        let m = mem();
        let r = execute(HmcRqst::CasZero16, &m, 0x40, &[0xAB, 0xCD]).unwrap();
        assert!(r.af, "zero memory swaps");
        assert_eq!(m.read_u64(0x40).unwrap(), 0xAB);
        assert_eq!(m.read_u64(0x48).unwrap(), 0xCD);
        let r = execute(HmcRqst::CasZero16, &m, 0x40, &[1, 1]).unwrap();
        assert!(!r.af, "nonzero memory does not swap");
        assert_eq!(r.payload, vec![0xAB, 0xCD], "returns original");
    }

    #[test]
    fn cas16_signed_comparisons() {
        let m = mem();
        m.write_u128(0x40, (-4i128) as u128).unwrap();
        // mem (-4) < swap (10) -> CASLT16 swaps
        let r = execute(HmcRqst::CasLt16, &m, 0x40, &[10, 0]).unwrap();
        assert!(r.af);
        assert_eq!(m.read_u128(0x40).unwrap(), 10);
        // mem (10) > swap (3) -> CASGT16 swaps
        let r = execute(HmcRqst::CasGt16, &m, 0x40, &[3, 0]).unwrap();
        assert!(r.af);
        assert_eq!(m.read_u128(0x40).unwrap(), 3);
    }

    #[test]
    fn eq_probes() {
        let m = mem();
        m.write_u64(0x40, 0x77).unwrap();
        assert!(execute(HmcRqst::Eq8, &m, 0x40, &[0x77, 0]).unwrap().af);
        assert!(!execute(HmcRqst::Eq8, &m, 0x40, &[0x78, 0]).unwrap().af);
        m.write_u128(0x80, 0x1234_0000_5678u128).unwrap();
        assert!(execute(HmcRqst::Eq16, &m, 0x80, &[0x1234_0000_5678, 0]).unwrap().af);
        assert!(!execute(HmcRqst::Eq16, &m, 0x80, &[0, 1]).unwrap().af);
    }

    #[test]
    fn bit_write_masks() {
        let m = mem();
        m.write_u64(0x40, 0xFFFF_FFFF_FFFF_FFFF).unwrap();
        execute(HmcRqst::Bwr, &m, 0x40, &[0x0000_0000_AAAA_0000, 0x0000_0000_FFFF_0000])
            .unwrap();
        assert_eq!(m.read_u64(0x40).unwrap(), 0xFFFF_FFFF_AAAA_FFFF);
    }

    #[test]
    fn bwr8r_returns_original() {
        let m = mem();
        m.write_u64(0x40, 0x1111).unwrap();
        let r = execute(HmcRqst::Bwr8R, &m, 0x40, &[0xFF, 0xFF]).unwrap();
        assert_eq!(r.payload[0], 0x1111);
        assert_eq!(m.read_u64(0x40).unwrap(), 0x11FF);
    }

    #[test]
    fn swap16_exchanges() {
        let m = mem();
        m.write_u128(0x40, 111).unwrap();
        let r = execute(HmcRqst::Swap16, &m, 0x40, &[222, 0]).unwrap();
        assert_eq!(r.payload, vec![111, 0]);
        assert_eq!(m.read_u128(0x40).unwrap(), 222);
    }

    #[test]
    fn alignment_enforced() {
        let m = mem();
        assert!(matches!(
            execute(HmcRqst::Inc8, &m, 0x41, &[]),
            Err(HmcError::UnalignedAddress { align: 8, .. })
        ));
        assert!(matches!(
            execute(HmcRqst::Add16, &m, 0x48, &[0, 0]),
            Err(HmcError::UnalignedAddress { align: 16, .. })
        ));
    }

    #[test]
    fn operand_arity_enforced() {
        let m = mem();
        assert!(execute(HmcRqst::Inc8, &m, 0x40, &[1]).is_err());
        assert!(execute(HmcRqst::Add16, &m, 0x40, &[1]).is_err());
        assert!(execute(HmcRqst::CasEq8, &m, 0x40, &[1, 2, 3]).is_err());
    }

    #[test]
    fn non_atomic_command_rejected() {
        let m = mem();
        assert!(execute(HmcRqst::Rd64, &m, 0x40, &[]).is_err());
        assert!(execute(HmcRqst::Cmc(125), &m, 0x40, &[]).is_err());
    }

    #[test]
    fn posted_variants_mutate_without_payload() {
        let m = mem();
        for cmd in [HmcRqst::P2Add8, HmcRqst::PAdd16, HmcRqst::PBwr] {
            let r = execute(cmd, &m, 0x40, &[1, 1]).unwrap();
            assert!(r.payload.is_empty(), "{cmd}");
        }
        let r = execute(HmcRqst::PInc8, &m, 0x40, &[]).unwrap();
        assert!(r.payload.is_empty());
    }
}
