//! Property tests: AMO semantics against scalar oracles, and store
//! invariants.

use hmc_mem::{execute, SparseMemory};
use hmc_types::HmcRqst;
use proptest::prelude::*;

fn mem() -> SparseMemory {
    SparseMemory::new(1 << 24)
}

proptest! {
    #[test]
    fn store_write_then_read_is_identity(
        addr in 0u64..(1 << 20),
        data in prop::collection::vec(any::<u8>(), 1..512),
    ) {
        let m = mem();
        m.write(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(addr, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn store_disjoint_writes_do_not_interfere(
        a in 0u64..(1 << 16),
        b in (1u64 << 16)..(1 << 17),
        va in any::<u64>(),
        vb in any::<u64>(),
    ) {
        let m = mem();
        m.write_u64(a * 8, va).unwrap();
        m.write_u64(b * 8, vb).unwrap();
        prop_assert_eq!(m.read_u64(a * 8).unwrap(), va);
        prop_assert_eq!(m.read_u64(b * 8).unwrap(), vb);
    }

    #[test]
    fn inc8_matches_wrapping_add(init in any::<u64>(), times in 1usize..16) {
        let m = mem();
        m.write_u64(0x40, init).unwrap();
        for _ in 0..times {
            execute(HmcRqst::Inc8, &m, 0x40, &[]).unwrap();
        }
        prop_assert_eq!(m.read_u64(0x40).unwrap(), init.wrapping_add(times as u64));
    }

    #[test]
    fn two_add8_matches_scalar_oracle(
        m0 in any::<u64>(), m1 in any::<u64>(),
        i0 in any::<u64>(), i1 in any::<u64>(),
    ) {
        let m = mem();
        m.write_u64(0x40, m0).unwrap();
        m.write_u64(0x48, m1).unwrap();
        let r = execute(HmcRqst::TwoAddS8R, &m, 0x40, &[i0, i1]).unwrap();
        prop_assert_eq!(r.payload, vec![m0, m1]);
        prop_assert_eq!(m.read_u64(0x40).unwrap(), (m0 as i64).wrapping_add(i0 as i64) as u64);
        prop_assert_eq!(m.read_u64(0x48).unwrap(), (m1 as i64).wrapping_add(i1 as i64) as u64);
    }

    #[test]
    fn add16_matches_i128_oracle(init in any::<u128>(), imm in any::<u128>()) {
        let m = mem();
        m.write_u128(0x40, init).unwrap();
        execute(HmcRqst::Add16, &m, 0x40, &[imm as u64, (imm >> 64) as u64]).unwrap();
        prop_assert_eq!(
            m.read_u128(0x40).unwrap(),
            (init as i128).wrapping_add(imm as i128) as u128
        );
    }

    #[test]
    fn caseq8_is_a_correct_cas(init in any::<u64>(), cmp in any::<u64>(), swap in any::<u64>()) {
        let m = mem();
        m.write_u64(0x40, init).unwrap();
        let r = execute(HmcRqst::CasEq8, &m, 0x40, &[swap, cmp]).unwrap();
        prop_assert_eq!(r.af, init == cmp);
        prop_assert_eq!(r.payload[0], init);
        let expect = if init == cmp { swap } else { init };
        prop_assert_eq!(m.read_u64(0x40).unwrap(), expect);
    }

    #[test]
    fn bwr_only_touches_masked_bits(init in any::<u64>(), data in any::<u64>(), mask in any::<u64>()) {
        let m = mem();
        m.write_u64(0x40, init).unwrap();
        execute(HmcRqst::Bwr, &m, 0x40, &[data, mask]).unwrap();
        let result = m.read_u64(0x40).unwrap();
        prop_assert_eq!(result & !mask, init & !mask, "unmasked bits preserved");
        prop_assert_eq!(result & mask, data & mask, "masked bits written");
    }

    #[test]
    fn swap16_then_swap_back_restores(init in any::<u128>(), new in any::<u128>()) {
        let m = mem();
        m.write_u128(0x40, init).unwrap();
        let r1 = execute(HmcRqst::Swap16, &m, 0x40, &[new as u64, (new >> 64) as u64]).unwrap();
        let r2 = execute(
            HmcRqst::Swap16, &m, 0x40, &[r1.payload[0], r1.payload[1]],
        ).unwrap();
        prop_assert_eq!(r2.payload, vec![new as u64, (new >> 64) as u64]);
        prop_assert_eq!(m.read_u128(0x40).unwrap(), init);
    }

    #[test]
    fn boolean_double_xor_is_identity(init in any::<u128>(), op in any::<u128>()) {
        let m = mem();
        m.write_u128(0x40, init).unwrap();
        let words = [op as u64, (op >> 64) as u64];
        execute(HmcRqst::Xor16, &m, 0x40, &words).unwrap();
        execute(HmcRqst::Xor16, &m, 0x40, &words).unwrap();
        prop_assert_eq!(m.read_u128(0x40).unwrap(), init);
    }

    #[test]
    fn eq8_never_mutates(init in any::<u64>(), cmp in any::<u64>()) {
        let m = mem();
        m.write_u64(0x40, init).unwrap();
        let r = execute(HmcRqst::Eq8, &m, 0x40, &[cmp, 0]).unwrap();
        prop_assert_eq!(r.af, init == cmp);
        prop_assert_eq!(m.read_u64(0x40).unwrap(), init);
    }
}
