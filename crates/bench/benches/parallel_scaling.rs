//! Criterion harness for the parallel tick engine: wall-clock per
//! full workload run at each thread count, for the saturating Triad
//! (parallel fast path) and the CMC mutex kernel (serial fallback —
//! the expected-flat control). The `parallel_scaling` bin emits the
//! machine-readable `BENCH_parallel.json` from the same workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmc_sim::{DeviceConfig, ExecMode, HmcSim};
use hmc_workloads::kernels::triad::{TriadConfig, TriadKernel};
use hmc_workloads::{MutexKernel, MutexKernelConfig};
use std::hint::black_box;
use std::time::Duration;

fn triad_cycles(mode: ExecMode) -> u64 {
    let mut config = DeviceConfig::gen2_4link_4gb();
    config.link_bandwidth = 8;
    config.vault_bandwidth = 4;
    let mut sim = HmcSim::new(config).unwrap();
    sim.set_exec_mode(mode);
    let result = TriadKernel::new(TriadConfig {
        elements: 8192,
        chunk_bytes: 256,
        window: 256,
        ..Default::default()
    })
    .run(&mut sim)
    .unwrap();
    assert_eq!(result.errors, 0);
    result.cycles
}

fn mutex_cycles(mode: ExecMode) -> u64 {
    hmc_cmc::ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    sim.set_exec_mode(mode);
    sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY).unwrap();
    MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
        .run(&mut sim)
        .unwrap();
    sim.cycle()
}

fn modes() -> Vec<(String, ExecMode)> {
    let mut m = vec![("sequential".to_string(), ExecMode::Sequential)];
    for threads in [1usize, 2, 4, 8] {
        m.push((format!("parallel-{threads}"), ExecMode::Parallel { threads }));
    }
    m
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("triad_parallel_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, mode) in modes() {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &mode, |b, &mode| {
            b.iter(|| black_box(triad_cycles(mode)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mutex_parallel_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, mode) in modes() {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &mode, |b, &mode| {
            b.iter(|| black_box(mutex_cycles(mode)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
