//! Ablation of the timing extensions (paper §VII future work):
//! row-buffer policy, DRAM refresh, crossbar arbitration, and the
//! timing-backend seam itself, measured on the streaming (Triad),
//! random (GUPS) and dependent-load (pointer-chase) kernels. Prints
//! simulated metrics per variant alongside the wall-clock measurement.
//!
//! Row-buffer policy and refresh row-closing are properties of the
//! `row_buffer` timing backend, so those groups pin the backend
//! explicitly; the `timing_backend` group measures the seam itself —
//! `fixed` vs `row_buffer` on an identical row-heavy configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use hmc_sim::{
    Arbitration, BankTiming, DeviceConfig, HmcSim, RefreshConfig, RowPolicy, TimingSelect,
};
use hmc_workloads::kernels::gups::{GupsConfig, GupsKernel};
use hmc_workloads::kernels::pchase::{PointerChaseConfig, PointerChaseKernel};
use hmc_workloads::kernels::triad::{TriadConfig, TriadKernel};
use std::hint::black_box;
use std::time::Duration;

fn sim_with(config: &DeviceConfig, timing: TimingSelect) -> HmcSim {
    let mut sim = HmcSim::new(config.clone()).unwrap();
    sim.set_timing_model(timing);
    sim
}

fn triad_cycles(config: &DeviceConfig, timing: TimingSelect) -> u64 {
    let mut sim = sim_with(config, timing);
    let r = TriadKernel::new(TriadConfig { elements: 2048, ..Default::default() })
        .run(&mut sim)
        .unwrap();
    assert_eq!(r.errors, 0);
    r.cycles
}

fn gups_cycles(config: &DeviceConfig, timing: TimingSelect) -> u64 {
    let mut sim = sim_with(config, timing);
    let r = GupsKernel::new(GupsConfig { updates: 2_000, ..Default::default() })
        .run(&mut sim)
        .unwrap();
    assert_eq!(r.errors, 0);
    r.cycles
}

fn pchase_cpl(config: &DeviceConfig, timing: TimingSelect) -> f64 {
    let mut sim = sim_with(config, timing);
    let r = PointerChaseKernel::new(PointerChaseConfig {
        nodes: 256,
        steps: 256,
        ..Default::default()
    })
    .run(&mut sim)
    .unwrap();
    assert!(r.verified);
    r.cycles_per_step
}

fn bench_row_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_policy");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, policy) in [("open_page", RowPolicy::OpenPage), ("closed_page", RowPolicy::ClosedPage)] {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.bank_timing = BankTiming { row_hit: 1, row_miss: 6, policy };
        println!(
            "row policy {name:>12}: triad {} cycles, pchase {:.2} cycles/hop",
            triad_cycles(&config, TimingSelect::RowBuffer),
            pchase_cpl(&config, TimingSelect::RowBuffer)
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(triad_cycles(&config, TimingSelect::RowBuffer)))
        });
    }
    group.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("refresh");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, refresh) in [
        ("off", None),
        ("trefi_512_trfc_16", Some(RefreshConfig { interval: 512, duration: 16 })),
        ("trefi_256_trfc_32", Some(RefreshConfig { interval: 256, duration: 32 })),
    ] {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.refresh = refresh;
        println!(
            "refresh {name:>18}: triad {} cycles",
            triad_cycles(&config, TimingSelect::RowBuffer)
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(triad_cycles(&config, TimingSelect::RowBuffer)))
        });
    }
    group.finish();
}

fn bench_arbitration(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbitration");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, arb) in [
        ("fixed_priority", Arbitration::FixedPriority),
        ("round_robin", Arbitration::RoundRobin),
    ] {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.arbitration = arb;
        println!(
            "arbitration {name:>15}: triad {} cycles",
            triad_cycles(&config, TimingSelect::FixedLatency)
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(triad_cycles(&config, TimingSelect::FixedLatency)))
        });
    }
    group.finish();
}

/// The backend seam itself: identical row-heavy configuration, only
/// the timing model swapped. Reports both the wall-clock cost of the
/// richer model and the simulated cycle delta it predicts.
fn bench_timing_backend(c: &mut Criterion) {
    let mut config = DeviceConfig::gen2_4link_4gb();
    config.bank_timing = BankTiming { row_hit: 1, row_miss: 6, policy: RowPolicy::OpenPage };
    config.refresh = Some(RefreshConfig { interval: 512, duration: 16 });
    let mut group = c.benchmark_group("timing_backend");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for timing in [TimingSelect::FixedLatency, TimingSelect::RowBuffer] {
        println!(
            "backend {:>10}: triad {} cycles, gups {} cycles",
            timing.name(),
            triad_cycles(&config, timing),
            gups_cycles(&config, timing)
        );
        group.bench_function(format!("triad/{}", timing.name()), |b| {
            b.iter(|| black_box(triad_cycles(&config, timing)))
        });
        group.bench_function(format!("gups/{}", timing.name()), |b| {
            b.iter(|| black_box(gups_cycles(&config, timing)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_row_policy, bench_refresh, bench_arbitration, bench_timing_backend);
criterion_main!(benches);
