//! Ablation of the timing extensions (paper §VII future work):
//! row-buffer policy, DRAM refresh and crossbar arbitration, measured
//! on the streaming (Triad), random (GUPS) and dependent-load
//! (pointer-chase) kernels. Prints simulated metrics per variant
//! alongside the wall-clock measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use hmc_sim::{Arbitration, BankTiming, DeviceConfig, HmcSim, RefreshConfig, RowPolicy};
use hmc_workloads::kernels::pchase::{PointerChaseConfig, PointerChaseKernel};
use hmc_workloads::kernels::triad::{TriadConfig, TriadKernel};
use std::hint::black_box;
use std::time::Duration;

fn triad_cycles(config: &DeviceConfig) -> u64 {
    let mut sim = HmcSim::new(config.clone()).unwrap();
    let r = TriadKernel::new(TriadConfig { elements: 2048, ..Default::default() })
        .run(&mut sim)
        .unwrap();
    assert_eq!(r.errors, 0);
    r.cycles
}

fn pchase_cpl(config: &DeviceConfig) -> f64 {
    let mut sim = HmcSim::new(config.clone()).unwrap();
    let r = PointerChaseKernel::new(PointerChaseConfig {
        nodes: 256,
        steps: 256,
        ..Default::default()
    })
    .run(&mut sim)
    .unwrap();
    assert!(r.verified);
    r.cycles_per_step
}

fn bench_row_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_policy");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, policy) in [("open_page", RowPolicy::OpenPage), ("closed_page", RowPolicy::ClosedPage)] {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.bank_timing = BankTiming { row_hit: 1, row_miss: 6, policy };
        println!(
            "row policy {name:>12}: triad {} cycles, pchase {:.2} cycles/hop",
            triad_cycles(&config),
            pchase_cpl(&config)
        );
        group.bench_function(name, |b| b.iter(|| black_box(triad_cycles(&config))));
    }
    group.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("refresh");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, refresh) in [
        ("off", None),
        ("trefi_512_trfc_16", Some(RefreshConfig { interval: 512, duration: 16 })),
        ("trefi_256_trfc_32", Some(RefreshConfig { interval: 256, duration: 32 })),
    ] {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.refresh = refresh;
        println!("refresh {name:>18}: triad {} cycles", triad_cycles(&config));
        group.bench_function(name, |b| b.iter(|| black_box(triad_cycles(&config))));
    }
    group.finish();
}

fn bench_arbitration(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbitration");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, arb) in [
        ("fixed_priority", Arbitration::FixedPriority),
        ("round_robin", Arbitration::RoundRobin),
    ] {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.arbitration = arb;
        println!("arbitration {name:>15}: triad {} cycles", triad_cycles(&config));
        group.bench_function(name, |b| b.iter(|| black_box(triad_cycles(&config))));
    }
    group.finish();
}

criterion_group!(benches, bench_row_policy, bench_refresh, bench_arbitration);
criterion_main!(benches);
