//! Ablation: how the vault request-queue depth (paper: 64) and the
//! crossbar queue depth (paper: 128) shape contention on the mutex
//! hot spot. Prints the simulated-cycle outcome per configuration
//! alongside the wall-clock measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmc_bench::mutex_point;
use hmc_sim::DeviceConfig;
use hmc_workloads::SpinPolicy;
use std::hint::black_box;
use std::time::Duration;

const THREADS: usize = 64;

fn bench_vault_queue_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("vault_queue_depth");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for depth in [8usize, 32, 64, 256] {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.vault_queue_depth = depth;
        let point = mutex_point(&config, SpinPolicy::PaperBounded, THREADS);
        println!(
            "vault queue depth {depth:>3}: min {} / max {} / avg {:.2} simulated cycles",
            point.min, point.max, point.avg
        );
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(mutex_point(&config, SpinPolicy::PaperBounded, THREADS)))
        });
    }
    group.finish();
}

fn bench_xbar_queue_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("xbar_queue_depth");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for depth in [16usize, 64, 128, 512] {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.xbar_queue_depth = depth;
        let point = mutex_point(&config, SpinPolicy::PaperBounded, THREADS);
        println!(
            "xbar queue depth {depth:>3}: min {} / max {} / avg {:.2} simulated cycles",
            point.min, point.max, point.avg
        );
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(mutex_point(&config, SpinPolicy::PaperBounded, THREADS)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vault_queue_depth, bench_xbar_queue_depth);
criterion_main!(benches);
