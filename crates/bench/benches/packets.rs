//! Micro-benchmarks of the simulator substrates: packet
//! encode/decode, CRC-32K, AMO execution and raw clock throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hmc_mem::SparseMemory;
use hmc_sim::{DeviceConfig, HmcSim};
use hmc_types::{crc32k, Cub, HmcRqst, Request, Tag};
use std::hint::black_box;
use std::time::Duration;

fn bench_packet_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_codec");
    group.measurement_time(Duration::from_secs(2));
    let small = Request::new(HmcRqst::Wr16, Tag::new(9).unwrap(), 0x40, Cub::new(0).unwrap(), vec![1, 2]).unwrap();
    let large = Request::new(
        HmcRqst::Wr256,
        Tag::new(9).unwrap(),
        0x400,
        Cub::new(0).unwrap(),
        (0..32).collect::<Vec<u64>>(),
    )
    .unwrap();
    group.bench_function("pack_wr16", |b| b.iter(|| black_box(small.pack())));
    group.bench_function("pack_wr256", |b| b.iter(|| black_box(large.pack())));
    let small_flits = small.pack();
    let large_flits = large.pack();
    group.bench_function("unpack_wr16", |b| {
        b.iter(|| black_box(Request::unpack(black_box(&small_flits)).unwrap()))
    });
    group.bench_function("unpack_wr256", |b| {
        b.iter(|| black_box(Request::unpack(black_box(&large_flits)).unwrap()))
    });
    group.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32k");
    group.measurement_time(Duration::from_secs(2));
    let data = vec![0xA5u8; 272]; // a 17-FLIT packet
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("17_flit_packet", |b| b.iter(|| black_box(crc32k(black_box(&data)))));
    group.finish();
}

fn bench_amo_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("amo_execute");
    group.measurement_time(Duration::from_secs(2));
    let mem = SparseMemory::new(1 << 20);
    mem.write_u64(0x40, 1).unwrap();
    group.bench_function("inc8", |b| {
        b.iter(|| black_box(hmc_mem::execute(HmcRqst::Inc8, &mem, 0x40, &[]).unwrap()))
    });
    group.bench_function("caseq8", |b| {
        b.iter(|| {
            black_box(hmc_mem::execute(HmcRqst::CasEq8, &mem, 0x40, &[1, 1]).unwrap())
        })
    });
    group.bench_function("add16", |b| {
        b.iter(|| black_box(hmc_mem::execute(HmcRqst::Add16, &mem, 0x40, &[1, 0]).unwrap()))
    });
    group.finish();
}

fn bench_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock");
    group.measurement_time(Duration::from_secs(2));
    let mut idle = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    group.bench_function("idle_cycle", |b| b.iter(|| black_box(idle.clock())));

    group.bench_function("loaded_round_trip", |b| {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        b.iter(|| {
            let tag = sim
                .send_simple(0, 0, HmcRqst::Rd16, 0x40, vec![])
                .unwrap()
                .unwrap();
            black_box(sim.run_until_response(0, 0, tag, 100).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_packet_codec,
    bench_crc,
    bench_amo_execute,
    bench_clock
);
criterion_main!(benches);
