//! Criterion bench over the paper's headline experiment: the CMC
//! mutex kernel (Algorithm 1) at representative thread counts on both
//! evaluated device configurations. Complements the `table6` /
//! `figures` binaries, which report simulated cycles; this measures
//! the simulator's wall-clock throughput on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmc_bench::mutex_point;
use hmc_sim::DeviceConfig;
use hmc_workloads::SpinPolicy;
use std::hint::black_box;
use std::time::Duration;

fn bench_mutex_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutex_kernel");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for config in [DeviceConfig::gen2_4link_4gb(), DeviceConfig::gen2_8link_8gb()] {
        for threads in [2usize, 25, 50, 100] {
            group.bench_with_input(
                BenchmarkId::new(config.label(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        black_box(mutex_point(
                            &config,
                            SpinPolicy::PaperBounded,
                            black_box(threads),
                        ))
                    })
                },
            );
        }
    }
    group.finish();

    // One honest-spin point, the heavier mode.
    let mut group = c.benchmark_group("mutex_kernel_honest");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let config = DeviceConfig::gen2_4link_4gb();
    group.bench_function("4Link-4GB/32", |b| {
        b.iter(|| black_box(mutex_point(&config, SpinPolicy::until_owned(), 32)))
    });
    group.finish();
}

criterion_group!(benches, bench_mutex_sweep);
criterion_main!(benches);
