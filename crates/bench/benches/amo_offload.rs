//! Ablation: atomic-offload benefit on real kernels — RandomAccess
//! updates via `XOR16` versus host read-modify-write, and BFS
//! check-and-update via `CASEQ8` versus the cache-line pattern
//! (related work \[10\]). Prints simulated cycles and link FLITs per
//! variant alongside the wall-clock measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use hmc_sim::{DeviceConfig, HmcSim};
use hmc_workloads::kernels::bfs::{BfsConfig, BfsKernel, BfsMode, Graph};
use hmc_workloads::kernels::gups::{GupsConfig, GupsKernel, GupsMode};
use std::hint::black_box;
use std::time::Duration;

fn gups(mode: GupsMode) -> (u64, u64) {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let result = GupsKernel::new(GupsConfig {
        table_entries: 1 << 10,
        updates: 1024,
        mode,
        ..Default::default()
    })
    .run(&mut sim)
    .unwrap();
    (result.cycles, result.link_flits)
}

fn bfs(mode: BfsMode, graph: &Graph) -> (u64, u64) {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let result = BfsKernel::new(BfsConfig { mode, ..Default::default() })
        .run(&mut sim, graph)
        .unwrap();
    assert_eq!(result.errors, 0);
    (result.cycles, result.link_flits)
}

fn bench_gups_offload(c: &mut Criterion) {
    let mut group = c.benchmark_group("gups_offload");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, mode) in [
        ("xor16_amo", GupsMode::Xor16Amo),
        ("read_modify_write", GupsMode::ReadModifyWrite),
    ] {
        let (cycles, flits) = gups(mode);
        println!("gups {name:>18}: {cycles} simulated cycles, {flits} FLITs");
        group.bench_function(name, |b| b.iter(|| black_box(gups(mode))));
    }
    group.finish();
}

fn bench_bfs_offload(c: &mut Criterion) {
    let graph = Graph::random(512, 2048, 0xBF5);
    let mut group = c.benchmark_group("bfs_offload");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, mode) in [
        ("caseq8_offload", BfsMode::CasOffload),
        ("read_check_write", BfsMode::ReadCheckWrite),
    ] {
        let (cycles, flits) = bfs(mode, &graph);
        println!("bfs {name:>17}: {cycles} simulated cycles, {flits} FLITs");
        group.bench_function(name, |b| b.iter(|| black_box(bfs(mode, &graph))));
    }
    group.finish();
}

criterion_group!(benches, bench_gups_offload, bench_bfs_offload);
criterion_main!(benches);
