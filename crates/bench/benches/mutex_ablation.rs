//! Ablation: the paper's CMC mutex operations versus a mutex built
//! from the stock Gen2 `CASEQ8` atomic, and the bounded spin policy
//! versus the literal Algorithm 1 spin. Prints simulated cycles per
//! variant alongside the wall-clock measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use hmc_bench::mutex_sim;
use hmc_sim::{DeviceConfig, HmcSim};
use hmc_workloads::{MutexKernel, MutexKernelConfig, MutexMechanism, SpinPolicy};
use std::hint::black_box;
use std::time::Duration;

const THREADS: usize = 32;

fn run(mechanism: MutexMechanism, spin: SpinPolicy) -> (u64, u64, f64) {
    let mut sim = match mechanism {
        MutexMechanism::Cmc => mutex_sim(&DeviceConfig::gen2_4link_4gb()),
        MutexMechanism::CasEq8 => HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap(),
        MutexMechanism::Ticket => {
            hmc_cmc::ops::register_builtin_libraries();
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            sim.load_cmc_library(0, hmc_cmc::ops::TICKET_LIBRARY).unwrap();
            sim
        }
    };
    let result = MutexKernel::new(MutexKernelConfig {
        threads: THREADS,
        spin,
        mechanism,
        ..Default::default()
    })
    .run(&mut sim)
    .unwrap();
    (
        result.metrics.min_cycle(),
        result.metrics.max_cycle(),
        result.metrics.avg_cycle(),
    )
}

fn bench_mechanisms(c: &mut Criterion) {
    let variants: [(&str, MutexMechanism, SpinPolicy); 5] = [
        ("cmc_bounded", MutexMechanism::Cmc, SpinPolicy::PaperBounded),
        ("cas_bounded", MutexMechanism::CasEq8, SpinPolicy::PaperBounded),
        ("cmc_honest", MutexMechanism::Cmc, SpinPolicy::until_owned()),
        ("cas_honest", MutexMechanism::CasEq8, SpinPolicy::until_owned()),
        ("ticket_fair", MutexMechanism::Ticket, SpinPolicy::until_owned()),
    ];
    let mut group = c.benchmark_group("mutex_mechanism");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, mechanism, spin) in variants {
        let (min, max, avg) = run(mechanism, spin);
        println!("{name:>12}: min {min} / max {max} / avg {avg:.2} simulated cycles");
        group.bench_function(name, |b| b.iter(|| black_box(run(mechanism, spin))));
    }
    group.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
