//! Criterion harness for the event-horizon (idle-skip) engine:
//! wall-clock per full workload run with skipping off and on, for
//! the 100-thread mutex spin (almost entirely compressible), sparse
//! RandomAccess (bursts separated by think time) and the saturating
//! Triad (never idle — the fast-path-overhead control). The
//! `idle_skip` bin emits the machine-readable `BENCH_idle_skip.json`
//! from the same workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmc_bench::idle::{gups_sparse_cycles, mutex_spin_cycles, triad_saturated_cycles};
use hmc_sim::SkipMode;
use std::hint::black_box;
use std::time::Duration;

fn modes() -> [(&'static str, SkipMode); 2] {
    [("skip-off", SkipMode::Off), ("skip-on", SkipMode::On)]
}

fn bench_idle_skip(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutex_spin_idle_skip");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, skip) in modes() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &skip, |b, &skip| {
            b.iter(|| black_box(mutex_spin_cycles(skip)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gups_sparse_idle_skip");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, skip) in modes() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &skip, |b, &skip| {
            b.iter(|| black_box(gups_sparse_cycles(skip, 64, 2_000)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("triad_saturated_idle_skip");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, skip) in modes() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &skip, |b, &skip| {
            b.iter(|| black_box(triad_saturated_cycles(skip)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_idle_skip);
criterion_main!(benches);
