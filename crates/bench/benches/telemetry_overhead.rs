//! Telemetry overhead guard: disabled telemetry must cost nothing
//! (one `Option` branch per cycle), counters-only a hair, and full
//! spans + windowed series a modest constant. Compare the
//! `loaded_cycle/off`, `loaded_cycle/counters` and
//! `loaded_cycle/spans` groups to quantify it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hmc_sim::{DeviceConfig, HmcSim, TelemetryConfig};
use hmc_types::HmcRqst;
use std::hint::black_box;
use std::time::Duration;

/// One steady-state step: keep four reads in flight (one per link)
/// and clock once — the hot loop every workload pays.
fn loaded_step(sim: &mut HmcSim, inflight: &mut Vec<(usize, hmc_types::Tag)>) {
    while inflight.len() < 4 {
        let link = inflight.len() % 4;
        match sim.send_simple(0, link, HmcRqst::Rd16, 0x40 + link as u64 * 0x100, vec![]) {
            Ok(Some(tag)) => inflight.push((link, tag)),
            Ok(None) => {}
            Err(_) => break,
        }
    }
    sim.clock();
    inflight.retain(|&(link, tag)| sim.recv_tag(0, link, tag).is_none());
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(1));

    let variants: [(&str, Option<TelemetryConfig>); 3] = [
        ("off", None),
        ("counters", Some(TelemetryConfig::counters_only())),
        ("spans", Some(TelemetryConfig::full())),
    ];
    for (name, config) in variants {
        group.bench_function(format!("loaded_cycle/{name}"), |b| {
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            if let Some(cfg) = &config {
                sim.enable_telemetry(cfg.clone());
            }
            let mut inflight = Vec::new();
            b.iter(|| {
                loaded_step(&mut sim, &mut inflight);
                black_box(sim.cycle())
            })
        });
        group.bench_function(format!("idle_cycle/{name}"), |b| {
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            if let Some(cfg) = &config {
                sim.enable_telemetry(cfg.clone());
            }
            b.iter(|| black_box(sim.clock()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
