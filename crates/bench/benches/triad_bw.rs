//! Ablation: STREAM Triad bandwidth versus request size and write
//! posting — the prior-work kernel on which HMC-Sim's original
//! results were reported. Prints achieved bytes/cycle per variant
//! alongside the wall-clock measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmc_sim::{DeviceConfig, HmcSim};
use hmc_workloads::kernels::triad::{TriadConfig, TriadKernel};
use std::hint::black_box;
use std::time::Duration;

fn triad(chunk_bytes: usize, posted: bool) -> f64 {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let result = TriadKernel::new(TriadConfig {
        elements: 2048,
        chunk_bytes,
        posted_writes: posted,
        ..Default::default()
    })
    .run(&mut sim)
    .unwrap();
    assert_eq!(result.errors, 0);
    result.bytes_per_cycle
}

fn bench_triad(c: &mut Criterion) {
    let mut group = c.benchmark_group("triad_chunk_size");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for chunk in [16usize, 64, 128, 256] {
        println!(
            "triad chunk {chunk:>3} B: {:.2} array bytes per simulated cycle",
            triad(chunk, false)
        );
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| black_box(triad(chunk, false)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("triad_posted_writes");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, posted) in [("acked", false), ("posted", true)] {
        println!("triad 64 B {name}: {:.2} array bytes per simulated cycle", triad(64, posted));
        group.bench_function(name, |b| b.iter(|| black_box(triad(64, posted))));
    }
    group.finish();
}

criterion_group!(benches, bench_triad);
criterion_main!(benches);
