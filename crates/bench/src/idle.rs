//! Shared workloads for the idle-skip (event-horizon) benchmarks.
//!
//! Three shapes, chosen to bracket the skip engine's envelope:
//!
//! * mutex spin — the 100-thread `UntilOwned` CMC mutex. Contention
//!   forces long truncated-exponential backoff windows in which every
//!   host thread is parked and the fabric is drained — the driver +
//!   event-horizon engine should compress nearly the whole run.
//! * sparse GUPS — RandomAccess updates separated by a long host
//!   "think time". Each update is a short busy burst followed by
//!   thousands of compressible idle cycles.
//! * saturated Triad — the stage-3-saturating STREAM Triad. The
//!   device is busy every single cycle, so skipping can never engage;
//!   this is the regression control for the fast-path check the skip
//!   engine adds to `clock()`.
//!
//! Each workload is split into a `*_sim` constructor and a `*_run`
//! body so the measurement harness can keep device construction
//! (memory arena, vault state — milliseconds of allocator work that
//! is identical under both skip settings) outside the timed region,
//! the same protocol `parallel_scaling` uses. Every run returns
//! `(simulated cycles, state fingerprint)` so callers can gate
//! speedup numbers on bit-identical final state.

use hmc_sim::{DeviceConfig, HmcSim, SkipMode};
use hmc_types::HmcRqst;
use hmc_workloads::kernels::gups::HpccStream;
use hmc_workloads::kernels::triad::{TriadConfig, TriadKernel};
use hmc_workloads::{MutexKernel, MutexKernelConfig, SpinPolicy};

/// Device for the mutex-spin workload, CMC mutex library loaded.
pub fn mutex_spin_sim(skip: SkipMode) -> HmcSim {
    hmc_cmc::ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).expect("valid config");
    sim.set_skip_mode(skip);
    sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY).expect("mutex library loads");
    sim
}

/// The 100-thread literal-semantics mutex spin. The backoff window
/// is widened to the aggressive setting a 100-way hotspot calls for
/// (a tight 256-cycle cap would keep re-saturating the hot vault);
/// the wide windows also mean most of the run is spent with every
/// thread parked — exactly what the event-horizon engine compresses.
pub fn mutex_spin_run(sim: &mut HmcSim) -> (u64, u64) {
    let result = MutexKernel::new(MutexKernelConfig {
        threads: 100,
        spin: SpinPolicy::UntilOwned { initial_backoff: 1_024, max_backoff: 65_536 },
        ..Default::default()
    })
    .run(sim)
    .expect("mutex kernel runs");
    assert_eq!(result.metrics.unfinished, 0, "every thread must finish");
    (sim.cycle(), sim.state_fingerprint())
}

/// Device for the sparse-GUPS workload.
pub fn gups_sparse_sim(skip: SkipMode) -> HmcSim {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).expect("valid config");
    sim.set_skip_mode(skip);
    sim
}

/// Sparse RandomAccess: one XOR16 update, then `think` idle cycles.
pub fn gups_sparse_run(sim: &mut HmcSim, updates: usize, think: u64) -> (u64, u64) {
    let mask = (1u64 << 12) - 1;
    let base = 0x0400_0000u64;
    let mut stream = HpccStream::new(0x1234_5678_9ABC_DEF0);
    for _ in 0..updates {
        let v = stream.next().expect("infinite stream");
        let addr = base + (v & mask) * 16;
        let tag = sim
            .send_simple(0, 0, HmcRqst::Xor16, addr, vec![v, 0])
            .expect("send accepted")
            .expect("XOR16 is tagged");
        sim.run_until_response(0, 0, tag, 1_000).expect("update completes");
        sim.clock_n(think);
    }
    (sim.cycle(), sim.state_fingerprint())
}

/// The wide-link, wide-vault device the saturating Triad targets.
pub fn triad_saturated_sim(skip: SkipMode) -> HmcSim {
    let mut config = DeviceConfig::gen2_4link_4gb();
    config.link_bandwidth = 8;
    config.vault_bandwidth = 4;
    let mut sim = HmcSim::new(config).expect("valid config");
    sim.set_skip_mode(skip);
    sim
}

/// The saturating Triad (never idle: the skip control). Narrow
/// 16-byte chunks multiply the request count so the busy region runs
/// for thousands of cycles — long enough to resolve a small per-cycle
/// overhead against timer noise.
pub fn triad_saturated_run(sim: &mut HmcSim) -> (u64, u64) {
    let result = TriadKernel::new(TriadConfig {
        elements: 65_536,
        chunk_bytes: 16,
        window: 256,
        ..Default::default()
    })
    .run(sim)
    .expect("triad runs");
    assert_eq!(result.errors, 0, "triad verification");
    (sim.cycle(), sim.state_fingerprint())
}

/// Construction + run in one call (Criterion's whole-run timing).
pub fn mutex_spin_cycles(skip: SkipMode) -> (u64, u64) {
    mutex_spin_run(&mut mutex_spin_sim(skip))
}

/// Construction + run in one call (Criterion's whole-run timing).
pub fn gups_sparse_cycles(skip: SkipMode, updates: usize, think: u64) -> (u64, u64) {
    gups_sparse_run(&mut gups_sparse_sim(skip), updates, think)
}

/// Construction + run in one call (Criterion's whole-run timing).
pub fn triad_saturated_cycles(skip: SkipMode) -> (u64, u64) {
    triad_saturated_run(&mut triad_saturated_sim(skip))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_is_fingerprint_stable_under_skip() {
        let sparse_off = gups_sparse_cycles(SkipMode::Off, 16, 500);
        let sparse_on = gups_sparse_cycles(SkipMode::On, 16, 500);
        assert_eq!(sparse_off, sparse_on, "sparse GUPS diverged");
        let mutex_off = mutex_spin_cycles(SkipMode::Off);
        let mutex_on = mutex_spin_cycles(SkipMode::On);
        assert_eq!(mutex_off, mutex_on, "mutex spin diverged");
    }
}
