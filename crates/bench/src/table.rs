//! Plain-text table rendering for the reproduction binaries.

/// A simple fixed-column table writer producing aligned plain-text
/// output, matching the row/column structure of the paper's tables.
#[derive(Debug, Default)]
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TableWriter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {cell:<w$} |"));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TableWriter::new(&["Device", "Min", "Max"]);
        t.row(&["4Link-4GB".into(), "6".into(), "392".into()]);
        t.row(&["8Link-8GB".into(), "6".into(), "387".into()]);
        let out = t.render();
        assert!(out.contains("| Device    | Min | Max |"));
        assert!(out.contains("| 4Link-4GB | 6   | 392 |"));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = TableWriter::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }
}
