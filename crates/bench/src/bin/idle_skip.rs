//! Event-horizon (idle-skip) engine measurement.
//!
//! Runs the three bracket workloads from [`hmc_bench::idle`] with
//! idle-cycle skipping off and on, then emits `BENCH_idle_skip.json`:
//! wall time and simulated cycles/second per setting, the on/off
//! speedup per workload, and the fingerprint gate.
//!
//! ```text
//! cargo run --release -p hmc-bench --bin idle_skip
//! cargo run --release -p hmc-bench --bin idle_skip -- --out BENCH_idle_skip.json
//! cargo run --release -p hmc-bench --bin idle_skip -- --reps 5
//! ```
//!
//! The exit code reflects only the determinism check — for every
//! workload, `SkipMode::On` must land on the exact simulated cycle
//! count and state fingerprint of the `SkipMode::Off` reference.
//! Speedup magnitudes are hardware-dependent and recorded, not gated.

use hmc_bench::idle::{
    gups_sparse_run, gups_sparse_sim, mutex_spin_run, mutex_spin_sim, triad_saturated_run,
    triad_saturated_sim,
};
use hmc_sim::{HmcSim, SkipMode};
use std::time::Instant;

struct Sample {
    workload: &'static str,
    skip: &'static str,
    sim_cycles: u64,
    best_wall_s: f64,
    fingerprint: u64,
}

impl Sample {
    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.best_wall_s
    }
}

/// Best-of-`reps` wall time (the standard minimum-of-N noise filter).
/// Device construction stays outside the timed region — it is
/// identical under both skip settings and would otherwise swamp the
/// engine-throughput measurement on short runs.
fn measure(
    workload: &'static str,
    skip: SkipMode,
    reps: usize,
    setup: impl Fn(SkipMode) -> HmcSim,
    run: impl Fn(&mut HmcSim) -> (u64, u64),
) -> Sample {
    let mut best_wall_s = f64::INFINITY;
    let mut sim_cycles = 0;
    let mut fingerprint = 0;
    for _ in 0..reps {
        let mut sim = setup(skip);
        let start = Instant::now();
        let (cycles, fp) = run(&mut sim);
        let wall = start.elapsed().as_secs_f64();
        best_wall_s = best_wall_s.min(wall);
        sim_cycles = cycles;
        fingerprint = fp;
    }
    let skip_name = match skip {
        SkipMode::Off => "off",
        SkipMode::On => "on",
    };
    Sample { workload, skip: skip_name, sim_cycles, best_wall_s, fingerprint }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<String> {
        args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
    };
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_idle_skip.json".into());
    let reps: usize = arg("--reps").and_then(|s| s.parse().ok()).unwrap_or(3);

    type Setup = Box<dyn Fn(SkipMode) -> HmcSim>;
    type Run = Box<dyn Fn(&mut HmcSim) -> (u64, u64)>;
    let workloads: [(&'static str, Setup, Run); 3] = [
        ("mutex_spin_100", Box::new(mutex_spin_sim), Box::new(mutex_spin_run)),
        (
            "gups_sparse",
            Box::new(gups_sparse_sim),
            Box::new(|sim: &mut HmcSim| gups_sparse_run(sim, 256, 2_000)),
        ),
        ("triad_saturated", Box::new(triad_saturated_sim), Box::new(triad_saturated_run)),
    ];

    let mut samples = Vec::new();
    for (name, setup, run) in &workloads {
        for skip in [SkipMode::Off, SkipMode::On] {
            samples.push(measure(name, skip, reps, setup, run));
        }
    }

    // Determinism gate: skipping must not change the simulated cycle
    // count or the final device state.
    let mut fingerprints_match = true;
    for (name, _, _) in &workloads {
        let pair: Vec<&Sample> = samples.iter().filter(|s| s.workload == *name).collect();
        let (off, on) = (pair[0], pair[1]);
        if off.fingerprint != on.fingerprint || off.sim_cycles != on.sim_cycles {
            fingerprints_match = false;
            eprintln!(
                "SKIP DIVERGENCE: {} off=({} cycles, {:#018x}) on=({} cycles, {:#018x})",
                name, off.sim_cycles, off.fingerprint, on.sim_cycles, on.fingerprint
            );
        }
    }

    let speedup = |name: &str| -> f64 {
        let of = |skip: &str| {
            samples
                .iter()
                .find(|s| s.workload == name && s.skip == skip)
                .map(|s| s.best_wall_s)
                .unwrap_or(f64::NAN)
        };
        of("off") / of("on")
    };
    let mut entries = Vec::new();
    for s in &samples {
        println!(
            "{:<16} skip={:<3} : {:>9} cycles in {:>8.2} ms -> {:>12.0} cycles/s",
            s.workload,
            s.skip,
            s.sim_cycles,
            s.best_wall_s * 1e3,
            s.cycles_per_sec(),
        );
        entries.push(format!(
            "    {{\"workload\": \"{}\", \"skip\": \"{}\", \"sim_cycles\": {}, \
             \"best_wall_s\": {:.6}, \"cycles_per_sec\": {:.1}, \
             \"speedup_on_vs_off\": {:.3}, \"fingerprint\": \"{:#018x}\"}}",
            s.workload,
            s.skip,
            s.sim_cycles,
            s.best_wall_s,
            s.cycles_per_sec(),
            speedup(s.workload),
            s.fingerprint
        ));
    }
    for (name, _, _) in &workloads {
        println!("{name}: skip-on speedup {:.2}x", speedup(name));
    }
    let json = format!(
        "{{\n  \"bench\": \"idle_skip\",\n  \"reps\": {reps},\n  \
         \"fingerprints_match\": {fingerprints_match},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write JSON");
    println!("wrote {out_path}");

    if !fingerprints_match {
        std::process::exit(1);
    }
}
