//! Regenerates paper **Table VI** — "CMC Mutex Operations" summary:
//! minimum, maximum and average cycle counts for the mutex kernel
//! swept from 2 to 100 threads on the 4Link-4GB and 8Link-8GB
//! configurations.
//!
//! ```text
//! cargo run --release -p hmc-bench --bin table6 [-- --spin honest] [-- --max-threads N]
//! ```
//!
//! Paper reference values: 4Link-4GB → 6 / 392 / 226.48;
//! 8Link-8GB → 6 / 387 / 221.48.

use hmc_bench::{mutex_sweep, summarize, TableWriter};
use hmc_sim::DeviceConfig;
use hmc_workloads::SpinPolicy;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let spin = if args.iter().any(|a| a == "--spin")
        && args.windows(2).any(|w| w[0] == "--spin" && w[1] == "honest")
    {
        SpinPolicy::until_owned()
    } else {
        SpinPolicy::PaperBounded
    };
    let max_threads: usize = args
        .windows(2)
        .find(|w| w[0] == "--max-threads")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(100);

    println!(
        "Table VI: CMC mutex kernel summary, threads 2..={max_threads}, spin={spin:?}\n"
    );

    let mut table = TableWriter::new(&[
        "Device",
        "Min Cycle Count",
        "Max Cycle Count",
        "(at threads)",
        "Worst Avg Cycle Count",
        "(at threads)",
        "Worst p99",
        "(at threads)",
    ]);
    let mut worst = Vec::new();
    for config in [DeviceConfig::gen2_4link_4gb(), DeviceConfig::gen2_8link_8gb()] {
        let points = mutex_sweep(&config, spin, 2..=max_threads);
        let summary = summarize(&points);
        worst.push((config.label(), summary));
        table.row(&[
            config.label(),
            summary.min_cycle.to_string(),
            summary.max_cycle.to_string(),
            summary.max_cycle_at.to_string(),
            format!("{:.2}", summary.max_avg_cycle),
            summary.max_avg_at.to_string(),
            summary.max_p99.to_string(),
            summary.max_p99_at.to_string(),
        ]);
    }
    print!("{}", table.render());

    if worst.len() == 2 {
        let (ref l4, s4) = worst[0];
        let (ref l8, s8) = worst[1];
        let max_gain = 100.0 * (s4.max_cycle as f64 - s8.max_cycle as f64) / s4.max_cycle as f64;
        let avg_gain = 100.0 * (s4.max_avg_cycle - s8.max_avg_cycle) / s4.max_avg_cycle;
        println!(
            "\n{l8} worst-case max is {max_gain:.1}% better than {l4} \
             (paper: 1.2%); worst-case avg is {avg_gain:.1}% better (paper: 2.2%)."
        );
    }
    println!("Paper reference: 4Link-4GB 6/392/226.48, 8Link-8GB 6/387/221.48.");
}
