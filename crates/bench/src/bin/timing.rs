//! Timing-backend measurement.
//!
//! Runs the streaming (Triad) and random-access (GUPS) kernels on a
//! row-heavy configuration under the `fixed` and `row_buffer` timing
//! backends, then emits `BENCH_timing.json`: wall time, simulated
//! cycles and cycles/second per (workload, backend) row, the simulated
//! slowdown the row-buffer model attributes to row misses and refresh,
//! and the validation gate.
//!
//! ```text
//! cargo run --release -p hmc-bench --bin timing
//! cargo run --release -p hmc-bench --bin timing -- --out BENCH_timing.json
//! cargo run --release -p hmc-bench --bin timing -- --reps 5
//! ```
//!
//! The exit code reflects only the determinism gate: for every
//! workload, a `validated` run (fixed primary + row-buffer shadow)
//! must land on the exact simulated cycle count and state fingerprint
//! of the `fixed` run — the shadow model is contracted to observe,
//! never steer. Backend cycle deltas are the model difference being
//! measured and are recorded, not gated.

use hmc_sim::{DeviceConfig, HmcSim, RefreshConfig, RowPolicy, TimingSelect};
use hmc_workloads::kernels::gups::{GupsConfig, GupsKernel};
use hmc_workloads::kernels::triad::{TriadConfig, TriadKernel};
use std::time::Instant;

/// Row timing and refresh live, so the backends actually differ.
fn config() -> DeviceConfig {
    let mut d = DeviceConfig::gen2_4link_4gb();
    d.bank_timing.policy = RowPolicy::OpenPage;
    d.bank_timing.row_hit = 1;
    d.bank_timing.row_miss = 6;
    d.refresh = Some(RefreshConfig { interval: 512, duration: 16 });
    d
}

fn run_triad(sim: &mut HmcSim) -> u64 {
    let r = TriadKernel::new(TriadConfig { elements: 2048, ..Default::default() })
        .run(sim)
        .unwrap();
    assert_eq!(r.errors, 0);
    r.cycles
}

fn run_gups(sim: &mut HmcSim) -> u64 {
    let r = GupsKernel::new(GupsConfig { updates: 2_000, ..Default::default() })
        .run(sim)
        .unwrap();
    assert_eq!(r.errors, 0);
    r.cycles
}

struct Sample {
    workload: &'static str,
    backend: TimingSelect,
    sim_cycles: u64,
    best_wall_s: f64,
    fingerprint: u64,
}

impl Sample {
    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.best_wall_s
    }
}

/// Best-of-`reps` wall time; device construction stays outside the
/// timed region so short runs measure engine throughput, not setup.
fn measure(
    workload: &'static str,
    backend: TimingSelect,
    reps: usize,
    run: impl Fn(&mut HmcSim) -> u64,
) -> Sample {
    let mut best_wall_s = f64::INFINITY;
    let mut sim_cycles = 0;
    let mut fingerprint = 0;
    for _ in 0..reps {
        let mut sim = HmcSim::new(config()).unwrap();
        sim.set_timing_model(backend);
        let start = Instant::now();
        let cycles = run(&mut sim);
        let wall = start.elapsed().as_secs_f64();
        best_wall_s = best_wall_s.min(wall);
        sim_cycles = cycles;
        fingerprint = sim.state_fingerprint();
    }
    Sample { workload, backend, sim_cycles, best_wall_s, fingerprint }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<String> {
        args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
    };
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_timing.json".into());
    let reps: usize = arg("--reps").and_then(|s| s.parse().ok()).unwrap_or(3);

    type Run = Box<dyn Fn(&mut HmcSim) -> u64>;
    let workloads: [(&'static str, Run); 2] =
        [("triad_2048", Box::new(run_triad)), ("gups_2000", Box::new(run_gups))];

    let mut samples = Vec::new();
    let mut validated_matches_fixed = true;
    for (name, run) in &workloads {
        for backend in [TimingSelect::FixedLatency, TimingSelect::RowBuffer] {
            samples.push(measure(name, backend, reps, run));
        }
        // The gate: one validated run per workload, which must be
        // bit-identical to the fixed run it shadows.
        let validated = measure(name, TimingSelect::Validated, 1, run);
        let fixed = samples
            .iter()
            .find(|s| s.workload == *name && s.backend == TimingSelect::FixedLatency)
            .expect("fixed sample recorded above");
        if validated.sim_cycles != fixed.sim_cycles
            || validated.fingerprint != fixed.fingerprint
        {
            validated_matches_fixed = false;
            eprintln!(
                "VALIDATED DIVERGENCE: {} fixed=({} cycles, {:#018x}) \
                 validated=({} cycles, {:#018x})",
                name,
                fixed.sim_cycles,
                fixed.fingerprint,
                validated.sim_cycles,
                validated.fingerprint
            );
        }
    }

    let cycles_of = |name: &str, backend: TimingSelect| -> u64 {
        samples
            .iter()
            .find(|s| s.workload == name && s.backend == backend)
            .map(|s| s.sim_cycles)
            .unwrap_or(0)
    };
    let mut entries = Vec::new();
    for s in &samples {
        let slowdown =
            s.sim_cycles as f64 / cycles_of(s.workload, TimingSelect::FixedLatency) as f64;
        println!(
            "{:<12} backend={:<10} : {:>9} cycles in {:>8.2} ms -> {:>12.0} cycles/s \
             (sim slowdown {:.3}x)",
            s.workload,
            s.backend.name(),
            s.sim_cycles,
            s.best_wall_s * 1e3,
            s.cycles_per_sec(),
            slowdown,
        );
        entries.push(format!(
            "    {{\"workload\": \"{}\", \"backend\": \"{}\", \"sim_cycles\": {}, \
             \"best_wall_s\": {:.6}, \"cycles_per_sec\": {:.1}, \
             \"sim_slowdown_vs_fixed\": {:.4}, \"fingerprint\": \"{:#018x}\"}}",
            s.workload,
            s.backend.name(),
            s.sim_cycles,
            s.best_wall_s,
            s.cycles_per_sec(),
            slowdown,
            s.fingerprint
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"timing\",\n  \"reps\": {reps},\n  \
         \"validated_matches_fixed\": {validated_matches_fixed},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write JSON");
    println!("wrote {out_path}");

    if !validated_matches_fixed {
        std::process::exit(1);
    }
}
