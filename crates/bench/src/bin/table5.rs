//! Regenerates paper **Table V** — "CMC Mutex Operations": the three
//! mutex operations with their command enums, codes, packet lengths
//! and response commands, read back from a live device's CMC
//! registration table after loading `libhmc_mutex.so`.
//!
//! ```text
//! cargo run -p hmc-bench --bin table5
//! ```

use hmc_bench::TableWriter;
use hmc_sim::{DeviceConfig, HmcSim};

const PSEUDOCODE: &[(&str, &str)] = &[
    (
        "hmc_lock",
        "IF (ADDR[63:0]==0){ ADDR[127:64]=TID; ADDR[63:0]=1; RET 1 } ELSE { RET 0 }",
    ),
    (
        "hmc_trylock",
        "IF (ADDR[63:0]==0){ ADDR[127:64]=TID; ADDR[63:0]=1 } RET ADDR[127:64]",
    ),
    (
        "hmc_unlock",
        "IF (ADDR[127:64]==TID && ADDR[63:0]==1){ ADDR[63:0]=0; RET 1 } ELSE { RET 0 }",
    ),
];

fn main() {
    println!("Table V: CMC Mutex Operations\n");

    hmc_cmc::ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).expect("valid config");
    let codes = sim
        .load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY)
        .expect("mutex library loads");
    assert_eq!(codes, vec![125, 126, 127], "Table V command codes");

    let mut table = TableWriter::new(&[
        "Operation",
        "Command Enum",
        "Request Command",
        "Request Length",
        "Response Command",
        "Response Length",
    ]);
    for reg in sim.cmc_registrations(0).expect("device 0") {
        table.row(&[
            reg.op_name.clone(),
            format!("CMC{}", reg.cmd),
            reg.cmd.to_string(),
            format!("{} FLITS", reg.rqst_len),
            reg.rsp_cmd.mnemonic(),
            reg.rsp_len.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!("\nOperation pseudocode (paper Table V):");
    for (op, code) in PSEUDOCODE {
        println!("  {op:<12} {code}");
    }
    println!(
        "\nLock structure (paper Figure 4): 16-byte block; bits 63:0 lock value,\n\
         bits 127:64 owning thread/task id."
    );
}
