//! Regenerates paper **Table II** — "HMC Gen2 Atomic Memory Operation
//! Efficiency": the link traffic of a cache-based atomic increment
//! (read 64 bytes + write 64 bytes) versus the in-cube `INC8`
//! command.
//!
//! Two measurements are reported and must agree:
//! 1. the analytical cache model (`hmc-cachesim`), and
//! 2. live FLIT counters from running the shared-counter kernel on
//!    the simulated device.
//!
//! ```text
//! cargo run -p hmc-bench --bin table2
//! ```

use hmc_bench::TableWriter;
use hmc_cachesim::{model::hmc_atomic_traffic, CacheAtomicModel, CacheConfig};
use hmc_sim::{DeviceConfig, HmcSim};
use hmc_workloads::kernels::counter::{CounterKernel, CounterKernelConfig, CounterMode};

fn measured_flits(mode: CounterMode) -> u64 {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).expect("valid config");
    let kernel = CounterKernel::new(CounterKernelConfig {
        threads: 1,
        increments_per_thread: 1,
        mode,
        ..Default::default()
    });
    kernel.run(&mut sim).expect("counter kernel runs").link_flits
}

fn main() {
    println!("Table II: HMC Gen2 Atomic Memory Operation Efficiency\n");

    let cache = CacheAtomicModel::new(CacheConfig::default())
        .expect("valid cache config")
        .atomic_rmw_traffic();
    let hmc = hmc_atomic_traffic(1, 1); // INC8: 1 rqst FLIT + 1 rsp FLIT

    let mut table = TableWriter::new(&[
        "AMO Type",
        "Request Structure",
        "FLITs Required",
        "Total Bytes (paper conv.)",
        "Wire Bytes",
        "Measured FLITs (live sim)",
    ]);
    table.row(&[
        "Cache-Based".into(),
        "Read 64 Bytes + Write 64 Bytes".into(),
        format!(
            "(1FLIT + {}FLITS) + ({}FLITS + 1FLIT)",
            cache.rsp_flits - 1,
            cache.rqst_flits - 1
        ),
        cache.paper_bytes.to_string(),
        cache.wire_bytes.to_string(),
        measured_flits(CounterMode::CacheRmw).to_string(),
    ]);
    table.row(&[
        "HMC-Based".into(),
        "INC8 Command".into(),
        "1FLIT + 1FLIT".into(),
        hmc.paper_bytes.to_string(),
        hmc.wire_bytes.to_string(),
        measured_flits(CounterMode::HmcInc8).to_string(),
    ]);
    print!("{}", table.render());

    println!(
        "\nHMC INC8 uses {}x less link traffic than the cache-based read-modify-write.",
        cache.total_flits / hmc.total_flits
    );
    println!(
        "(The paper's byte column uses its 128-byte-per-FLIT convention; the wire\n\
         FLIT is 128 bits = 16 bytes. FLIT counts and the 6x ratio are identical.)"
    );
}
