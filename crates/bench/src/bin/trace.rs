//! Structured-trace CLI: runs a workload with the flight recorder
//! attached and exports the timeline as Perfetto/Chrome trace-event
//! JSON (open the output at <https://ui.perfetto.dev>).
//!
//! ```text
//! cargo run --release -p hmc-bench --bin trace -- export
//! cargo run --release -p hmc-bench --bin trace -- export --workload mutex --threads 16
//! cargo run --release -p hmc-bench --bin trace -- export --exec par4 --skip on \
//!     --capacity 4096 --out trace.json
//! cargo run --release -p hmc-bench --bin trace -- export --packets-only
//! ```
//!
//! The export is deterministic: the same workload and configuration
//! render byte-identical JSON for every worker-thread count.

use hmc_sim::perfetto::{self, PerfettoOptions};
use hmc_sim::{DeviceConfig, ExecMode, HmcSim, SimConfig, SkipMode};
use hmc_workloads::kernels::gups::{GupsConfig, GupsKernel};
use hmc_workloads::kernels::triad::{TriadConfig, TriadKernel};
use hmc_workloads::{MutexKernel, MutexKernelConfig, SpinPolicy};

fn usage() -> ! {
    eprintln!(
        "usage: trace export [--workload mutex|gups|triad] [--threads N] \
         [--exec seq|parN] [--skip on|off] [--capacity N] [--packets-only] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) != Some("export") {
        usage();
    }
    let arg = |name: &str| -> Option<String> {
        args.windows(2)
            .find(|w| w[0] == name)
            .map(|w| w[1].clone())
    };
    let workload = arg("--workload").unwrap_or_else(|| "mutex".into());
    let threads: usize = arg("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let capacity: usize = arg("--capacity")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let exec = match arg("--exec").as_deref() {
        None | Some("seq") => ExecMode::Sequential,
        Some(s) => match s.strip_prefix("par").and_then(|n| n.parse().ok()) {
            Some(n) => ExecMode::Parallel { threads: n },
            None => usage(),
        },
    };
    let skip = match arg("--skip").as_deref() {
        None | Some("off") => SkipMode::Off,
        Some("on") => SkipMode::On,
        Some(_) => usage(),
    };
    let packets_only = args.iter().any(|a| a == "--packets-only");
    let out_path = arg("--out");

    hmc_cmc::ops::register_builtin_libraries();
    let mut cfg = SimConfig::single(DeviceConfig::gen2_4link_4gb());
    cfg.exec_mode = exec;
    cfg.skip_mode = skip;
    let mut sim = HmcSim::with_config(cfg).expect("valid config");
    sim.enable_flight_recorder(capacity);

    match workload.as_str() {
        "mutex" => {
            sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY)
                .expect("mutex library loads");
            let result = MutexKernel::new(MutexKernelConfig {
                threads,
                spin: SpinPolicy::PaperBounded,
                ..Default::default()
            })
            .run(&mut sim)
            .expect("mutex kernel runs");
            eprintln!(
                "mutex: {threads} threads, min/max acquire = {}/{}",
                result.metrics.min_cycle(),
                result.metrics.max_cycle()
            );
        }
        "gups" => {
            let result = GupsKernel::new(GupsConfig::default())
                .run(&mut sim)
                .expect("gups runs");
            eprintln!("gups: {} updates in {} cycles", result.updates, result.cycles);
        }
        "triad" => {
            let result = TriadKernel::new(TriadConfig::default())
                .run(&mut sim)
                .expect("triad runs");
            assert_eq!(result.errors, 0, "triad verification");
            eprintln!(
                "triad: {} cycles, {:.2} bytes/cycle",
                result.cycles, result.bytes_per_cycle
            );
        }
        _ => usage(),
    }

    let snap = sim.flight_snapshot().expect("recorder attached");
    eprintln!(
        "flight recorder: {} records retained, {} dropped (per-lane capacity {})",
        snap.len(),
        snap.lanes.iter().map(|l| l.dropped).sum::<u64>(),
        snap.capacity
    );
    let doc = perfetto::export(&snap, &PerfettoOptions { engine: !packets_only });

    match out_path {
        Some(path) => {
            if let Some(parent) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {} bytes to {path} (open at ui.perfetto.dev)", doc.len());
        }
        None => println!("{doc}"),
    }
}
