//! Telemetry exporter CLI: runs a Triad bandwidth pass followed by a
//! CMC mutex contention pass with full telemetry attached, then emits
//! the metrics registry.
//!
//! ```text
//! cargo run --release -p hmc-bench --bin metrics                    # human-readable table
//! cargo run --release -p hmc-bench --bin metrics -- --format prom   # Prometheus exposition
//! cargo run --release -p hmc-bench --bin metrics -- --format json --out report.json
//! cargo run --release -p hmc-bench --bin metrics -- --threads 32
//! ```

use hmc_sim::{DeviceConfig, HmcSim, Stage, TelemetryConfig};
use hmc_workloads::kernels::triad::{TriadConfig, TriadKernel};
use hmc_workloads::{MutexKernel, MutexKernelConfig, SpinPolicy};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<String> {
        args.windows(2)
            .find(|w| w[0] == name)
            .map(|w| w[1].clone())
    };
    let format = arg("--format").unwrap_or_else(|| "table".into());
    if !matches!(format.as_str(), "table" | "prom" | "json") {
        eprintln!("error: unknown --format '{format}' (expected table|prom|json)");
        std::process::exit(2);
    }
    let out_path = arg("--out");
    let threads: usize = arg("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    // One context for both workloads so the registry aggregates the
    // full run: a Triad bandwidth pass, then mutex contention.
    hmc_cmc::ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).expect("valid config");
    sim.enable_telemetry(TelemetryConfig::full());
    sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY)
        .expect("mutex library loads");

    let triad = TriadKernel::new(TriadConfig::default())
        .run(&mut sim)
        .expect("triad runs");
    assert_eq!(triad.errors, 0, "triad verification");
    let mutex = MutexKernel::new(MutexKernelConfig {
        threads,
        spin: SpinPolicy::PaperBounded,
        ..Default::default()
    })
    .run(&mut sim)
    .expect("mutex kernel runs");

    let report = sim.telemetry_report().expect("telemetry enabled");
    let rendered = match format.as_str() {
        "prom" => report.to_prometheus(),
        "json" => report.to_json(),
        _ => {
            let mut s = String::new();
            s.push_str(&format!(
                "Triad: {} cycles, {:.2} bytes/cycle; mutex ({threads} threads): \
                 min/max/avg = {}/{}/{:.2}\n\n",
                triad.cycles,
                triad.bytes_per_cycle,
                mutex.metrics.min_cycle(),
                mutex.metrics.max_cycle(),
                mutex.metrics.avg_cycle()
            ));
            s.push_str("per-stage latency breakdown (cycles):\n");
            s.push_str(&format!(
                "  {:<10} {:>8} {:>6} {:>6} {:>6} {:>6}\n",
                "stage", "count", "p50", "p90", "p99", "p999"
            ));
            let tel_path = |stage: Stage| format!("dev0/stage/{}", stage.name());
            for stage in Stage::ALL {
                if let Some(h) = report.get(&tel_path(stage)).and_then(|m| m.as_hist()) {
                    s.push_str(&format!(
                        "  {:<10} {:>8} {:>6} {:>6} {:>6} {:>6}\n",
                        stage.name(),
                        h.count(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.p999()
                    ));
                }
            }
            s.push_str("\nper-class round-trip latency (cycles):\n");
            s.push_str(&format!(
                "  {:<10} {:>8} {:>6} {:>6}\n",
                "class", "count", "p50", "p99"
            ));
            for class in ["read", "write", "atomic", "cmc", "other"] {
                if let Some(h) = report
                    .get(&format!("dev0/latency/{class}"))
                    .and_then(|m| m.as_hist())
                {
                    if !h.is_empty() {
                        s.push_str(&format!(
                            "  {:<10} {:>8} {:>6} {:>6}\n",
                            class,
                            h.count(),
                            h.p50(),
                            h.p99()
                        ));
                    }
                }
            }
            s
        }
    };

    match out_path {
        Some(path) => {
            if let Some(parent) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {} bytes to {path}", rendered.len());
        }
        None => print!("{rendered}"),
    }
}
