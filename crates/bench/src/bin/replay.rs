//! Trace replay tool: runs a memory trace (the `hmc-workloads`
//! trace format) against a configurable device and prints the replay
//! metrics plus the device report.
//!
//! ```text
//! cargo run --release -p hmc-bench --bin replay -- trace.txt [--links 8] [--window 128]
//! cargo run --release -p hmc-bench --bin replay            # synthetic demo trace
//! ```
//!
//! `--checkpoint-every N` snapshots the device every `N` cycles and
//! reports the final checkpoint, `--sanitize` replays under the
//! invariant sanitizer (report policy) and prints its findings.

use hmc_sim::{report, DeviceConfig, HmcSim, SanitizerConfig};
use hmc_workloads::tracefile::{
    parse_trace, replay_resumable, synthetic_trace, ReplayConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str| -> Option<String> {
        args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
    };
    let links: usize = arg("--links").and_then(|s| s.parse().ok()).unwrap_or(4);
    let window: usize = arg("--window").and_then(|s| s.parse().ok()).unwrap_or(64);
    let checkpoint_every: u64 =
        arg("--checkpoint-every").and_then(|s| s.parse().ok()).unwrap_or(0);
    let sanitize = args.iter().any(|a| a == "--sanitize");
    let path = args.first().filter(|a| !a.starts_with("--"));

    let ops = match path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            parse_trace(&text).unwrap_or_else(|e| panic!("parse failure: {e}"))
        }
        None => {
            println!("(no trace given: replaying a synthetic 8-thread trace)\n");
            synthetic_trace(8, 256, 64)
        }
    };

    let config = if links == 8 {
        DeviceConfig::gen2_8link_8gb()
    } else {
        DeviceConfig::gen2_4link_4gb()
    };
    let mut sim = HmcSim::new(config).expect("valid device config");
    if sanitize {
        sim.enable_sanitizer(SanitizerConfig::report());
    }
    let replay_config = ReplayConfig { window, checkpoint_every, ..Default::default() };
    let (result, checkpoint) =
        replay_resumable(&mut sim, &ops, &replay_config, None).expect("replay runs");

    println!(
        "replayed {} ops ({} completed) in {} cycles: {} FLITs, {:.2} data B/cycle\n",
        result.issued, result.completed, result.cycles, result.link_flits, result.bytes_per_cycle
    );
    if let Some(ckpt) = checkpoint {
        println!(
            "last checkpoint: cycle {} (op cursor {}/{}, {} in flight)\n",
            ckpt.cycle,
            ckpt.cursor,
            ops.len(),
            ckpt.inflight.len()
        );
    }
    if sanitize {
        let report = sim.disable_sanitizer().expect("sanitizer was enabled");
        println!(
            "sanitizer: {} cycles checked, {} violations\n",
            report.cycles_checked, report.total_violations
        );
        for v in &report.violations {
            println!("  {v}");
        }
    }
    print!("{}", report::text_report(&sim, 0).expect("report"));
}
