//! Trace replay tool: runs a memory trace (the `hmc-workloads`
//! trace format) against a configurable device and prints the replay
//! metrics plus the device report.
//!
//! ```text
//! cargo run --release -p hmc-bench --bin replay -- trace.txt [--links 8] [--window 128]
//! cargo run --release -p hmc-bench --bin replay            # synthetic demo trace
//! ```
//!
//! `--checkpoint-every N` snapshots the device every `N` cycles and
//! reports the final checkpoint, `--sanitize` replays under the
//! invariant sanitizer (report policy) and prints its findings.
//!
//! Durable, crash-safe operation:
//!
//! ```text
//! replay trace.txt --checkpoint-dir ckpts            # persist checkpoints
//! replay trace.txt --checkpoint-dir ckpts --resume   # continue after a kill
//! ```
//!
//! `--checkpoint-dir` commits every checkpoint to a
//! [`hmc_sim::CheckpointStore`] (atomic tmp+fsync+rename files, CRC'd,
//! last `--retain K` generations kept) and records a run manifest so a
//! resume against a different trace or configuration is refused.
//! `--resume` restores the newest good checkpoint — corrupt ones are
//! quarantined as `.corrupt`, never used — re-derives the restored
//! state's fingerprint and refuses to continue if it does not match
//! the one recorded at commit time.

use hmc_sim::jsonv::obj;
use hmc_sim::{
    atomic_write, report, CheckpointStore, DeviceConfig, Fnv, HmcSim, Json, ObjReader,
    SanitizerConfig,
};
use hmc_workloads::tracefile::{
    parse_trace, render_trace, replay_with_sink, synthetic_trace, ReplayCheckpoint,
    ReplayConfig,
};
use std::path::Path;

const MANIFEST_MAGIC: &str = "hmc-replay-manifest";
const MANIFEST_VERSION: u64 = 1;

fn die(msg: String) -> ! {
    eprintln!("replay: ERROR: {msg}");
    std::process::exit(2);
}

/// FNV over the canonical trace text, so a manifest can detect a
/// resume against a different trace.
fn trace_digest(text: &str) -> u64 {
    let mut h = Fnv::new();
    for chunk in text.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h.u64(u64::from_le_bytes(word));
    }
    h.u64(text.len() as u64);
    h.finish()
}

struct Manifest {
    trace_digest: u64,
    links: usize,
    window: usize,
    checkpoint_every: u64,
}

impl Manifest {
    fn to_json(&self) -> String {
        obj(vec![
            ("magic", Json::Str(MANIFEST_MAGIC.into())),
            ("schema_version", Json::Int(MANIFEST_VERSION as i128)),
            ("trace_digest", Json::Int(self.trace_digest as i128)),
            ("links", Json::Int(self.links as i128)),
            ("window", Json::Int(self.window as i128)),
            ("checkpoint_every", Json::Int(self.checkpoint_every as i128)),
        ])
        .render()
    }

    fn from_json(text: &str) -> Result<Manifest, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let mut r = ObjReader::new("manifest", &v).map_err(|e| e.to_string())?;
        let magic = r.str("magic").map_err(|e| e.to_string())?;
        if magic != MANIFEST_MAGIC {
            return Err(format!("bad manifest magic `{magic}`"));
        }
        let version = r.u64("schema_version").map_err(|e| e.to_string())?;
        if version != MANIFEST_VERSION {
            return Err(format!("unsupported manifest schema_version {version}"));
        }
        let m = Manifest {
            trace_digest: r.u64("trace_digest").map_err(|e| e.to_string())?,
            links: r.usize("links").map_err(|e| e.to_string())?,
            window: r.usize("window").map_err(|e| e.to_string())?,
            checkpoint_every: r.u64("checkpoint_every").map_err(|e| e.to_string())?,
        };
        r.finish().map_err(|e| e.to_string())?;
        Ok(m)
    }
}

/// Loads or creates `<dir>/manifest.json`; refuses a mismatched resume.
fn reconcile_manifest(dir: &Path, current: &Manifest) {
    let path = dir.join("manifest.json");
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let prior = Manifest::from_json(&text)
                .unwrap_or_else(|e| die(format!("unreadable manifest {}: {e}", path.display())));
            let mut mismatches = Vec::new();
            if prior.trace_digest != current.trace_digest {
                mismatches.push(format!(
                    "trace digest {:#018x} != recorded {:#018x}",
                    current.trace_digest, prior.trace_digest
                ));
            }
            if prior.links != current.links {
                mismatches.push(format!("links {} != recorded {}", current.links, prior.links));
            }
            if prior.window != current.window {
                mismatches
                    .push(format!("window {} != recorded {}", current.window, prior.window));
            }
            if prior.checkpoint_every != current.checkpoint_every {
                mismatches.push(format!(
                    "checkpoint cadence {} != recorded {}",
                    current.checkpoint_every, prior.checkpoint_every
                ));
            }
            if !mismatches.is_empty() {
                die(format!(
                    "run manifest {} does not match this invocation:\n  {}\n\
                     refusing to mix checkpoints across runs (delete the \
                     checkpoint directory to start over)",
                    path.display(),
                    mismatches.join("\n  ")
                ));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            atomic_write(&path, current.to_json().as_bytes())
                .unwrap_or_else(|e| die(format!("cannot write manifest: {e}")));
        }
        Err(e) => die(format!("cannot read manifest {}: {e}", path.display())),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str| -> Option<String> {
        args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
    };
    let links: usize = arg("--links").and_then(|s| s.parse().ok()).unwrap_or(4);
    let window: usize = arg("--window").and_then(|s| s.parse().ok()).unwrap_or(64);
    let checkpoint_dir = arg("--checkpoint-dir");
    let retain: usize = arg("--retain").and_then(|s| s.parse().ok()).unwrap_or(4);
    let resume_requested = args.iter().any(|a| a == "--resume");
    let checkpoint_every: u64 = arg("--checkpoint-every")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if checkpoint_dir.is_some() { 5000 } else { 0 });
    let sanitize = args.iter().any(|a| a == "--sanitize");
    let path = args.first().filter(|a| !a.starts_with("--"));

    if resume_requested && checkpoint_dir.is_none() {
        die("--resume requires --checkpoint-dir".into());
    }

    let ops = match path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            parse_trace(&text).unwrap_or_else(|e| panic!("parse failure: {e}"))
        }
        None => {
            println!("(no trace given: replaying a synthetic 8-thread trace)\n");
            synthetic_trace(8, 256, 64)
        }
    };

    let config = if links == 8 {
        DeviceConfig::gen2_8link_8gb()
    } else {
        DeviceConfig::gen2_4link_4gb()
    };
    let mut sim = HmcSim::new(config).expect("valid device config");
    if sanitize {
        sim.enable_sanitizer(SanitizerConfig::report());
    }
    let replay_config = ReplayConfig { window, checkpoint_every, ..Default::default() };

    // Durable mode: open the store, reconcile the manifest, and (on
    // --resume) restore the newest good checkpoint with its
    // fingerprint re-verified against the one recorded at commit time.
    let mut store = None;
    let mut resume_from = None;
    if let Some(dir) = &checkpoint_dir {
        let dir = Path::new(dir);
        let open = CheckpointStore::open(dir, retain)
            .unwrap_or_else(|e| die(format!("cannot open checkpoint dir: {e}")));
        for q in &open.quarantined {
            println!("quarantined checkpoint: {} ({})", q.path.display(), q.reason);
        }
        reconcile_manifest(dir, &Manifest {
            trace_digest: trace_digest(&render_trace(&ops)),
            links,
            window,
            checkpoint_every,
        });
        if resume_requested {
            match open.latest {
                Some(record) => {
                    let body = std::str::from_utf8(&record.body)
                        .unwrap_or_else(|_| die("checkpoint body is not UTF-8".into()));
                    let ckpt = ReplayCheckpoint::from_json(body)
                        .unwrap_or_else(|e| die(format!("checkpoint does not parse: {e}")));
                    let restored = ckpt.snapshot.fingerprint();
                    if restored != record.fingerprint {
                        die(format!(
                            "fingerprint mismatch in generation {} (cycle {}): \
                             recorded {:#018x}, restored state hashes to {:#018x} — \
                             refusing to resume from inconsistent state",
                            record.generation, record.cycle, record.fingerprint, restored
                        ));
                    }
                    println!(
                        "resuming from generation {} (cycle {}, op cursor {}/{}, \
                         fingerprint {:#018x} verified)\n",
                        record.generation,
                        record.cycle,
                        ckpt.cursor,
                        ops.len(),
                        restored
                    );
                    resume_from = Some(ckpt);
                }
                None => println!("no usable checkpoint found: starting fresh\n"),
            }
        }
        store = Some(open.store);
    }

    let sink = |ckpt: &ReplayCheckpoint| {
        if let Some(store) = store.as_mut() {
            store
                .commit(ckpt.cycle, ckpt.snapshot.fingerprint(), ckpt.to_json().as_bytes())
                .map_err(|e| {
                    hmc_types::HmcError::MalformedPacket(format!("checkpoint commit failed: {e}"))
                })?;
        }
        Ok(())
    };
    let (result, checkpoint) =
        replay_with_sink(&mut sim, &ops, &replay_config, resume_from, sink)
            .expect("replay runs");

    println!(
        "replayed {} ops ({} completed) in {} cycles: {} FLITs, {:.2} data B/cycle\n",
        result.issued, result.completed, result.cycles, result.link_flits, result.bytes_per_cycle
    );
    if let Some(ckpt) = checkpoint {
        println!(
            "last checkpoint: cycle {} (op cursor {}/{}, {} in flight)\n",
            ckpt.cycle,
            ckpt.cursor,
            ops.len(),
            ckpt.inflight.len()
        );
    }
    if sanitize {
        let report = sim.disable_sanitizer().expect("sanitizer was enabled");
        println!(
            "sanitizer: {} cycles checked, {} violations\n",
            report.cycles_checked, report.total_violations
        );
        for v in &report.violations {
            println!("  {v}");
        }
    }
    println!("final state fingerprint: {:#018x}\n", sim.state_fingerprint());
    print!("{}", report::text_report(&sim, 0).expect("report"));
}
