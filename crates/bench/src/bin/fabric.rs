//! Multi-cube fabric scaling measurement.
//!
//! Runs the fabric GUPS kernel (per-cube random XOR update streams,
//! ~10% of traffic routed to a remote cube) across the topology
//! matrix — chain / ring / mesh from 1 to 16 cubes — under every
//! engine combination (sequential and parallel tick engines, with and
//! without idle-cycle skipping), then emits `BENCH_fabric.json`.
//!
//! ```text
//! cargo run --release -p hmc-bench --bin fabric
//! cargo run --release -p hmc-bench --bin fabric -- --out BENCH_fabric.json
//! cargo run --release -p hmc-bench --bin fabric -- --reps 3
//! ```
//!
//! The headline metric is **aggregate simulated throughput**: total
//! committed updates divided by simulated cycles. Unlike wall-clock
//! speedup it is a pure function of the simulation, so the scaling
//! gate is deterministic and host-independent. The exit code enforces
//! two contracts:
//!
//! * every engine combination of a topology lands on the same state
//!   fingerprint (the fabric determinism contract), and
//! * the best 16-cube topology sustains at least 12x the aggregate
//!   updates-per-cycle of a single cube under the parallel engine
//!   with skipping on (near-linear multi-cube scaling).

use hmc_sim::{DeviceConfig, ExecMode, HmcSim, SimConfig, SkipMode};
use hmc_workloads::{FabricGupsConfig, FabricGupsKernel};
use std::time::Instant;

/// The benchmark workload: a fixed per-cube update budget so aggregate
/// work grows linearly with the cube count. The budget is large enough
/// that steady-state injection dominates the multi-hop completion tail
/// of the last remote updates.
fn gups_config() -> FabricGupsConfig {
    FabricGupsConfig { updates_per_cube: 2048, remote_permille: 50, ..Default::default() }
}

/// The topology matrix: one single-cube baseline plus chain / ring /
/// mesh fabrics up to the 16-cube architectural maximum.
fn topologies() -> Vec<(&'static str, usize, SimConfig)> {
    let d = DeviceConfig::gen2_4link_4gb;
    vec![
        ("single1", 1, SimConfig::single(d())),
        ("chain2", 2, SimConfig::chain(d(), 2)),
        ("chain4", 4, SimConfig::chain(d(), 4)),
        ("chain8", 8, SimConfig::chain(d(), 8)),
        ("chain16", 16, SimConfig::chain(d(), 16)),
        ("ring4", 4, SimConfig::ring(d(), 4)),
        ("ring8", 8, SimConfig::ring(d(), 8)),
        ("ring16", 16, SimConfig::ring(d(), 16)),
        ("mesh2x2", 4, SimConfig::mesh(d(), 2, 2)),
        ("mesh4x2", 8, SimConfig::mesh(d(), 4, 2)),
        ("mesh4x4", 16, SimConfig::mesh(d(), 4, 4)),
    ]
}

struct Sample {
    topology: &'static str,
    cubes: usize,
    mode: String,
    threads: usize,
    skip: &'static str,
    sim_cycles: u64,
    updates: u64,
    remote_updates: u64,
    best_wall_s: f64,
    fingerprint: u64,
}

impl Sample {
    fn updates_per_cycle(&self) -> f64 {
        self.updates as f64 / self.sim_cycles as f64
    }
}

/// Runs one topology under one engine combination `reps` times,
/// keeping the best wall time (minimum-of-N noise filter). Simulated
/// cycles, update counts and the fingerprint are identical across
/// reps by the determinism contract.
fn measure(
    topology: &'static str,
    cubes: usize,
    config: &SimConfig,
    mode: ExecMode,
    skip: SkipMode,
    reps: usize,
) -> Sample {
    let mut best_wall_s = f64::INFINITY;
    let mut sim_cycles = 0;
    let mut updates = 0;
    let mut remote_updates = 0;
    let mut fingerprint = 0;
    for _ in 0..reps {
        let mut sim = HmcSim::with_config(config.clone()).expect("valid fabric config");
        sim.set_exec_mode(mode);
        sim.set_skip_mode(skip);
        let start = Instant::now();
        let result = FabricGupsKernel::new(gups_config()).run(&mut sim).expect("gups runs");
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(result.errors, 0, "fabric gups verification ({topology})");
        best_wall_s = best_wall_s.min(wall);
        sim_cycles = result.cycles;
        updates = result.updates;
        remote_updates = result.remote_updates;
        fingerprint = sim.state_fingerprint();
    }
    let (mode_name, threads) = match mode {
        ExecMode::Sequential => ("sequential".to_string(), 1),
        ExecMode::Parallel { threads } => ("parallel".to_string(), threads),
    };
    Sample {
        topology,
        cubes,
        mode: mode_name,
        threads,
        skip: if skip == SkipMode::On { "on" } else { "off" },
        sim_cycles,
        updates,
        remote_updates,
        best_wall_s,
        fingerprint,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<String> {
        args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
    };
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_fabric.json".into());
    let reps: usize = arg("--reps").and_then(|s| s.parse().ok()).unwrap_or(2);

    hmc_cmc::ops::register_builtin_libraries();
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let engine_matrix = [
        (ExecMode::Sequential, SkipMode::Off),
        (ExecMode::Sequential, SkipMode::On),
        (ExecMode::Parallel { threads: 1 }, SkipMode::Off),
        (ExecMode::Parallel { threads: 1 }, SkipMode::On),
        (ExecMode::Parallel { threads: 2 }, SkipMode::Off),
        (ExecMode::Parallel { threads: 2 }, SkipMode::On),
        (ExecMode::Parallel { threads: 8 }, SkipMode::Off),
        (ExecMode::Parallel { threads: 8 }, SkipMode::On),
    ];

    let mut samples = Vec::new();
    for (name, cubes, config) in topologies() {
        for (mode, skip) in engine_matrix {
            samples.push(measure(name, cubes, &config, mode, skip, reps));
        }
    }

    // Determinism gate: every engine combination of a topology must
    // land on the same state fingerprint.
    let mut fingerprints_match = true;
    for (name, _, _) in topologies() {
        let expect = samples
            .iter()
            .find(|s| s.topology == name)
            .map(|s| s.fingerprint)
            .expect("sample exists");
        for s in samples.iter().filter(|s| s.topology == name) {
            if s.fingerprint != expect {
                fingerprints_match = false;
                eprintln!(
                    "FINGERPRINT MISMATCH: {} {}x{} skip={} {:#018x} != {:#018x}",
                    s.topology, s.mode, s.threads, s.skip, s.fingerprint, expect
                );
            }
        }
    }

    // Scaling gate: the best 16-cube topology must sustain >= 12x the
    // single-cube aggregate updates-per-cycle (parallel 8, skip on).
    let gate = |pred: &dyn Fn(&&Sample) -> bool| -> f64 {
        samples
            .iter()
            .filter(|s| s.mode == "parallel" && s.threads == 8 && s.skip == "on")
            .filter(pred)
            .map(|s| s.updates_per_cycle())
            .fold(0.0, f64::max)
    };
    let base = gate(&|s| s.cubes == 1);
    let peak16 = gate(&|s| s.cubes == 16);
    let scaling_16x = peak16 / base;
    let scaling_ok = scaling_16x >= 12.0;

    let mut entries = Vec::new();
    for s in &samples {
        println!(
            "{:<8} cubes={:<2} {:<10} threads={} skip={:<3} : {:>7} updates ({:>5} remote) \
             in {:>8} cycles -> {:>6.3} upd/cycle [{:>7.2} ms wall]",
            s.topology,
            s.cubes,
            s.mode,
            s.threads,
            s.skip,
            s.updates,
            s.remote_updates,
            s.sim_cycles,
            s.updates_per_cycle(),
            s.best_wall_s * 1e3,
        );
        entries.push(format!(
            "    {{\"topology\": \"{}\", \"cubes\": {}, \"mode\": \"{}\", \"threads\": {}, \
             \"skip\": \"{}\", \"sim_cycles\": {}, \"updates\": {}, \"remote_updates\": {}, \
             \"updates_per_cycle\": {:.6}, \"best_wall_s\": {:.6}, \"fingerprint\": \"{:#018x}\"}}",
            s.topology,
            s.cubes,
            s.mode,
            s.threads,
            s.skip,
            s.sim_cycles,
            s.updates,
            s.remote_updates,
            s.updates_per_cycle(),
            s.best_wall_s,
            s.fingerprint
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"fabric\",\n  \"host_cpus\": {host_cpus},\n  \"reps\": {reps},\n  \
         \"fingerprints_match\": {fingerprints_match},\n  \
         \"scaling_16_vs_1\": {scaling_16x:.3},\n  \"scaling_ok\": {scaling_ok},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write JSON");
    println!(
        "wrote {out_path} (host_cpus={host_cpus}, 16-cube aggregate scaling {scaling_16x:.2}x)"
    );

    if !fingerprints_match || !scaling_ok {
        std::process::exit(1);
    }
}
