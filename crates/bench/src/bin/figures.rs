//! Regenerates paper **Figures 5, 6 and 7** — minimum, maximum and
//! average lock cycles versus thread count (2..=100) for the
//! 4Link-4GB and 8Link-8GB configurations — as CSV series.
//!
//! ```text
//! cargo run --release -p hmc-bench --bin figures                 # all three series
//! cargo run --release -p hmc-bench --bin figures -- --metric min # Figure 5 only
//! cargo run --release -p hmc-bench --bin figures -- --links 2,4,8 --spin honest
//! ```

use hmc_bench::{mutex_sweep, SweepPoint};
use hmc_sim::DeviceConfig;
use hmc_workloads::SpinPolicy;

fn config_for_links(links: usize) -> DeviceConfig {
    match links {
        2 => DeviceConfig::gen2_2link_4gb(),
        4 => DeviceConfig::gen2_4link_4gb(),
        8 => DeviceConfig::gen2_8link_8gb(),
        other => panic!("no preset for {other} links"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<String> {
        args.windows(2)
            .find(|w| w[0] == name)
            .map(|w| w[1].clone())
    };
    let metric = arg("--metric").unwrap_or_else(|| "all".into());
    if !matches!(metric.as_str(), "all" | "min" | "max" | "avg" | "p50" | "p99") {
        eprintln!("error: unknown --metric '{metric}' (expected all|min|max|avg|p50|p99)");
        std::process::exit(2);
    }
    let spin = match arg("--spin").as_deref() {
        Some("honest") => SpinPolicy::until_owned(),
        _ => SpinPolicy::PaperBounded,
    };
    let links: Vec<usize> = arg("--links")
        .unwrap_or_else(|| "4,8".into())
        .split(',')
        .map(|s| s.parse().expect("link count"))
        .collect();
    let max_threads: usize = arg("--max-threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    let sweeps: Vec<(String, Vec<SweepPoint>)> = links
        .iter()
        .map(|&l| {
            let cfg = config_for_links(l);
            (cfg.label(), mutex_sweep(&cfg, spin, 2..=max_threads))
        })
        .collect();

    let emit = |name: &str, fig: &str, pick: &dyn Fn(&SweepPoint) -> String| {
        println!("# {fig}: {name} lock cycles vs thread count (spin={spin:?})");
        let mut header = String::from("threads");
        for (label, _) in &sweeps {
            header.push(',');
            header.push_str(label);
        }
        println!("{header}");
        let n = sweeps[0].1.len();
        for i in 0..n {
            let mut line = sweeps[0].1[i].threads.to_string();
            for (_, points) in &sweeps {
                line.push(',');
                line.push_str(&pick(&points[i]));
            }
            println!("{line}");
        }
        println!();
    };

    if metric == "all" || metric == "min" {
        emit("minimum", "Figure 5", &|p| p.min.to_string());
    }
    if metric == "all" || metric == "max" {
        emit("maximum", "Figure 6", &|p| p.max.to_string());
    }
    if metric == "all" || metric == "avg" {
        emit("average", "Figure 7", &|p| format!("{:.2}", p.avg));
    }
    if metric == "all" || metric == "p50" {
        emit("median", "p50 series", &|p| p.p50.to_string());
    }
    if metric == "all" || metric == "p99" {
        emit("p99", "p99 series", &|p| p.p99.to_string());
    }
}
