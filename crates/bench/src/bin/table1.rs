//! Regenerates paper **Table I** — "HMC-Sim 2.0 Gen2 Additional
//! Command Support": the commands added for the 2.0/2.1
//! specification with their request and response FLIT counts,
//! produced from the simulator's own command metadata.
//!
//! ```text
//! cargo run -p hmc-bench --bin table1
//! ```

use hmc_bench::TableWriter;
use hmc_types::{CmdKind, HmcRqst};

/// The commands Table I lists (those added in the 2.0 release beyond
/// the 1.0 read/write set).
const TABLE_ONE: &[HmcRqst] = &[
    HmcRqst::Rd256,
    HmcRqst::Wr256,
    HmcRqst::PWr256,
    HmcRqst::TwoAdd8,
    HmcRqst::Add16,
    HmcRqst::P2Add8,
    HmcRqst::PAdd16,
    HmcRqst::TwoAddS8R,
    HmcRqst::AddS16R,
    HmcRqst::Inc8,
    HmcRqst::PInc8,
    HmcRqst::Xor16,
    HmcRqst::Or16,
    HmcRqst::Nor16,
    HmcRqst::And16,
    HmcRqst::Nand16,
    HmcRqst::CasGt8,
    HmcRqst::CasGt16,
    HmcRqst::CasLt8,
    HmcRqst::CasLt16,
    HmcRqst::CasEq8,
    HmcRqst::CasZero16,
    HmcRqst::Eq8,
    HmcRqst::Eq16,
    HmcRqst::Bwr,
    HmcRqst::PBwr,
    HmcRqst::Bwr8R,
    HmcRqst::Swap16,
];

fn class(kind: CmdKind) -> &'static str {
    match kind {
        CmdKind::Read => "Read",
        CmdKind::Write => "Write",
        CmdKind::PostedWrite => "Posted Write",
        CmdKind::Atomic => "Atomic",
        CmdKind::PostedAtomic => "Posted Atomic",
        CmdKind::Flow => "Flow",
        CmdKind::ModeRead | CmdKind::ModeWrite => "Mode",
        CmdKind::Cmc => "CMC",
    }
}

fn main() {
    println!("Table I: HMC-Sim 2.0 Gen2 Additional Command Support");
    println!("(request/response lengths in FLITs, from hmc-types metadata)\n");

    let mut table = TableWriter::new(&[
        "Command",
        "Command Enum",
        "Code",
        "Class",
        "Request Flits",
        "Response Flits",
    ]);
    for &cmd in TABLE_ONE {
        let info = cmd.fixed_info().expect("standard command");
        table.row(&[
            info.name.to_string(),
            cmd.mnemonic(),
            format!("{:#04x}", info.code),
            class(info.kind).to_string(),
            info.rqst_flits.to_string(),
            info.rsp_flits.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\n{} standard Gen2 commands total; {} unused command codes available as CMC slots.",
        HmcRqst::STANDARD.len(),
        HmcRqst::cmc_codes().count()
    );
}
