//! Trace-file analysis tool: parses an HMC-Sim trace (from a file or
//! stdin) and prints the aggregate report — per-command counts,
//! vault-load hot spots, latency percentiles and stall census.
//!
//! ```text
//! cargo run -p hmc-bench --bin trace_stats -- trace.log
//! cargo run -p hmc-bench --bin trace_stats            # demo trace
//! ```

use hmc_sim::trace_analysis::TraceSummary;
use hmc_sim::{DeviceConfig, HmcSim, TraceBuffer, TraceLevel, Tracer};
use hmc_types::HmcRqst;
use std::io::Read;

/// Generates a demonstration trace: a mixed workload with the CMC
/// mutex loaded.
fn demo_trace() -> Vec<String> {
    hmc_cmc::ops::register_builtin_libraries();
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).expect("valid config");
    let buf = TraceBuffer::new();
    sim.set_tracer(Tracer::to_buffer(TraceLevel::ALL, buf.clone()));
    sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY).expect("mutex lib");
    for i in 0..64u64 {
        let link = (i % 4) as usize;
        let _ = sim.send_simple(0, link, HmcRqst::Wr16, i * 0x100, vec![i, i]);
        let _ = sim.send_simple(0, link, HmcRqst::Inc8, 0x40, vec![]);
        let _ = sim.send_cmc(0, link, 125, 0x4000, vec![i + 1, 0]);
        sim.clock();
    }
    sim.drain(10_000);
    buf.lines()
}

fn main() {
    let lines: Vec<String> = match std::env::args().nth(1) {
        Some(path) if path == "-" => {
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s).expect("stdin");
            s.lines().map(str::to_string).collect()
        }
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
            .lines()
            .map(str::to_string)
            .collect(),
        None => {
            println!("(no trace file given: analysing a generated demo trace)\n");
            demo_trace()
        }
    };
    let summary = TraceSummary::from_lines(lines.iter().map(String::as_str));
    print!("{}", summary.render());
    // Latency distribution from the shared log2 histogram (the old
    // ad-hoc sort-and-index percentile code lived here; the quantiles
    // now come from `Hist` along with the bucket table).
    let hist = &summary.latency;
    if !hist.is_empty() {
        println!(
            "latency quantiles: p50 {} / p90 {} / p99 {} / p999 {}",
            hist.p50(),
            hist.p90(),
            hist.p99(),
            hist.p999()
        );
        println!("latency buckets (<= bound: count):");
        for (upper, count) in hist.nonzero_buckets() {
            let bar = "#".repeat(((count * 40).div_ceil(hist.count())) as usize);
            println!("  <= {upper:>8} : {count:>6} {bar}");
        }
    }
    if summary.skipped_lines > 0 {
        println!("({} non-trace lines skipped)", summary.skipped_lines);
    }
}
