//! Parallel tick-engine scaling measurement.
//!
//! Runs a stage-3-saturating STREAM Triad (wide links, wide vault
//! controllers, deep issue window — the configuration where vault
//! execution dominates the cycle cost) and the CMC mutex kernel
//! (whose CMC traffic always falls back to the serial reference path)
//! across the thread matrix, then emits `BENCH_parallel.json`:
//! simulated cycles/second per mode, speedup versus the sequential
//! engine, and the cross-mode fingerprint check.
//!
//! ```text
//! cargo run --release -p hmc-bench --bin parallel_scaling
//! cargo run --release -p hmc-bench --bin parallel_scaling -- --out BENCH_parallel.json
//! cargo run --release -p hmc-bench --bin parallel_scaling -- --reps 5
//! ```
//!
//! Speedup is hardware-dependent: the JSON records `host_cpus` so a
//! single-core container's flat curve is not mistaken for a
//! regression. The exit code reflects only the determinism check —
//! every mode must produce the sequential fingerprint.

use hmc_sim::{DeviceConfig, ExecMode, HmcSim};
use hmc_workloads::kernels::triad::{TriadConfig, TriadKernel};
use hmc_workloads::{MutexKernel, MutexKernelConfig};
use std::time::Instant;

/// The stage-3-saturating device: wide links feed wide vault
/// controllers so the vault-execution stage dominates each cycle.
fn saturated_device() -> DeviceConfig {
    let mut config = DeviceConfig::gen2_4link_4gb();
    config.link_bandwidth = 8;
    config.vault_bandwidth = 4;
    config
}

fn saturated_triad() -> TriadConfig {
    TriadConfig {
        elements: 16384,
        chunk_bytes: 256,
        window: 256,
        ..Default::default()
    }
}

struct Sample {
    workload: &'static str,
    mode: String,
    threads: usize,
    sim_cycles: u64,
    best_wall_s: f64,
    fingerprint: u64,
}

impl Sample {
    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.best_wall_s
    }
}

/// Runs one workload under one mode `reps` times, keeping the best
/// wall time (the standard minimum-of-N noise filter).
fn measure(
    workload: &'static str,
    mode: ExecMode,
    reps: usize,
    run: impl Fn(&mut HmcSim) -> u64,
    device: &DeviceConfig,
) -> Sample {
    let mut best_wall_s = f64::INFINITY;
    let mut sim_cycles = 0;
    let mut fingerprint = 0;
    for _ in 0..reps {
        let mut sim = HmcSim::new(device.clone()).expect("valid config");
        sim.set_exec_mode(mode);
        let start = Instant::now();
        sim_cycles = run(&mut sim);
        let wall = start.elapsed().as_secs_f64();
        best_wall_s = best_wall_s.min(wall);
        fingerprint = sim.state_fingerprint();
    }
    let (mode_name, threads) = match mode {
        ExecMode::Sequential => ("sequential".to_string(), 1),
        ExecMode::Parallel { threads } => ("parallel".to_string(), threads),
    };
    Sample { workload, mode: mode_name, threads, sim_cycles, best_wall_s, fingerprint }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<String> {
        args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
    };
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_parallel.json".into());
    let reps: usize = arg("--reps").and_then(|s| s.parse().ok()).unwrap_or(3);

    hmc_cmc::ops::register_builtin_libraries();
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let thread_matrix = [1usize, 2, 4, 8];

    let triad_device = saturated_device();
    let run_triad = |sim: &mut HmcSim| {
        let result = TriadKernel::new(saturated_triad()).run(sim).expect("triad runs");
        assert_eq!(result.errors, 0, "triad verification");
        result.cycles
    };
    let mutex_device = DeviceConfig::gen2_4link_4gb();
    let run_mutex = |sim: &mut HmcSim| {
        sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY).expect("mutex library loads");
        MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(sim)
            .expect("mutex kernel runs");
        sim.cycle()
    };

    let mut samples = Vec::new();
    samples.push(measure("triad_saturated", ExecMode::Sequential, reps, run_triad, &triad_device));
    for threads in thread_matrix {
        samples.push(measure(
            "triad_saturated",
            ExecMode::Parallel { threads },
            reps,
            run_triad,
            &triad_device,
        ));
    }
    samples.push(measure("mutex_cmc", ExecMode::Sequential, reps, run_mutex, &mutex_device));
    for threads in thread_matrix {
        samples.push(measure(
            "mutex_cmc",
            ExecMode::Parallel { threads },
            reps,
            run_mutex,
            &mutex_device,
        ));
    }

    // Determinism gate: every mode of a workload must land on the
    // sequential fingerprint.
    let mut fingerprints_match = true;
    for workload in ["triad_saturated", "mutex_cmc"] {
        let expect = samples
            .iter()
            .find(|s| s.workload == workload && s.mode == "sequential")
            .map(|s| s.fingerprint)
            .expect("sequential sample exists");
        for s in samples.iter().filter(|s| s.workload == workload) {
            if s.fingerprint != expect {
                fingerprints_match = false;
                eprintln!(
                    "FINGERPRINT MISMATCH: {} {}x{} {:#018x} != {:#018x}",
                    s.workload, s.mode, s.threads, s.fingerprint, expect
                );
            }
        }
    }

    let baseline = |workload: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.workload == workload && s.mode == "sequential")
            .map(|s| s.cycles_per_sec())
            .unwrap_or(f64::NAN)
    };
    let mut entries = Vec::new();
    for s in &samples {
        let speedup = s.cycles_per_sec() / baseline(s.workload);
        println!(
            "{:<16} {:<10} threads={} : {:>9} cycles in {:>8.2} ms -> {:>12.0} cycles/s ({:.2}x)",
            s.workload,
            s.mode,
            s.threads,
            s.sim_cycles,
            s.best_wall_s * 1e3,
            s.cycles_per_sec(),
            speedup
        );
        entries.push(format!(
            "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"sim_cycles\": {}, \"best_wall_s\": {:.6}, \"cycles_per_sec\": {:.1}, \
             \"speedup_vs_sequential\": {:.3}, \"fingerprint\": \"{:#018x}\"}}",
            s.workload,
            s.mode,
            s.threads,
            s.sim_cycles,
            s.best_wall_s,
            s.cycles_per_sec(),
            speedup,
            s.fingerprint
        ));
    }
    let json = format!
        (
        "{{\n  \"bench\": \"parallel_scaling\",\n  \"host_cpus\": {host_cpus},\n  \
         \"reps\": {reps},\n  \"fingerprints_match\": {fingerprints_match},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write JSON");
    println!("wrote {out_path} (host_cpus={host_cpus})");

    if !fingerprints_match {
        std::process::exit(1);
    }
}
