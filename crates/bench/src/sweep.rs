//! The mutex-kernel thread sweep behind Table VI and Figures 5–7.

use hmc_sim::{DeviceConfig, Hist, HmcSim};
use hmc_workloads::{MutexKernel, MutexKernelConfig, SpinPolicy};

/// One point of the thread sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Thread count of this simulation.
    pub threads: usize,
    /// MIN_CYCLE — fastest thread's completion cycle.
    pub min: u64,
    /// MAX_CYCLE — slowest thread's completion cycle.
    pub max: u64,
    /// AVG_CYCLE — mean completion cycle.
    pub avg: f64,
    /// Median per-thread completion cycle.
    pub p50: u64,
    /// 99th-percentile per-thread completion cycle.
    pub p99: u64,
}

/// Builds a fresh simulation context with the mutex library loaded.
pub fn mutex_sim(config: &DeviceConfig) -> HmcSim {
    hmc_cmc::ops::register_builtin_libraries();
    let mut sim = HmcSim::new(config.clone()).expect("valid device config");
    sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY)
        .expect("mutex library loads");
    sim
}

/// Runs Algorithm 1 once at the given thread count.
pub fn mutex_point(config: &DeviceConfig, spin: SpinPolicy, threads: usize) -> SweepPoint {
    let mut sim = mutex_sim(config);
    let kernel = MutexKernel::new(MutexKernelConfig {
        threads,
        spin,
        ..Default::default()
    });
    let result = kernel.run(&mut sim).expect("mutex kernel runs");
    assert_eq!(result.metrics.unfinished, 0, "threads must finish");
    let mut hist = Hist::new();
    for &c in &result.metrics.per_thread_cycles {
        hist.record(c);
    }
    SweepPoint {
        threads,
        min: result.metrics.min_cycle(),
        max: result.metrics.max_cycle(),
        avg: result.metrics.avg_cycle(),
        p50: hist.p50(),
        p99: hist.p99(),
    }
}

/// Sweeps thread counts, one independent simulation per point — the
/// paper's 2..=100 thread methodology (§V-B).
pub fn mutex_sweep(
    config: &DeviceConfig,
    spin: SpinPolicy,
    threads: impl IntoIterator<Item = usize>,
) -> Vec<SweepPoint> {
    threads
        .into_iter()
        .map(|t| mutex_point(config, spin, t))
        .collect()
}

/// The Table VI row derived from a sweep: overall minimum, overall
/// maximum and the worst per-run average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSummary {
    /// Smallest MIN_CYCLE across the sweep.
    pub min_cycle: u64,
    /// Largest MAX_CYCLE across the sweep.
    pub max_cycle: u64,
    /// Thread count where the largest MAX_CYCLE occurred.
    pub max_cycle_at: usize,
    /// Largest AVG_CYCLE across the sweep.
    pub max_avg_cycle: f64,
    /// Thread count where the largest AVG_CYCLE occurred.
    pub max_avg_at: usize,
    /// Largest per-thread p99 completion cycle across the sweep.
    pub max_p99: u64,
    /// Thread count where the largest p99 occurred.
    pub max_p99_at: usize,
}

/// Summarizes a sweep into its Table VI row.
pub fn summarize(points: &[SweepPoint]) -> SweepSummary {
    assert!(!points.is_empty(), "sweep must contain points");
    let min_cycle = points.iter().map(|p| p.min).min().expect("nonempty");
    let (max_point, _) = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p, i))
        .max_by_key(|(p, _)| p.max)
        .expect("nonempty");
    let avg_point = points
        .iter()
        .max_by(|a, b| a.avg.partial_cmp(&b.avg).expect("finite"))
        .expect("nonempty");
    let p99_point = points.iter().max_by_key(|p| p.p99).expect("nonempty");
    SweepSummary {
        min_cycle,
        max_cycle: max_point.max,
        max_cycle_at: max_point.threads,
        max_avg_cycle: avg_point.avg,
        max_avg_at: avg_point.threads,
        max_p99: p99_point.p99,
        max_p99_at: p99_point.threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_are_deterministic() {
        let cfg = DeviceConfig::gen2_4link_4gb();
        let a = mutex_point(&cfg, SpinPolicy::PaperBounded, 10);
        let b = mutex_point(&cfg, SpinPolicy::PaperBounded, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn min_cycle_is_six_for_small_sweeps() {
        let cfg = DeviceConfig::gen2_4link_4gb();
        let points = mutex_sweep(&cfg, SpinPolicy::PaperBounded, [2, 4, 8]);
        let summary = summarize(&points);
        assert_eq!(summary.min_cycle, 6);
        assert!(summary.max_cycle >= 6);
        for p in &points {
            assert!(p.min <= p.p50 && p.p50 <= p.p99 && p.p99 <= p.max);
        }
        assert!(summary.max_p99 <= summary.max_cycle);
    }

    #[test]
    fn max_grows_with_threads() {
        let cfg = DeviceConfig::gen2_4link_4gb();
        let points = mutex_sweep(&cfg, SpinPolicy::PaperBounded, [4, 32]);
        assert!(points[1].max > points[0].max);
        let summary = summarize(&points);
        assert_eq!(summary.max_cycle_at, 32);
    }
}
