//! # hmc-bench
//!
//! The benchmark and reproduction harness: one binary per paper table
//! and figure (see DESIGN.md §5) plus Criterion micro/macro benches.
//! This library holds the shared harness code — table formatting and
//! the experiment sweep driver — used by the binaries and benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod idle;
pub mod sweep;
pub mod table;

pub use sweep::{mutex_point, mutex_sim, mutex_sweep, summarize, SweepPoint, SweepSummary};
pub use table::TableWriter;
