//! End-to-end durability: a trace replay journaled through the
//! [`hmc_sim::CheckpointStore`] survives a kill at any checkpoint and
//! resumes to a final state **bit-identical** to an uninterrupted run.

use hmc_sim::{CheckpointStore, DeviceConfig, HmcSim};
use hmc_types::HmcError;
use hmc_workloads::tracefile::{
    replay_resumable, replay_with_sink, synthetic_trace, ReplayCheckpoint, ReplayConfig,
};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("hmc-durable-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn commit(store: &mut CheckpointStore, ckpt: &ReplayCheckpoint) -> Result<(), HmcError> {
    store
        .commit(ckpt.cycle, ckpt.snapshot.fingerprint(), ckpt.to_json().as_bytes())
        .map(|_| ())
        .map_err(|e| HmcError::MalformedPacket(format!("commit: {e}")))
}

/// Recovers the newest good checkpoint from `dir`, re-verifying the
/// restored snapshot's fingerprint against the one recorded in the
/// header at commit time (the trust chain the replay CLI enforces).
fn recover(dir: &std::path::Path) -> (CheckpointStore, Option<ReplayCheckpoint>) {
    let report = CheckpointStore::open(dir, 8).unwrap();
    let ckpt = report.latest.map(|record| {
        let ckpt =
            ReplayCheckpoint::from_json(std::str::from_utf8(&record.body).unwrap()).unwrap();
        assert_eq!(
            ckpt.snapshot.fingerprint(),
            record.fingerprint,
            "restored fingerprint must match the recorded one"
        );
        ckpt
    });
    (report.store, ckpt)
}

#[test]
fn kill_at_any_checkpoint_resumes_bit_identically() {
    let ops = synthetic_trace(4, 64, 64);
    let config = ReplayConfig { checkpoint_every: 10, window: 16, ..Default::default() };

    // Ground truth: an uninterrupted run.
    let mut full = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let (full_result, last) = replay_resumable(&mut full, &ops, &config, None).unwrap();
    let checkpoints_taken = {
        // Count checkpoints by re-running with a counting sink.
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let mut n = 0usize;
        replay_with_sink(&mut sim, &ops, &config, None, |_| {
            n += 1;
            Ok(())
        })
        .unwrap();
        n
    };
    assert!(last.is_some() && checkpoints_taken >= 3, "test needs several checkpoints");

    // Kill the run after each k-th durable commit in turn; resume from
    // disk; the final state must always match the uninterrupted run.
    for kill_after in 1..=checkpoints_taken {
        let dir = tmpdir(&format!("kill-{kill_after}"));
        let mut store = CheckpointStore::open(&dir, 8).unwrap().store;
        let mut committed = 0usize;
        let mut crashed = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let killed = replay_with_sink(&mut crashed, &ops, &config, None, |ckpt| {
            commit(&mut store, ckpt)?;
            committed += 1;
            if committed == kill_after {
                // Simulated kill: abort the replay mid-flight. The
                // in-memory sim is now garbage, as after SIGKILL.
                return Err(HmcError::MalformedPacket("simulated kill".into()));
            }
            Ok(())
        });
        assert!(killed.is_err(), "the kill aborts the replay");
        drop(crashed);
        drop(store);

        let (_, resume) = recover(&dir);
        let resume = resume.expect("a committed checkpoint exists");
        let mut resumed = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let (resumed_result, _) =
            replay_resumable(&mut resumed, &ops, &config, Some(resume)).unwrap();
        assert_eq!(resumed_result, full_result, "kill after commit {kill_after}");
        assert_eq!(
            resumed.state_fingerprint(),
            full.state_fingerprint(),
            "kill after commit {kill_after}: resumed run diverged"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn corrupt_newest_checkpoint_falls_back_and_still_converges() {
    let ops = synthetic_trace(4, 64, 64);
    let config = ReplayConfig { checkpoint_every: 10, window: 16, ..Default::default() };

    let mut full = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    replay_resumable(&mut full, &ops, &config, None).unwrap();

    let dir = tmpdir("corrupt-fallback");
    let mut store = CheckpointStore::open(&dir, 8).unwrap().store;
    let mut crashed = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let mut committed = 0usize;
    let _ = replay_with_sink(&mut crashed, &ops, &config, None, |ckpt| {
        commit(&mut store, ckpt)?;
        committed += 1;
        if committed == 3 {
            return Err(HmcError::MalformedPacket("simulated kill".into()));
        }
        Ok(())
    });
    assert_eq!(committed, 3);

    // The kill also tore the newest checkpoint file.
    let newest = store.generations().last().copied().unwrap();
    let victim = store.path_of(newest);
    let data = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &data[..data.len() / 2]).unwrap();
    drop(store);

    let (store, resume) = recover(&dir);
    assert_eq!(
        store.generations().last().copied().unwrap(),
        newest - 1,
        "recovery falls back to the previous generation"
    );
    assert!(victim.with_extension("json.corrupt").exists() || !victim.exists());
    let mut resumed = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    replay_resumable(&mut resumed, &ops, &config, Some(resume.unwrap())).unwrap();
    assert_eq!(
        resumed.state_fingerprint(),
        full.state_fingerprint(),
        "fallback generation still converges to the uninterrupted final state"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
