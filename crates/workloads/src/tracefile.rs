//! Trace-driven simulation.
//!
//! Full-system frontends (MARSSx86 in Rosenfeld's related work \[8\],
//! or any core model) drive memory simulators with request traces.
//! This module defines a small line-oriented trace format, a parser
//! and a windowed replayer so captured or synthetic traces run
//! against the device without writing host code:
//!
//! ```text
//! # comment / blank lines ignored
//! R <hex-addr> <bytes> [tid]     # read (16..256 bytes)
//! W <hex-addr> <bytes> [tid]     # write (payload is synthetic)
//! P <hex-addr> <bytes> [tid]     # posted write
//! A <MNEMONIC> <hex-addr> [tid]  # atomic by Table-I mnemonic (INC8, XOR16, ...)
//! ```
//!
//! The replayer issues each thread's requests on link `tid % links`
//! with a bounded global window, and reports cycles, FLITs and
//! bandwidth.

use hmc_sim::jsonv::obj;
use hmc_sim::{HmcSim, Json, JsonError, ObjReader, SimSnapshot};
use hmc_types::packet::payload_words;
use hmc_types::{HmcError, HmcRqst};
use std::collections::HashMap;

/// One parsed trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOp {
    /// The request command.
    pub cmd: HmcRqst,
    /// Target address.
    pub addr: u64,
    /// Issuing thread id (drives link assignment).
    pub tid: u64,
}

/// Parses one trace line; `Ok(None)` for blanks and comments.
pub fn parse_line(line: &str) -> Result<Option<TraceOp>, HmcError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut tok = line.split_whitespace();
    let kind = tok.next().expect("nonempty line");
    let bad = |why: String| HmcError::MalformedPacket(format!("trace line '{line}': {why}"));
    let parse_addr = |s: Option<&str>| -> Result<u64, HmcError> {
        let s = s.ok_or_else(|| bad("missing address".into()))?;
        let s = s.strip_prefix("0x").unwrap_or(s);
        u64::from_str_radix(s, 16).map_err(|e| bad(format!("bad address: {e}")))
    };
    let parse_tid = |s: Option<&str>| -> Result<u64, HmcError> {
        match s {
            None => Ok(0),
            Some(s) => s.parse().map_err(|e| bad(format!("bad tid: {e}"))),
        }
    };
    let op = match kind {
        "R" | "W" | "P" => {
            let addr = parse_addr(tok.next())?;
            let bytes: usize = tok
                .next()
                .ok_or_else(|| bad("missing size".into()))?
                .parse()
                .map_err(|e| bad(format!("bad size: {e}")))?;
            let cmd = match kind {
                "R" => HmcRqst::read_for_bytes(bytes),
                "W" => HmcRqst::write_for_bytes(bytes),
                _ => HmcRqst::posted_write_for_bytes(bytes),
            }
            .map_err(|_| bad(format!("no Gen2 command for {bytes} bytes")))?;
            TraceOp { cmd, addr, tid: parse_tid(tok.next())? }
        }
        "A" => {
            let mnemonic = tok.next().ok_or_else(|| bad("missing mnemonic".into()))?;
            let cmd = HmcRqst::STANDARD
                .iter()
                .copied()
                .find(|c| c.mnemonic() == mnemonic)
                .ok_or_else(|| bad(format!("unknown mnemonic {mnemonic}")))?;
            if !matches!(
                cmd.kind(),
                hmc_types::CmdKind::Atomic | hmc_types::CmdKind::PostedAtomic
            ) {
                return Err(bad(format!("{mnemonic} is not an atomic")));
            }
            let addr = parse_addr(tok.next())?;
            TraceOp { cmd, addr, tid: parse_tid(tok.next())? }
        }
        other => return Err(bad(format!("unknown record kind '{other}'"))),
    };
    if tok.next().is_some() {
        return Err(bad("trailing tokens".into()));
    }
    Ok(Some(op))
}

/// Parses a whole trace.
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, HmcError> {
    text.lines().filter_map(|l| parse_line(l).transpose()).collect()
}

/// Renders ops back to the trace format (inverse of [`parse_trace`]
/// for supported commands).
pub fn render_trace(ops: &[TraceOp]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for op in ops {
        let info = op.cmd.fixed_info().expect("trace ops are standard");
        let _ = match info.kind {
            hmc_types::CmdKind::Read => {
                writeln!(out, "R 0x{:x} {} {}", op.addr, info.data_bytes, op.tid)
            }
            hmc_types::CmdKind::Write => {
                writeln!(out, "W 0x{:x} {} {}", op.addr, info.data_bytes, op.tid)
            }
            hmc_types::CmdKind::PostedWrite => {
                writeln!(out, "P 0x{:x} {} {}", op.addr, info.data_bytes, op.tid)
            }
            _ => writeln!(out, "A {} 0x{:x} {}", info.name, op.addr, op.tid),
        };
    }
    out
}

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Maximum non-posted requests in flight.
    pub window: usize,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Take a [`ReplayCheckpoint`] every this many device cycles
    /// (`0` disables checkpointing).
    pub checkpoint_every: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { window: 64, max_cycles: 50_000_000, checkpoint_every: 0 }
    }
}

/// A resumable mid-replay checkpoint: the device snapshot plus the
/// replayer's own cursor state. Feed it back to [`replay_resumable`]
/// (on the same or a freshly constructed identical device) to
/// continue the run deterministically — the crash-forensics workflow
/// from the sanitizer (§IV robustness extension) applied to
/// trace-driven simulation.
#[derive(Debug, Clone)]
pub struct ReplayCheckpoint {
    /// Device cycle at which the checkpoint was taken.
    pub cycle: u64,
    /// Index of the next trace op to issue.
    pub cursor: usize,
    /// Requests issued so far.
    pub issued: u64,
    /// Responses received so far.
    pub completed: u64,
    /// Data bytes moved so far.
    pub data_bytes: u64,
    /// Outstanding `(link, tag)` pairs awaiting responses.
    pub inflight: Vec<(usize, u16)>,
    /// Device cycle when the replay originally started.
    pub start_cycle: u64,
    /// Link FLIT counter baseline at replay start.
    pub flits_base: u64,
    /// Full device snapshot.
    pub snapshot: hmc_sim::SimSnapshot,
}

/// Schema version written into serialized [`ReplayCheckpoint`]s. Bump
/// on any incompatible change to the checkpoint layout.
pub const REPLAY_CKPT_SCHEMA_VERSION: u64 = 1;

fn jerr(message: String) -> JsonError {
    JsonError { message }
}

impl ReplayCheckpoint {
    /// Serializes the checkpoint (cursor state + device snapshot) to a
    /// JSON value. Inverse of [`ReplayCheckpoint::from_json_value`].
    pub fn to_json_value(&self) -> Json {
        let inflight = self
            .inflight
            .iter()
            .map(|&(link, tag)| {
                Json::Arr(vec![Json::Int(link as i128), Json::Int(tag as i128)])
            })
            .collect();
        obj(vec![
            ("schema_version", Json::Int(REPLAY_CKPT_SCHEMA_VERSION as i128)),
            ("cycle", Json::Int(self.cycle as i128)),
            ("cursor", Json::Int(self.cursor as i128)),
            ("issued", Json::Int(self.issued as i128)),
            ("completed", Json::Int(self.completed as i128)),
            ("data_bytes", Json::Int(self.data_bytes as i128)),
            ("inflight", Json::Arr(inflight)),
            ("start_cycle", Json::Int(self.start_cycle as i128)),
            ("flits_base", Json::Int(self.flits_base as i128)),
            ("snapshot", self.snapshot.to_json_value()),
        ])
    }

    /// Renders the checkpoint as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a [`ReplayCheckpoint::to_json_value`] document. Strict:
    /// unknown fields, missing fields and schema mismatches are errors.
    pub fn from_json_value(v: &Json) -> Result<ReplayCheckpoint, JsonError> {
        let mut r = ObjReader::new("replay checkpoint", v)?;
        let version = r.u64("schema_version")?;
        if version != REPLAY_CKPT_SCHEMA_VERSION {
            return Err(jerr(format!(
                "replay checkpoint: unsupported schema_version {version} \
                 (this build reads {REPLAY_CKPT_SCHEMA_VERSION})"
            )));
        }
        let cycle = r.u64("cycle")?;
        let cursor = r.usize("cursor")?;
        let issued = r.u64("issued")?;
        let completed = r.u64("completed")?;
        let data_bytes = r.u64("data_bytes")?;
        let inflight = r
            .required("inflight")?
            .as_arr()
            .ok_or_else(|| jerr("replay checkpoint: inflight is not an array".into()))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| {
                        jerr("replay checkpoint: inflight entry is not a [link, tag] pair"
                            .into())
                    })?;
                let link = pair[0].as_usize().ok_or_else(|| {
                    jerr("replay checkpoint: inflight link out of range".into())
                })?;
                let tag = pair[1].as_u64().and_then(|t| u16::try_from(t).ok()).ok_or_else(
                    || jerr("replay checkpoint: inflight tag out of range".into()),
                )?;
                Ok((link, tag))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let start_cycle = r.u64("start_cycle")?;
        let flits_base = r.u64("flits_base")?;
        let snapshot = SimSnapshot::from_json_value(r.required("snapshot")?)?;
        r.finish()?;
        Ok(ReplayCheckpoint {
            cycle,
            cursor,
            issued,
            completed,
            data_bytes,
            inflight,
            start_cycle,
            flits_base,
            snapshot,
        })
    }

    /// Parses a JSON string produced by [`ReplayCheckpoint::to_json`].
    pub fn from_json(text: &str) -> Result<ReplayCheckpoint, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }
}

/// Outcome of a trace replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    /// Requests issued (all of the trace unless the budget ran out).
    pub issued: u64,
    /// Responses received (non-posted requests).
    pub completed: u64,
    /// Device cycles consumed (including the posted drain).
    pub cycles: u64,
    /// Link FLITs consumed.
    pub link_flits: u64,
    /// Data bytes the trace moved.
    pub data_bytes: u64,
    /// Data bytes per cycle.
    pub bytes_per_cycle: f64,
}

/// Replays a trace against device 0, preserving per-thread ordering
/// is *not* guaranteed (requests from one thread may overlap — the
/// usual memory-trace replay semantics for independent accesses).
pub fn replay(
    sim: &mut HmcSim,
    ops: &[TraceOp],
    config: &ReplayConfig,
) -> Result<ReplayResult, HmcError> {
    replay_resumable(sim, ops, config, None).map(|(result, _)| result)
}

/// [`replay`] with checkpoint/resume support.
///
/// When `config.checkpoint_every > 0` a [`ReplayCheckpoint`] is taken
/// at that cycle cadence and the most recent one is returned. Passing
/// a checkpoint back as `resume` restores the device ([`HmcSim::restore`])
/// and the replay cursor, and continues the run; a resumed run produces
/// the same final device state as an uninterrupted one.
pub fn replay_resumable(
    sim: &mut HmcSim,
    ops: &[TraceOp],
    config: &ReplayConfig,
    resume: Option<ReplayCheckpoint>,
) -> Result<(ReplayResult, Option<ReplayCheckpoint>), HmcError> {
    replay_with_sink(sim, ops, config, resume, |_| Ok(()))
}

/// [`replay_resumable`] with a durability hook: `sink` is called with
/// every checkpoint as it is taken, before the replay continues. A
/// sink that persists the checkpoint (e.g. through
/// [`hmc_sim::CheckpointStore`]) makes the replay crash-safe — after a
/// kill, the last persisted checkpoint resumes the run. A sink error
/// aborts the replay so a failing disk is never mistaken for coverage.
///
/// Checkpoint cadence: the first checkpoint fires once the replay has
/// advanced at least `checkpoint_every` cycles past its start (never
/// at the zero-delta start cycle, even when resuming with
/// `start_cycle != 0`), and subsequent ones at each later multiple of
/// `checkpoint_every` — stable under multi-cycle clock jumps.
pub fn replay_with_sink(
    sim: &mut HmcSim,
    ops: &[TraceOp],
    config: &ReplayConfig,
    resume: Option<ReplayCheckpoint>,
    mut sink: impl FnMut(&ReplayCheckpoint) -> Result<(), HmcError>,
) -> Result<(ReplayResult, Option<ReplayCheckpoint>), HmcError> {
    let links = sim.device_config(0)?.links;

    let mut cursor;
    let mut inflight: HashMap<(usize, u16), ()>;
    let mut issued;
    let mut completed;
    let mut data_bytes;
    let start_cycle;
    let flits_before;
    match resume {
        Some(ckpt) => {
            sim.restore(&ckpt.snapshot)?;
            cursor = ckpt.cursor;
            inflight = ckpt.inflight.into_iter().map(|k| (k, ())).collect();
            issued = ckpt.issued;
            completed = ckpt.completed;
            data_bytes = ckpt.data_bytes;
            start_cycle = ckpt.start_cycle;
            flits_before = ckpt.flits_base;
        }
        None => {
            cursor = 0;
            inflight = HashMap::new();
            issued = 0;
            completed = 0;
            data_bytes = 0;
            start_cycle = sim.cycle();
            flits_before = {
                let s = sim.stats(0)?;
                s.rqst_flits + s.rsp_flits
            };
        }
    }
    let mut last_checkpoint = None;
    // Next relative cycle at which to checkpoint: strictly after the
    // (possibly resumed, possibly nonzero-delta) starting point, so a
    // zero-progress checkpoint is never taken.
    let mut next_checkpoint = match (sim.cycle() - start_cycle).checked_div(config.checkpoint_every)
    {
        Some(periods) => (periods + 1) * config.checkpoint_every,
        None => u64::MAX, // checkpointing disabled
    };

    while cursor < ops.len() || !inflight.is_empty() {
        if sim.cycle() - start_cycle > config.max_cycles {
            break;
        }
        for link in 0..links {
            while let Some(rsp) = sim.recv(0, link) {
                if inflight.remove(&(link, rsp.rsp.head.tag.value())).is_some() {
                    completed += 1;
                }
            }
        }
        while inflight.len() < config.window && cursor < ops.len() {
            let op = &ops[cursor];
            let link = (op.tid as usize) % links;
            let info = op.cmd.fixed_info().expect("standard");
            let payload_len = payload_words(info.rqst_flits);
            let payload: Vec<u64> =
                (0..payload_len as u64).map(|w| op.addr ^ w).collect();
            match sim.send_simple(0, link, op.cmd, op.addr, payload) {
                Ok(Some(tag)) => {
                    inflight.insert((link, tag.value()), ());
                    issued += 1;
                    data_bytes += info.data_bytes as u64;
                    cursor += 1;
                }
                Ok(None) => {
                    issued += 1;
                    data_bytes += info.data_bytes as u64;
                    cursor += 1;
                }
                Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => break,
                Err(e) => return Err(e),
            }
        }
        sim.clock();
        let delta = sim.cycle() - start_cycle;
        if delta >= next_checkpoint {
            next_checkpoint =
                (delta / config.checkpoint_every + 1) * config.checkpoint_every;
            let mut pending: Vec<(usize, u16)> = inflight.keys().copied().collect();
            pending.sort_unstable();
            let ckpt = ReplayCheckpoint {
                cycle: sim.cycle(),
                cursor,
                issued,
                completed,
                data_bytes,
                inflight: pending,
                start_cycle,
                flits_base: flits_before,
                snapshot: sim.snapshot(),
            };
            sink(&ckpt)?;
            last_checkpoint = Some(ckpt);
        }
    }
    sim.drain(1_000_000);

    let cycles = sim.cycle() - start_cycle;
    let flits_after = {
        let s = sim.stats(0)?;
        s.rqst_flits + s.rsp_flits
    };
    Ok((
        ReplayResult {
            issued,
            completed,
            cycles,
            link_flits: flits_after - flits_before,
            data_bytes,
            bytes_per_cycle: data_bytes as f64 / cycles.max(1) as f64,
        },
        last_checkpoint,
    ))
}

/// Generates a synthetic trace: `threads` interleaved streams, each
/// alternating strided reads and writes with occasional atomics —
/// a stand-in for a captured multi-core trace.
pub fn synthetic_trace(threads: u64, ops_per_thread: u64, stride: u64) -> Vec<TraceOp> {
    let mut ops = Vec::new();
    for i in 0..ops_per_thread {
        for tid in 0..threads {
            let addr = 0x10_0000 + tid * 0x10_000 + i * stride;
            let cmd = match i % 4 {
                0 => HmcRqst::Rd64,
                1 => HmcRqst::Wr64,
                2 => HmcRqst::Rd16,
                _ => HmcRqst::Inc8,
            };
            ops.push(TraceOp { cmd, addr: addr & !15, tid });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    #[test]
    fn parse_all_record_kinds() {
        let trace = "\
# a comment

R 0x1000 64 3
W 2000 16
P 0x3000 128 1
A INC8 0x40 2
A XOR16 0x80
";
        let ops = parse_trace(trace).unwrap();
        assert_eq!(ops.len(), 5);
        assert_eq!(ops[0], TraceOp { cmd: HmcRqst::Rd64, addr: 0x1000, tid: 3 });
        assert_eq!(ops[1], TraceOp { cmd: HmcRqst::Wr16, addr: 0x2000, tid: 0 });
        assert_eq!(ops[2].cmd, HmcRqst::PWr128);
        assert_eq!(ops[3].cmd, HmcRqst::Inc8);
        assert_eq!(ops[4].cmd, HmcRqst::Xor16);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_line("R").is_err());
        assert!(parse_line("R zz 64").is_err());
        assert!(parse_line("R 0x10 24").is_err(), "no Gen2 command for 24 bytes");
        assert!(parse_line("A RD64 0x10").is_err(), "RD64 is not an atomic");
        assert!(parse_line("A NOPE 0x10").is_err());
        assert!(parse_line("X 0x10 64").is_err());
        assert!(parse_line("R 0x10 64 1 extra").is_err());
    }

    #[test]
    fn render_parse_round_trip() {
        let ops = synthetic_trace(3, 8, 64);
        let text = render_trace(&ops);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn replay_moves_the_data() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let ops = parse_trace("W 0x1000 16 0\nR 0x1000 16 0\nA INC8 0x2000 1\n").unwrap();
        let result = replay(&mut sim, &ops, &ReplayConfig::default()).unwrap();
        assert_eq!(result.issued, 3);
        assert_eq!(result.completed, 3);
        // The synthetic write payload at 0x1000 is addr ^ word.
        assert_eq!(sim.mem_read_u64(0, 0x1000).unwrap(), 0x1000);
        assert_eq!(sim.mem_read_u64(0, 0x2000).unwrap(), 1);
    }

    #[test]
    fn replay_synthetic_trace_to_completion() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let ops = synthetic_trace(8, 32, 64);
        let result = replay(&mut sim, &ops, &ReplayConfig::default()).unwrap();
        assert_eq!(result.issued, 8 * 32);
        assert_eq!(result.completed, 8 * 32, "no posted ops in this pattern");
        assert!(result.bytes_per_cycle > 0.0);
        assert!(sim.is_quiescent());
    }

    #[test]
    fn checkpoint_resume_reproduces_the_run() {
        let config = ReplayConfig { checkpoint_every: 20, ..Default::default() };
        let ops = synthetic_trace(4, 32, 64);

        // Uninterrupted run, collecting the last mid-run checkpoint.
        let mut full = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let (full_result, ckpt) = replay_resumable(&mut full, &ops, &config, None).unwrap();
        let ckpt = ckpt.expect("checkpoints were taken");
        assert!(ckpt.cursor > 0 && ckpt.cursor <= ops.len());
        assert!(ckpt.cycle > 0 && ckpt.cycle.is_multiple_of(20));

        // "Crash": a brand-new device resumes from the checkpoint and
        // must converge to the same final state and totals.
        let mut resumed = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let (resumed_result, _) =
            replay_resumable(&mut resumed, &ops, &config, Some(ckpt)).unwrap();
        assert_eq!(resumed_result.issued, full_result.issued);
        assert_eq!(resumed_result.completed, full_result.completed);
        assert_eq!(resumed_result.data_bytes, full_result.data_bytes);
        assert_eq!(resumed_result.cycles, full_result.cycles);
        assert_eq!(resumed_result.link_flits, full_result.link_flits);
        assert_eq!(
            resumed.state_fingerprint(),
            full.state_fingerprint(),
            "resumed replay is bit-identical to the uninterrupted one"
        );
    }

    #[test]
    fn checkpoint_json_round_trips_and_resumes_identically() {
        let config = ReplayConfig { checkpoint_every: 25, ..Default::default() };
        let ops = synthetic_trace(4, 24, 64);

        let mut full = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let (_, ckpt) = replay_resumable(&mut full, &ops, &config, None).unwrap();
        let ckpt = ckpt.expect("checkpoints were taken");

        let text = ckpt.to_json();
        let parsed = ReplayCheckpoint::from_json(&text).unwrap();
        assert_eq!(parsed.cycle, ckpt.cycle);
        assert_eq!(parsed.cursor, ckpt.cursor);
        assert_eq!(parsed.inflight, ckpt.inflight);
        assert_eq!(
            parsed.snapshot.fingerprint(),
            ckpt.snapshot.fingerprint(),
            "snapshot survives the JSON round trip bit-identically"
        );

        let mut resumed = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let (_, _) = replay_resumable(&mut resumed, &ops, &config, Some(parsed)).unwrap();
        assert_eq!(resumed.state_fingerprint(), full.state_fingerprint());
    }

    #[test]
    fn checkpoint_cadence_skips_start_and_is_stable_off_zero() {
        // Pre-age the device so the replay starts at a nonzero cycle
        // that is NOT a multiple of the cadence.
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        for _ in 0..7 {
            sim.clock();
        }
        let start = sim.cycle();
        let config = ReplayConfig { checkpoint_every: 20, ..Default::default() };
        let ops = synthetic_trace(4, 24, 64);
        let mut taken = Vec::new();
        let (_, last) = replay_with_sink(&mut sim, &ops, &config, None, |c| {
            taken.push(c.cycle);
            Ok(())
        })
        .unwrap();
        assert!(!taken.is_empty());
        assert_eq!(taken.last().copied(), last.map(|c| c.cycle));
        for (i, cycle) in taken.iter().enumerate() {
            let delta = cycle - start;
            assert!(delta > 0, "no checkpoint at the zero-delta start cycle");
            assert_eq!(delta, 20 * (i as u64 + 1), "cadence is relative to start");
        }
    }

    #[test]
    fn checkpoint_sink_error_aborts_the_replay() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let config = ReplayConfig { checkpoint_every: 10, ..Default::default() };
        let ops = synthetic_trace(4, 24, 64);
        let err = replay_with_sink(&mut sim, &ops, &config, None, |_| {
            Err(HmcError::MalformedPacket("disk full".into()))
        });
        assert!(err.is_err(), "a failing sink must abort, not be ignored");
    }

    #[test]
    fn window_one_serializes() {
        let run = |window: usize| {
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            let ops = synthetic_trace(4, 16, 64);
            replay(&mut sim, &ops, &ReplayConfig { window, ..Default::default() })
                .unwrap()
                .cycles
        };
        assert!(run(1) > run(64), "a wider window exploits MLP");
    }
}
