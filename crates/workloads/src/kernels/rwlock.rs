//! A reader-writer workload over the CMC rwlock suite
//! (`libhmc_rwlock.so`).
//!
//! Writers increment a two-word protected value (both words must stay
//! equal) under the exclusive lock with plain RD16 + WR16 — so any
//! exclusion failure shows up as a lost update or a torn read.
//! Readers take the shared lock and check the two words match.
//! Because the rwlock serializes writers, the final counter must
//! equal exactly `writers × sections`, unlike the unprotected RMW of
//! the counter kernel.

use crate::driver::{HostThread, RunMetrics, ThreadDriver, ThreadIo, ThreadStatus};
use hmc_cmc::ops::rwlock::{RDLOCK_CMD, RDUNLOCK_CMD, WRLOCK_CMD, WRUNLOCK_CMD};
use hmc_sim::HmcSim;
use hmc_types::{HmcError, HmcRqst};

/// Configuration of one reader-writer run.
#[derive(Debug, Clone)]
pub struct RwLockKernelConfig {
    /// Reader thread count.
    pub readers: usize,
    /// Writer thread count.
    pub writers: usize,
    /// Critical sections each thread performs.
    pub sections: usize,
    /// Address of the 16-byte lock structure.
    pub lock_addr: u64,
    /// Address of the 16-byte protected data block.
    pub data_addr: u64,
    /// Backoff after a failed acquisition, in cycles.
    pub backoff: u64,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for RwLockKernelConfig {
    fn default() -> Self {
        RwLockKernelConfig {
            readers: 6,
            writers: 2,
            sections: 8,
            lock_addr: 0x6000,
            data_addr: 0x6010,
            backoff: 8,
            max_cycles: 4_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    SendAcquire,
    WaitAcquire,
    Backoff { until: u64 },
    SendData,
    WaitData,
    SendWriteBack { value: u64 },
    WaitWriteBack,
    SendRelease,
    WaitRelease,
}

struct RwThread {
    tid: u64,
    link: usize,
    writer: bool,
    remaining: usize,
    state: State,
    torn_reads: u32,
    cfg: RwLockKernelConfig,
}

impl HostThread for RwThread {
    fn link(&self) -> usize {
        self.link
    }

    fn parked_until(&self) -> Option<u64> {
        match self.state {
            State::Backoff { until } => Some(until),
            _ => None,
        }
    }

    fn tick(&mut self, io: &mut ThreadIo<'_>) -> ThreadStatus {
        if self.remaining == 0 {
            return ThreadStatus::Done;
        }
        loop {
            match self.state {
                State::SendAcquire => {
                    let cmd = if self.writer { WRLOCK_CMD } else { RDLOCK_CMD };
                    match io.send_cmc(cmd, self.cfg.lock_addr, vec![self.tid + 1, 0]) {
                        Ok(_) => self.state = State::WaitAcquire,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("rwlock kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitAcquire => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    if rsp.rsp.payload[0] == 1 {
                        self.state = State::SendData;
                    } else {
                        self.state = State::Backoff { until: io.cycle + self.cfg.backoff };
                    }
                }
                State::Backoff { until } => {
                    if io.cycle < until {
                        return ThreadStatus::Running;
                    }
                    self.state = State::SendAcquire;
                }
                State::SendData => {
                    match io.send(HmcRqst::Rd16, self.cfg.data_addr, vec![]) {
                        Ok(_) => self.state = State::WaitData,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("rwlock kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitData => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    let (a, b) = (rsp.rsp.payload[0], rsp.rsp.payload[1]);
                    if a != b {
                        self.torn_reads += 1;
                    }
                    if self.writer {
                        self.state = State::SendWriteBack { value: a + 1 };
                    } else {
                        self.state = State::SendRelease;
                    }
                }
                State::SendWriteBack { value } => {
                    match io.send(HmcRqst::Wr16, self.cfg.data_addr, vec![value, value]) {
                        Ok(_) => self.state = State::WaitWriteBack,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("rwlock kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitWriteBack => {
                    if io.response().is_none() {
                        return ThreadStatus::Running;
                    }
                    self.state = State::SendRelease;
                }
                State::SendRelease => {
                    let cmd = if self.writer { WRUNLOCK_CMD } else { RDUNLOCK_CMD };
                    match io.send_cmc(cmd, self.cfg.lock_addr, vec![self.tid + 1, 0]) {
                        Ok(_) => self.state = State::WaitRelease,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("rwlock kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitRelease => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    assert_eq!(rsp.rsp.payload[0], 1, "release of a held lock succeeds");
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        return ThreadStatus::Done;
                    }
                    self.state = State::SendAcquire;
                }
            }
        }
    }
}

/// Outcome of a reader-writer run.
#[derive(Debug, Clone, PartialEq)]
pub struct RwLockKernelResult {
    /// Driver metrics.
    pub metrics: RunMetrics,
    /// Final protected counter value.
    pub final_value: u64,
    /// Increments the writers performed (`writers × sections`).
    pub expected_value: u64,
    /// Torn reads observed (must be zero under correct exclusion).
    pub torn_reads: u32,
    /// Final lock state word (must be zero: fully released).
    pub final_lock_state: u64,
}

/// The reader-writer kernel runner.
#[derive(Debug, Clone)]
pub struct RwLockKernel {
    /// Kernel configuration.
    pub config: RwLockKernelConfig,
}

impl RwLockKernel {
    /// Creates a runner.
    pub fn new(config: RwLockKernelConfig) -> Self {
        RwLockKernel { config }
    }

    /// Runs the kernel; `libhmc_rwlock.so` must be loaded on device 0.
    pub fn run(&self, sim: &mut HmcSim) -> Result<RwLockKernelResult, HmcError> {
        let links = sim.device_config(0)?.links;
        let active: Vec<u8> = sim.cmc_registrations(0)?.iter().map(|r| r.cmd).collect();
        for code in [RDLOCK_CMD, RDUNLOCK_CMD, WRLOCK_CMD, WRUNLOCK_CMD] {
            if !active.contains(&code) {
                return Err(HmcError::CmcNotActive(code));
            }
        }
        sim.mem_write_u64(0, self.config.lock_addr, 0)?;
        sim.mem_write_u64(0, self.config.lock_addr + 8, 0)?;
        sim.mem_write_u64(0, self.config.data_addr, 0)?;
        sim.mem_write_u64(0, self.config.data_addr + 8, 0)?;

        let total = self.config.readers + self.config.writers;
        let mut threads: Vec<RwThread> = (0..total)
            .map(|tid| RwThread {
                tid: tid as u64,
                link: tid % links,
                writer: tid < self.config.writers,
                remaining: self.config.sections,
                state: State::SendAcquire,
                torn_reads: 0,
                cfg: self.config.clone(),
            })
            .collect();
        let driver =
            ThreadDriver { dev: 0, max_cycles: self.config.max_cycles, resilience: None };
        let metrics = driver.run(sim, &mut threads);
        Ok(RwLockKernelResult {
            metrics,
            final_value: sim.mem_read_u64(0, self.config.data_addr)?,
            expected_value: (self.config.writers * self.config.sections) as u64,
            torn_reads: threads.iter().map(|t| t.torn_reads).sum(),
            final_lock_state: sim.mem_read_u64(0, self.config.lock_addr)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    fn sim_with_rwlock() -> HmcSim {
        hmc_cmc::ops::register_builtin_libraries();
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.load_cmc_library(0, hmc_cmc::ops::RWLOCK_LIBRARY).unwrap();
        sim
    }

    #[test]
    fn writers_never_lose_updates() {
        let mut sim = sim_with_rwlock();
        let result = RwLockKernel::new(RwLockKernelConfig {
            readers: 8,
            writers: 4,
            sections: 6,
            ..Default::default()
        })
        .run(&mut sim)
        .unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(result.final_value, result.expected_value, "exclusion holds");
        assert_eq!(result.torn_reads, 0);
        assert_eq!(result.final_lock_state, 0, "all holds released");
    }

    #[test]
    fn read_only_run_completes_quickly() {
        let mut sim = sim_with_rwlock();
        let result = RwLockKernel::new(RwLockKernelConfig {
            readers: 16,
            writers: 0,
            sections: 4,
            ..Default::default()
        })
        .run(&mut sim)
        .unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(result.final_value, 0);
        // Readers share: no acquisition ever fails, so the makespan
        // stays near the uncontended floor (3 ops x 3 cycles x 4
        // sections plus queueing).
        assert!(result.metrics.max_cycle() < 600, "got {}", result.metrics.max_cycle());
    }

    #[test]
    fn kernel_requires_rwlock_library() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = RwLockKernel::new(RwLockKernelConfig::default());
        assert!(matches!(kernel.run(&mut sim), Err(HmcError::CmcNotActive(_))));
    }
}
