//! Histogram binning — the posted-atomic showcase.
//!
//! N keys hash into B 8-byte bins resident in the cube. Three
//! mechanisms, in decreasing link cost:
//!
//! * [`HistogramMode::ReadModifyWrite`] — RD16 + host add + WR16
//!   (6 FLITs, two round trips, lossy under concurrency);
//! * [`HistogramMode::AckedInc`] — `INC8` (2 FLITs, one round trip,
//!   exact);
//! * [`HistogramMode::PostedInc`] — `P_INC8` (1 FLIT, **no response
//!   at all**, exact) — the extreme of the paper's §III bandwidth
//!   argument.

use hmc_sim::HmcSim;
use hmc_types::{HmcError, HmcRqst};
use std::collections::HashMap;

/// The increment mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramMode {
    /// RD16 + host add + WR16.
    ReadModifyWrite,
    /// `INC8` with a write acknowledgement.
    AckedInc,
    /// `P_INC8`, fire-and-forget.
    PostedInc,
}

/// Configuration of a histogram run.
#[derive(Debug, Clone)]
pub struct HistogramConfig {
    /// Number of bins (power of two).
    pub bins: usize,
    /// Number of keys to bin.
    pub keys: usize,
    /// Outstanding-update window (posted mode is limited by link
    /// acceptance only).
    pub window: usize,
    /// Increment mechanism.
    pub mode: HistogramMode,
    /// Bin-array base address (16-byte aligned; bins sit on 16-byte
    /// pitch so every bin is atomically addressable).
    pub base: u64,
    /// Key-stream seed.
    pub seed: u64,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        HistogramConfig {
            bins: 256,
            keys: 2048,
            window: 64,
            mode: HistogramMode::PostedInc,
            base: 0x0C00_0000,
            seed: 0x5EED,
            max_cycles: 10_000_000,
        }
    }
}

/// Outcome of a histogram run.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramResult {
    /// Device cycles consumed (including the posted-traffic drain).
    pub cycles: u64,
    /// Link FLITs consumed.
    pub link_flits: u64,
    /// Bins whose final count disagrees with the host oracle.
    pub errors: usize,
    /// Total increments lost (oracle minus device, summed over bins).
    pub lost_updates: u64,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Ack,
    Read { bin: usize },
    Write,
}

/// The histogram kernel runner.
#[derive(Debug, Clone)]
pub struct HistogramKernel {
    /// Kernel configuration.
    pub config: HistogramConfig,
}

impl HistogramKernel {
    /// Creates a runner.
    pub fn new(config: HistogramConfig) -> Self {
        HistogramKernel { config }
    }

    fn bin_addr(&self, bin: usize) -> u64 {
        self.config.base + (bin as u64) * 16
    }

    /// A splitmix64 key stream.
    fn keys(&self) -> impl Iterator<Item = u64> {
        let mut state = self.config.seed;
        std::iter::from_fn(move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Some(z ^ (z >> 31))
        })
    }

    /// Runs the kernel on device 0 and verifies against a host oracle.
    pub fn run(&self, sim: &mut HmcSim) -> Result<HistogramResult, HmcError> {
        let cfg = &self.config;
        if !cfg.bins.is_power_of_two() {
            return Err(HmcError::InvalidRequestSize(cfg.bins));
        }
        let links = sim.device_config(0)?.links;
        let mask = (cfg.bins - 1) as u64;

        let mut oracle = vec![0u64; cfg.bins];
        for key in self.keys().take(cfg.keys) {
            oracle[(key & mask) as usize] += 1;
        }
        for bin in 0..cfg.bins {
            sim.mem_write_u64(0, self.bin_addr(bin), 0)?;
        }

        let flits_before = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };
        let start_cycle = sim.cycle();

        let mut stream = self.keys().take(cfg.keys);
        let mut owner: HashMap<(usize, u16), Pending> = HashMap::new();
        let mut write_queue: std::collections::VecDeque<(usize, u64)> =
            std::collections::VecDeque::new();
        let mut issued = 0usize;
        let mut completed = 0usize;
        let mut rr_link = 0usize;
        let mut carry: Option<u64> = None;
        // Posted increments complete at issue (no response).
        let target = cfg.keys;

        while completed < target {
            if sim.cycle() - start_cycle > cfg.max_cycles {
                break;
            }
            for link in 0..links {
                while let Some(rsp) = sim.recv(0, link) {
                    let Some(pending) = owner.remove(&(link, rsp.rsp.head.tag.value())) else {
                        continue;
                    };
                    match pending {
                        Pending::Ack | Pending::Write => completed += 1,
                        Pending::Read { bin } => {
                            write_queue.push_back((bin, rsp.rsp.payload[0] + 1));
                        }
                    }
                }
            }

            while let Some(&(bin, value)) = write_queue.front() {
                let link = rr_link % links;
                match sim.send_simple(0, link, HmcRqst::Wr16, self.bin_addr(bin), vec![value, 0]) {
                    Ok(Some(tag)) => {
                        rr_link += 1;
                        owner.insert((link, tag.value()), Pending::Write);
                        write_queue.pop_front();
                    }
                    Ok(None) => unreachable!("WR16 acks"),
                    Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => break,
                    Err(e) => return Err(e),
                }
            }

            while owner.len() + write_queue.len() < cfg.window && issued < cfg.keys {
                let key = carry.take().unwrap_or_else(|| stream.next().expect("sized"));
                let bin = (key & mask) as usize;
                let addr = self.bin_addr(bin);
                let link = rr_link % links;
                let result = match cfg.mode {
                    HistogramMode::PostedInc => sim.send_simple(0, link, HmcRqst::PInc8, addr, vec![]),
                    HistogramMode::AckedInc => sim.send_simple(0, link, HmcRqst::Inc8, addr, vec![]),
                    HistogramMode::ReadModifyWrite => {
                        sim.send_simple(0, link, HmcRqst::Rd16, addr, vec![])
                    }
                };
                match result {
                    Ok(Some(tag)) => {
                        rr_link += 1;
                        issued += 1;
                        let pending = match cfg.mode {
                            HistogramMode::AckedInc => Pending::Ack,
                            HistogramMode::ReadModifyWrite => Pending::Read { bin },
                            HistogramMode::PostedInc => unreachable!("posted has no tag"),
                        };
                        owner.insert((link, tag.value()), pending);
                    }
                    Ok(None) => {
                        // Posted: done at issue.
                        rr_link += 1;
                        issued += 1;
                        completed += 1;
                    }
                    Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {
                        carry = Some(key);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }

            sim.clock();
        }
        // Posted traffic may still be in flight.
        sim.drain(1_000_000);

        let mut errors = 0usize;
        let mut lost = 0u64;
        for (bin, &want) in oracle.iter().enumerate() {
            let got = sim.mem_read_u64(0, self.bin_addr(bin))?;
            if got != want {
                errors += 1;
                lost += want.saturating_sub(got);
            }
        }

        let cycles = sim.cycle() - start_cycle;
        let flits_after = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };
        Ok(HistogramResult {
            cycles,
            link_flits: flits_after - flits_before,
            errors,
            lost_updates: lost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    fn run(mode: HistogramMode) -> HistogramResult {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        HistogramKernel::new(HistogramConfig {
            bins: 64,
            keys: 512,
            mode,
            ..Default::default()
        })
        .run(&mut sim)
        .unwrap()
    }

    #[test]
    fn posted_increments_are_exact() {
        let r = run(HistogramMode::PostedInc);
        assert_eq!(r.errors, 0, "P_INC8 is atomic in the vault");
        assert_eq!(r.lost_updates, 0);
    }

    #[test]
    fn acked_increments_are_exact() {
        let r = run(HistogramMode::AckedInc);
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn rmw_loses_updates_under_overlap() {
        let r = run(HistogramMode::ReadModifyWrite);
        assert!(r.lost_updates > 0, "overlapping RMW on hot bins loses updates");
    }

    #[test]
    fn flit_cost_ordering() {
        let posted = run(HistogramMode::PostedInc);
        let acked = run(HistogramMode::AckedInc);
        let rmw = run(HistogramMode::ReadModifyWrite);
        // P_INC8 = 1 FLIT, INC8 = 2 FLITs, RMW = 6 FLITs per key.
        assert_eq!(posted.link_flits, 512);
        assert_eq!(acked.link_flits, 2 * 512);
        assert_eq!(rmw.link_flits, 6 * 512);
        assert!(posted.cycles <= acked.cycles);
    }

    #[test]
    fn bins_must_be_power_of_two() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = HistogramKernel::new(HistogramConfig { bins: 100, ..Default::default() });
        assert!(kernel.run(&mut sim).is_err());
    }
}
