//! Multi-cube fabric kernels: GUPS and BFS spanning every cube of a
//! chained/ringed/meshed context.
//!
//! * [`FabricGupsKernel`] — per-cube HPCC RandomAccess streams. Each
//!   cube receives its own host-injected update stream against its
//!   own table; a configurable fraction of updates target another
//!   cube's table instead and ride the fabric as `XOR16` atomics
//!   (`CUB` ≠ entry cube, routed hop by hop). The aggregate
//!   updates-per-cycle figure is the multi-cube scaling metric
//!   reported in `BENCH_fabric.json`.
//! * [`FabricBfsKernel`] — BFS check-and-update with the level array
//!   sharded across all cubes (`owner = vertex mod cubes`). Every
//!   `CASEQ8` enters the fabric at cube 0 and is routed to the owning
//!   cube, so a traversal sweeps traffic across the whole fabric.
//!
//! Both kernels verify against host-side oracles, so they double as
//! end-to-end routing correctness checks: a misrouted or lost packet
//! shows up as a table/level mismatch, not just a latency blip.

use super::bfs::Graph;
use super::gups::HpccStream;
use hmc_sim::HmcSim;
use hmc_types::{Cub, HmcError, HmcRqst};
use std::collections::{HashMap, VecDeque};

/// Configuration of a fabric-wide RandomAccess run.
#[derive(Debug, Clone)]
pub struct FabricGupsConfig {
    /// Table entries per cube (16 bytes each); must be a power of two.
    pub table_entries: usize,
    /// Updates injected per cube.
    pub updates_per_cube: usize,
    /// Outstanding-update window per cube.
    pub window: usize,
    /// Per-mille of updates that target a remote cube's table
    /// (0 = all-local, 1000 = all-remote).
    pub remote_permille: u32,
    /// Table base address (16-byte aligned, same on every cube).
    pub table_base: u64,
    /// RNG seed; each cube derives its own stream from it.
    pub seed: u64,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for FabricGupsConfig {
    fn default() -> Self {
        FabricGupsConfig {
            table_entries: 1 << 10,
            updates_per_cube: 512,
            window: 32,
            remote_permille: 100,
            table_base: 0x0400_0000,
            seed: 0xFAB0_1234_5678_9ABC,
            max_cycles: 10_000_000,
        }
    }
}

/// Outcome of a fabric-wide RandomAccess run.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricGupsResult {
    /// Device cycles consumed.
    pub cycles: u64,
    /// Updates completed across all cubes.
    pub updates: u64,
    /// Updates that crossed at least one fabric edge.
    pub remote_updates: u64,
    /// Aggregate updates per cycle across the whole fabric (the
    /// multi-cube GUPS figure, per device clock).
    pub updates_per_cycle: f64,
    /// Table entries (across every cube) that disagree with the
    /// sequential oracle.
    pub errors: usize,
}

/// The fabric RandomAccess kernel runner.
#[derive(Debug, Clone)]
pub struct FabricGupsKernel {
    /// Kernel configuration.
    pub config: FabricGupsConfig,
}

impl FabricGupsKernel {
    /// Creates a runner.
    pub fn new(config: FabricGupsConfig) -> Self {
        FabricGupsKernel { config }
    }

    fn entry_addr(&self, entry: usize) -> u64 {
        self.config.table_base + (entry as u64) * 16
    }

    /// The (target cube, table entry) of update value `v` injected at
    /// cube `d` — a pure function, so retries and the oracle agree.
    fn target_of(&self, d: usize, n: usize, v: u64) -> (usize, usize) {
        let entry = (v & (self.config.table_entries - 1) as u64) as usize;
        let remote = n > 1 && (v >> 32) % 1000 < self.config.remote_permille as u64;
        let target = if remote {
            (d + 1 + ((v >> 16) as usize % (n - 1))) % n
        } else {
            d
        };
        (target, entry)
    }

    /// Runs per-cube update streams across every device of the
    /// context and verifies every cube's table against a sequential
    /// oracle.
    pub fn run(&self, sim: &mut HmcSim) -> Result<FabricGupsResult, HmcError> {
        let cfg = &self.config;
        if !cfg.table_entries.is_power_of_two() {
            return Err(HmcError::InvalidRequestSize(cfg.table_entries));
        }
        let n = sim.device_count();
        let links = sim.device_config(0)?.links;

        // Zero-initialized tables; build the oracle host-side. XOR
        // commutes, so completion order never changes the result.
        let mut oracle = vec![vec![0u64; cfg.table_entries]; n];
        for d in 0..n {
            for v in HpccStream::new(cfg.seed ^ (d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .take(cfg.updates_per_cube)
            {
                let (target, entry) = self.target_of(d, n, v);
                oracle[target][entry] ^= v;
            }
        }

        let start_cycle = sim.cycle();
        let total = cfg.updates_per_cube * n;
        let mut streams: Vec<HpccStream> = (0..n)
            .map(|d| HpccStream::new(cfg.seed ^ (d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let mut issued = vec![0usize; n];
        let mut inflight = vec![0usize; n];
        let mut carry: Vec<Option<u64>> = vec![None; n];
        let mut retry: Vec<VecDeque<u64>> = vec![VecDeque::new(); n];
        let mut rr_link = vec![0usize; n];
        // In-flight updates key on (entry cube, entry link, tag) and
        // remember their value so faulted sends can replay.
        let mut owner: HashMap<(usize, usize, u16), u64> = HashMap::new();
        let mut completed = 0usize;
        let mut remote_updates = 0u64;

        while completed < total {
            if sim.cycle() - start_cycle > cfg.max_cycles {
                break;
            }
            for d in 0..n {
                for link in 0..links {
                    while let Some(rsp) = sim.recv(d, link) {
                        let Some(v) = owner.remove(&(d, link, rsp.rsp.head.tag.value())) else {
                            continue;
                        };
                        inflight[d] -= 1;
                        if matches!(rsp.rsp.head.cmd, hmc_types::HmcResponse::Error)
                            || rsp.rsp.tail.errstat != 0
                        {
                            // The vault refused the atomic: nothing
                            // executed, so replay it verbatim.
                            retry[d].push_back(v);
                        } else {
                            completed += 1;
                        }
                    }
                }
            }

            for d in 0..n {
                while inflight[d] < cfg.window {
                    let from_retry = !retry[d].is_empty();
                    let v = match carry[d].take() {
                        Some(v) => v,
                        None if from_retry => retry[d][0],
                        None if issued[d] < cfg.updates_per_cube => {
                            streams[d].next().expect("infinite")
                        }
                        None => break,
                    };
                    let (target, entry) = self.target_of(d, n, v);
                    let addr = self.entry_addr(entry);
                    let link = rr_link[d] % links;
                    let send = if target == d {
                        sim.send_simple(d, link, HmcRqst::Xor16, addr, vec![v, 0])
                    } else {
                        let cub = Cub::new(target as u8).expect("cube count validated");
                        sim.send_to_cube(d, link, cub, HmcRqst::Xor16, addr, vec![v, 0])
                    };
                    match send {
                        Ok(Some(tag)) => {
                            rr_link[d] += 1;
                            owner.insert((d, link, tag.value()), v);
                            inflight[d] += 1;
                            if from_retry && carry[d].is_none() {
                                retry[d].pop_front();
                            } else {
                                issued[d] += 1;
                                if target != d {
                                    remote_updates += 1;
                                }
                            }
                        }
                        Ok(None) => unreachable!("XOR16 is acknowledged"),
                        Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {
                            if !from_retry {
                                carry[d] = Some(v);
                            }
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }

            sim.clock();
        }

        // Verify every cube's table against the oracle.
        let mut errors = 0usize;
        for (d, table) in oracle.iter().enumerate() {
            for (entry, &want) in table.iter().enumerate() {
                if sim.mem_read_u64(d, self.entry_addr(entry))? != want {
                    errors += 1;
                }
            }
        }

        let cycles = sim.cycle() - start_cycle;
        Ok(FabricGupsResult {
            cycles,
            updates: completed as u64,
            remote_updates,
            updates_per_cycle: completed as f64 / cycles.max(1) as f64,
            errors,
        })
    }
}

/// Configuration of a fabric-sharded BFS run.
#[derive(Debug, Clone)]
pub struct FabricBfsConfig {
    /// BFS root vertex.
    pub root: u32,
    /// Outstanding-edge window.
    pub window: usize,
    /// Level-array base address (16-byte aligned, same on every cube).
    pub levels_base: u64,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for FabricBfsConfig {
    fn default() -> Self {
        FabricBfsConfig {
            root: 0,
            window: 64,
            levels_base: 0x0800_0000,
            max_cycles: 40_000_000,
        }
    }
}

/// Outcome of a fabric-sharded BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricBfsResult {
    /// Device cycles consumed.
    pub cycles: u64,
    /// Directed edges relaxed.
    pub edges_relaxed: u64,
    /// Vertices whose computed level disagrees with the host
    /// reference BFS.
    pub errors: usize,
    /// Vertices reached.
    pub reached: usize,
}

/// The fabric BFS kernel runner: level array sharded across cubes,
/// every `CASEQ8` injected at cube 0 and routed to the vertex owner.
#[derive(Debug, Clone)]
pub struct FabricBfsKernel {
    /// Kernel configuration.
    pub config: FabricBfsConfig,
}

impl FabricBfsKernel {
    /// Creates a runner.
    pub fn new(config: FabricBfsConfig) -> Self {
        FabricBfsKernel { config }
    }

    /// The cube owning vertex `v` in an `n`-cube fabric.
    fn owner_of(v: u32, n: usize) -> usize {
        v as usize % n
    }

    /// The address of vertex `v`'s level entry on its owning cube
    /// (vertices stripe round-robin, so each cube stores its share
    /// contiguously).
    fn level_addr(&self, v: u32, n: usize) -> u64 {
        self.config.levels_base + (v as u64 / n as u64) * 16
    }

    /// Runs BFS over `graph` with the level array sharded across all
    /// cubes and verifies it against the host reference.
    pub fn run(&self, sim: &mut HmcSim, graph: &Graph) -> Result<FabricBfsResult, HmcError> {
        let cfg = &self.config;
        let n = sim.device_count();
        let links = sim.device_config(0)?.links;

        // Clear the sharded level array and mark the root at level 1.
        for v in 0..graph.vertices() as u32 {
            let (dev, addr) = (Self::owner_of(v, n), self.level_addr(v, n));
            sim.mem_write_u64(dev, addr, 0)?;
            sim.mem_write_u64(dev, addr + 8, 0)?;
        }
        sim.mem_write_u64(
            Self::owner_of(cfg.root, n),
            self.level_addr(cfg.root, n),
            1,
        )?;

        let start_cycle = sim.cycle();
        let mut frontier = vec![cfg.root];
        let mut depth = 1u64;
        let mut edges_relaxed = 0u64;
        let mut rr_link = 0usize;

        'levels: while !frontier.is_empty() {
            let mut edges: Vec<u32> = Vec::new();
            for &u in &frontier {
                edges.extend_from_slice(graph.neighbors(u));
            }
            let new_level = depth + 1;
            let mut next: Vec<u32> = Vec::new();
            let mut discovered = vec![false; graph.vertices()];
            // All probes enter at cube 0, so tags key on (link, tag).
            let mut owner: HashMap<(usize, u16), u32> = HashMap::new();
            let mut cursor = 0usize;

            while cursor < edges.len() || !owner.is_empty() {
                if sim.cycle() - start_cycle > cfg.max_cycles {
                    break 'levels;
                }
                for link in 0..links {
                    while let Some(rsp) = sim.recv(0, link) {
                        let Some(vertex) = owner.remove(&(link, rsp.rsp.head.tag.value()))
                        else {
                            continue;
                        };
                        // The atomic flag reports a successful swap:
                        // this probe discovered the vertex.
                        if rsp.rsp.head.af && !discovered[vertex as usize] {
                            discovered[vertex as usize] = true;
                            next.push(vertex);
                        }
                    }
                }

                while owner.len() < cfg.window && cursor < edges.len() {
                    let vertex = edges[cursor];
                    if discovered[vertex as usize] {
                        cursor += 1;
                        continue;
                    }
                    let dev = Self::owner_of(vertex, n);
                    let addr = self.level_addr(vertex, n);
                    let link = rr_link % links;
                    let send = if dev == 0 {
                        sim.send_simple(0, link, HmcRqst::CasEq8, addr, vec![new_level, 0])
                    } else {
                        let cub = Cub::new(dev as u8).expect("cube count validated");
                        sim.send_to_cube(0, link, cub, HmcRqst::CasEq8, addr, vec![new_level, 0])
                    };
                    match send {
                        Ok(Some(tag)) => {
                            rr_link += 1;
                            edges_relaxed += 1;
                            owner.insert((link, tag.value()), vertex);
                            cursor += 1;
                        }
                        Ok(None) => unreachable!("CASEQ8 responds"),
                        Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => break,
                        Err(e) => return Err(e),
                    }
                }

                sim.clock();
            }

            frontier = next;
            depth += 1;
        }

        // Verify the sharded array against the host reference.
        let reference = graph.reference_levels(cfg.root);
        let mut errors = 0usize;
        let mut reached = 0usize;
        for v in 0..graph.vertices() as u32 {
            let got = sim.mem_read_u64(Self::owner_of(v, n), self.level_addr(v, n))?;
            if got != 0 {
                reached += 1;
            }
            if got != reference[v as usize] {
                errors += 1;
            }
        }

        Ok(FabricBfsResult {
            cycles: sim.cycle() - start_cycle,
            edges_relaxed,
            errors,
            reached,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::{DeviceConfig, SimConfig};

    #[test]
    fn fabric_gups_is_exact_across_a_chain() {
        let mut sim =
            HmcSim::with_config(SimConfig::chain(DeviceConfig::gen2_4link_4gb(), 4)).unwrap();
        let kernel = FabricGupsKernel::new(FabricGupsConfig {
            table_entries: 1 << 8,
            updates_per_cube: 128,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.updates, 4 * 128);
        assert!(result.remote_updates > 0, "remote fraction must cross edges");
        assert_eq!(result.errors, 0, "remote XOR16s land on the right cube");
    }

    #[test]
    fn fabric_gups_single_cube_degenerates_to_local() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = FabricGupsKernel::new(FabricGupsConfig {
            table_entries: 1 << 8,
            updates_per_cube: 128,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.updates, 128);
        assert_eq!(result.remote_updates, 0);
        assert_eq!(result.errors, 0);
    }

    #[test]
    fn fabric_bfs_matches_reference_on_a_mesh() {
        let g = Graph::random(96, 192, 7);
        let mut sim =
            HmcSim::with_config(SimConfig::mesh(DeviceConfig::gen2_4link_4gb(), 2, 2)).unwrap();
        let result = FabricBfsKernel::new(FabricBfsConfig::default())
            .run(&mut sim, &g)
            .unwrap();
        assert_eq!(result.errors, 0);
        assert_eq!(result.reached, 96, "ring chords guarantee connectivity");
        assert!(result.edges_relaxed > 0);
    }

    #[test]
    fn fabric_bfs_matches_reference_on_a_ring() {
        let g = Graph::random(60, 120, 11);
        let mut sim =
            HmcSim::with_config(SimConfig::ring(DeviceConfig::gen2_4link_4gb(), 3)).unwrap();
        let result = FabricBfsKernel::new(FabricBfsConfig::default())
            .run(&mut sim, &g)
            .unwrap();
        assert_eq!(result.errors, 0);
        assert_eq!(result.reached, 60);
    }
}
