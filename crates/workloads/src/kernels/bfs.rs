//! BFS with check-and-update offload — the related-work kernel the
//! paper cites (Nai & Kim \[10\]): replacing the visit test of a
//! breadth-first traversal with HMC compare-and-swap operations so the
//! check-and-update happens in the cube.
//!
//! The level array lives in device memory, one 16-byte entry per
//! vertex holding `level + 1` (0 = unvisited). Two frontier-expansion
//! mechanisms are provided:
//!
//! * [`BfsMode::CasOffload`] — one `CASEQ8` per edge: compare 0, swap
//!   the new level; the response's atomic flag reports discovery.
//!   4 FLITs and one round trip per edge.
//! * [`BfsMode::ReadCheckWrite`] — the conventional cache-based
//!   pattern: fetch the 64-byte line holding the entry (RD64, 1+5
//!   FLITs), test host-side, write the dirty 16-byte sector back on
//!   discovery (WR16, 2+1 FLITs). 6 FLITs per probe plus 3 per
//!   discovery, and two round trips — the traffic the related work
//!   shows CAS offload saving.

use hmc_sim::HmcSim;
use hmc_types::{HmcError, HmcRqst};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The frontier-expansion mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BfsMode {
    /// `CASEQ8` check-and-update in the logic layer.
    CasOffload,
    /// RD64 cache-line fill + host-side test + WR16 on discovery.
    ReadCheckWrite,
}

/// A synthetic undirected graph.
#[derive(Debug, Clone)]
pub struct Graph {
    adjacency: Vec<Vec<u32>>,
}

impl Graph {
    /// A connected random graph: a ring (guaranteeing connectivity)
    /// plus `extra_edges` random chords, deterministic in `seed`.
    pub fn random(vertices: usize, extra_edges: usize, seed: u64) -> Self {
        assert!(vertices >= 2, "graph needs at least two vertices");
        let mut adjacency = vec![Vec::new(); vertices];
        let add = |adj: &mut Vec<Vec<u32>>, u: usize, v: usize| {
            if u != v && !adj[u].contains(&(v as u32)) {
                adj[u].push(v as u32);
                adj[v].push(u as u32);
            }
        };
        for v in 0..vertices {
            add(&mut adjacency, v, (v + 1) % vertices);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..vertices);
            let v = rng.gen_range(0..vertices);
            add(&mut adjacency, u, v);
        }
        Graph { adjacency }
    }

    /// Vertex count.
    pub fn vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Total directed edge count (each undirected edge counted twice).
    pub fn directed_edges(&self) -> usize {
        self.adjacency.iter().map(|a| a.len()).sum()
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjacency[v as usize]
    }

    /// Host-side reference BFS, returning `level + 1` per vertex
    /// (0 = unreachable).
    pub fn reference_levels(&self, root: u32) -> Vec<u64> {
        let mut levels = vec![0u64; self.vertices()];
        let mut frontier = vec![root];
        levels[root as usize] = 1;
        let mut depth = 1u64;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    if levels[v as usize] == 0 {
                        levels[v as usize] = depth + 1;
                        next.push(v);
                    }
                }
            }
            frontier = next;
            depth += 1;
        }
        levels
    }
}

/// Configuration of a BFS run.
#[derive(Debug, Clone)]
pub struct BfsConfig {
    /// BFS root vertex.
    pub root: u32,
    /// Expansion mechanism.
    pub mode: BfsMode,
    /// Outstanding-edge window.
    pub window: usize,
    /// Level-array base address (16-byte aligned).
    pub levels_base: u64,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for BfsConfig {
    fn default() -> Self {
        BfsConfig {
            root: 0,
            mode: BfsMode::CasOffload,
            window: 64,
            levels_base: 0x0800_0000,
            max_cycles: 20_000_000,
        }
    }
}

/// Outcome of a BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsResult {
    /// Device cycles consumed.
    pub cycles: u64,
    /// Directed edges relaxed.
    pub edges_relaxed: u64,
    /// Link FLITs consumed.
    pub link_flits: u64,
    /// Vertices whose computed level disagrees with the host
    /// reference BFS.
    pub errors: usize,
    /// Vertices reached.
    pub reached: usize,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Cas { vertex: u32 },
    Read { vertex: u32, new_level: u64 },
    Write { vertex: u32 },
}

/// The BFS kernel runner.
#[derive(Debug, Clone)]
pub struct BfsKernel {
    /// Kernel configuration.
    pub config: BfsConfig,
}

impl BfsKernel {
    /// Creates a runner.
    pub fn new(config: BfsConfig) -> Self {
        BfsKernel { config }
    }

    fn level_addr(&self, v: u32) -> u64 {
        self.config.levels_base + (v as u64) * 16
    }

    /// Runs BFS over `graph` on device 0 and verifies the level array
    /// against the host reference.
    pub fn run(&self, sim: &mut HmcSim, graph: &Graph) -> Result<BfsResult, HmcError> {
        let cfg = &self.config;
        let links = sim.device_config(0)?.links;

        // Clear the level array and mark the root at level 1.
        for v in 0..graph.vertices() as u32 {
            sim.mem_write_u64(0, self.level_addr(v), 0)?;
            sim.mem_write_u64(0, self.level_addr(v) + 8, 0)?;
        }
        sim.mem_write_u64(0, self.level_addr(cfg.root), 1)?;

        let flits_before = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };
        let start_cycle = sim.cycle();

        let mut frontier = vec![cfg.root];
        let mut depth = 1u64;
        let mut edges_relaxed = 0u64;
        let mut rr_link = 0usize;

        'levels: while !frontier.is_empty() {
            // Edge list of this level.
            let mut edges: Vec<u32> = Vec::new();
            for &u in &frontier {
                edges.extend_from_slice(graph.neighbors(u));
            }
            let new_level = depth + 1;
            let mut next: Vec<u32> = Vec::new();
            let mut discovered = vec![false; graph.vertices()];
            // Tag pools are per link, so in-flight ops key on (link, tag).
            let mut owner: HashMap<(usize, u16), Pending> = HashMap::new();
            let mut cursor = 0usize;

            while cursor < edges.len() || !owner.is_empty() {
                if sim.cycle() - start_cycle > cfg.max_cycles {
                    break 'levels;
                }
                for link in 0..links {
                    while let Some(rsp) = sim.recv(0, link) {
                        let Some(pending) = owner.remove(&(link, rsp.rsp.head.tag.value())) else {
                            continue;
                        };
                        match pending {
                            Pending::Cas { vertex } => {
                                if rsp.rsp.head.af && !discovered[vertex as usize] {
                                    discovered[vertex as usize] = true;
                                    next.push(vertex);
                                }
                            }
                            Pending::Read { vertex, new_level } => {
                                // The RD64 line holds four 16-byte
                                // entries; pick this vertex's word.
                                let word = ((self.level_addr(vertex) & 63) / 8) as usize;
                                if rsp.rsp.payload[word] == 0 && !discovered[vertex as usize] {
                                    discovered[vertex as usize] = true;
                                    let addr = self.level_addr(vertex);
                                    loop {
                                        let wlink = rr_link % links;
                                        match sim.send_simple(
                                            0,
                                            wlink,
                                            HmcRqst::Wr16,
                                            addr,
                                            vec![new_level, 0],
                                        ) {
                                            Ok(Some(tag)) => {
                                                rr_link += 1;
                                                owner
                                                    .insert((wlink, tag.value()), Pending::Write { vertex });
                                                break;
                                            }
                                            Ok(None) => unreachable!("WR16 acks"),
                                            Err(HmcError::Stall)
                                            | Err(HmcError::TagsExhausted) => {
                                                sim.clock();
                                            }
                                            Err(e) => return Err(e),
                                        }
                                    }
                                }
                            }
                            Pending::Write { vertex } => next.push(vertex),
                        }
                    }
                }

                while owner.len() < cfg.window && cursor < edges.len() {
                    let vertex = edges[cursor];
                    if discovered[vertex as usize] {
                        cursor += 1;
                        continue;
                    }
                    let addr = self.level_addr(vertex);
                    let link = rr_link % links;
                    let send = match cfg.mode {
                        BfsMode::CasOffload => sim.send_simple(
                            0,
                            link,
                            HmcRqst::CasEq8,
                            addr,
                            vec![new_level, 0], // swap = new level, compare = 0
                        ),
                        BfsMode::ReadCheckWrite => {
                            // Fetch the whole 64-byte cache line.
                            sim.send_simple(0, link, HmcRqst::Rd64, addr & !63, vec![])
                        }
                    };
                    match send {
                        Ok(Some(tag)) => {
                            rr_link += 1;
                            edges_relaxed += 1;
                            let pending = match cfg.mode {
                                BfsMode::CasOffload => Pending::Cas { vertex },
                                BfsMode::ReadCheckWrite => Pending::Read { vertex, new_level },
                            };
                            owner.insert((link, tag.value()), pending);
                            cursor += 1;
                        }
                        Ok(None) => unreachable!("neither command is posted"),
                        Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => break,
                        Err(e) => return Err(e),
                    }
                }

                sim.clock();
            }

            frontier = next;
            depth += 1;
        }

        // Verify against the host reference.
        let reference = graph.reference_levels(cfg.root);
        let mut errors = 0usize;
        let mut reached = 0usize;
        for v in 0..graph.vertices() as u32 {
            let got = sim.mem_read_u64(0, self.level_addr(v))?;
            if got != 0 {
                reached += 1;
            }
            if got != reference[v as usize] {
                errors += 1;
            }
        }

        let cycles = sim.cycle() - start_cycle;
        let flits_after = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };
        Ok(BfsResult {
            cycles,
            edges_relaxed,
            link_flits: flits_after - flits_before,
            errors,
            reached,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    #[test]
    fn reference_bfs_levels_ring() {
        let g = Graph::random(8, 0, 1);
        let levels = g.reference_levels(0);
        assert_eq!(levels[0], 1);
        assert_eq!(levels[1], 2);
        assert_eq!(levels[7], 2);
        assert_eq!(levels[4], 5, "antipode of an 8-ring");
    }

    #[test]
    fn cas_offload_matches_reference() {
        let g = Graph::random(128, 256, 7);
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let result = BfsKernel::new(BfsConfig::default()).run(&mut sim, &g).unwrap();
        assert_eq!(result.errors, 0);
        assert_eq!(result.reached, 128, "ring guarantees connectivity");
        assert!(result.edges_relaxed > 0);
    }

    #[test]
    fn read_check_write_matches_reference() {
        let g = Graph::random(128, 256, 7);
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let result = BfsKernel::new(BfsConfig {
            mode: BfsMode::ReadCheckWrite,
            ..Default::default()
        })
        .run(&mut sim, &g)
        .unwrap();
        assert_eq!(result.errors, 0);
        assert_eq!(result.reached, 128);
    }

    #[test]
    fn cas_offload_saves_bandwidth() {
        // Related work [10]: CAS offload reduces kernel bandwidth.
        let g = Graph::random(256, 1024, 11);
        let run = |mode: BfsMode| {
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            BfsKernel::new(BfsConfig { mode, ..Default::default() })
                .run(&mut sim, &g)
                .unwrap()
        };
        let cas = run(BfsMode::CasOffload);
        let rmw = run(BfsMode::ReadCheckWrite);
        assert_eq!(cas.errors, 0);
        assert_eq!(rmw.errors, 0);
        assert!(
            cas.link_flits < rmw.link_flits,
            "CAS offload: {} FLITs vs RMW {} FLITs",
            cas.link_flits,
            rmw.link_flits
        );
    }

    #[test]
    fn graph_generator_is_deterministic() {
        let a = Graph::random(64, 128, 3);
        let b = Graph::random(64, 128, 3);
        assert_eq!(a.directed_edges(), b.directed_edges());
        assert_eq!(a.neighbors(10), b.neighbors(10));
    }
}
