//! Workload kernels.
//!
//! * [`mutex`] — the paper's CMC mutex kernel (Algorithm 1).
//! * [`rwlock`] — readers/writers over the CMC rwlock suite.
//! * [`counter`] — shared-counter increments: HMC `INC8` vs the
//!   cache-based read-modify-write baseline (Table II's workload).
//! * [`triad`] — STREAM Triad (prior-work kernel \[11\]).
//! * [`gups`] — HPCC RandomAccess / GUPS (prior-work kernel \[12\]).
//! * [`bfs`] — BFS check-and-update with CAS offload (related work
//!   \[10\]).
//! * [`barrier`] — centralized sense-reversing barrier over `CASEQ8`.
//! * [`histogram`] — posted vs acked vs RMW increments.
//! * [`pchase`] — dependent-load pointer chasing (latency probe).
//! * [`fabric`] — multi-cube GUPS and sharded BFS spanning a
//!   chain/ring/mesh fabric.

pub mod barrier;
pub mod bfs;
pub mod counter;
pub mod fabric;
pub mod gups;
pub mod histogram;
pub mod mutex;
pub mod pchase;
pub mod rwlock;
pub mod triad;
