//! HPCC RandomAccess (GUPS) — the random-update kernel from the
//! original HMC-Sim evaluations (prior work \[4\]\[5\], Luszczek et
//! al. \[12\]).
//!
//! Random 16-byte table entries are updated with XOR. Two mechanisms
//! are provided:
//!
//! * [`GupsMode::ReadModifyWrite`] — the conventional host-side
//!   pattern: RD16, XOR in the core, WR16 (6 FLITs per update, two
//!   round trips, and lost updates under concurrency).
//! * [`GupsMode::Xor16Amo`] — the Gen2 `XOR16` atomic performs the
//!   update in the logic layer (4 FLITs, one round trip, exact).

use hmc_sim::{HmcSim, TrackedResponse};
use hmc_types::{HmcError, HmcResponse, HmcRqst};
use std::collections::HashMap;

/// The update mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GupsMode {
    /// RD16 + host XOR + WR16.
    ReadModifyWrite,
    /// One `XOR16` atomic per update.
    Xor16Amo,
}

/// Configuration of a RandomAccess run.
#[derive(Debug, Clone)]
pub struct GupsConfig {
    /// Table entries (16 bytes each); must be a power of two.
    pub table_entries: usize,
    /// Number of updates to perform.
    pub updates: usize,
    /// Outstanding-update window.
    pub window: usize,
    /// Update mechanism.
    pub mode: GupsMode,
    /// Table base address (16-byte aligned).
    pub table_base: u64,
    /// RNG seed for the update stream.
    pub seed: u64,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for GupsConfig {
    fn default() -> Self {
        GupsConfig {
            table_entries: 1 << 12,
            updates: 2048,
            window: 64,
            mode: GupsMode::Xor16Amo,
            table_base: 0x0400_0000,
            seed: 0x1234_5678_9ABC_DEF0,
            max_cycles: 10_000_000,
        }
    }
}

/// Outcome of a RandomAccess run.
#[derive(Debug, Clone, PartialEq)]
pub struct GupsResult {
    /// Device cycles consumed.
    pub cycles: u64,
    /// Updates performed.
    pub updates: u64,
    /// Link FLITs consumed.
    pub link_flits: u64,
    /// Updates per cycle (the GUPS figure, per device clock).
    pub updates_per_cycle: f64,
    /// Table entries that disagree with the sequential oracle.
    pub errors: usize,
}

/// The HPCC RandomAccess polynomial stream (x^63 + x^2 + x + 1 LFSR,
/// as in the reference implementation).
#[derive(Debug, Clone, Copy)]
pub struct HpccStream(u64);

impl HpccStream {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        HpccStream(if seed == 0 { 1 } else { seed })
    }
}

impl Iterator for HpccStream {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        let v = self.0;
        self.0 = (v << 1) ^ (if (v as i64) < 0 { 7 } else { 0 });
        Some(self.0)
    }
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    /// Awaiting the XOR16 response; update value kept for retries.
    Amo { value: u64 },
    /// Awaiting the RD16 of an RMW update; payload value to XOR.
    RmwRead { entry: usize, value: u64 },
    /// Awaiting the WR16 ack of an RMW update; line kept for retries.
    RmwWrite { entry: usize, new: [u64; 2] },
}

/// True when the vault answered with an error instead of executing the
/// request (an ERROR packet or nonzero `ERRSTAT`): no side effects
/// happened, so re-issuing the request verbatim is safe.
fn not_executed(rsp: &TrackedResponse) -> bool {
    matches!(rsp.rsp.head.cmd, HmcResponse::Error) || rsp.rsp.tail.errstat != 0
}

/// True when the response executed but its payload is poisoned (DINV):
/// the data FLITs cannot be trusted, while the header remains valid.
fn poisoned(rsp: &TrackedResponse) -> bool {
    rsp.rsp.tail.dinv
}

/// The RandomAccess kernel runner.
#[derive(Debug, Clone)]
pub struct GupsKernel {
    /// Kernel configuration.
    pub config: GupsConfig,
}

impl GupsKernel {
    /// Creates a runner.
    pub fn new(config: GupsConfig) -> Self {
        GupsKernel { config }
    }

    fn entry_addr(&self, entry: usize) -> u64 {
        self.config.table_base + (entry as u64) * 16
    }

    /// Runs the kernel on device 0 and verifies the table against a
    /// sequential oracle.
    pub fn run(&self, sim: &mut HmcSim) -> Result<GupsResult, HmcError> {
        let cfg = &self.config;
        if !cfg.table_entries.is_power_of_two() {
            return Err(HmcError::InvalidRequestSize(cfg.table_entries));
        }
        let links = sim.device_config(0)?.links;
        let mask = (cfg.table_entries - 1) as u64;

        // Zero-initialized table; build the oracle host-side.
        let mut oracle = vec![0u64; cfg.table_entries];
        for (i, v) in HpccStream::new(cfg.seed).take(cfg.updates).enumerate() {
            let _ = i;
            oracle[(v & mask) as usize] ^= v;
        }

        let flits_before = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };
        let start_cycle = sim.cycle();

        let mut stream = HpccStream::new(cfg.seed);
        let mut issued = 0usize;
        let mut completed = 0usize;
        // Tag pools are per link, so in-flight ops key on (link, tag).
        let mut owner: HashMap<(usize, u16), Pending> = HashMap::new();
        let mut write_queue: std::collections::VecDeque<(usize, [u64; 2])> =
            std::collections::VecDeque::new();
        // Update values (XOR16 or RD16 phase) that must be re-issued
        // after a fault-injected response.
        let mut retry_queue: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut rr_link = 0usize;
        let mut carry: Option<u64> = None;

        while completed < cfg.updates {
            if sim.cycle() - start_cycle > cfg.max_cycles {
                break;
            }
            for link in 0..links {
                while let Some(rsp) = sim.recv(0, link) {
                    let Some(pending) = owner.remove(&(link, rsp.rsp.head.tag.value())) else {
                        continue;
                    };
                    if not_executed(&rsp) {
                        // The vault refused the request: nothing
                        // happened, so replay it from scratch.
                        match pending {
                            Pending::Amo { value } | Pending::RmwRead { value, .. } => {
                                retry_queue.push_back(value);
                            }
                            Pending::RmwWrite { entry, new } => {
                                write_queue.push_back((entry, new));
                            }
                        }
                        continue;
                    }
                    match pending {
                        // AMO and write acks carry no payload we
                        // consume, so poison cannot corrupt them.
                        Pending::Amo { .. } | Pending::RmwWrite { .. } => completed += 1,
                        Pending::RmwRead { entry, value } => {
                            // Reads are idempotent: re-fetch when the
                            // payload is poisoned or truncated.
                            if poisoned(&rsp) || rsp.rsp.payload.len() < 2 {
                                retry_queue.push_back(value);
                                continue;
                            }
                            let new = [rsp.rsp.payload[0] ^ value, rsp.rsp.payload[1]];
                            write_queue.push_back((entry, new));
                        }
                    }
                }
            }

            // Flush pending RMW write-backs first (they hold window
            // slots until acknowledged).
            while let Some(&(entry, new)) = write_queue.front() {
                let addr = self.entry_addr(entry);
                let link = rr_link % links;
                match sim.send_simple(0, link, HmcRqst::Wr16, addr, new.to_vec()) {
                    Ok(Some(tag)) => {
                        rr_link += 1;
                        owner.insert((link, tag.value()), Pending::RmwWrite { entry, new });
                        write_queue.pop_front();
                    }
                    Ok(None) => unreachable!("WR16 is acknowledged"),
                    Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => break,
                    Err(e) => return Err(e),
                }
            }

            // Re-issue faulted updates next: they already count toward
            // `issued`, so they bypass that gate but still respect the
            // window.
            while owner.len() + write_queue.len() < cfg.window {
                let Some(&v) = retry_queue.front() else { break };
                let entry = (v & mask) as usize;
                let addr = self.entry_addr(entry);
                let link = rr_link % links;
                let send = match cfg.mode {
                    GupsMode::Xor16Amo => {
                        sim.send_simple(0, link, HmcRqst::Xor16, addr, vec![v, 0])
                    }
                    GupsMode::ReadModifyWrite => {
                        sim.send_simple(0, link, HmcRqst::Rd16, addr, vec![])
                    }
                };
                match send {
                    Ok(Some(tag)) => {
                        rr_link += 1;
                        let pending = match cfg.mode {
                            GupsMode::Xor16Amo => Pending::Amo { value: v },
                            GupsMode::ReadModifyWrite => Pending::RmwRead { entry, value: v },
                        };
                        owner.insert((link, tag.value()), pending);
                        retry_queue.pop_front();
                    }
                    Ok(None) => unreachable!("neither command is posted"),
                    Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => break,
                    Err(e) => return Err(e),
                }
            }

            // Issue new updates while the window has room.
            while owner.len() + write_queue.len() < cfg.window && issued < cfg.updates {
                let v = carry.take().unwrap_or_else(|| stream.next().expect("infinite"));
                let entry = (v & mask) as usize;
                let addr = self.entry_addr(entry);
                let link = rr_link % links;
                let send = match cfg.mode {
                    GupsMode::Xor16Amo => {
                        sim.send_simple(0, link, HmcRqst::Xor16, addr, vec![v, 0])
                    }
                    GupsMode::ReadModifyWrite => {
                        sim.send_simple(0, link, HmcRqst::Rd16, addr, vec![])
                    }
                };
                match send {
                    Ok(Some(tag)) => {
                        rr_link += 1;
                        let pending = match cfg.mode {
                            GupsMode::Xor16Amo => Pending::Amo { value: v },
                            GupsMode::ReadModifyWrite => Pending::RmwRead { entry, value: v },
                        };
                        owner.insert((link, tag.value()), pending);
                        issued += 1;
                    }
                    Ok(None) => unreachable!("neither command is posted"),
                    Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {
                        carry = Some(v);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }

            sim.clock();
        }

        // Verify against the oracle.
        let mut errors = 0usize;
        for (entry, &want) in oracle.iter().enumerate() {
            if sim.mem_read_u64(0, self.entry_addr(entry))? != want {
                errors += 1;
            }
        }

        let cycles = sim.cycle() - start_cycle;
        let flits_after = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };
        Ok(GupsResult {
            cycles,
            updates: completed as u64,
            link_flits: flits_after - flits_before,
            updates_per_cycle: completed as f64 / cycles.max(1) as f64,
            errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    #[test]
    fn hpcc_stream_is_deterministic_and_nonrepeating_shortterm() {
        let a: Vec<u64> = HpccStream::new(42).take(16).collect();
        let b: Vec<u64> = HpccStream::new(42).take(16).collect();
        assert_eq!(a, b);
        let unique: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 16);
    }

    /// Regression for a fuzz-farm find: a fault-injected (empty
    /// payload) RD16 response used to panic the RMW recv loop.
    /// Faulted updates must be retried; with retries, even the AMO
    /// oracle stays exact under heavy vault errors.
    #[test]
    fn amo_mode_survives_injected_faults_exactly() {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.fault = hmc_sim::FaultPlan::seeded(9)
            .with_vault_errors(70_000)
            .with_poison(30_000);
        let mut sim = HmcSim::new(config).unwrap();
        let kernel = GupsKernel::new(GupsConfig {
            table_entries: 1 << 8,
            updates: 256,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.updates, 256);
        assert_eq!(result.errors, 0, "faulted XOR16s are retried, not lost");
    }

    #[test]
    fn rmw_mode_survives_injected_faults() {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.fault = hmc_sim::FaultPlan::seeded(13)
            .with_vault_errors(50_000)
            .with_poison(50_000);
        let mut sim = HmcSim::new(config).unwrap();
        let kernel = GupsKernel::new(GupsConfig {
            table_entries: 1 << 8,
            updates: 256,
            mode: GupsMode::ReadModifyWrite,
            window: 1,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.updates, 256);
        assert_eq!(result.errors, 0, "window 1 has no concurrency: exact despite faults");
    }

    #[test]
    fn amo_mode_matches_oracle_exactly() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = GupsKernel::new(GupsConfig {
            table_entries: 1 << 8,
            updates: 512,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.updates, 512);
        assert_eq!(result.errors, 0, "XOR16 atomics commute: exact result");
        assert!(result.updates_per_cycle > 0.0);
    }

    #[test]
    fn rmw_mode_completes_and_counts_traffic() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = GupsKernel::new(GupsConfig {
            table_entries: 1 << 8,
            updates: 256,
            mode: GupsMode::ReadModifyWrite,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.updates, 256);
        // RMW moves RD16 (1+2) + WR16 (2+1) = 6 FLITs per update vs
        // XOR16's (2+2) = 4.
        assert!(result.link_flits >= 6 * 256);
    }

    #[test]
    fn amo_uses_fewer_flits_than_rmw() {
        let run = |mode: GupsMode| {
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            GupsKernel::new(GupsConfig {
                table_entries: 1 << 8,
                updates: 256,
                mode,
                ..Default::default()
            })
            .run(&mut sim)
            .unwrap()
        };
        let amo = run(GupsMode::Xor16Amo);
        let rmw = run(GupsMode::ReadModifyWrite);
        assert!(
            amo.link_flits < rmw.link_flits,
            "AMO offload saves link bandwidth: {} vs {}",
            amo.link_flits,
            rmw.link_flits
        );
        assert!(amo.cycles <= rmw.cycles, "one round trip beats two");
    }

    #[test]
    fn non_power_of_two_table_rejected() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = GupsKernel::new(GupsConfig { table_entries: 1000, ..Default::default() });
        assert!(kernel.run(&mut sim).is_err());
    }
}
