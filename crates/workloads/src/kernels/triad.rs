//! STREAM Triad — the bandwidth kernel from the original HMC-Sim
//! evaluations (prior work \[4\]\[5\], McCalpin \[11\]).
//!
//! `a[i] = b[i] + scalar * c[i]` over three dense `f64` arrays
//! resident in the cube. The host streams the arrays in block-sized
//! chunks with a bounded window of outstanding requests, modelling a
//! core's memory-level parallelism; the stride-1 pattern interleaves
//! across all 32 vaults, so bandwidth scales with the device's
//! queueing capacity.

use crate::driver::ResilienceConfig;
use hmc_sim::HmcSim;
use hmc_types::{HmcError, HmcResponse, HmcRqst, Tag};
use std::collections::BTreeMap;

/// Configuration of a Triad run.
#[derive(Debug, Clone)]
pub struct TriadConfig {
    /// Elements per array (each element is an `f64`).
    pub elements: usize,
    /// Bytes per memory request (16..=256, a Gen2 request size).
    pub chunk_bytes: usize,
    /// Maximum outstanding chunks (memory-level parallelism).
    pub window: usize,
    /// The Triad scalar.
    pub scalar: f64,
    /// Base address of `a`.
    pub a_base: u64,
    /// Base address of `b`.
    pub b_base: u64,
    /// Base address of `c`.
    pub c_base: u64,
    /// Use posted writes for the `a` stream.
    pub posted_writes: bool,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Optional host-side timeout/retry policy for fault-injection
    /// runs: faulty responses (ERRSTAT/DINV) re-enqueue their chunk,
    /// overdue requests are abandoned and re-issued, and sends fall
    /// over when a link is down. Retries are bounded only by
    /// `max_cycles` (Triad requests are idempotent). `None` preserves
    /// the classic behavior exactly.
    pub resilience: Option<ResilienceConfig>,
}

impl Default for TriadConfig {
    fn default() -> Self {
        TriadConfig {
            elements: 4096,
            chunk_bytes: 64,
            window: 32,
            scalar: 3.0,
            a_base: 0x0100_0000,
            b_base: 0x0200_0000,
            c_base: 0x0300_0000,
            posted_writes: false,
            max_cycles: 10_000_000,
            resilience: None,
        }
    }
}

/// Outcome of a Triad run.
#[derive(Debug, Clone, PartialEq)]
pub struct TriadResult {
    /// Device cycles consumed.
    pub cycles: u64,
    /// Bytes of array data moved (3 arrays × elements × 8).
    pub data_bytes: u64,
    /// Link FLITs consumed.
    pub link_flits: u64,
    /// Achieved bandwidth in array bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Elements whose result failed verification.
    pub errors: usize,
    /// Requests re-issued after a faulty (ERRSTAT/DINV) response.
    pub fault_retries: u64,
    /// Requests abandoned after `request_timeout` cycles in flight.
    pub timeouts: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamKind {
    B,
    C,
    AWrite,
}

#[derive(Debug, Default)]
struct ChunkState {
    b: Option<hmc_types::PayloadBuf>,
    c: Option<hmc_types::PayloadBuf>,
    write_issued: bool,
    write_done: bool,
}

/// The STREAM Triad kernel runner.
#[derive(Debug, Clone)]
pub struct TriadKernel {
    /// Kernel configuration.
    pub config: TriadConfig,
}

impl TriadKernel {
    /// Creates a runner.
    pub fn new(config: TriadConfig) -> Self {
        TriadKernel { config }
    }

    /// Runs Triad on device 0, initializing `b` and `c` through the
    /// host backdoor and verifying `a` afterwards.
    pub fn run(&self, sim: &mut HmcSim) -> Result<TriadResult, HmcError> {
        let cfg = &self.config;
        if !cfg.chunk_bytes.is_multiple_of(8) || !(cfg.elements * 8).is_multiple_of(cfg.chunk_bytes) {
            return Err(HmcError::InvalidRequestSize(cfg.chunk_bytes));
        }
        let links = sim.device_config(0)?.links;
        let read_cmd = HmcRqst::read_for_bytes(cfg.chunk_bytes)?;
        let write_cmd = if cfg.posted_writes {
            HmcRqst::posted_write_for_bytes(cfg.chunk_bytes)?
        } else {
            HmcRqst::write_for_bytes(cfg.chunk_bytes)?
        };

        // Initialize source arrays.
        for i in 0..cfg.elements {
            let b = (i as f64) * 0.5;
            let c = (i as f64) * 0.25 + 1.0;
            sim.mem_write_u64(0, cfg.b_base + (i * 8) as u64, b.to_bits())?;
            sim.mem_write_u64(0, cfg.c_base + (i * 8) as u64, c.to_bits())?;
        }

        let flits_before = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };
        let start_cycle = sim.cycle();

        let chunks = cfg.elements * 8 / cfg.chunk_bytes;
        let mut states: Vec<ChunkState> = (0..chunks).map(|_| ChunkState::default()).collect();
        // Tag pools are per link, so in-flight ops key on (link, tag).
        // BTreeMap keeps the timeout scan deterministic across runs.
        let mut owner: BTreeMap<(usize, u16), (usize, StreamKind, u64)> = BTreeMap::new();
        let mut read_queue: std::collections::VecDeque<(usize, StreamKind)> = (0..chunks)
            .flat_map(|c| [(c, StreamKind::B), (c, StreamKind::C)])
            .collect();
        let mut inflight = 0usize;
        let mut done_chunks = 0usize;
        let mut rr_link = 0usize;
        let mut fault_retries = 0u64;
        let mut timeouts = 0u64;

        // Puts a faulted or abandoned request's work back on the
        // queue; a failed write re-reads its operands (they were
        // dropped at issue), which is safe because Triad requests are
        // idempotent.
        fn requeue(
            states: &mut [ChunkState],
            read_queue: &mut std::collections::VecDeque<(usize, StreamKind)>,
            chunk: usize,
            kind: StreamKind,
        ) {
            match kind {
                StreamKind::B | StreamKind::C => read_queue.push_back((chunk, kind)),
                StreamKind::AWrite => {
                    states[chunk].write_issued = false;
                    read_queue.push_back((chunk, StreamKind::B));
                    read_queue.push_back((chunk, StreamKind::C));
                }
            }
        }

        while done_chunks < chunks {
            if sim.cycle() - start_cycle > cfg.max_cycles {
                break;
            }
            // Drain responses on all links (after a link failover a
            // response can surface on any link; route by entry link).
            for link in 0..links {
                while let Some(rsp) = sim.recv(0, link) {
                    let key = (rsp.entry_link, rsp.rsp.head.tag.value());
                    let Some((chunk, kind, _)) = owner.remove(&key) else {
                        continue;
                    };
                    inflight -= 1;
                    let faulty = cfg.resilience.is_some()
                        && (matches!(rsp.rsp.head.cmd, HmcResponse::Error)
                            || rsp.rsp.tail.errstat != 0
                            || rsp.rsp.tail.dinv);
                    if faulty {
                        fault_retries += 1;
                        requeue(&mut states, &mut read_queue, chunk, kind);
                        continue;
                    }
                    match kind {
                        StreamKind::B => states[chunk].b = Some(rsp.rsp.payload),
                        StreamKind::C => states[chunk].c = Some(rsp.rsp.payload),
                        StreamKind::AWrite => {
                            states[chunk].write_done = true;
                            done_chunks += 1;
                        }
                    }
                }
            }

            // Abandon requests that have been in flight too long
            // (stuck behind a downed link); their tags are reclaimed
            // when the stale response eventually surfaces.
            if let Some(res) = cfg.resilience {
                let now = sim.cycle();
                let overdue: Vec<(usize, u16)> = owner
                    .iter()
                    .filter(|&(_, &(_, _, issued))| {
                        now.saturating_sub(issued) >= res.request_timeout
                    })
                    .map(|(&k, _)| k)
                    .collect();
                for key in overdue {
                    let (chunk, kind, _) = owner.remove(&key).expect("key from scan");
                    inflight -= 1;
                    if let Ok(tag) = Tag::new(key.1 as u32) {
                        let _ = sim.abandon_tag(0, key.0, tag);
                    }
                    timeouts += 1;
                    requeue(&mut states, &mut read_queue, chunk, kind);
                }
            }

            // Issue writes for chunks whose operands arrived.
            #[allow(clippy::needless_range_loop)] // split borrows of states[chunk]
            for chunk in 0..chunks {
                let ready = states[chunk].b.is_some()
                    && states[chunk].c.is_some()
                    && !states[chunk].write_issued;
                if !ready {
                    continue;
                }
                let (b, c) = (
                    states[chunk].b.as_ref().expect("checked"),
                    states[chunk].c.as_ref().expect("checked"),
                );
                let a: Vec<u64> = b
                    .iter()
                    .zip(c)
                    .map(|(&b, &c)| {
                        (f64::from_bits(b) + cfg.scalar * f64::from_bits(c)).to_bits()
                    })
                    .collect();
                let addr = cfg.a_base + (chunk * cfg.chunk_bytes) as u64;
                let link = rr_link % links;
                match sim.send_simple(0, link, write_cmd, addr, a) {
                    Ok(Some(tag)) => {
                        rr_link += 1;
                        owner.insert(
                            (link, tag.value()),
                            (chunk, StreamKind::AWrite, sim.cycle()),
                        );
                        inflight += 1;
                        states[chunk].write_issued = true;
                        states[chunk].b = None;
                        states[chunk].c = None;
                    }
                    Ok(None) => {
                        // Posted write: completes without a response.
                        rr_link += 1;
                        states[chunk].write_issued = true;
                        states[chunk].write_done = true;
                        states[chunk].b = None;
                        states[chunk].c = None;
                        done_chunks += 1;
                    }
                    Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => break,
                    Err(HmcError::LinkDown(_)) if cfg.resilience.is_some() => {
                        // Skip the downed link; this chunk stays ready
                        // and is retried on the next round-robin link.
                        rr_link += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }

            // Issue new reads while the window has room.
            while inflight < cfg.window * 2 {
                let Some((chunk, kind)) = read_queue.pop_front() else { break };
                let base = match kind {
                    StreamKind::B => cfg.b_base,
                    StreamKind::C => cfg.c_base,
                    StreamKind::AWrite => unreachable!("read queue holds reads"),
                };
                let addr = base + (chunk * cfg.chunk_bytes) as u64;
                let link = rr_link % links;
                match sim.send_simple(0, link, read_cmd, addr, vec![]) {
                    Ok(Some(tag)) => {
                        rr_link += 1;
                        owner.insert((link, tag.value()), (chunk, kind, sim.cycle()));
                        inflight += 1;
                    }
                    Ok(None) => unreachable!("reads are never posted"),
                    Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {
                        read_queue.push_front((chunk, kind));
                        break;
                    }
                    Err(HmcError::LinkDown(_)) if cfg.resilience.is_some() => {
                        // Skip the downed link; retry next cycle.
                        read_queue.push_front((chunk, kind));
                        rr_link += 1;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }

            sim.clock();
        }
        // Posted writes may still be in flight: retire them before
        // verifying.
        sim.drain(100_000);

        // Verify.
        let mut errors = 0usize;
        for i in 0..cfg.elements {
            let got = f64::from_bits(sim.mem_read_u64(0, cfg.a_base + (i * 8) as u64)?);
            let b = (i as f64) * 0.5;
            let c = (i as f64) * 0.25 + 1.0;
            let want = b + cfg.scalar * c;
            if (got - want).abs() > 1e-12 * want.abs().max(1.0) {
                errors += 1;
            }
        }

        let cycles = sim.cycle() - start_cycle;
        let flits_after = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };
        let data_bytes = (3 * cfg.elements * 8) as u64;
        Ok(TriadResult {
            cycles,
            data_bytes,
            link_flits: flits_after - flits_before,
            bytes_per_cycle: data_bytes as f64 / cycles.max(1) as f64,
            errors,
            fault_retries,
            timeouts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    #[test]
    fn triad_computes_correctly() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = TriadKernel::new(TriadConfig {
            elements: 512,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.errors, 0);
        assert!(result.cycles > 0);
        assert!(result.bytes_per_cycle > 0.0);
    }

    #[test]
    fn posted_writes_reduce_flits() {
        let run = |posted: bool| {
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            TriadKernel::new(TriadConfig {
                elements: 512,
                posted_writes: posted,
                ..Default::default()
            })
            .run(&mut sim)
            .unwrap()
        };
        let acked = run(false);
        let posted = run(true);
        assert_eq!(posted.errors, 0);
        assert!(
            posted.link_flits < acked.link_flits,
            "posted writes save the write-ack FLITs"
        );
    }

    #[test]
    fn wider_window_is_not_slower() {
        let run = |window: usize| {
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            TriadKernel::new(TriadConfig {
                elements: 1024,
                window,
                ..Default::default()
            })
            .run(&mut sim)
            .unwrap()
        };
        let narrow = run(1);
        let wide = run(64);
        assert_eq!(narrow.errors, 0);
        assert_eq!(wide.errors, 0);
        assert!(wide.cycles <= narrow.cycles, "MLP helps stride-1 streams");
    }

    #[test]
    fn bad_chunk_size_rejected() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = TriadKernel::new(TriadConfig {
            chunk_bytes: 24,
            ..Default::default()
        });
        assert!(kernel.run(&mut sim).is_err());
    }
}
