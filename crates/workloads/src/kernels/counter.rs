//! Shared-counter increments — the workload behind the paper's
//! Table II AMO-efficiency comparison (§III).
//!
//! N threads each perform M atomic increments of one shared 8-byte
//! counter, either with the HMC `INC8` atomic (2 FLITs of link
//! traffic per increment) or with the cache-based read-modify-write
//! pattern (RD64 + WR64: 12 FLITs per increment).
//!
//! The cache-based mode is a *traffic* model: the simulated host
//! performs the read-modify-write non-coherently, so concurrent
//! threads can lose updates — exactly the hazard a real cache
//! hierarchy spends coherency traffic to prevent, and a useful
//! denominator for the Table II comparison.

use crate::driver::{HostThread, RunMetrics, ThreadDriver, ThreadIo, ThreadStatus};
use hmc_sim::{HmcSim, TrackedResponse};
use hmc_types::{HmcError, HmcResponse, HmcRqst};

/// How increments are performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterMode {
    /// HMC `INC8` atomic (1 request FLIT + 1 response FLIT).
    HmcInc8,
    /// Cache-line read-modify-write: RD64 (1+5 FLITs) followed by
    /// WR64 (5+1 FLITs).
    CacheRmw,
}

/// Configuration of a shared-counter run.
#[derive(Debug, Clone)]
pub struct CounterKernelConfig {
    /// Number of threads.
    pub threads: usize,
    /// Increments per thread.
    pub increments_per_thread: usize,
    /// Address of the shared counter (its cache line for RMW mode).
    pub counter_addr: u64,
    /// Increment mechanism.
    pub mode: CounterMode,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for CounterKernelConfig {
    fn default() -> Self {
        CounterKernelConfig {
            threads: 4,
            increments_per_thread: 16,
            counter_addr: 0x8000,
            mode: CounterMode::HmcInc8,
            max_cycles: 2_000_000,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    SendInc,
    WaitInc,
    SendRead,
    WaitRead,
    SendWrite { line: Vec<u64> },
    WaitWrite { line: Vec<u64> },
}

/// True when the vault answered with an error instead of executing the
/// request (an ERROR packet or nonzero `ERRSTAT`): no side effects
/// happened, so re-issuing the request verbatim is safe.
fn not_executed(rsp: &TrackedResponse) -> bool {
    matches!(rsp.rsp.head.cmd, HmcResponse::Error) || rsp.rsp.tail.errstat != 0
}

/// True when the response executed but its payload is poisoned (DINV):
/// the data FLITs cannot be trusted, while the header remains valid.
fn poisoned(rsp: &TrackedResponse) -> bool {
    rsp.rsp.tail.dinv
}

struct CounterThread {
    link: usize,
    remaining: usize,
    addr: u64,
    state: State,
}

impl HostThread for CounterThread {
    fn link(&self) -> usize {
        self.link
    }

    fn tick(&mut self, io: &mut ThreadIo<'_>) -> ThreadStatus {
        if self.remaining == 0 {
            return ThreadStatus::Done;
        }
        // Wait-states fall through to the next send within one tick.
        loop {
            match self.state {
                State::SendInc => {
                    match io.send(HmcRqst::Inc8, self.addr, vec![]) {
                        Ok(_) => self.state = State::WaitInc,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("counter kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitInc => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    if not_executed(&rsp) {
                        // The increment did not happen; retry it.
                        self.state = State::SendInc;
                        continue;
                    }
                    // A poisoned INC8 ack is fine: the atomic executed
                    // and we never consume its payload.
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        return ThreadStatus::Done;
                    }
                    self.state = State::SendInc;
                }
                State::SendRead => {
                    // Fetch the 64-byte cache line containing the
                    // counter.
                    match io.send(HmcRqst::Rd64, self.addr & !63, vec![]) {
                        Ok(_) => self.state = State::WaitRead,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("counter kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitRead => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    let word = ((self.addr & 63) / 8) as usize;
                    // Reads are idempotent: re-fetch on any fault —
                    // not executed, poisoned data, or a payload too
                    // short to contain the counter word.
                    if not_executed(&rsp) || poisoned(&rsp) || rsp.rsp.payload.len() <= word {
                        self.state = State::SendRead;
                        continue;
                    }
                    // Modify the counter word within the fetched line,
                    // as a cache would.
                    let mut line = rsp.rsp.payload.to_vec();
                    line[word] = line[word].wrapping_add(1);
                    self.state = State::SendWrite { line };
                }
                State::SendWrite { ref line } => {
                    // Flush the modified cache line back.
                    match io.send(HmcRqst::Wr64, self.addr & !63, line.clone()) {
                        Ok(_) => self.state = State::WaitWrite { line: line.clone() },
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("counter kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitWrite { ref line } => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    if not_executed(&rsp) {
                        // The flush was dropped; re-issue the same line.
                        self.state = State::SendWrite { line: line.clone() };
                        continue;
                    }
                    // Write acks carry no payload, so DINV is moot.
                    self.remaining -= 1;
                    if self.remaining == 0 {
                        return ThreadStatus::Done;
                    }
                    self.state = State::SendRead;
                }
            }
        }
    }
}

/// Outcome of a shared-counter run.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterKernelResult {
    /// Driver metrics.
    pub metrics: RunMetrics,
    /// Final counter value.
    pub final_value: u64,
    /// Increments requested (threads × increments/thread).
    pub requested: u64,
    /// Link FLITs consumed by the run (requests in + responses out).
    pub link_flits: u64,
    /// Link bytes consumed by the run.
    pub link_bytes: u64,
}

/// The shared-counter kernel runner.
#[derive(Debug, Clone)]
pub struct CounterKernel {
    /// Kernel configuration.
    pub config: CounterKernelConfig,
}

impl CounterKernel {
    /// Creates a runner.
    pub fn new(config: CounterKernelConfig) -> Self {
        CounterKernel { config }
    }

    /// Runs the kernel.
    pub fn run(&self, sim: &mut HmcSim) -> Result<CounterKernelResult, HmcError> {
        let links = sim.device_config(0)?.links;
        sim.mem_write_u64(0, self.config.counter_addr, 0)?;
        let flits_before = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };

        let start_state = match self.config.mode {
            CounterMode::HmcInc8 => State::SendInc,
            CounterMode::CacheRmw => State::SendRead,
        };
        let mut threads: Vec<CounterThread> = (0..self.config.threads)
            .map(|tid| CounterThread {
                link: tid % links,
                remaining: self.config.increments_per_thread,
                addr: self.config.counter_addr,
                state: start_state.clone(),
            })
            .collect();
        let driver =
            ThreadDriver { dev: 0, max_cycles: self.config.max_cycles, resilience: None };
        let metrics = driver.run(sim, &mut threads);

        let flits_after = {
            let s = sim.stats(0)?;
            s.rqst_flits + s.rsp_flits
        };
        let link_flits = flits_after - flits_before;
        Ok(CounterKernelResult {
            metrics,
            final_value: sim.mem_read_u64(0, self.config.counter_addr)?,
            requested: (self.config.threads * self.config.increments_per_thread) as u64,
            link_flits,
            link_bytes: link_flits * 16,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    #[test]
    fn inc8_counts_exactly() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = CounterKernel::new(CounterKernelConfig {
            threads: 8,
            increments_per_thread: 10,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(result.final_value, 80, "INC8 is atomic: no lost updates");
    }

    #[test]
    fn inc8_traffic_matches_table_two() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = CounterKernel::new(CounterKernelConfig {
            threads: 1,
            increments_per_thread: 1,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        // Table II counts INC8 as 1 request FLIT + 1 response FLIT.
        // (The paper's byte column uses a 128-byte-per-FLIT
        // convention; the wire FLIT is 16 bytes.)
        assert_eq!(result.link_flits, 2);
        assert_eq!(result.link_bytes, 32);
    }

    #[test]
    fn cache_rmw_traffic_matches_table_two() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = CounterKernel::new(CounterKernelConfig {
            threads: 1,
            increments_per_thread: 1,
            mode: CounterMode::CacheRmw,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        // Table II: RD64 (1+5) + WR64 (5+1) = 12 FLITs.
        assert_eq!(result.link_flits, 12);
        assert_eq!(result.final_value, 1);
    }

    /// Regression for a fuzz-farm find: a fault-injected (empty
    /// payload) read response used to panic the RMW path with an
    /// index out of bounds. Faulted requests must be retried instead.
    #[test]
    fn cache_rmw_survives_injected_faults() {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.fault = hmc_sim::FaultPlan::seeded(42)
            .with_vault_errors(60_000)
            .with_poison(40_000);
        let mut sim = HmcSim::new(config).unwrap();
        let kernel = CounterKernel::new(CounterKernelConfig {
            threads: 5,
            increments_per_thread: 4,
            mode: CounterMode::CacheRmw,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        assert!(result.final_value >= 1);
        assert!(result.final_value <= result.requested);
    }

    #[test]
    fn inc8_survives_injected_faults_without_losing_increments() {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.fault = hmc_sim::FaultPlan::seeded(7)
            .with_vault_errors(80_000)
            .with_poison(30_000);
        let mut sim = HmcSim::new(config).unwrap();
        let kernel = CounterKernel::new(CounterKernelConfig {
            threads: 4,
            increments_per_thread: 8,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(result.final_value, 32, "errored INC8s are retried, not dropped");
    }

    #[test]
    fn cache_rmw_can_lose_updates_under_contention() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = CounterKernel::new(CounterKernelConfig {
            threads: 16,
            increments_per_thread: 8,
            mode: CounterMode::CacheRmw,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        assert!(
            result.final_value <= result.requested,
            "non-coherent RMW never overcounts"
        );
        assert!(
            result.final_value < result.requested,
            "concurrent non-coherent RMW loses updates ({} of {})",
            result.final_value,
            result.requested
        );
    }
}
