//! Pointer chasing — the latency-bound antithesis of STREAM Triad.
//!
//! A random permutation cycle of 16-byte nodes lives in the cube;
//! each node's first word holds the address of the next node. The
//! host performs dependent RD16 loads (window = 1 by construction),
//! so the kernel measures pure round-trip latency: with the default
//! untimed banks every hop costs exactly the 3-cycle pipeline round
//! trip, and row-buffer/bank timing stretches it accordingly.

use hmc_sim::HmcSim;
use hmc_types::{HmcError, HmcRqst};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// Configuration of a pointer-chase run.
#[derive(Debug, Clone)]
pub struct PointerChaseConfig {
    /// Nodes in the permutation cycle.
    pub nodes: usize,
    /// Dependent loads to perform.
    pub steps: usize,
    /// Node-array base address (16-byte aligned).
    pub base: u64,
    /// Permutation seed.
    pub seed: u64,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for PointerChaseConfig {
    fn default() -> Self {
        PointerChaseConfig {
            nodes: 1024,
            steps: 512,
            base: 0x0D00_0000,
            seed: 0xC4A5E,
            max_cycles: 10_000_000,
        }
    }
}

/// Outcome of a pointer-chase run.
#[derive(Debug, Clone, PartialEq)]
pub struct PointerChaseResult {
    /// Device cycles consumed.
    pub cycles: u64,
    /// Dependent loads completed.
    pub steps: u64,
    /// Average cycles per dependent load.
    pub cycles_per_step: f64,
    /// Whether the traversal visited the expected chain (host
    /// verification).
    pub verified: bool,
}

/// The pointer-chase kernel runner.
#[derive(Debug, Clone)]
pub struct PointerChaseKernel {
    /// Kernel configuration.
    pub config: PointerChaseConfig,
}

impl PointerChaseKernel {
    /// Creates a runner.
    pub fn new(config: PointerChaseConfig) -> Self {
        PointerChaseKernel { config }
    }

    fn node_addr(&self, node: usize) -> u64 {
        self.config.base + (node as u64) * 16
    }

    /// Builds the permutation cycle: node i points at successor(i).
    fn permutation(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (1..self.config.nodes).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        order.shuffle(&mut rng);
        // A single cycle through all nodes starting at 0.
        let mut next = vec![0usize; self.config.nodes];
        let mut prev = 0usize;
        for &n in &order {
            next[prev] = n;
            prev = n;
        }
        next[prev] = 0;
        next
    }

    /// Runs the chase on device 0.
    pub fn run(&self, sim: &mut HmcSim) -> Result<PointerChaseResult, HmcError> {
        let cfg = &self.config;
        if cfg.nodes < 2 {
            return Err(HmcError::InvalidRequestSize(cfg.nodes));
        }
        let next = self.permutation();
        for (node, &succ) in next.iter().enumerate() {
            sim.mem_write_u64(0, self.node_addr(node), self.node_addr(succ))?;
            sim.mem_write_u64(0, self.node_addr(node) + 8, node as u64)?;
        }

        let start_cycle = sim.cycle();
        let mut addr = self.node_addr(0);
        let mut expected = 0usize;
        let mut verified = true;
        let mut steps_done = 0u64;
        for _ in 0..cfg.steps {
            if sim.cycle() - start_cycle > cfg.max_cycles {
                break;
            }
            // Dependent load: nothing else can be in flight.
            let tag = loop {
                match sim.send_simple(0, 0, HmcRqst::Rd16, addr, vec![]) {
                    Ok(Some(tag)) => break tag,
                    Ok(None) => unreachable!("reads respond"),
                    Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {
                        sim.clock();
                    }
                    Err(e) => return Err(e),
                }
            };
            let rsp = sim.run_until_response(0, 0, tag, 100_000)?;
            verified &= rsp.rsp.payload[1] == expected as u64;
            expected = next[expected];
            addr = rsp.rsp.payload[0];
            steps_done += 1;
        }
        let cycles = sim.cycle() - start_cycle;
        Ok(PointerChaseResult {
            cycles,
            steps: steps_done,
            cycles_per_step: cycles as f64 / steps_done.max(1) as f64,
            verified,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::{BankTiming, DeviceConfig, RowPolicy};

    #[test]
    fn chase_visits_the_chain() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let result = PointerChaseKernel::new(PointerChaseConfig {
            nodes: 128,
            steps: 256, // wraps the cycle twice
            ..Default::default()
        })
        .run(&mut sim)
        .unwrap();
        assert!(result.verified, "every hop returned the expected node");
        assert_eq!(result.steps, 256);
    }

    #[test]
    fn untimed_banks_give_exactly_three_cycles_per_hop() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let result = PointerChaseKernel::new(PointerChaseConfig {
            nodes: 64,
            steps: 64,
            ..Default::default()
        })
        .run(&mut sim)
        .unwrap();
        assert_eq!(result.cycles_per_step, 3.0, "pure pipeline latency");
    }

    #[test]
    fn bank_timing_stretches_the_chase() {
        let mut cfg = DeviceConfig::gen2_4link_4gb();
        cfg.bank_timing = BankTiming { row_hit: 1, row_miss: 6, policy: RowPolicy::OpenPage };
        let mut sim = HmcSim::new(cfg).unwrap();
        let timed = PointerChaseKernel::new(PointerChaseConfig {
            nodes: 64,
            steps: 64,
            ..Default::default()
        })
        .run(&mut sim)
        .unwrap();
        assert!(timed.verified);
        // Random hops mostly miss the row buffer, but the dependent
        // chain leaves banks idle between hops, so only the hop that
        // reuses a still-busy bank pays; latency must strictly exceed
        // the untimed floor.
        assert!(timed.cycles_per_step >= 3.0);
    }

    #[test]
    fn permutation_is_a_single_cycle() {
        let kernel = PointerChaseKernel::new(PointerChaseConfig {
            nodes: 257,
            ..Default::default()
        });
        let next = kernel.permutation();
        let mut seen = vec![false; 257];
        let mut node = 0usize;
        for _ in 0..257 {
            assert!(!seen[node], "revisited {node} early");
            seen[node] = true;
            node = next[node];
        }
        assert_eq!(node, 0, "cycle closes");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degenerate_sizes_rejected() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = PointerChaseKernel::new(PointerChaseConfig { nodes: 1, ..Default::default() });
        assert!(kernel.run(&mut sim).is_err());
    }
}
