//! Centralized sense-reversing barrier built from the Gen2
//! compare-and-swap offload (ROADMAP "CMC ecosystem expansion":
//! barriers as the next synchronization primitive after the paper's
//! mutex).
//!
//! The barrier is a 16-byte in-cube structure at a 16-byte-aligned
//! address:
//!
//! * word 0 — **arrival count** for the current round;
//! * word 1 — **rounds completed** (a monotonically increasing
//!   "sense" word).
//!
//! Arrival is a `CASEQ8` loop on the count word: a thread guesses the
//! current count (starting at 0, correcting from the original value
//! every miss returns) and swaps in `count + 1`. The last arriver of
//! a round publishes the new round in a single atomic `WR16` that
//! resets the count *and* advances the sense word together; everyone
//! else spins on `RD16` with truncated exponential backoff until the
//! sense word reaches the round number. Because the sense word is
//! monotonic (it counts rounds rather than flipping a bit), a slow
//! waiter can never confuse two adjacent rounds even while faster
//! threads race ahead into the next arrival phase.
//!
//! The kernel tolerates the fuzz farm's fault plans: vault errors
//! (`ERRSTAT` set, request not executed) trigger a verbatim re-issue,
//! while poisoned responses (`DINV` set, payload invalid but header
//! fields — including the atomic flag — still valid) are handled per
//! state: a poisoned CAS *hit* still counts as an arrival (re-issuing
//! it would double-count and strand the round's publisher), a
//! poisoned CAS miss retries with its stale guess, and a poisoned
//! spin read is simply retried.

use crate::driver::{HostThread, RunMetrics, ThreadDriver, ThreadIo, ThreadStatus};
use hmc_sim::{HmcSim, TrackedResponse};
use hmc_types::{HmcError, HmcResponse, HmcRqst};

/// Configuration of a barrier-kernel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierKernelConfig {
    /// Number of participating threads.
    pub threads: usize,
    /// Barrier episodes each thread passes through.
    pub rounds: usize,
    /// Address of the 16-byte barrier structure (16-byte aligned).
    pub barrier_addr: u64,
    /// Initial spin backoff after an unsatisfied sense read, in
    /// cycles.
    pub initial_backoff: u64,
    /// Spin backoff cap in cycles.
    pub max_backoff: u64,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for BarrierKernelConfig {
    fn default() -> Self {
        BarrierKernelConfig {
            threads: 4,
            rounds: 4,
            barrier_addr: 0x9000,
            initial_backoff: 8,
            max_backoff: 128,
            max_cycles: 2_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// CASEQ8(count: expected -> expected + 1).
    SendArrive { expected: u64 },
    WaitArrive { expected: u64 },
    /// Last arriver: WR16([0, round + 1]) resets count and publishes
    /// the new sense in one atomic block write.
    SendPublish,
    WaitPublish,
    /// Waiter: RD16 of the barrier block, checking the sense word.
    SendSpin,
    WaitSpin,
    Backoff { until: u64 },
}

/// True when the vault answered with an error instead of executing
/// the request (an ERROR packet or nonzero `ERRSTAT`). Such requests
/// had no side effects, so re-issuing them verbatim is always safe.
fn not_executed(rsp: &TrackedResponse) -> bool {
    matches!(rsp.rsp.head.cmd, HmcResponse::Error) || rsp.rsp.tail.errstat != 0
}

/// True when the response executed but its *payload* cannot be
/// trusted (poisoned data, DINV set). Header fields — including the
/// atomic flag — remain valid: DINV flags the data FLITs only.
fn poisoned(rsp: &TrackedResponse) -> bool {
    rsp.rsp.tail.dinv
}

struct BarrierThread {
    link: usize,
    nthreads: u64,
    rounds: usize,
    addr: u64,
    initial_backoff: u64,
    max_backoff: u64,
    state: State,
    round: usize,
    backoff: u64,
    /// Cycle each round's arrival CAS succeeded, indexed by round.
    arrivals: Vec<u64>,
    /// Cycle each round's release was observed, indexed by round.
    releases: Vec<u64>,
}

impl BarrierThread {
    fn finish_round(&mut self, cycle: u64) -> ThreadStatus {
        self.releases.push(cycle);
        self.round += 1;
        self.backoff = 0;
        if self.round == self.rounds {
            ThreadStatus::Done
        } else {
            self.state = State::SendArrive { expected: 0 };
            ThreadStatus::Running
        }
    }
}

impl HostThread for BarrierThread {
    fn link(&self) -> usize {
        self.link
    }

    fn parked_until(&self) -> Option<u64> {
        match self.state {
            State::Backoff { until } => Some(until),
            _ => None,
        }
    }

    fn tick(&mut self, io: &mut ThreadIo<'_>) -> ThreadStatus {
        loop {
            match self.state {
                State::SendArrive { expected } => {
                    // swap = expected + 1, compare = expected.
                    match io.send(HmcRqst::CasEq8, self.addr, vec![expected + 1, expected]) {
                        Ok(_) => self.state = State::WaitArrive { expected },
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("barrier kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitArrive { expected } => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    if not_executed(&rsp) {
                        // Injected vault error: the CAS never ran, so
                        // it is safe to re-issue as-is.
                        self.state = State::SendArrive { expected };
                        continue;
                    }
                    if rsp.rsp.head.af {
                        // Arrived: we swapped expected -> expected + 1.
                        // The atomic flag is a header field, so this
                        // holds even for a poisoned response — and it
                        // must: blindly re-issuing a CAS that already
                        // hit would double-count the arrival and the
                        // round's publisher would never see the count
                        // land exactly on `nthreads`.
                        self.arrivals.push(io.cycle);
                        if expected + 1 == self.nthreads {
                            self.state = State::SendPublish;
                        } else {
                            self.state = State::SendSpin;
                        }
                    } else if poisoned(&rsp) {
                        // Missed, but the returned original count is
                        // poisoned: retry with the stale guess rather
                        // than trust invalid data.
                        self.state = State::SendArrive { expected };
                    } else {
                        // Missed: the response carries the original
                        // count — retry with the corrected guess.
                        let observed = rsp.rsp.payload.first().copied().unwrap_or(0);
                        self.state = State::SendArrive { expected: observed };
                    }
                }
                State::SendPublish => {
                    let published = (self.round + 1) as u64;
                    match io.send(HmcRqst::Wr16, self.addr, vec![0, published]) {
                        Ok(_) => self.state = State::WaitPublish,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("barrier kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitPublish => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    if not_executed(&rsp) {
                        // The publish write is idempotent ([0, round +
                        // 1] every time), so re-issuing is safe.
                        self.state = State::SendPublish;
                        continue;
                    }
                    return self.finish_round(io.cycle);
                }
                State::SendSpin => {
                    match io.send(HmcRqst::Rd16, self.addr, vec![]) {
                        Ok(_) => self.state = State::WaitSpin,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("barrier kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitSpin => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    let sense = rsp.rsp.payload.get(1).copied();
                    let clean = !not_executed(&rsp) && !poisoned(&rsp);
                    match sense {
                        Some(s) if clean && s >= (self.round + 1) as u64 => {
                            return self.finish_round(io.cycle);
                        }
                        _ => {
                            let wait = self.backoff.max(self.initial_backoff);
                            self.backoff = (wait * 2).min(self.max_backoff);
                            self.state = State::Backoff { until: io.cycle + wait };
                            return ThreadStatus::Running;
                        }
                    }
                }
                State::Backoff { until } => {
                    if io.cycle < until {
                        return ThreadStatus::Running;
                    }
                    self.state = State::SendSpin;
                }
            }
        }
    }
}

/// Outcome of a barrier run.
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierKernelResult {
    /// Driver metrics.
    pub metrics: RunMetrics,
    /// Per-thread arrival cycles, `[thread][round]`.
    pub arrivals: Vec<Vec<u64>>,
    /// Per-thread release cycles, `[thread][round]`.
    pub releases: Vec<Vec<u64>>,
    /// Final arrival-count word (0 after a clean run).
    pub final_count: u64,
    /// Final sense word (equals `rounds` after a clean run).
    pub final_sense: u64,
}

impl BarrierKernelResult {
    /// Checks the barrier ordering invariant: within every round, no
    /// thread was released before every thread had arrived. Returns
    /// the first `(round, releaser, arriver)` violation.
    pub fn ordering_violation(&self) -> Option<(usize, usize, usize)> {
        let rounds = self.releases.iter().map(Vec::len).min().unwrap_or(0);
        for round in 0..rounds {
            for (releaser, rel) in self.releases.iter().enumerate() {
                for (arriver, arr) in self.arrivals.iter().enumerate() {
                    if rel[round] < arr[round] {
                        return Some((round, releaser, arriver));
                    }
                }
            }
        }
        None
    }
}

/// The barrier kernel runner.
#[derive(Debug, Clone)]
pub struct BarrierKernel {
    /// Kernel configuration.
    pub config: BarrierKernelConfig,
}

impl BarrierKernel {
    /// Creates a runner.
    pub fn new(config: BarrierKernelConfig) -> Self {
        BarrierKernel { config }
    }

    /// Runs the kernel.
    pub fn run(&self, sim: &mut HmcSim) -> Result<BarrierKernelResult, HmcError> {
        assert!(self.config.threads > 0, "barrier needs at least one thread");
        let links = sim.device_config(0)?.links;
        sim.mem_write_u64(0, self.config.barrier_addr, 0)?;
        sim.mem_write_u64(0, self.config.barrier_addr + 8, 0)?;
        let mut threads: Vec<BarrierThread> = (0..self.config.threads)
            .map(|tid| BarrierThread {
                link: tid % links,
                nthreads: self.config.threads as u64,
                rounds: self.config.rounds,
                addr: self.config.barrier_addr,
                initial_backoff: self.config.initial_backoff,
                max_backoff: self.config.max_backoff,
                state: State::SendArrive { expected: 0 },
                round: 0,
                backoff: 0,
                arrivals: Vec::with_capacity(self.config.rounds),
                releases: Vec::with_capacity(self.config.rounds),
            })
            .collect();
        let driver =
            ThreadDriver { dev: 0, max_cycles: self.config.max_cycles, resilience: None };
        let metrics = driver.run(sim, &mut threads);
        Ok(BarrierKernelResult {
            metrics,
            arrivals: threads.iter().map(|t| t.arrivals.clone()).collect(),
            releases: threads.iter().map(|t| t.releases.clone()).collect(),
            final_count: sim.mem_read_u64(0, self.config.barrier_addr)?,
            final_sense: sim.mem_read_u64(0, self.config.barrier_addr + 8)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::{DeviceConfig, FaultPlan};

    fn run_with(config: BarrierKernelConfig, device: DeviceConfig) -> BarrierKernelResult {
        let mut sim = HmcSim::new(device).unwrap();
        BarrierKernel::new(config).run(&mut sim).unwrap()
    }

    #[test]
    fn all_threads_pass_every_round() {
        let result = run_with(
            BarrierKernelConfig { threads: 8, rounds: 5, ..Default::default() },
            DeviceConfig::gen2_4link_4gb(),
        );
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(result.final_count, 0);
        assert_eq!(result.final_sense, 5);
        for t in 0..8 {
            assert_eq!(result.arrivals[t].len(), 5);
            assert_eq!(result.releases[t].len(), 5);
        }
    }

    #[test]
    fn no_release_before_last_arrival() {
        let result = run_with(
            BarrierKernelConfig { threads: 16, rounds: 4, ..Default::default() },
            DeviceConfig::gen2_4link_4gb(),
        );
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(
            result.ordering_violation(),
            None,
            "a thread left a barrier round before everyone arrived"
        );
    }

    #[test]
    fn single_thread_degenerates_cleanly() {
        let result = run_with(
            BarrierKernelConfig { threads: 1, rounds: 3, ..Default::default() },
            DeviceConfig::gen2_4link_4gb(),
        );
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(result.final_sense, 3);
        assert_eq!(result.ordering_violation(), None);
    }

    #[test]
    fn survives_injected_vault_errors() {
        let mut device = DeviceConfig::gen2_4link_4gb();
        device.fault = FaultPlan::seeded(5).with_vault_errors(150_000).with_poison(80_000);
        let result = run_with(
            BarrierKernelConfig { threads: 6, rounds: 3, ..Default::default() },
            device,
        );
        assert_eq!(result.metrics.unfinished, 0, "barrier completes despite faults");
        assert_eq!(result.final_sense, 3);
        assert_eq!(result.ordering_violation(), None);
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_with(BarrierKernelConfig::default(), DeviceConfig::gen2_4link_4gb());
        let b = run_with(BarrierKernelConfig::default(), DeviceConfig::gen2_4link_4gb());
        assert_eq!(a, b);
    }
}
