//! The CMC mutex kernel — Algorithm 1 of the paper.
//!
//! Every thread executes:
//!
//! ```text
//! HMC_LOCK(ADDR)
//! if LOCK_SUCCESS then
//!     HMC_UNLOCK(ADDR)
//! else
//!     HMC_TRYLOCK(ADDR)
//!     while LOCK_FAILED do
//!         HMC_TRYLOCK(ADDR)
//!     end while
//!     HMC_UNLOCK(ADDR)
//! end if
//! ```
//!
//! All threads target the same lock structure, deliberately inducing
//! a memory hot spot to exercise the device queueing (§V-B).
//!
//! The `while LOCK_FAILED` spin is governed by a [`SpinPolicy`]:
//!
//! * [`SpinPolicy::UntilOwned`] — the literal semantics: a thread
//!   retries `hmc_trylock` (with truncated exponential backoff so the
//!   hot vault queue is not saturated by stale spin traffic) until the
//!   returned owner id is its own. Every thread holds the lock exactly
//!   once; mutual exclusion is exercised end to end.
//! * [`SpinPolicy::PaperBounded`] — the behaviour the paper's
//!   reported magnitudes imply (max 392 cycles ≈ 4 cycles/thread at
//!   99 threads, which is below the floor of a strict 99-handoff
//!   serialization at a 3-cycle round trip): the spin exits after the
//!   first `hmc_trylock` response and the final `hmc_unlock` is
//!   issued unconditionally (it no-ops in the device unless the
//!   caller owns the lock). Each thread thus issues a bounded ~3
//!   requests. See EXPERIMENTS.md for the calibration discussion.

use crate::driver::{HostThread, RunMetrics, ThreadDriver, ThreadIo, ThreadStatus};
use hmc_cmc::ops::mutex::{LOCK_CMD, TRYLOCK_CMD, UNLOCK_CMD};
use hmc_cmc::ops::ticket::{TICKET_POLL_CMD, TICKET_RELEASE_CMD, TICKET_TAKE_CMD};
use hmc_sim::{HmcSim, TrackedResponse};
use hmc_types::{HmcError, HmcResponse};

/// True when the vault answered with an error instead of executing the
/// request (an ERROR packet or nonzero `ERRSTAT`): no side effects
/// happened, so re-issuing the request verbatim is safe.
fn not_executed(rsp: &TrackedResponse) -> bool {
    matches!(rsp.rsp.head.cmd, HmcResponse::Error) || rsp.rsp.tail.errstat != 0
}

/// How the trylock spin loop terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpinPolicy {
    /// Spin (with truncated exponential backoff) until this thread
    /// owns the lock — the literal Algorithm 1.
    UntilOwned {
        /// Initial backoff after a failed trylock, in cycles.
        initial_backoff: u64,
        /// Backoff cap in cycles.
        max_backoff: u64,
    },
    /// Exit the spin after the first trylock response (the bounded
    /// per-thread behaviour matching the paper's reported numbers).
    PaperBounded,
}

impl SpinPolicy {
    /// The literal-semantics default (16..256-cycle backoff).
    pub fn until_owned() -> Self {
        SpinPolicy::UntilOwned { initial_backoff: 16, max_backoff: 256 }
    }
}

/// Which device operations implement the mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutexMechanism {
    /// The paper's CMC operations (CMC125/126/127); requires
    /// `libhmc_mutex.so` loaded on the device.
    Cmc,
    /// A mutex built from the stock Gen2 `CASEQ8` atomic: acquire =
    /// `CASEQ8(swap=tid, cmp=0)`, release = `CASEQ8(swap=0, cmp=tid)`.
    /// The ablation baseline showing CMC ops ride the same packet
    /// economics as standard atomics.
    CasEq8,
    /// The fair CMC ticket lock (`libhmc_ticket.so`). A ticket holder
    /// must be served before it may finish, so this mechanism always
    /// spins until owned regardless of the configured [`SpinPolicy`].
    Ticket,
}

/// Configuration of one mutex-kernel run.
#[derive(Debug, Clone)]
pub struct MutexKernelConfig {
    /// Number of simulated threads (the paper sweeps 2..=100).
    pub threads: usize,
    /// Address of the 16-byte lock structure.
    pub lock_addr: u64,
    /// Spin policy.
    pub spin: SpinPolicy,
    /// Lock implementation.
    pub mechanism: MutexMechanism,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for MutexKernelConfig {
    fn default() -> Self {
        MutexKernelConfig {
            threads: 2,
            lock_addr: 0x4000,
            spin: SpinPolicy::PaperBounded,
            mechanism: MutexMechanism::Cmc,
            max_cycles: 2_000_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    SendLock,
    WaitLock,
    SendTrylock,
    WaitTrylock,
    Backoff { until: u64 },
    SendUnlock,
    WaitUnlock,
}

/// One thread of Algorithm 1.
struct MutexThread {
    tid: u64,
    link: usize,
    lock_addr: u64,
    spin: SpinPolicy,
    mechanism: MutexMechanism,
    state: State,
    backoff: u64,
    acquisitions: u32,
    my_ticket: Option<u64>,
}

impl MutexThread {
    /// The wire thread id: paper threads carry a nonzero TID so an
    /// owner id of zero always means "free".
    fn wire_tid(&self) -> u64 {
        self.tid + 1
    }

    /// Issues the acquire operation for the configured mechanism.
    fn send_acquire(
        &self,
        io: &mut ThreadIo<'_>,
        op: u8,
    ) -> Result<(), HmcError> {
        match self.mechanism {
            MutexMechanism::Cmc => io
                .send_cmc(op, self.lock_addr, vec![self.wire_tid(), 0])
                .map(|_| ()),
            MutexMechanism::CasEq8 => io
                .send(
                    hmc_types::HmcRqst::CasEq8,
                    self.lock_addr,
                    vec![self.wire_tid(), 0], // swap = tid, compare = 0
                )
                .map(|_| ()),
            MutexMechanism::Ticket => {
                if op == LOCK_CMD {
                    io.send_cmc(TICKET_TAKE_CMD, self.lock_addr, vec![]).map(|_| ())
                } else {
                    let ticket = self.my_ticket.expect("ticket drawn before polling");
                    io.send_cmc(TICKET_POLL_CMD, self.lock_addr, vec![ticket, 0])
                        .map(|_| ())
                }
            }
        }
    }

    /// Issues the release operation for the configured mechanism.
    fn send_release(&self, io: &mut ThreadIo<'_>) -> Result<(), HmcError> {
        match self.mechanism {
            MutexMechanism::Cmc => io
                .send_cmc(UNLOCK_CMD, self.lock_addr, vec![self.wire_tid(), 0])
                .map(|_| ()),
            MutexMechanism::CasEq8 => io
                .send(
                    hmc_types::HmcRqst::CasEq8,
                    self.lock_addr,
                    vec![0, self.wire_tid()], // swap = 0, compare = tid
                )
                .map(|_| ()),
            MutexMechanism::Ticket => io
                .send_cmc(TICKET_RELEASE_CMD, self.lock_addr, vec![])
                .map(|_| ()),
        }
    }

}

impl HostThread for MutexThread {
    fn link(&self) -> usize {
        self.link
    }

    fn parked_until(&self) -> Option<u64> {
        match self.state {
            State::Backoff { until } => Some(until),
            _ => None,
        }
    }

    fn tick(&mut self, io: &mut ThreadIo<'_>) -> ThreadStatus {
        // A wait-state that consumes a response falls through to the
        // next send in the same tick, so a lock+unlock pair completes
        // in exactly two round trips (the paper's 6-cycle minimum).
        loop {
            match self.state {
                State::SendLock => {
                    match self.send_acquire(io, LOCK_CMD) {
                        Ok(()) => self.state = State::WaitLock,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("mutex kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitLock => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    if not_executed(&rsp) {
                        // The vault rejected the acquire: no side
                        // effects (no lock taken, no ticket drawn), so
                        // re-issuing it verbatim is safe.
                        self.state = State::SendLock;
                        continue;
                    }
                    let acquired = match self.mechanism {
                        MutexMechanism::Cmc => {
                            rsp.rsp.payload.first().copied().unwrap_or(0) == 1
                        }
                        MutexMechanism::CasEq8 => rsp.rsp.head.af,
                        MutexMechanism::Ticket => {
                            // The take executed, so the ticket MUST be
                            // kept even if the response is poisoned —
                            // abandoning a drawn ticket deadlocks every
                            // later one. (The simulator delivers
                            // DINV-flagged payloads intact.)
                            self.my_ticket =
                                Some(rsp.rsp.payload.first().copied().unwrap_or(0));
                            rsp.rsp.head.af
                        }
                    };
                    if acquired {
                        self.acquisitions += 1;
                        self.state = State::SendUnlock;
                    } else {
                        self.state = State::SendTrylock;
                    }
                }
                State::SendTrylock => {
                    match self.send_acquire(io, TRYLOCK_CMD) {
                        Ok(()) => self.state = State::WaitTrylock,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("mutex kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitTrylock => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    if not_executed(&rsp) {
                        // Rejected, not executed: retry the same poll.
                        self.state = State::SendTrylock;
                        continue;
                    }
                    let acquired = match self.mechanism {
                        MutexMechanism::Cmc => {
                            rsp.rsp.payload.first().copied().unwrap_or(0) == self.wire_tid()
                        }
                        MutexMechanism::CasEq8 | MutexMechanism::Ticket => rsp.rsp.head.af,
                    };
                    if acquired {
                        self.acquisitions += 1;
                        self.state = State::SendUnlock;
                    } else {
                        // A drawn ticket must be served (skipping
                        // would deadlock every later ticket), so the
                        // ticket mechanism always keeps spinning.
                        let spin = if self.mechanism == MutexMechanism::Ticket {
                            SpinPolicy::until_owned()
                        } else {
                            self.spin
                        };
                        match spin {
                            SpinPolicy::PaperBounded => self.state = State::SendUnlock,
                            SpinPolicy::UntilOwned { initial_backoff, max_backoff } => {
                                let wait = self.backoff.max(initial_backoff);
                                self.backoff = (wait * 2).min(max_backoff);
                                self.state = State::Backoff { until: io.cycle + wait };
                            }
                        }
                    }
                }
                State::Backoff { until } => {
                    if io.cycle < until {
                        return ThreadStatus::Running;
                    }
                    self.state = State::SendTrylock;
                }
                State::SendUnlock => {
                    match self.send_release(io) {
                        Ok(()) => self.state = State::WaitUnlock,
                        Err(HmcError::Stall) => {}
                        Err(e) => panic!("mutex kernel send failed: {e}"),
                    }
                    return ThreadStatus::Running;
                }
                State::WaitUnlock => {
                    let Some(rsp) = io.response() else { return ThreadStatus::Running };
                    if not_executed(&rsp) {
                        // A dropped release would leave the lock held
                        // forever; re-issue until it lands.
                        self.state = State::SendUnlock;
                        continue;
                    }
                    return ThreadStatus::Done;
                }
            }
        }
    }
}

/// Outcome of one mutex-kernel run.
#[derive(Debug, Clone, PartialEq)]
pub struct MutexKernelResult {
    /// Driver metrics (MIN/MAX/AVG cycle data).
    pub metrics: RunMetrics,
    /// Total lock acquisitions observed across threads.
    pub acquisitions: u32,
    /// Final lock word (must be zero: released).
    pub final_lock_word: u64,
}

/// The mutex kernel runner.
#[derive(Debug, Clone)]
pub struct MutexKernel {
    /// Kernel configuration.
    pub config: MutexKernelConfig,
}

impl MutexKernel {
    /// Creates a runner.
    pub fn new(config: MutexKernelConfig) -> Self {
        MutexKernel { config }
    }

    /// Runs Algorithm 1 on the given simulation context. The CMC
    /// mutex library must already be loaded on device 0.
    pub fn run(&self, sim: &mut HmcSim) -> Result<MutexKernelResult, HmcError> {
        let driver =
            ThreadDriver { dev: 0, max_cycles: self.config.max_cycles, resilience: None };
        self.run_with_driver(sim, &driver)
    }

    /// Runs Algorithm 1 with a caller-supplied driver — e.g. one with
    /// a resilience policy for fault-injection runs. The driver's
    /// `max_cycles` takes precedence over the kernel config's.
    pub fn run_with_driver(
        &self,
        sim: &mut HmcSim,
        driver: &ThreadDriver,
    ) -> Result<MutexKernelResult, HmcError> {
        let links = sim.device_config(0)?.links;
        // Fail fast when the needed CMC library is not loaded rather
        // than flooding the device with inactive-command errors.
        let needed: &[u8] = match self.config.mechanism {
            MutexMechanism::Cmc => &[LOCK_CMD, TRYLOCK_CMD, UNLOCK_CMD],
            MutexMechanism::Ticket => &[TICKET_TAKE_CMD, TICKET_POLL_CMD, TICKET_RELEASE_CMD],
            MutexMechanism::CasEq8 => &[],
        };
        let active: Vec<u8> = sim.cmc_registrations(0)?.iter().map(|r| r.cmd).collect();
        for &code in needed {
            if !active.contains(&code) {
                return Err(HmcError::CmcNotActive(code));
            }
        }
        // The lock structure starts in the known-free state (§V-A
        // "Initial State").
        sim.mem_write_u64(0, self.config.lock_addr, 0)?;
        sim.mem_write_u64(0, self.config.lock_addr + 8, 0)?;

        let mut threads: Vec<MutexThread> = (0..self.config.threads)
            .map(|tid| MutexThread {
                tid: tid as u64,
                link: tid % links,
                lock_addr: self.config.lock_addr,
                spin: self.config.spin,
                mechanism: self.config.mechanism,
                state: State::SendLock,
                backoff: 0,
                acquisitions: 0,
                my_ticket: None,
            })
            .collect();

        let metrics = driver.run(sim, &mut threads);
        Ok(MutexKernelResult {
            metrics,
            acquisitions: threads.iter().map(|t| t.acquisitions).sum(),
            final_lock_word: sim.mem_read_u64(0, self.config.lock_addr)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    fn sim_with_mutex(config: DeviceConfig) -> HmcSim {
        hmc_cmc::ops::register_builtin_libraries();
        let mut sim = HmcSim::new(config).unwrap();
        sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY).unwrap();
        sim
    }

    /// Regression for two fuzz-farm finds: a vault-errored (empty
    /// payload) response used to panic the ticket take, and an errored
    /// unlock was silently treated as delivered, leaving the lock held
    /// forever. Faulted requests must be retried until they land.
    #[test]
    fn all_mechanisms_survive_injected_vault_errors() {
        for mechanism in [MutexMechanism::Cmc, MutexMechanism::Ticket, MutexMechanism::CasEq8] {
            let mut config = DeviceConfig::gen2_4link_4gb();
            config.fault =
                hmc_sim::FaultPlan::seeded(31).with_vault_errors(100_000).with_poison(50_000);
            hmc_cmc::ops::register_builtin_libraries();
            let mut sim = HmcSim::new(config).unwrap();
            let library = match mechanism {
                MutexMechanism::Ticket => hmc_cmc::ops::TICKET_LIBRARY,
                _ => hmc_cmc::ops::MUTEX_LIBRARY,
            };
            sim.load_cmc_library(0, library).unwrap();
            let kernel = MutexKernel::new(MutexKernelConfig {
                threads: 5,
                mechanism,
                spin: SpinPolicy::until_owned(),
                max_cycles: 500_000,
                ..Default::default()
            });
            let result = kernel.run(&mut sim).unwrap();
            assert_eq!(result.metrics.unfinished, 0, "{mechanism:?} wedged under faults");
            assert_eq!(result.acquisitions, 5, "{mechanism:?} lost acquisitions");
            // Cmc/CasEq8 store the owner id (0 = free); Ticket stores
            // the next-ticket counter, which ends at one per thread.
            let expected_word = if mechanism == MutexMechanism::Ticket { 5 } else { 0 };
            assert_eq!(result.final_lock_word, expected_word, "{mechanism:?} lock word");
        }
    }

    #[test]
    fn two_threads_min_is_six_cycles() {
        let mut sim = sim_with_mutex(DeviceConfig::gen2_4link_4gb());
        let kernel = MutexKernel::new(MutexKernelConfig {
            threads: 2,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        // Paper Table VI: minimum cycle count is 6 (lock RT + unlock RT).
        assert_eq!(result.metrics.min_cycle(), 6);
        assert_eq!(result.final_lock_word, 0, "lock released at end");
        assert!(result.acquisitions >= 1);
    }

    #[test]
    fn until_owned_gives_every_thread_the_lock_once() {
        let mut sim = sim_with_mutex(DeviceConfig::gen2_4link_4gb());
        let kernel = MutexKernel::new(MutexKernelConfig {
            threads: 10,
            spin: SpinPolicy::until_owned(),
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(result.acquisitions, 10, "each thread acquired exactly once");
        assert_eq!(result.final_lock_word, 0);
    }

    #[test]
    fn paper_bounded_mode_is_linear_in_threads() {
        let mut sim = sim_with_mutex(DeviceConfig::gen2_4link_4gb());
        let kernel = MutexKernel::new(MutexKernelConfig {
            threads: 50,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        let max = result.metrics.max_cycle();
        assert!(max < 50 * 12, "bounded mode stays roughly linear, got {max}");
        assert!(result.metrics.min_cycle() >= 6);
    }

    #[test]
    fn four_and_eight_link_agree_at_low_thread_counts() {
        // Paper §V-C: identical cycle counts for 2..=50 threads.
        let run = |cfg: DeviceConfig| {
            let mut sim = sim_with_mutex(cfg);
            MutexKernel::new(MutexKernelConfig { threads: 8, ..Default::default() })
                .run(&mut sim)
                .unwrap()
        };
        let four = run(DeviceConfig::gen2_4link_4gb());
        let eight = run(DeviceConfig::gen2_8link_8gb());
        assert_eq!(four.metrics.min_cycle(), eight.metrics.min_cycle());
    }

    #[test]
    fn cas_mechanism_needs_no_cmc_library() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = MutexKernel::new(MutexKernelConfig {
            threads: 10,
            spin: SpinPolicy::until_owned(),
            mechanism: MutexMechanism::CasEq8,
            ..Default::default()
        });
        let result = kernel.run(&mut sim).unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(result.acquisitions, 10);
        assert_eq!(result.final_lock_word, 0);
        // With two uncontended threads the CAS lock+unlock pair is
        // also exactly two round trips.
        let mut sim2 = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let two = MutexKernel::new(MutexKernelConfig {
            threads: 2,
            mechanism: MutexMechanism::CasEq8,
            ..Default::default()
        })
        .run(&mut sim2)
        .unwrap();
        assert_eq!(two.metrics.min_cycle(), 6);
    }

    #[test]
    fn cmc_and_cas_mechanisms_cost_the_same_cycles() {
        // The ablation claim: CMC mutex ops ride the same packet
        // economics as the stock CASEQ8 atomic (2-FLIT rqst, 2-FLIT
        // rsp, one vault operation).
        let mut cmc_sim = sim_with_mutex(DeviceConfig::gen2_4link_4gb());
        let cmc = MutexKernel::new(MutexKernelConfig { threads: 16, ..Default::default() })
            .run(&mut cmc_sim)
            .unwrap();
        let mut cas_sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let cas = MutexKernel::new(MutexKernelConfig {
            threads: 16,
            mechanism: MutexMechanism::CasEq8,
            ..Default::default()
        })
        .run(&mut cas_sim)
        .unwrap();
        assert_eq!(cmc.metrics.min_cycle(), cas.metrics.min_cycle());
        assert_eq!(cmc.metrics.max_cycle(), cas.metrics.max_cycle());
    }

    #[test]
    fn until_owned_is_identical_with_idle_skip() {
        // The driver's parked-thread jump plus the simulator's
        // event-horizon engine must not perturb the workload: same
        // completion cycles, same acquisitions, same device state.
        use hmc_sim::SkipMode;
        let run = |mode: SkipMode| {
            let mut sim = sim_with_mutex(DeviceConfig::gen2_4link_4gb());
            sim.set_skip_mode(mode);
            let result = MutexKernel::new(MutexKernelConfig {
                threads: 32,
                spin: SpinPolicy::until_owned(),
                ..Default::default()
            })
            .run(&mut sim)
            .unwrap();
            (result, sim.state_fingerprint())
        };
        let (off, fp_off) = run(SkipMode::Off);
        let (on, fp_on) = run(SkipMode::On);
        assert_eq!(off.metrics.per_thread_cycles, on.metrics.per_thread_cycles);
        assert_eq!(off.metrics.total_cycles, on.metrics.total_cycles);
        assert_eq!(off.acquisitions, on.acquisitions);
        assert_eq!(fp_off, fp_on, "skip-mode runs end in identical device state");
    }

    #[test]
    fn ticket_mechanism_is_fair_and_live() {
        hmc_cmc::ops::register_builtin_libraries();
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.load_cmc_library(0, hmc_cmc::ops::TICKET_LIBRARY).unwrap();
        let threads = 12;
        let result = MutexKernel::new(MutexKernelConfig {
            threads,
            mechanism: MutexMechanism::Ticket,
            ..Default::default()
        })
        .run(&mut sim)
        .unwrap();
        assert_eq!(result.metrics.unfinished, 0);
        assert_eq!(result.acquisitions, threads as u32, "every ticket served");
        // next_ticket == now_serving == threads: the lock is clean.
        assert_eq!(sim.mem_read_u64(0, 0x4000).unwrap(), threads as u64);
        assert_eq!(sim.mem_read_u64(0, 0x4008).unwrap(), threads as u64);
    }

    #[test]
    fn ticket_mechanism_requires_its_library() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = MutexKernel::new(MutexKernelConfig {
            threads: 2,
            mechanism: MutexMechanism::Ticket,
            ..Default::default()
        });
        assert!(matches!(kernel.run(&mut sim), Err(HmcError::CmcNotActive(_))));
    }

    #[test]
    fn kernel_requires_loaded_cmc_library() {
        // Without loading the library the device returns error
        // responses; the kernel still terminates (threads observe
        // responses) but acquires nothing.
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let kernel = MutexKernel::new(MutexKernelConfig { threads: 2, ..Default::default() });
        // send_cmc fails to resolve the registration up front.
        assert!(kernel.run(&mut sim).is_err());
    }
}
