//! The simulated-thread driver.
//!
//! The paper's evaluation drives the device with N host threads, each
//! issuing HMC packets and waiting for responses (§V-B). This module
//! provides the deterministic equivalent: every simulated thread is a
//! state machine ticked once per device cycle; the driver routes
//! delivered responses back to the thread that issued the matching
//! tag and records per-thread completion cycles.

use hmc_sim::{HmcSim, TrackedResponse};
use hmc_types::{HmcError, HmcRqst, Tag};
use std::collections::{HashMap, VecDeque};

/// Whether a thread has finished its kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// The thread still has work.
    Running,
    /// The thread completed its kernel this cycle.
    Done,
}

/// Per-tick I/O window a thread uses to talk to the device.
pub struct ThreadIo<'a> {
    sim: &'a mut HmcSim,
    /// Target device index.
    pub dev: usize,
    /// The link this thread is pinned to.
    pub link: usize,
    /// Current simulation cycle.
    pub cycle: u64,
    inbox: VecDeque<TrackedResponse>,
    sent: Vec<Tag>,
}

impl<'a> ThreadIo<'a> {
    /// Takes the next response delivered to this thread, if any.
    pub fn response(&mut self) -> Option<TrackedResponse> {
        self.inbox.pop_front()
    }

    /// Sends a standard command on the thread's link. Stalls
    /// ([`HmcError::Stall`]) mean "retry next cycle".
    pub fn send(
        &mut self,
        cmd: HmcRqst,
        addr: u64,
        payload: Vec<u64>,
    ) -> Result<Option<Tag>, HmcError> {
        let tag = self.sim.send_simple(self.dev, self.link, cmd, addr, payload)?;
        if let Some(tag) = tag {
            self.sent.push(tag);
        }
        Ok(tag)
    }

    /// Sends a CMC command on the thread's link.
    pub fn send_cmc(
        &mut self,
        code: u8,
        addr: u64,
        payload: Vec<u64>,
    ) -> Result<Option<Tag>, HmcError> {
        let tag = self.sim.send_cmc(self.dev, self.link, code, addr, payload)?;
        if let Some(tag) = tag {
            self.sent.push(tag);
        }
        Ok(tag)
    }
}

/// A simulated host thread.
pub trait HostThread {
    /// The device link this thread issues on.
    fn link(&self) -> usize;

    /// Advances the thread by one cycle.
    fn tick(&mut self, io: &mut ThreadIo<'_>) -> ThreadStatus;
}

/// Completion metrics for one driver run — the values the paper
/// records per simulation (§V-B): MIN_CYCLE, MAX_CYCLE, AVG_CYCLE.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Completion cycle of each thread, indexed by thread id.
    pub per_thread_cycles: Vec<u64>,
    /// Cycles the whole run consumed.
    pub total_cycles: u64,
    /// Threads that did not finish within the cycle budget.
    pub unfinished: usize,
}

impl RunMetrics {
    /// MIN_CYCLE — fastest thread's completion cycle.
    pub fn min_cycle(&self) -> u64 {
        self.per_thread_cycles.iter().copied().min().unwrap_or(0)
    }

    /// MAX_CYCLE — slowest thread's completion cycle.
    pub fn max_cycle(&self) -> u64 {
        self.per_thread_cycles.iter().copied().max().unwrap_or(0)
    }

    /// AVG_CYCLE — mean completion cycle across threads.
    pub fn avg_cycle(&self) -> f64 {
        if self.per_thread_cycles.is_empty() {
            0.0
        } else {
            self.per_thread_cycles.iter().sum::<u64>() as f64
                / self.per_thread_cycles.len() as f64
        }
    }
}

/// Drives a set of threads against a device until every thread
/// finishes or `max_cycles` elapses.
pub struct ThreadDriver {
    /// Target device.
    pub dev: usize,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl Default for ThreadDriver {
    fn default() -> Self {
        ThreadDriver { dev: 0, max_cycles: 2_000_000 }
    }
}

impl ThreadDriver {
    /// Runs the threads to completion, routing responses by tag.
    pub fn run<T: HostThread>(&self, sim: &mut HmcSim, threads: &mut [T]) -> RunMetrics {
        let links: Vec<usize> = {
            let mut l: Vec<usize> = threads.iter().map(|t| t.link()).collect();
            l.sort_unstable();
            l.dedup();
            l
        };
        let mut owner: HashMap<(usize, u16), usize> = HashMap::new();
        let mut mailboxes: Vec<VecDeque<TrackedResponse>> =
            (0..threads.len()).map(|_| VecDeque::new()).collect();
        let mut finish: Vec<Option<u64>> = vec![None; threads.len()];

        let mut cycle = 0u64;
        while cycle < self.max_cycles {
            // Deliver responses to their issuing threads.
            for &link in &links {
                while let Some(rsp) = sim.recv(self.dev, link) {
                    let key = (link, rsp.rsp.head.tag.value());
                    if let Some(tid) = owner.remove(&key) {
                        mailboxes[tid].push_back(rsp);
                    }
                }
            }

            let mut all_done = true;
            for (tid, thread) in threads.iter_mut().enumerate() {
                if finish[tid].is_some() {
                    continue;
                }
                all_done = false;
                let mut io = ThreadIo {
                    dev: self.dev,
                    link: thread.link(),
                    cycle,
                    inbox: std::mem::take(&mut mailboxes[tid]),
                    sent: Vec::new(),
                    sim,
                };
                let status = thread.tick(&mut io);
                let ThreadIo { inbox, sent, link, .. } = io;
                mailboxes[tid] = inbox;
                for tag in sent {
                    owner.insert((link, tag.value()), tid);
                }
                if status == ThreadStatus::Done {
                    finish[tid] = Some(cycle);
                }
            }
            if all_done {
                break;
            }
            sim.clock();
            cycle += 1;
        }

        let unfinished = finish.iter().filter(|f| f.is_none()).count();
        RunMetrics {
            per_thread_cycles: finish
                .into_iter()
                .map(|f| f.unwrap_or(self.max_cycles))
                .collect(),
            total_cycles: cycle,
            unfinished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    /// A thread that writes one value then reads it back.
    struct WriteRead {
        link: usize,
        addr: u64,
        state: u8,
        tag: Option<Tag>,
        read_value: Option<u64>,
    }

    impl HostThread for WriteRead {
        fn link(&self) -> usize {
            self.link
        }

        fn tick(&mut self, io: &mut ThreadIo<'_>) -> ThreadStatus {
            match self.state {
                0 => {
                    if let Ok(tag) = io.send(HmcRqst::Wr16, self.addr, vec![self.addr, 0]) {
                        self.tag = tag;
                        self.state = 1;
                    }
                    ThreadStatus::Running
                }
                1 => {
                    if io.response().is_some() {
                        self.state = 2;
                    }
                    ThreadStatus::Running
                }
                2 => {
                    if let Ok(tag) = io.send(HmcRqst::Rd16, self.addr, vec![]) {
                        self.tag = tag;
                        self.state = 3;
                    }
                    ThreadStatus::Running
                }
                _ => match io.response() {
                    Some(rsp) => {
                        self.read_value = Some(rsp.rsp.payload[0]);
                        ThreadStatus::Done
                    }
                    None => ThreadStatus::Running,
                },
            }
        }
    }

    #[test]
    fn driver_routes_responses_to_issuing_threads() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let mut threads: Vec<WriteRead> = (0..8)
            .map(|i| WriteRead {
                link: i % 4,
                addr: 0x1000 + (i as u64) * 16,
                state: 0,
                tag: None,
                read_value: None,
            })
            .collect();
        let driver = ThreadDriver { dev: 0, max_cycles: 10_000 };
        let metrics = driver.run(&mut sim, &mut threads);
        assert_eq!(metrics.unfinished, 0);
        for t in &threads {
            assert_eq!(t.read_value, Some(t.addr), "thread read its own value");
        }
        assert!(metrics.min_cycle() >= 6, "two round trips minimum");
        assert!(metrics.max_cycle() < 100);
        assert!(metrics.avg_cycle() >= metrics.min_cycle() as f64);
        assert!(metrics.avg_cycle() <= metrics.max_cycle() as f64);
    }

    #[test]
    fn unfinished_threads_reported() {
        /// Never finishes.
        struct Stuck;
        impl HostThread for Stuck {
            fn link(&self) -> usize {
                0
            }
            fn tick(&mut self, _io: &mut ThreadIo<'_>) -> ThreadStatus {
                ThreadStatus::Running
            }
        }
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let driver = ThreadDriver { dev: 0, max_cycles: 50 };
        let metrics = driver.run(&mut sim, &mut [Stuck]);
        assert_eq!(metrics.unfinished, 1);
        assert_eq!(metrics.per_thread_cycles[0], 50);
    }
}
