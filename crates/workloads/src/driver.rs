//! The simulated-thread driver.
//!
//! The paper's evaluation drives the device with N host threads, each
//! issuing HMC packets and waiting for responses (§V-B). This module
//! provides the deterministic equivalent: every simulated thread is a
//! state machine ticked once per device cycle; the driver routes
//! delivered responses back to the thread that issued the matching
//! tag and records per-thread completion cycles.
//!
//! With a [`ResilienceConfig`] installed the driver also plays the
//! role of a fault-tolerant host controller: it records every tracked
//! request, re-sends requests whose responses time out or come back
//! with a nonzero `ERRSTAT` (bounded retries with exponential
//! backoff), reclaims tags abandoned to the device via
//! `HmcSim::abandon_tag`, redirects sends away from downed links, and
//! reports what happened per thread in [`ThreadFaultStats`]. Threads
//! stay oblivious: a request either eventually succeeds or surfaces
//! as a synthesized error response carrying
//! [`ERRSTAT_HOST_GIVEUP`](hmc_sim::fault::ERRSTAT_HOST_GIVEUP).

use hmc_sim::fault::ERRSTAT_HOST_GIVEUP;
use hmc_sim::{HmcSim, TrackedResponse};
use hmc_types::{Cub, HmcError, HmcResponse, HmcRqst, PayloadBuf, Response, RspHead, RspTail, Slid, Tag};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Whether a thread has finished its kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// The thread still has work.
    Running,
    /// The thread completed its kernel this cycle.
    Done,
}

/// The body of a tracked request, kept so the driver can replay it.
#[derive(Debug, Clone)]
enum SentKind {
    Std { cmd: HmcRqst, addr: u64, payload: Vec<u64> },
    Cmc { code: u8, addr: u64, payload: Vec<u64> },
}

/// One tagged request issued through a [`ThreadIo`] this tick.
struct SentRequest {
    /// The link the request actually went out on (differs from the
    /// thread's pinned link after a failover).
    link: usize,
    tag: Tag,
    /// Recorded body for replay; `None` when no resilience policy is
    /// installed (nothing will ever be replayed).
    kind: Option<SentKind>,
}

/// Per-tick I/O window a thread uses to talk to the device.
pub struct ThreadIo<'a> {
    sim: &'a mut HmcSim,
    /// Target device index.
    pub dev: usize,
    /// The link this thread is pinned to.
    pub link: usize,
    /// Current simulation cycle.
    pub cycle: u64,
    inbox: VecDeque<TrackedResponse>,
    sent: Vec<SentRequest>,
    /// True when the driver runs with a resilience policy: sends fail
    /// over to surviving links and request bodies are recorded.
    resilient: bool,
    link_failovers: u64,
}

impl<'a> ThreadIo<'a> {
    /// Takes the next response delivered to this thread, if any.
    pub fn response(&mut self) -> Option<TrackedResponse> {
        self.inbox.pop_front()
    }

    /// The link to issue on: the pinned link, or (under a resilience
    /// policy) the nearest surviving link when the pinned one is down.
    fn pick_link(&self) -> Result<usize, HmcError> {
        if !self.resilient || self.sim.link_is_up(self.dev, self.link) {
            return Ok(self.link);
        }
        let links = self.sim.device_config(self.dev)?.links;
        (0..links)
            .map(|i| (self.link + i) % links)
            .find(|&l| self.sim.link_is_up(self.dev, l))
            .ok_or(HmcError::LinkDown(self.link))
    }

    /// Sends a standard command on the thread's link. Stalls
    /// ([`HmcError::Stall`]) mean "retry next cycle".
    pub fn send(
        &mut self,
        cmd: HmcRqst,
        addr: u64,
        payload: Vec<u64>,
    ) -> Result<Option<Tag>, HmcError> {
        let link = self.pick_link()?;
        let kind = self
            .resilient
            .then(|| SentKind::Std { cmd, addr, payload: payload.clone() });
        let tag = self.sim.send_simple(self.dev, link, cmd, addr, payload)?;
        if link != self.link {
            self.link_failovers += 1;
        }
        if let Some(tag) = tag {
            self.sent.push(SentRequest { link, tag, kind });
        }
        Ok(tag)
    }

    /// Sends a CMC command on the thread's link.
    pub fn send_cmc(
        &mut self,
        code: u8,
        addr: u64,
        payload: Vec<u64>,
    ) -> Result<Option<Tag>, HmcError> {
        let link = self.pick_link()?;
        let kind = self
            .resilient
            .then(|| SentKind::Cmc { code, addr, payload: payload.clone() });
        let tag = self.sim.send_cmc(self.dev, link, code, addr, payload)?;
        if link != self.link {
            self.link_failovers += 1;
        }
        if let Some(tag) = tag {
            self.sent.push(SentRequest { link, tag, kind });
        }
        Ok(tag)
    }
}

/// A simulated host thread.
pub trait HostThread {
    /// The device link this thread issues on.
    fn link(&self) -> usize;

    /// Advances the thread by one cycle.
    fn tick(&mut self, io: &mut ThreadIo<'_>) -> ThreadStatus;

    /// The cycle at which this thread next needs to run, when it is
    /// idling on host-side backoff with nothing in flight. `None`
    /// (the default) means "tick me every cycle". Returning
    /// `Some(wake)` is a promise that `tick` is a pure no-op on every
    /// cycle before `wake`, which lets [`ThreadDriver`] compress the
    /// wait through the simulator's event-horizon engine
    /// ([`HmcSim::clock_until_event`]).
    fn parked_until(&self) -> Option<u64> {
        None
    }
}

/// Host-side fault-tolerance policy for [`ThreadDriver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Cycles to wait for a response before abandoning the tag and
    /// retrying. Must comfortably exceed the worst-case round trip or
    /// retries will double-execute requests that merely ran late.
    pub request_timeout: u64,
    /// Transparent re-sends per request before giving up.
    pub max_retries: u32,
    /// Base backoff: the i-th retry waits `backoff_base << i` cycles.
    pub backoff_base: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig { request_timeout: 200, max_retries: 3, backoff_base: 4 }
    }
}

/// What the driver's resilience layer did on behalf of one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadFaultStats {
    /// Requests abandoned after `request_timeout` cycles in flight.
    pub timeouts: u64,
    /// Transparent re-sends issued on the thread's behalf.
    pub retries: u64,
    /// Nonzero-`ERRSTAT` error responses intercepted by the driver.
    pub error_responses: u64,
    /// Poisoned (DINV) read responses intercepted by the driver.
    pub poisoned: u64,
    /// Sends redirected to a surviving link because the target link
    /// was down.
    pub link_failovers: u64,
    /// Requests surrendered after exhausting retries; the thread saw
    /// an error response (synthesized with `ERRSTAT_HOST_GIVEUP` when
    /// the last attempt timed out).
    pub give_ups: u64,
}

impl ThreadFaultStats {
    /// True when the resilience layer never had to intervene.
    pub fn is_clean(&self) -> bool {
        *self == ThreadFaultStats::default()
    }
}

/// Completion metrics for one driver run — the values the paper
/// records per simulation (§V-B): MIN_CYCLE, MAX_CYCLE, AVG_CYCLE.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Completion cycle of each thread, indexed by thread id.
    pub per_thread_cycles: Vec<u64>,
    /// Cycles the whole run consumed.
    pub total_cycles: u64,
    /// Threads that did not finish within the cycle budget.
    pub unfinished: usize,
    /// Per-thread fault/recovery accounting (all-zero entries when no
    /// resilience policy was installed or no faults occurred).
    pub fault_stats: Vec<ThreadFaultStats>,
}

impl RunMetrics {
    /// MIN_CYCLE — fastest thread's completion cycle.
    pub fn min_cycle(&self) -> u64 {
        self.per_thread_cycles.iter().copied().min().unwrap_or(0)
    }

    /// MAX_CYCLE — slowest thread's completion cycle.
    pub fn max_cycle(&self) -> u64 {
        self.per_thread_cycles.iter().copied().max().unwrap_or(0)
    }

    /// AVG_CYCLE — mean completion cycle across threads.
    pub fn avg_cycle(&self) -> f64 {
        if self.per_thread_cycles.is_empty() {
            0.0
        } else {
            self.per_thread_cycles.iter().sum::<u64>() as f64
                / self.per_thread_cycles.len() as f64
        }
    }

    /// Fault counters summed across all threads.
    pub fn total_faults(&self) -> ThreadFaultStats {
        let mut t = ThreadFaultStats::default();
        for s in &self.fault_stats {
            t.timeouts += s.timeouts;
            t.retries += s.retries;
            t.error_responses += s.error_responses;
            t.poisoned += s.poisoned;
            t.link_failovers += s.link_failovers;
            t.give_ups += s.give_ups;
        }
        t
    }
}

/// A tracked request awaiting its response.
struct Inflight {
    tid: usize,
    issued: u64,
    attempts: u32,
    kind: SentKind,
}

/// A request scheduled for re-send after backoff.
struct PendingRetry {
    tid: usize,
    ready: u64,
    attempts: u32,
    kind: SentKind,
}

/// Drives a set of threads against a device until every thread
/// finishes or `max_cycles` elapses.
pub struct ThreadDriver {
    /// Target device.
    pub dev: usize,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Optional host-side timeout/retry policy. `None` preserves the
    /// classic fire-and-wait behavior exactly.
    pub resilience: Option<ResilienceConfig>,
}

impl Default for ThreadDriver {
    fn default() -> Self {
        ThreadDriver { dev: 0, max_cycles: 2_000_000, resilience: None }
    }
}

impl ThreadDriver {
    /// True when a delivered response reports a fault the resilience
    /// layer should hide from the thread: an ERROR packet, a nonzero
    /// `ERRSTAT`, or poisoned (DINV) data.
    fn response_faulty(rsp: &TrackedResponse) -> bool {
        matches!(rsp.rsp.head.cmd, HmcResponse::Error)
            || rsp.rsp.tail.errstat != 0
            || rsp.rsp.tail.dinv
    }

    /// Synthesizes the error response a thread sees when the driver
    /// gives up on a request (all retries timed out).
    fn give_up_response(dev: usize, key: (usize, u16)) -> TrackedResponse {
        let (link, tag) = key;
        TrackedResponse {
            rsp: Response {
                head: RspHead {
                    cmd: HmcResponse::Error,
                    lng: 1,
                    tag: Tag::new(tag as u32).expect("tag came from a valid request"),
                    af: false,
                    slid: Slid::new((link % 8) as u8).expect("link < 8"),
                    cub: Cub::new((dev % 8) as u8).expect("dev < 8"),
                },
                payload: PayloadBuf::new(),
                tail: RspTail { errstat: ERRSTAT_HOST_GIVEUP, ..RspTail::default() },
            },
            issue_cycle: 0,
            complete_cycle: 0,
            latency: 0,
            entry_device: dev,
            entry_link: link,
            class: hmc_sim::CmdClass::Other,
            stages: Default::default(),
        }
    }

    /// Runs the threads to completion, routing responses by tag.
    pub fn run<T: HostThread>(&self, sim: &mut HmcSim, threads: &mut [T]) -> RunMetrics {
        let total_links = sim.device_config(self.dev).map(|c| c.links).unwrap_or(1);
        let mut owner: HashMap<(usize, u16), usize> = HashMap::new();
        // BTreeMap so the timeout scan is deterministic across runs.
        let mut inflight: BTreeMap<(usize, u16), Inflight> = BTreeMap::new();
        let mut retries: VecDeque<PendingRetry> = VecDeque::new();
        let mut mailboxes: Vec<VecDeque<TrackedResponse>> =
            (0..threads.len()).map(|_| VecDeque::new()).collect();
        let mut finish: Vec<Option<u64>> = vec![None; threads.len()];
        let mut fault_stats: Vec<ThreadFaultStats> =
            vec![ThreadFaultStats::default(); threads.len()];

        let mut cycle = 0u64;
        while cycle < self.max_cycles {
            // Deliver responses to their issuing threads. After a link
            // failover a response can surface on any link, so scan all
            // of them and route by the link the request entered on.
            for link in 0..total_links {
                while let Some(rsp) = sim.recv(self.dev, link) {
                    let key = (rsp.entry_link, rsp.rsp.head.tag.value());
                    let Some(tid) = owner.remove(&key) else { continue };
                    let entry = inflight.remove(&key);
                    if let (Some(cfg), Some(entry)) = (self.resilience, entry) {
                        if Self::response_faulty(&rsp) {
                            if rsp.rsp.tail.dinv {
                                fault_stats[tid].poisoned += 1;
                            } else {
                                fault_stats[tid].error_responses += 1;
                            }
                            if entry.attempts < cfg.max_retries {
                                fault_stats[tid].retries += 1;
                                retries.push_back(PendingRetry {
                                    tid,
                                    ready: cycle + (cfg.backoff_base << entry.attempts),
                                    attempts: entry.attempts + 1,
                                    kind: entry.kind,
                                });
                                continue; // hidden from the thread
                            }
                            fault_stats[tid].give_ups += 1;
                        }
                    }
                    mailboxes[tid].push_back(rsp);
                }
            }

            if let Some(cfg) = self.resilience {
                // Abandon requests that have been in flight too long.
                let expired: Vec<(usize, u16)> = inflight
                    .iter()
                    .filter(|(_, e)| cycle.saturating_sub(e.issued) >= cfg.request_timeout)
                    .map(|(&k, _)| k)
                    .collect();
                for key in expired {
                    let entry = inflight.remove(&key).expect("key from scan");
                    owner.remove(&key);
                    if let Ok(tag) = Tag::new(key.1 as u32) {
                        let _ = sim.abandon_tag(self.dev, key.0, tag);
                    }
                    fault_stats[entry.tid].timeouts += 1;
                    if entry.attempts < cfg.max_retries {
                        fault_stats[entry.tid].retries += 1;
                        retries.push_back(PendingRetry {
                            tid: entry.tid,
                            ready: cycle + (cfg.backoff_base << entry.attempts),
                            attempts: entry.attempts + 1,
                            kind: entry.kind,
                        });
                    } else {
                        fault_stats[entry.tid].give_ups += 1;
                        mailboxes[entry.tid].push_back(Self::give_up_response(self.dev, key));
                    }
                }

                // Replay due retries, falling over to a surviving link
                // when the thread's pinned link is down.
                let mut deferred = VecDeque::new();
                while let Some(r) = retries.pop_front() {
                    if r.ready > cycle {
                        deferred.push_back(r);
                        continue;
                    }
                    let pinned = threads[r.tid].link();
                    let link = (0..total_links)
                        .map(|i| (pinned + i) % total_links)
                        .find(|&l| sim.link_is_up(self.dev, l));
                    let Some(link) = link else {
                        deferred.push_back(r); // all links down: wait
                        continue;
                    };
                    let sent = match &r.kind {
                        SentKind::Std { cmd, addr, payload } => {
                            sim.send_simple(self.dev, link, *cmd, *addr, payload.clone())
                        }
                        SentKind::Cmc { code, addr, payload } => {
                            sim.send_cmc(self.dev, link, *code, *addr, payload.clone())
                        }
                    };
                    match sent {
                        Ok(Some(tag)) => {
                            if link != pinned {
                                fault_stats[r.tid].link_failovers += 1;
                            }
                            owner.insert((link, tag.value()), r.tid);
                            inflight.insert(
                                (link, tag.value()),
                                Inflight {
                                    tid: r.tid,
                                    issued: cycle,
                                    attempts: r.attempts,
                                    kind: r.kind,
                                },
                            );
                        }
                        Ok(None) => {} // posted: nothing to track
                        Err(_) => deferred.push_back(r), // stall: next cycle
                    }
                }
                retries = deferred;
            }

            let mut all_done = true;
            for (tid, thread) in threads.iter_mut().enumerate() {
                if finish[tid].is_some() {
                    continue;
                }
                all_done = false;
                let mut io = ThreadIo {
                    dev: self.dev,
                    link: thread.link(),
                    cycle,
                    inbox: std::mem::take(&mut mailboxes[tid]),
                    sent: Vec::new(),
                    resilient: self.resilience.is_some(),
                    link_failovers: 0,
                    sim,
                };
                let status = thread.tick(&mut io);
                let ThreadIo { inbox, sent, link_failovers, .. } = io;
                mailboxes[tid] = inbox;
                fault_stats[tid].link_failovers += link_failovers;
                for s in sent {
                    owner.insert((s.link, s.tag.value()), tid);
                    if let Some(kind) = s.kind {
                        inflight.insert(
                            (s.link, s.tag.value()),
                            Inflight { tid, issued: cycle, attempts: 0, kind },
                        );
                    }
                }
                if status == ThreadStatus::Done {
                    finish[tid] = Some(cycle);
                }
            }
            if all_done {
                break;
            }

            // When every unfinished thread is parked until a known
            // wake-up cycle, let the event-horizon engine compress the
            // wait instead of ticking no-op cycles one at a time. The
            // jump never crosses a driver-side event: a parked
            // thread's wake, a pending retry's replay cycle, or an
            // in-flight request's timeout due. With skipping disabled
            // `clock_until_event` executes exactly one full cycle, so
            // this degenerates to the classic per-cycle loop.
            let mut horizon = self.max_cycles;
            let mut all_parked = false;
            for (tid, thread) in threads.iter().enumerate() {
                if finish[tid].is_some() {
                    continue;
                }
                match thread.parked_until() {
                    Some(wake) if mailboxes[tid].is_empty() => {
                        horizon = horizon.min(wake);
                        all_parked = true;
                    }
                    _ => {
                        all_parked = false;
                        break;
                    }
                }
            }
            if all_parked {
                for r in &retries {
                    horizon = horizon.min(r.ready);
                }
                if let Some(cfg) = self.resilience {
                    for e in inflight.values() {
                        horizon = horizon.min(e.issued + cfg.request_timeout);
                    }
                }
            }
            if all_parked && horizon > cycle + 1 {
                cycle += sim.clock_until_event(horizon - cycle);
            } else {
                sim.clock();
                cycle += 1;
            }
        }

        let unfinished = finish.iter().filter(|f| f.is_none()).count();
        RunMetrics {
            per_thread_cycles: finish
                .into_iter()
                .map(|f| f.unwrap_or(self.max_cycles))
                .collect(),
            total_cycles: cycle,
            unfinished,
            fault_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::{DeviceConfig, FaultPlan};

    /// A thread that writes one value then reads it back.
    struct WriteRead {
        link: usize,
        addr: u64,
        state: u8,
        tag: Option<Tag>,
        read_value: Option<u64>,
    }

    impl HostThread for WriteRead {
        fn link(&self) -> usize {
            self.link
        }

        fn tick(&mut self, io: &mut ThreadIo<'_>) -> ThreadStatus {
            match self.state {
                0 => {
                    if let Ok(tag) = io.send(HmcRqst::Wr16, self.addr, vec![self.addr, 0]) {
                        self.tag = tag;
                        self.state = 1;
                    }
                    ThreadStatus::Running
                }
                1 => {
                    if io.response().is_some() {
                        self.state = 2;
                    }
                    ThreadStatus::Running
                }
                2 => {
                    if let Ok(tag) = io.send(HmcRqst::Rd16, self.addr, vec![]) {
                        self.tag = tag;
                        self.state = 3;
                    }
                    ThreadStatus::Running
                }
                _ => match io.response() {
                    Some(rsp) => {
                        self.read_value = Some(rsp.rsp.payload[0]);
                        ThreadStatus::Done
                    }
                    None => ThreadStatus::Running,
                },
            }
        }
    }

    fn write_read_threads(n: usize) -> Vec<WriteRead> {
        (0..n)
            .map(|i| WriteRead {
                link: i % 4,
                addr: 0x1000 + (i as u64) * 16,
                state: 0,
                tag: None,
                read_value: None,
            })
            .collect()
    }

    #[test]
    fn driver_routes_responses_to_issuing_threads() {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let mut threads = write_read_threads(8);
        let driver = ThreadDriver { dev: 0, max_cycles: 10_000, resilience: None };
        let metrics = driver.run(&mut sim, &mut threads);
        assert_eq!(metrics.unfinished, 0);
        for t in &threads {
            assert_eq!(t.read_value, Some(t.addr), "thread read its own value");
        }
        assert!(metrics.min_cycle() >= 6, "two round trips minimum");
        assert!(metrics.max_cycle() < 100);
        assert!(metrics.avg_cycle() >= metrics.min_cycle() as f64);
        assert!(metrics.avg_cycle() <= metrics.max_cycle() as f64);
        assert!(metrics.total_faults().is_clean());
    }

    #[test]
    fn unfinished_threads_reported() {
        /// Never finishes.
        struct Stuck;
        impl HostThread for Stuck {
            fn link(&self) -> usize {
                0
            }
            fn tick(&mut self, _io: &mut ThreadIo<'_>) -> ThreadStatus {
                ThreadStatus::Running
            }
        }
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let driver = ThreadDriver { dev: 0, max_cycles: 50, resilience: None };
        let metrics = driver.run(&mut sim, &mut [Stuck]);
        assert_eq!(metrics.unfinished, 1);
        assert_eq!(metrics.per_thread_cycles[0], 50);
    }

    #[test]
    fn resilience_is_invisible_without_faults() {
        let baseline = {
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            let mut threads = write_read_threads(8);
            ThreadDriver { dev: 0, max_cycles: 10_000, resilience: None }
                .run(&mut sim, &mut threads)
        };
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        let mut threads = write_read_threads(8);
        let resilient = ThreadDriver {
            dev: 0,
            max_cycles: 10_000,
            resilience: Some(ResilienceConfig::default()),
        }
        .run(&mut sim, &mut threads);
        assert_eq!(baseline.per_thread_cycles, resilient.per_thread_cycles);
        assert_eq!(baseline.total_cycles, resilient.total_cycles);
        assert!(resilient.total_faults().is_clean());
    }

    #[test]
    fn vault_errors_are_retried_transparently() {
        // Every vault access errors with probability ~30%; with six
        // retries per request the WriteRead threads should still all
        // finish with correct data, and the driver should report the
        // error responses it absorbed.
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.fault = FaultPlan::seeded(7).with_vault_errors(300_000);
        let mut sim = HmcSim::new(config).unwrap();
        let mut threads = write_read_threads(8);
        let driver = ThreadDriver {
            dev: 0,
            max_cycles: 50_000,
            resilience: Some(ResilienceConfig {
                request_timeout: 500,
                max_retries: 6,
                backoff_base: 2,
            }),
        };
        let metrics = driver.run(&mut sim, &mut threads);
        assert_eq!(metrics.unfinished, 0, "all threads finish despite vault faults");
        for t in &threads {
            assert_eq!(t.read_value, Some(t.addr));
        }
        let totals = metrics.total_faults();
        assert!(totals.error_responses > 0, "faults were actually injected");
        assert_eq!(totals.retries, totals.error_responses + totals.timeouts);
        assert_eq!(totals.give_ups, 0);
    }

    #[test]
    fn give_up_response_carries_host_errstat() {
        let rsp = ThreadDriver::give_up_response(0, (2, 17));
        assert!(matches!(rsp.rsp.head.cmd, HmcResponse::Error));
        assert_eq!(rsp.rsp.tail.errstat, ERRSTAT_HOST_GIVEUP);
        assert_eq!(rsp.rsp.head.tag.value(), 17);
        assert_eq!(rsp.entry_link, 2);
    }
}
