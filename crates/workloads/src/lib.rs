//! # hmc-workloads
//!
//! Host-side workload drivers for hmcsim-rs: deterministic simulated
//! threads that issue HMC packets over the device links, plus the
//! kernels evaluated in the HMC-Sim papers — the CMC mutex kernel
//! (Algorithm 1), STREAM Triad, HPCC RandomAccess (GUPS) and a
//! BFS check-and-update kernel using Gen2 CAS offload.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod kernels;
pub mod runtime;
pub mod scenario;
pub mod tracefile;

pub use driver::{ResilienceConfig, RunMetrics, ThreadDriver, ThreadFaultStats};
pub use kernels::barrier::{BarrierKernel, BarrierKernelConfig, BarrierKernelResult};
pub use kernels::fabric::{
    FabricBfsConfig, FabricBfsKernel, FabricBfsResult, FabricGupsConfig, FabricGupsKernel,
    FabricGupsResult,
};
pub use kernels::mutex::{MutexKernel, MutexKernelConfig, MutexMechanism, SpinPolicy};
pub use runtime::HostRuntime;
pub use scenario::KernelDescriptor;
