//! The host-side user API the paper assumes (§V-A, "User API"): a
//! synchronous veneer over the packet interface with
//! pthread-flavoured lock calls, standing in for the "user API and/or
//! compiler intrinsic" that would induce CMC operations from
//! high-level code.
//!
//! A [`HostRuntime`] represents one unit of parallelism (a thread id
//! pinned to a link); its methods issue the packet, clock the
//! simulation until the response arrives, and return the decoded
//! outcome — blocking semantics, like calling `pthread_mutex_lock`.
//!
//! ```
//! use hmc_sim::{DeviceConfig, HmcSim};
//! use hmc_workloads::runtime::HostRuntime;
//!
//! hmc_cmc::ops::register_builtin_libraries();
//! let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
//! sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY).unwrap();
//!
//! let rt = HostRuntime::new(0, 0, 1);
//! rt.mutex_init(&mut sim, 0x4000).unwrap();
//! rt.mutex_lock(&mut sim, 0x4000).unwrap();   // blocking, like pthread_mutex_lock
//! assert!(rt.mutex_unlock(&mut sim, 0x4000).unwrap());
//! ```

use hmc_cmc::ops::mutex::{LOCK_CMD, TRYLOCK_CMD, UNLOCK_CMD};
use hmc_sim::{HmcSim, TrackedResponse};
use hmc_types::{HmcError, HmcRqst};

/// One host unit of parallelism: a thread/task id pinned to a device
/// link.
#[derive(Debug, Clone, Copy)]
pub struct HostRuntime {
    /// Target device.
    pub dev: usize,
    /// The link this unit issues on.
    pub link: usize,
    /// The (nonzero) thread/task id carried in CMC lock payloads.
    pub tid: u64,
}

/// Cycles after which a blocking runtime call gives up.
const BLOCK_BUDGET: u64 = 1_000_000;

impl HostRuntime {
    /// Creates a runtime handle. `tid` must be nonzero (a zero owner
    /// id means "free" in the lock structure).
    pub fn new(dev: usize, link: usize, tid: u64) -> Self {
        assert!(tid != 0, "thread id 0 is reserved for the free state");
        HostRuntime { dev, link, tid }
    }

    /// Issues one request synchronously, retrying on stall, and
    /// clocks until its response arrives.
    fn call(
        &self,
        sim: &mut HmcSim,
        cmd: HmcRqst,
        addr: u64,
        payload: Vec<u64>,
    ) -> Result<TrackedResponse, HmcError> {
        let tag = loop {
            match sim.send_simple(self.dev, self.link, cmd, addr, payload.clone()) {
                Ok(Some(tag)) => break tag,
                Ok(None) => {
                    return Err(HmcError::MalformedPacket(
                        "synchronous call on a posted command".into(),
                    ))
                }
                Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {
                    sim.clock();
                }
                Err(e) => return Err(e),
            }
        };
        sim.run_until_response(self.dev, self.link, tag, BLOCK_BUDGET)
    }

    /// Issues one CMC request synchronously.
    fn call_cmc(
        &self,
        sim: &mut HmcSim,
        code: u8,
        addr: u64,
        payload: Vec<u64>,
    ) -> Result<TrackedResponse, HmcError> {
        let tag = loop {
            match sim.send_cmc(self.dev, self.link, code, addr, payload.clone()) {
                Ok(Some(tag)) => break tag,
                Ok(None) => {
                    return Err(HmcError::MalformedPacket(
                        "synchronous call on a posted CMC".into(),
                    ))
                }
                Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {
                    sim.clock();
                }
                Err(e) => return Err(e),
            }
        };
        sim.run_until_response(self.dev, self.link, tag, BLOCK_BUDGET)
    }

    // ------------------------------------------------------------------
    // plain memory
    // ------------------------------------------------------------------

    /// Reads the 8-byte word at `addr` (16-byte aligned block fetch).
    pub fn read_u64(&self, sim: &mut HmcSim, addr: u64) -> Result<u64, HmcError> {
        let block = addr & !15;
        let rsp = self.call(sim, HmcRqst::Rd16, block, vec![])?;
        Ok(rsp.rsp.payload[((addr & 15) / 8) as usize])
    }

    /// Writes a 16-byte block `[lo, hi]` at a 16-byte aligned `addr`.
    pub fn write_block(&self, sim: &mut HmcSim, addr: u64, lo: u64, hi: u64) -> Result<(), HmcError> {
        if !addr.is_multiple_of(16) {
            return Err(HmcError::UnalignedAddress { addr, align: 16 });
        }
        self.call(sim, HmcRqst::Wr16, addr, vec![lo, hi]).map(|_| ())
    }

    /// Atomically increments the 8-byte counter at `addr`.
    pub fn fetch_inc(&self, sim: &mut HmcSim, addr: u64) -> Result<(), HmcError> {
        self.call(sim, HmcRqst::Inc8, addr, vec![]).map(|_| ())
    }

    // ------------------------------------------------------------------
    // the pthread-flavoured CMC mutex API (paper §V-A)
    // ------------------------------------------------------------------

    /// Initializes the 16-byte lock structure at `addr` to the known
    /// free state (§V-A "Initial State").
    pub fn mutex_init(&self, sim: &mut HmcSim, addr: u64) -> Result<(), HmcError> {
        self.write_block(sim, addr, 0, 0)
    }

    /// `pthread_mutex_trylock` analogue: one `hmc_trylock`; returns
    /// whether this unit now owns the lock.
    pub fn mutex_try_lock(&self, sim: &mut HmcSim, addr: u64) -> Result<bool, HmcError> {
        let rsp = self.call_cmc(sim, TRYLOCK_CMD, addr, vec![self.tid, 0])?;
        Ok(rsp.rsp.payload[0] == self.tid)
    }

    /// `pthread_mutex_lock` analogue: `hmc_lock`, then `hmc_trylock`
    /// with truncated exponential backoff until owned (Algorithm 1's
    /// spin, blocking the caller).
    pub fn mutex_lock(&self, sim: &mut HmcSim, addr: u64) -> Result<(), HmcError> {
        let rsp = self.call_cmc(sim, LOCK_CMD, addr, vec![self.tid, 0])?;
        if rsp.rsp.payload[0] == 1 {
            return Ok(());
        }
        let mut backoff = 4u64;
        let deadline = sim.cycle() + BLOCK_BUDGET;
        loop {
            if self.mutex_try_lock(sim, addr)? {
                return Ok(());
            }
            if sim.cycle() > deadline {
                return Err(HmcError::Stall);
            }
            sim.clock_n(backoff);
            backoff = (backoff * 2).min(256);
        }
    }

    /// `pthread_mutex_unlock` analogue: returns whether the unlock
    /// took effect (false when this unit does not own the lock).
    pub fn mutex_unlock(&self, sim: &mut HmcSim, addr: u64) -> Result<bool, HmcError> {
        let rsp = self.call_cmc(sim, UNLOCK_CMD, addr, vec![self.tid, 0])?;
        Ok(rsp.rsp.payload[0] == 1)
    }

    /// Runs `body` under the lock (the guard pattern).
    pub fn with_mutex<T>(
        &self,
        sim: &mut HmcSim,
        addr: u64,
        body: impl FnOnce(&mut HmcSim) -> Result<T, HmcError>,
    ) -> Result<T, HmcError> {
        self.mutex_lock(sim, addr)?;
        let result = body(sim);
        let released = self.mutex_unlock(sim, addr)?;
        debug_assert!(released, "guard held the lock");
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    fn sim() -> HmcSim {
        hmc_cmc::ops::register_builtin_libraries();
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        sim.load_cmc_library(0, hmc_cmc::ops::MUTEX_LIBRARY).unwrap();
        sim
    }

    #[test]
    fn lock_unlock_round_trip() {
        let mut sim = sim();
        let rt = HostRuntime::new(0, 0, 7);
        rt.mutex_init(&mut sim, 0x4000).unwrap();
        rt.mutex_lock(&mut sim, 0x4000).unwrap();
        assert_eq!(sim.mem_read_u64(0, 0x4000).unwrap(), 1);
        assert_eq!(sim.mem_read_u64(0, 0x4008).unwrap(), 7);
        assert!(rt.mutex_unlock(&mut sim, 0x4000).unwrap());
        assert_eq!(sim.mem_read_u64(0, 0x4000).unwrap(), 0);
    }

    #[test]
    fn try_lock_respects_a_holder() {
        let mut sim = sim();
        let a = HostRuntime::new(0, 0, 1);
        let b = HostRuntime::new(0, 1, 2);
        a.mutex_init(&mut sim, 0x4000).unwrap();
        assert!(a.mutex_try_lock(&mut sim, 0x4000).unwrap());
        assert!(!b.mutex_try_lock(&mut sim, 0x4000).unwrap(), "b cannot steal");
        assert!(!b.mutex_unlock(&mut sim, 0x4000).unwrap(), "b cannot unlock");
        assert!(a.mutex_unlock(&mut sim, 0x4000).unwrap());
        assert!(b.mutex_try_lock(&mut sim, 0x4000).unwrap(), "b acquires after release");
    }

    #[test]
    fn blocking_lock_waits_for_release() {
        // Sequential interleaving: a holds, b's lock() spins; since
        // our runtime is synchronous we emulate the schedule by hand:
        // b uses try_lock until a releases.
        let mut sim = sim();
        let a = HostRuntime::new(0, 0, 1);
        let b = HostRuntime::new(0, 1, 2);
        a.mutex_init(&mut sim, 0x4000).unwrap();
        a.mutex_lock(&mut sim, 0x4000).unwrap();
        assert!(!b.mutex_try_lock(&mut sim, 0x4000).unwrap());
        a.mutex_unlock(&mut sim, 0x4000).unwrap();
        b.mutex_lock(&mut sim, 0x4000).unwrap();
        assert_eq!(sim.mem_read_u64(0, 0x4008).unwrap(), 2);
    }

    #[test]
    fn guard_pattern_releases_on_success() {
        let mut sim = sim();
        let rt = HostRuntime::new(0, 0, 3);
        rt.mutex_init(&mut sim, 0x4000).unwrap();
        let value = rt
            .with_mutex(&mut sim, 0x4000, |sim| {
                sim.mem_write_u64(0, 0x5000, 99)?;
                Ok(123)
            })
            .unwrap();
        assert_eq!(value, 123);
        assert_eq!(sim.mem_read_u64(0, 0x4000).unwrap(), 0, "released");
        assert_eq!(sim.mem_read_u64(0, 0x5000).unwrap(), 99);
    }

    #[test]
    fn plain_memory_helpers() {
        let mut sim = sim();
        let rt = HostRuntime::new(0, 2, 5);
        rt.write_block(&mut sim, 0x6000, 0xAB, 0xCD).unwrap();
        assert_eq!(rt.read_u64(&mut sim, 0x6000).unwrap(), 0xAB);
        assert_eq!(rt.read_u64(&mut sim, 0x6008).unwrap(), 0xCD);
        rt.fetch_inc(&mut sim, 0x6000).unwrap();
        assert_eq!(rt.read_u64(&mut sim, 0x6000).unwrap(), 0xAC);
        assert!(rt.write_block(&mut sim, 0x6004, 0, 0).is_err(), "alignment");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn tid_zero_rejected() {
        let _ = HostRuntime::new(0, 0, 0);
    }
}
