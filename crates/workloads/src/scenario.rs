//! Kernel selection by descriptor — the workload axis of the scenario
//! fuzz farm.
//!
//! A [`KernelDescriptor`] is a small, serializable value naming one
//! workload kernel and its parameters. The fuzzer's scenario generator
//! samples descriptors, its differential runner executes them through
//! [`KernelDescriptor::run`], and failing scenarios persist the
//! descriptor as JSON inside the reproducer file — so a descriptor
//! must round-trip exactly and reject unknown fields on the way back
//! in (via [`ObjReader`]).
//!
//! `run` returns a *workload digest*: an FNV-1a fold of the kernel's
//! observable outcome (final memory words, completion metrics,
//! response payloads). Two runs of the same scenario under different
//! engine configurations must produce the same digest; it complements
//! the device-side [`hmc_sim::OracleDigest`] by also covering
//! host-visible results.

use crate::kernels::barrier::{BarrierKernel, BarrierKernelConfig};
use crate::kernels::counter::{CounterKernel, CounterKernelConfig, CounterMode};
use crate::kernels::gups::{GupsConfig, GupsKernel, GupsMode};
use crate::kernels::mutex::{MutexKernel, MutexKernelConfig, MutexMechanism, SpinPolicy};
use crate::kernels::triad::{TriadConfig, TriadKernel};
use hmc_sim::jsonv::obj;
use hmc_sim::{FaultRng, Fnv, HmcSim, Json, JsonError, ObjReader};
use hmc_types::{HmcError, HmcRqst};

/// Ceiling on raw-ops stream length (keeps reproducers and fuzz runs
/// bounded).
pub const MAX_RAW_OPS: u32 = 4096;

/// The Gen2 request sizes a Triad chunk may use.
pub const TRIAD_CHUNK_SIZES: [u32; 9] = [16, 32, 48, 64, 80, 96, 112, 128, 256];

/// A serializable selection of one workload kernel plus parameters.
///
/// Every variant is deliberately small-integer-parameterized so the
/// shrinker can walk each field toward a minimal reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelDescriptor {
    /// A raw request stream driven directly over the links (no
    /// host-thread model): `ops` operations derived deterministically
    /// from `seed`, an idle `gap` after each, then `drain` cycles.
    /// The only kernel that tolerates scheduled link outages.
    RawOps {
        /// Number of operations.
        ops: u32,
        /// Stream seed.
        seed: u64,
        /// Idle cycles inserted after every operation.
        gap: u32,
        /// Drain cycles after the last operation.
        drain: u32,
    },
    /// Shared-counter increments ([`CounterKernel`]).
    Counter {
        /// Thread count.
        threads: u32,
        /// Increments per thread.
        increments: u32,
        /// Use the cache-style read-modify-write baseline instead of
        /// `INC8`.
        cache_rmw: bool,
    },
    /// HPCC RandomAccess ([`GupsKernel`]).
    Gups {
        /// log2 of the table size in entries.
        entries_log2: u32,
        /// Updates to perform.
        updates: u32,
        /// Outstanding-update window.
        window: u32,
        /// Use RD16+XOR+WR16 instead of the `XOR16` atomic.
        rmw: bool,
        /// Update-stream seed.
        seed: u64,
    },
    /// STREAM Triad ([`TriadKernel`]).
    Triad {
        /// Elements per array.
        elements: u32,
        /// Bytes per request (16-byte multiple, 16..=256).
        chunk_bytes: u32,
        /// Outstanding-chunk window.
        window: u32,
        /// Posted writes for the `a` stream.
        posted_writes: bool,
    },
    /// The paper's mutex kernel ([`MutexKernel`]).
    Mutex {
        /// Thread count.
        threads: u32,
        /// Lock mechanism.
        mechanism: MutexMechanism,
    },
    /// Centralized CASEQ8 barrier ([`BarrierKernel`]).
    Barrier {
        /// Thread count.
        threads: u32,
        /// Barrier rounds.
        rounds: u32,
    },
}

impl KernelDescriptor {
    /// Short stable name (used in labels and corpus file names).
    pub fn name(&self) -> &'static str {
        match self {
            KernelDescriptor::RawOps { .. } => "raw_ops",
            KernelDescriptor::Counter { .. } => "counter",
            KernelDescriptor::Gups { .. } => "gups",
            KernelDescriptor::Triad { .. } => "triad",
            KernelDescriptor::Mutex { .. } => "mutex",
            KernelDescriptor::Barrier { .. } => "barrier",
        }
    }

    /// Whether the kernel survives scheduled link outages. The
    /// thread-driver kernels treat `LinkDown` on send as a harness
    /// bug, so fault plans with a link schedule may only be paired
    /// with kernels that answer `true`.
    pub fn tolerates_link_outage(&self) -> bool {
        matches!(self, KernelDescriptor::RawOps { .. })
    }

    /// The CMC library the kernel needs loaded, if any.
    pub fn cmc_library(&self) -> Option<&'static str> {
        match self {
            KernelDescriptor::Mutex { mechanism: MutexMechanism::Cmc, .. } => {
                Some(hmc_cmc::ops::MUTEX_LIBRARY)
            }
            KernelDescriptor::Mutex { mechanism: MutexMechanism::Ticket, .. } => {
                Some(hmc_cmc::ops::TICKET_LIBRARY)
            }
            _ => None,
        }
    }

    /// Structural sanity: rejects parameterizations no generator
    /// produces and no kernel accepts (also applied when loading a
    /// corpus file, so a hand-edited reproducer fails loudly).
    pub fn validate(&self) -> Result<(), JsonError> {
        let fail = |msg: String| Err(JsonError { message: format!("kernel: {msg}") });
        match *self {
            KernelDescriptor::RawOps { ops, .. } => {
                if ops == 0 || ops > MAX_RAW_OPS {
                    return fail(format!("raw_ops ops must be 1..={MAX_RAW_OPS}, got {ops}"));
                }
            }
            KernelDescriptor::Counter { threads, .. } => {
                if threads == 0 || threads > 256 {
                    return fail(format!("counter threads must be 1..=256, got {threads}"));
                }
            }
            KernelDescriptor::Gups { entries_log2, window, .. } => {
                if !(4..=20).contains(&entries_log2) {
                    return fail(format!(
                        "gups entries_log2 must be 4..=20, got {entries_log2}"
                    ));
                }
                if window == 0 {
                    return fail("gups window must be nonzero".into());
                }
            }
            KernelDescriptor::Triad { elements, chunk_bytes, window, .. } => {
                if elements == 0 || elements > 1 << 20 {
                    return fail(format!("triad elements must be 1..=2^20, got {elements}"));
                }
                if !TRIAD_CHUNK_SIZES.contains(&chunk_bytes) {
                    return fail(format!(
                        "triad chunk_bytes must be a Gen2 request size \
                         (16..=128 in 16-byte steps, or 256), got {chunk_bytes}"
                    ));
                }
                if !(elements as u64 * 8).is_multiple_of(chunk_bytes as u64) {
                    return fail(format!(
                        "triad array bytes ({} elements x 8) must be a multiple of \
                         chunk_bytes {chunk_bytes}",
                        elements
                    ));
                }
                if window == 0 {
                    return fail("triad window must be nonzero".into());
                }
            }
            KernelDescriptor::Mutex { threads, .. } => {
                if threads == 0 || threads > 256 {
                    return fail(format!("mutex threads must be 1..=256, got {threads}"));
                }
            }
            KernelDescriptor::Barrier { threads, rounds } => {
                if threads == 0 || threads > 256 {
                    return fail(format!("barrier threads must be 1..=256, got {threads}"));
                }
                if rounds > 64 {
                    return fail(format!("barrier rounds must be <= 64, got {rounds}"));
                }
            }
        }
        Ok(())
    }

    /// Runs the kernel on `sim` (loading any CMC library it needs) and
    /// returns the workload digest.
    pub fn run(&self, sim: &mut HmcSim) -> Result<u64, HmcError> {
        if let Some(library) = self.cmc_library() {
            // Idempotent; without it the simulated dlopen fails for
            // processes that never touched the CMC runtime.
            hmc_cmc::ops::register_builtin_libraries();
            sim.load_cmc_library(0, library)?;
        }
        let mut fnv = Fnv::new();
        match *self {
            KernelDescriptor::RawOps { ops, seed, gap, drain } => {
                run_raw_ops(sim, ops, seed, gap, drain, &mut fnv)?;
            }
            KernelDescriptor::Counter { threads, increments, cache_rmw } => {
                let result = CounterKernel::new(CounterKernelConfig {
                    threads: threads as usize,
                    increments_per_thread: increments as usize,
                    mode: if cache_rmw { CounterMode::CacheRmw } else { CounterMode::HmcInc8 },
                    ..Default::default()
                })
                .run(sim)?;
                fnv.u64(result.final_value);
                fnv.u64(result.requested);
                fnv.u64(result.link_flits);
                fold_metrics(&mut fnv, &result.metrics);
            }
            KernelDescriptor::Gups { entries_log2, updates, window, rmw, seed } => {
                let result = GupsKernel::new(GupsConfig {
                    table_entries: 1usize << entries_log2,
                    updates: updates as usize,
                    window: window as usize,
                    mode: if rmw { GupsMode::ReadModifyWrite } else { GupsMode::Xor16Amo },
                    seed,
                    ..Default::default()
                })
                .run(sim)?;
                fnv.u64(result.cycles);
                fnv.u64(result.updates);
                fnv.u64(result.link_flits);
                fnv.u64(result.errors as u64);
            }
            KernelDescriptor::Triad { elements, chunk_bytes, window, posted_writes } => {
                let result = TriadKernel::new(TriadConfig {
                    elements: elements as usize,
                    chunk_bytes: chunk_bytes as usize,
                    window: window as usize,
                    posted_writes,
                    // Fault plans are a standing scenario axis; the
                    // resilience layer (deterministic retries) is what
                    // lets Triad digest injected error responses.
                    resilience: Some(crate::driver::ResilienceConfig::default()),
                    ..Default::default()
                })
                .run(sim)?;
                fnv.u64(result.cycles);
                fnv.u64(result.data_bytes);
                fnv.u64(result.link_flits);
                fnv.u64(result.errors as u64);
                fnv.u64(result.fault_retries);
                fnv.u64(result.timeouts);
            }
            KernelDescriptor::Mutex { threads, mechanism } => {
                let result = MutexKernel::new(MutexKernelConfig {
                    threads: threads as usize,
                    mechanism,
                    spin: SpinPolicy::until_owned(),
                    // Spin kernels can livelock for the full budget
                    // under heavy fault injection; a tight bound keeps
                    // wall-clock per scenario predictable (unfinished
                    // work still lands in the digest).
                    max_cycles: 250_000,
                    ..Default::default()
                })
                .run(sim)?;
                fnv.u64(result.acquisitions as u64);
                fnv.u64(result.final_lock_word);
                fold_metrics(&mut fnv, &result.metrics);
            }
            KernelDescriptor::Barrier { threads, rounds } => {
                let result = BarrierKernel::new(BarrierKernelConfig {
                    threads: threads as usize,
                    rounds: rounds as usize,
                    // Same bound as the mutex arm: spinners must not
                    // burn the full default budget under fault plans.
                    max_cycles: 250_000,
                    ..Default::default()
                })
                .run(sim)?;
                fnv.u64(result.final_count);
                fnv.u64(result.final_sense);
                for per_thread in result.arrivals.iter().chain(result.releases.iter()) {
                    for &cycle in per_thread {
                        fnv.u64(cycle);
                    }
                }
                fold_metrics(&mut fnv, &result.metrics);
            }
        }
        Ok(fnv.finish())
    }

    /// Serializes to a tagged JSON object.
    pub fn to_json(&self) -> Json {
        let tag = ("kernel", Json::Str(self.name().to_string()));
        match *self {
            KernelDescriptor::RawOps { ops, seed, gap, drain } => obj(vec![
                tag,
                ("ops", Json::Int(ops as i128)),
                ("seed", Json::Int(seed as i128)),
                ("gap", Json::Int(gap as i128)),
                ("drain", Json::Int(drain as i128)),
            ]),
            KernelDescriptor::Counter { threads, increments, cache_rmw } => obj(vec![
                tag,
                ("threads", Json::Int(threads as i128)),
                ("increments", Json::Int(increments as i128)),
                ("cache_rmw", Json::Bool(cache_rmw)),
            ]),
            KernelDescriptor::Gups { entries_log2, updates, window, rmw, seed } => obj(vec![
                tag,
                ("entries_log2", Json::Int(entries_log2 as i128)),
                ("updates", Json::Int(updates as i128)),
                ("window", Json::Int(window as i128)),
                ("rmw", Json::Bool(rmw)),
                ("seed", Json::Int(seed as i128)),
            ]),
            KernelDescriptor::Triad { elements, chunk_bytes, window, posted_writes } => obj(vec![
                tag,
                ("elements", Json::Int(elements as i128)),
                ("chunk_bytes", Json::Int(chunk_bytes as i128)),
                ("window", Json::Int(window as i128)),
                ("posted_writes", Json::Bool(posted_writes)),
            ]),
            KernelDescriptor::Mutex { threads, mechanism } => obj(vec![
                tag,
                ("threads", Json::Int(threads as i128)),
                (
                    "mechanism",
                    Json::Str(
                        match mechanism {
                            MutexMechanism::Cmc => "cmc",
                            MutexMechanism::CasEq8 => "caseq8",
                            MutexMechanism::Ticket => "ticket",
                        }
                        .to_string(),
                    ),
                ),
            ]),
            KernelDescriptor::Barrier { threads, rounds } => obj(vec![
                tag,
                ("threads", Json::Int(threads as i128)),
                ("rounds", Json::Int(rounds as i128)),
            ]),
        }
    }

    /// Deserializes from [`to_json`](Self::to_json) output, rejecting
    /// unknown kernels, unknown fields and invalid parameterizations.
    pub fn from_json(value: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new("kernel", value)?;
        let kind = r.str("kernel")?.to_string();
        let descriptor = match kind.as_str() {
            "raw_ops" => KernelDescriptor::RawOps {
                ops: r.u32("ops")?,
                seed: r.u64("seed")?,
                gap: r.u32("gap")?,
                drain: r.u32("drain")?,
            },
            "counter" => KernelDescriptor::Counter {
                threads: r.u32("threads")?,
                increments: r.u32("increments")?,
                cache_rmw: r.bool("cache_rmw")?,
            },
            "gups" => KernelDescriptor::Gups {
                entries_log2: r.u32("entries_log2")?,
                updates: r.u32("updates")?,
                window: r.u32("window")?,
                rmw: r.bool("rmw")?,
                seed: r.u64("seed")?,
            },
            "triad" => KernelDescriptor::Triad {
                elements: r.u32("elements")?,
                chunk_bytes: r.u32("chunk_bytes")?,
                window: r.u32("window")?,
                posted_writes: r.bool("posted_writes")?,
            },
            "mutex" => KernelDescriptor::Mutex {
                threads: r.u32("threads")?,
                mechanism: match r.str("mechanism")? {
                    "cmc" => MutexMechanism::Cmc,
                    "caseq8" => MutexMechanism::CasEq8,
                    "ticket" => MutexMechanism::Ticket,
                    other => {
                        return Err(JsonError {
                            message: format!("kernel: unknown mutex mechanism `{other}`"),
                        })
                    }
                },
            },
            "barrier" => KernelDescriptor::Barrier {
                threads: r.u32("threads")?,
                rounds: r.u32("rounds")?,
            },
            other => {
                return Err(JsonError { message: format!("kernel: unknown kernel `{other}`") })
            }
        };
        r.finish()?;
        descriptor.validate()?;
        Ok(descriptor)
    }
}

fn fold_metrics(fnv: &mut Fnv, metrics: &crate::driver::RunMetrics) {
    fnv.u64(metrics.total_cycles);
    fnv.u64(metrics.unfinished as u64);
    for &cycle in &metrics.per_thread_cycles {
        fnv.u64(cycle);
    }
}

/// Drives a deterministic raw request stream straight over the links,
/// tolerating back-pressure and scheduled link outages, and folds
/// every received response into the digest.
fn run_raw_ops(
    sim: &mut HmcSim,
    ops: u32,
    seed: u64,
    gap: u32,
    drain: u32,
    fnv: &mut Fnv,
) -> Result<(), HmcError> {
    let links = sim.device_config(0)?.links;
    let mut rng = FaultRng::new(seed);
    let drain_links = |sim: &mut HmcSim, fnv: &mut Fnv| {
        for link in 0..links {
            while let Some(rsp) = sim.recv(0, link) {
                fnv.u64(rsp.rsp.head.af as u64);
                fnv.u64(rsp.rsp.tail.errstat as u64);
                fnv.u64(rsp.rsp.tail.dinv as u64);
                for &word in rsp.rsp.payload.as_slice() {
                    fnv.u64(word);
                }
            }
        }
    };
    for i in 0..ops {
        let link = (i as usize) % links;
        let slot = rng.below(2048);
        let addr = slot * 16;
        let value = rng.next_u64();
        let sent = match rng.below(6) {
            0 => sim.send_simple(0, link, HmcRqst::Rd16, addr, vec![]),
            1 => sim.send_simple(0, link, HmcRqst::Wr16, addr, vec![value, !value]),
            2 => sim.send_simple(0, link, HmcRqst::PWr16, addr, vec![value, value]),
            3 => sim.send_simple(0, link, HmcRqst::Xor16, addr, vec![value, 0]),
            4 => sim.send_simple(0, link, HmcRqst::CasEq8, addr, vec![value, 0]),
            _ => sim.send_simple(0, link, HmcRqst::P2Add8, addr, vec![1, 1]),
        };
        match sent {
            // Back-pressure and scheduled outages are deterministic
            // workload behaviour, not harness errors.
            Ok(_)
            | Err(HmcError::Stall)
            | Err(HmcError::TagsExhausted)
            | Err(HmcError::LinkDown(_)) => {}
            Err(e) => return Err(e),
        }
        sim.clock();
        if gap > 0 {
            sim.clock_n(gap as u64);
        }
        drain_links(sim, fnv);
    }
    for _ in 0..drain {
        sim.clock();
        drain_links(sim, fnv);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    fn all_descriptors() -> Vec<KernelDescriptor> {
        vec![
            KernelDescriptor::RawOps { ops: 40, seed: 7, gap: 3, drain: 64 },
            KernelDescriptor::Counter { threads: 3, increments: 5, cache_rmw: false },
            KernelDescriptor::Counter { threads: 2, increments: 4, cache_rmw: true },
            KernelDescriptor::Gups { entries_log2: 8, updates: 64, window: 8, rmw: false, seed: 9 },
            KernelDescriptor::Triad { elements: 128, chunk_bytes: 64, window: 8, posted_writes: true },
            KernelDescriptor::Mutex { threads: 2, mechanism: MutexMechanism::CasEq8 },
            KernelDescriptor::Mutex { threads: 2, mechanism: MutexMechanism::Cmc },
            KernelDescriptor::Mutex { threads: 2, mechanism: MutexMechanism::Ticket },
            KernelDescriptor::Barrier { threads: 4, rounds: 3 },
        ]
    }

    #[test]
    fn every_descriptor_round_trips_through_json() {
        for d in all_descriptors() {
            let text = d.to_json().render();
            let back = KernelDescriptor::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, d, "{text}");
        }
    }

    #[test]
    fn unknown_kernel_and_unknown_field_fail_loudly() {
        let e = KernelDescriptor::from_json(&Json::parse("{\"kernel\":\"quantum\"}").unwrap())
            .unwrap_err();
        assert!(e.message.contains("unknown kernel"), "{}", e.message);
        let text = "{\"kernel\":\"barrier\",\"threads\":2,\"rounds\":1,\"surprise\":1}";
        let e = KernelDescriptor::from_json(&Json::parse(text).unwrap()).unwrap_err();
        assert!(e.message.contains("surprise"), "{}", e.message);
    }

    #[test]
    fn invalid_parameterizations_are_rejected() {
        let bad = [
            KernelDescriptor::RawOps { ops: 0, seed: 1, gap: 0, drain: 0 },
            KernelDescriptor::Counter { threads: 0, increments: 1, cache_rmw: false },
            KernelDescriptor::Gups { entries_log2: 40, updates: 1, window: 1, rmw: false, seed: 0 },
            KernelDescriptor::Triad { elements: 16, chunk_bytes: 24, window: 4, posted_writes: false },
            KernelDescriptor::Barrier { threads: 300, rounds: 1 },
        ];
        for d in bad {
            assert!(d.validate().is_err(), "{d:?} should be invalid");
            let text = d.to_json().render();
            assert!(
                KernelDescriptor::from_json(&Json::parse(&text).unwrap()).is_err(),
                "{text} should be rejected"
            );
        }
    }

    #[test]
    fn every_descriptor_runs_and_digest_is_deterministic() {
        for d in all_descriptors() {
            let digest = |descriptor: &KernelDescriptor| {
                let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
                descriptor.run(&mut sim).unwrap()
            };
            assert_eq!(digest(&d), digest(&d), "digest unstable for {}", d.name());
        }
    }

    #[test]
    fn raw_ops_digest_depends_on_seed() {
        let digest = |seed: u64| {
            let d = KernelDescriptor::RawOps { ops: 60, seed, gap: 1, drain: 80 };
            let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
            d.run(&mut sim).unwrap()
        };
        assert_ne!(digest(1), digest(2), "different seeds must produce different traffic");
    }
}
