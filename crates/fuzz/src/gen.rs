//! Seeded scenario generation.
//!
//! The generator is a pure function of its seed: scenario `i` of seed
//! `s` is identical on every machine and every run, which is what
//! makes `hmcfuzz run --seed S` reproducible end to end. Internally
//! each scenario gets its own [`FaultRng`] stream keyed by
//! `(seed, index)`, so shrinking or replaying scenario `i` never
//! perturbs scenario `i + 1`.

use crate::scenario::{FabricTopology, Scenario};
use hmc_sim::{
    Arbitration, DeviceConfig, ExecMode, FaultPlan, FaultRng, LinkErrorMode, RefreshConfig,
    RowPolicy, SkipMode, TimingSelect,
};
use hmc_workloads::{KernelDescriptor, MutexMechanism};

/// The seeded scenario stream.
#[derive(Debug)]
pub struct ScenarioGenerator {
    seed: u64,
    index: u64,
}

impl ScenarioGenerator {
    /// Creates the stream for `seed`, positioned at scenario 0.
    pub fn new(seed: u64) -> Self {
        ScenarioGenerator { seed, index: 0 }
    }

    /// Index of the next scenario to be generated.
    pub fn position(&self) -> u64 {
        self.index
    }

    /// Samples the next scenario.
    pub fn next_scenario(&mut self) -> Scenario {
        let index = self.index;
        self.index += 1;
        // Key the per-scenario stream by (seed, index); FaultRng
        // scrambles the seed through SplitMix64 so adjacent keys give
        // unrelated streams.
        let scenario_seed = self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = FaultRng::new(scenario_seed);
        let kernel = sample_kernel(&mut rng);
        let device = sample_device(&mut rng, &kernel);
        let exec = match rng.below(5) {
            0 => ExecMode::Sequential,
            1 => ExecMode::Parallel { threads: 2 },
            2 => ExecMode::Parallel { threads: 3 },
            3 => ExecMode::Parallel { threads: 4 },
            _ => ExecMode::Parallel { threads: 8 },
        };
        let skip = if rng.below(2) == 0 { SkipMode::Off } else { SkipMode::On };
        let mut scenario = Scenario {
            seed: scenario_seed,
            device,
            kernel,
            exec,
            skip,
            sanitizer: rng.below(2) == 0,
            telemetry: rng.below(4) == 0,
            // Drawn last so adding this axis left every older axis's
            // per-scenario stream untouched.
            trace: rng.below(4) == 0,
            // Timing axis drawn after `trace` (same stream-stability
            // argument). Half the stream stays on the pre-trait fixed
            // backend; the rest splits between the new ones.
            timing: match rng.below(4) {
                0 => TimingSelect::RowBuffer,
                1 => TimingSelect::Validated,
                _ => TimingSelect::FixedLatency,
            },
            fabric: FabricTopology::Single,
        };
        // Refresh only matters to the row-buffer model, so its draw is
        // gated on (and sampled after) the timing axis — older streams
        // never drew it and keep their exact device configs.
        if scenario.timing != TimingSelect::FixedLatency && rng.below(2) == 0 {
            let interval = 64 + rng.below(448);
            let duration = 1 + rng.below(interval.min(32) - 1);
            scenario.device.refresh = Some(RefreshConfig { interval, duration });
        }
        // Fabric axis drawn last (same stream-stability argument as
        // `trace`). Half the stream keeps the historic single cube;
        // the rest splits across small chains, rings and a 2×2 mesh —
        // kernels inject at cube 0 only, so the extra cubes fuzz the
        // idle-cube horizon and fault machinery.
        scenario.fabric = match rng.below(6) {
            0..=2 => FabricTopology::Single,
            3 => FabricTopology::Chain { cubes: 2 + rng.below(3) as u8 },
            4 => FabricTopology::Ring { cubes: 3 + rng.below(3) as u8 },
            _ => FabricTopology::Mesh { cols: 2, rows: 2 },
        };
        scenario.validate().expect("generator produced an invalid scenario");
        scenario
            .device
            .validate()
            .expect("generator produced an invalid device config");
        scenario
    }
}

fn sample_kernel(rng: &mut FaultRng) -> KernelDescriptor {
    match rng.below(7) {
        0 | 1 => KernelDescriptor::RawOps {
            // Weighted double: raw ops cover the widest packet mix and
            // are the only kernel allowed under link outages.
            ops: 16 + rng.below(240) as u32,
            seed: rng.next_u64(),
            gap: rng.below(64) as u32,
            drain: 64 + rng.below(512) as u32,
        },
        2 => KernelDescriptor::Counter {
            threads: 1 + rng.below(8) as u32,
            increments: 1 + rng.below(24) as u32,
            cache_rmw: rng.below(4) == 0,
        },
        3 => KernelDescriptor::Gups {
            entries_log2: 6 + rng.below(5) as u32,
            updates: 16 + rng.below(240) as u32,
            window: 1 + rng.below(32) as u32,
            rmw: rng.below(2) == 0,
            seed: rng.next_u64(),
        },
        4 => {
            let chunk_bytes =
                hmc_workloads::scenario::TRIAD_CHUNK_SIZES[rng.below(9) as usize];
            // One chunk covers chunk_bytes/8 elements; sampling whole
            // chunks keeps the array divisible by the request size.
            let elements_per_chunk = chunk_bytes / 8;
            KernelDescriptor::Triad {
                elements: elements_per_chunk * (1 + rng.below(96) as u32),
                chunk_bytes,
                window: 1 + rng.below(24) as u32,
                posted_writes: rng.below(2) == 0,
            }
        }
        5 => KernelDescriptor::Mutex {
            threads: 1 + rng.below(6) as u32,
            mechanism: match rng.below(3) {
                0 => MutexMechanism::Cmc,
                1 => MutexMechanism::CasEq8,
                _ => MutexMechanism::Ticket,
            },
        },
        _ => KernelDescriptor::Barrier {
            threads: 1 + rng.below(8) as u32,
            rounds: 1 + rng.below(6) as u32,
        },
    }
}

fn sample_device(rng: &mut FaultRng, kernel: &KernelDescriptor) -> DeviceConfig {
    let mut device = if rng.below(2) == 0 {
        DeviceConfig::gen2_4link_4gb()
    } else {
        DeviceConfig::gen2_8link_8gb()
    };
    device.arbitration = if rng.below(2) == 0 {
        Arbitration::FixedPriority
    } else {
        Arbitration::RoundRobin
    };
    if rng.below(3) == 0 {
        device.bank_latency = rng.below(9);
    }
    if rng.below(4) == 0 {
        device.bank_timing.policy = RowPolicy::OpenPage;
        device.bank_timing.row_hit = 1 + rng.below(3);
        device.bank_timing.row_miss = 4 + rng.below(8);
    }
    if rng.below(4) == 0 {
        device.vault_queue_depth = 16;
    }
    device.fault = sample_fault_plan(rng, kernel, device.links);
    device
}

fn sample_fault_plan(rng: &mut FaultRng, kernel: &KernelDescriptor, links: usize) -> FaultPlan {
    let mut plan = FaultPlan::seeded(rng.next_u64());
    match rng.below(4) {
        0 => {}
        1 => plan = plan.with_vault_errors(1_000 * (1 + rng.below(100)) as u32),
        2 => plan = plan.with_poison(1_000 * (1 + rng.below(60)) as u32),
        _ => {
            plan = plan
                .with_vault_errors(1_000 * (1 + rng.below(60)) as u32)
                .with_poison(1_000 * (1 + rng.below(40)) as u32);
        }
    }
    if rng.below(3) == 0 {
        plan = plan.with_link_errors(match rng.below(2) {
            0 => LinkErrorMode::EveryNth(50 + rng.below(500)),
            _ => LinkErrorMode::Random { per_million: 1_000 * (1 + rng.below(50)) as u32 },
        });
    }
    // Scheduled outages only pair with kernels that survive LinkDown
    // on send (see `Scenario::validate`). Never cut link 0 so the
    // stream retains at least one working link.
    if kernel.tolerates_link_outage() && rng.below(3) == 0 && links > 1 {
        let link = 1 + rng.below(links as u64 - 1) as usize;
        let down = 50 + rng.below(400);
        let up = down + 50 + rng.below(400);
        plan = plan.with_link_event(down, link, false).with_link_event(up, link, true);
    }
    plan.validate(links).expect("generator produced an invalid fault plan");
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let take = |seed: u64, n: usize| {
            let mut g = ScenarioGenerator::new(seed);
            (0..n).map(|_| g.next_scenario()).collect::<Vec<_>>()
        };
        assert_eq!(take(7, 40), take(7, 40));
        assert_ne!(take(7, 40), take(8, 40), "different seeds, different streams");
    }

    #[test]
    fn scenarios_are_valid_and_diverse() {
        let mut g = ScenarioGenerator::new(1);
        let scenarios: Vec<Scenario> = (0..200).map(|_| g.next_scenario()).collect();
        for s in &scenarios {
            s.validate().unwrap();
        }
        let kernels: std::collections::BTreeSet<&str> =
            scenarios.iter().map(|s| s.kernel.name()).collect();
        assert!(kernels.len() >= 5, "kernel diversity: {kernels:?}");
        assert!(scenarios.iter().any(|s| s.skip == SkipMode::On));
        assert!(scenarios.iter().any(|s| matches!(s.exec, ExecMode::Parallel { .. })));
        assert!(scenarios.iter().any(|s| !s.device.fault.link_schedule.is_empty()));
        assert!(scenarios.iter().any(|s| s.sanitizer));
        assert!(scenarios.iter().any(|s| s.trace));
        assert!(scenarios.iter().any(|s| !s.trace));
        for timing in
            [TimingSelect::FixedLatency, TimingSelect::RowBuffer, TimingSelect::Validated]
        {
            assert!(
                scenarios.iter().any(|s| s.timing == timing),
                "timing axis diversity: no {timing:?} scenario in 200 draws"
            );
        }
        assert!(
            scenarios
                .iter()
                .any(|s| s.timing != TimingSelect::FixedLatency && s.device.refresh.is_some()),
            "refresh must appear alongside the row-aware backends"
        );
        assert!(
            scenarios
                .iter()
                .filter(|s| s.timing == TimingSelect::FixedLatency)
                .all(|s| s.device.refresh.is_none()),
            "fixed-backend scenarios never draw refresh"
        );
        assert!(scenarios.iter().any(|s| s.fabric == FabricTopology::Single));
        assert!(scenarios.iter().any(|s| matches!(s.fabric, FabricTopology::Chain { .. })));
        assert!(scenarios.iter().any(|s| matches!(s.fabric, FabricTopology::Ring { .. })));
        assert!(scenarios.iter().any(|s| matches!(s.fabric, FabricTopology::Mesh { .. })));
        assert!(
            scenarios
                .iter()
                .any(|s| s.fabric != FabricTopology::Single && s.skip == SkipMode::On),
            "fabric × skip must co-occur: idle remote cubes under skip is the risky corner"
        );
    }

    #[test]
    fn scenario_round_trips_from_every_seed() {
        let mut g = ScenarioGenerator::new(99);
        for _ in 0..50 {
            let s = g.next_scenario();
            let text = s.to_json().render();
            assert_eq!(Scenario::from_json_str(&text).unwrap(), s, "{text}");
        }
    }
}
