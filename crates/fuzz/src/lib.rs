//! # hmc-fuzz
//!
//! The scenario fuzz farm: standing randomized differential fuzzing
//! for the hmcsim-rs engine matrix.
//!
//! The simulator carries a strong contract — for any workload, any
//! device configuration and any fault plan, every engine
//! configuration (parallel tick engine, event-horizon skipping,
//! sanitizer, telemetry) must be **bit-identical** to the sequential
//! reference. The proptest harnesses in `tests/` check that contract
//! over narrow, hand-shaped workloads; this crate explores the full
//! cross-product continuously:
//!
//! * [`gen`] — a seeded **scenario generator** samples (kernel ×
//!   device config × fault plan × exec mode × skip mode × sanitizer ×
//!   telemetry) tuples; the stream is a pure function of the seed.
//! * [`runner`] — a **differential runner** executes each scenario
//!   twice (sequential reference vs the sampled variant engine) behind
//!   `catch_unwind` with a wall-clock budget, and classifies the
//!   outcome: digest mismatch (per axis), panic, sanitizer violation,
//!   watchdog stall, timeout.
//! * [`shrink`] — a **delta-debugging shrinker** walks every scenario
//!   axis toward smaller values, keeping a change only if the same
//!   failure class still reproduces, and emits a minimal reproducer.
//! * [`corpus`] — reproducers persist as versioned, self-contained
//!   JSON; the checked-in `corpus/` directory is replayed by the
//!   tier-1 test `tests/fuzz_corpus.rs` so every past failure stays
//!   fixed.
//!
//! The `hmcfuzz` binary fronts all of it (`run`, `replay`,
//! `seed-corpus`), including a `--canary` self-test mode that injects
//! a known seeded divergence and asserts the farm finds and shrinks
//! it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod gen;
pub mod journal;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use corpus::{load_scenario_file, save_reproducer};
pub use journal::RunJournal;
pub use gen::ScenarioGenerator;
pub use runner::{run_scenario, Outcome, RunnerConfig};
pub use scenario::{FabricTopology, Scenario, SCHEMA_VERSION};
pub use shrink::shrink;
