//! Reproducer corpus: versioned, self-contained scenario files.
//!
//! Every failure the fuzzer shrinks is serialized to
//! `repro-<class>-<digest>.json`. Checked into `corpus/`, such a file
//! becomes a permanent regression test: `tests/fuzz_corpus.rs` replays
//! the whole directory under `cargo test`. Loading is strict — a file
//! with an unknown schema version or an unknown field is rejected with
//! the **file path and version** in the message, never silently
//! reinterpreted.

use crate::runner::Outcome;
use crate::scenario::Scenario;
use hmc_sim::{Fnv, JsonError};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Loads one scenario file, prefixing every error with the file path.
pub fn load_scenario_file(path: &Path) -> Result<Scenario, JsonError> {
    let at = |message: String| JsonError { message: format!("{}: {message}", path.display()) };
    let text = fs::read_to_string(path).map_err(|e| at(format!("cannot read file: {e}")))?;
    Scenario::from_json_str(&text).map_err(|e| at(e.message))
}

/// Loads every `.json` file in a corpus directory, sorted by file name
/// for deterministic replay order. A missing directory is an empty
/// corpus; an unreadable or invalid file is an error.
pub fn load_corpus_dir(dir: &Path) -> Result<Vec<(PathBuf, Scenario)>, JsonError> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let entries = fs::read_dir(dir).map_err(|e| JsonError {
        message: format!("{}: cannot read corpus directory: {e}", dir.display()),
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut corpus = Vec::with_capacity(paths.len());
    for path in paths {
        let scenario = load_scenario_file(&path)?;
        corpus.push((path, scenario));
    }
    Ok(corpus)
}

/// Stable content digest used in reproducer file names, so the same
/// minimal scenario always lands in the same file (no duplicates).
pub fn scenario_digest(scenario: &Scenario) -> u64 {
    let mut fnv = Fnv::new();
    for byte in scenario.to_json().render().into_bytes() {
        fnv.u64(byte as u64);
    }
    fnv.finish()
}

/// Writes a shrunk reproducer into `dir` as
/// `repro-<class>-<digest>.json` and returns the path. The write is
/// atomic (tmp → fsync → rename), so a crash mid-save can never leave
/// a torn reproducer for corpus replay to choke on.
///
/// When `trace_events` is given (a Perfetto trace-event JSON array
/// from [`capture_trace_events`](crate::runner::capture_trace_events)),
/// it is embedded under a top-level `traceEvents` key: the reproducer
/// file then opens directly in <https://ui.perfetto.dev> as a timeline
/// of the failing run. The loader ignores the key, and the file name
/// digest covers the scenario alone, so embedding never forks
/// reproducer identity.
pub fn save_reproducer(
    dir: &Path,
    scenario: &Scenario,
    outcome: &Outcome,
    trace_events: Option<&str>,
) -> io::Result<PathBuf> {
    let name = format!("repro-{}-{:016x}.json", outcome.class(), scenario_digest(scenario));
    let path = dir.join(name);
    let mut doc = scenario.to_json();
    if let Some(events) = trace_events {
        let parsed = hmc_sim::Json::parse(events).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad trace events: {}", e.message))
        })?;
        if let hmc_sim::Json::Obj(fields) = &mut doc {
            fields.push(("traceEvents".into(), parsed));
        }
    }
    let mut text = doc.render();
    text.push('\n');
    hmc_sim::atomic_write(&path, text.as_bytes())?;
    Ok(path)
}

/// Renders a scenario with a trailing newline (stable bytes; friendly
/// to check in).
pub fn pretty_render(scenario: &Scenario) -> String {
    let mut text = scenario.to_json().render();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::{DeviceConfig, ExecMode, SkipMode};
    use hmc_workloads::KernelDescriptor;

    fn sample() -> Scenario {
        Scenario {
            seed: 5,
            device: DeviceConfig::gen2_4link_4gb(),
            kernel: KernelDescriptor::Counter { threads: 2, increments: 3, cache_rmw: false },
            exec: ExecMode::Parallel { threads: 2 },
            skip: SkipMode::Off,
            sanitizer: false,
            telemetry: false,
            trace: false,
            timing: hmc_sim::TimingSelect::FixedLatency,
            fabric: crate::scenario::FabricTopology::Single,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("hmcfuzz-corpus-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let s = sample();
        let path = save_reproducer(&dir, &s, &Outcome::Pass, None).unwrap();
        assert_eq!(load_scenario_file(&path).unwrap(), s);
        let corpus = load_corpus_dir(&dir).unwrap();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus[0].1, s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn embedded_trace_events_survive_save_and_are_ignored_on_load() {
        let dir = temp_dir("traced");
        let s = sample();
        let events = r#"[{"name":"send","ph":"X","ts":1,"dur":1,"pid":0,"tid":0}]"#;
        let path = save_reproducer(&dir, &s, &Outcome::Pass, Some(events)).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("traceEvents"), "{text}");
        assert!(text.contains("\"ph\""), "{text}");
        assert_eq!(load_scenario_file(&path).unwrap(), s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_errors_carry_the_file_path() {
        let dir = temp_dir("patherr");
        let path = dir.join("bad.json");
        fs::write(&path, "{\"schema_version\": 77}").unwrap();
        let e = load_scenario_file(&path).unwrap_err();
        assert!(e.message.contains("bad.json"), "{}", e.message);
        assert!(e.message.contains("schema_version 77"), "{}", e.message);
        let e = load_corpus_dir(&dir).unwrap_err();
        assert!(e.message.contains("bad.json"), "{}", e.message);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = temp_dir("gone").join("nope");
        assert!(load_corpus_dir(&dir).unwrap().is_empty());
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = scenario_digest(&sample());
        assert_eq!(a, scenario_digest(&sample()));
        let mut other = sample();
        other.telemetry = true;
        assert_ne!(a, scenario_digest(&other));
    }
}
