//! `hmcfuzz` — the scenario fuzz farm CLI.
//!
//! ```text
//! hmcfuzz run --seed S [--seconds N | --count N] [--canary] [--out DIR]
//! hmcfuzz replay FILE... | --corpus DIR
//! hmcfuzz seed-corpus DIR
//! ```

use hmc_fuzz::corpus::{load_corpus_dir, load_scenario_file, pretty_render, save_reproducer};
use hmc_fuzz::runner::{capture_trace_events, run_scenario, RunnerConfig};
use hmc_fuzz::scenario::Scenario;
use hmc_fuzz::shrink::shrink;
use hmc_fuzz::{RunJournal, ScenarioGenerator};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
hmcfuzz — differential scenario fuzzer for hmcsim-rs

USAGE:
    hmcfuzz run --seed S [--seconds N | --count N] [--canary]
                [--out DIR] [--timeout SECS] [--shrink-runs N] [--resume]
        Generate scenarios from seed S and run each under the paired
        engine configurations. Failures are shrunk and written to
        --out (default `corpus-new/`). With --count the scenario
        stream is a fixed length (fully deterministic, CI-friendly);
        with --seconds it is time-boxed. --canary injects a known
        seeded divergence (a stats increment dropped under skip mode)
        and asserts the farm finds and shrinks it. Progress is
        journaled to `<out>/run.journal` after every scenario;
        --resume continues a killed campaign from that journal
        (same seed required) without skipping or repeating scenarios.

    hmcfuzz replay [--timeout SECS] FILE... | --corpus DIR
        Replay reproducer files (or a whole corpus directory); exits
        nonzero if any scenario fails.

    hmcfuzz seed-corpus DIR
        Write the canonical seed scenarios into DIR (used to refresh
        the checked-in corpus).
";

fn fail(message: String) -> ExitCode {
    eprintln!("hmcfuzz: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("seed-corpus") => cmd_seed_corpus(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

struct RunArgs {
    seed: u64,
    seconds: Option<u64>,
    count: Option<u64>,
    canary: bool,
    out: PathBuf,
    timeout: u64,
    shrink_runs: usize,
    resume: bool,
}

fn parse_value<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    flag: &str,
) -> Result<T, String> {
    *i += 1;
    let raw = args.get(*i).ok_or(format!("{flag} needs a value"))?;
    raw.parse().map_err(|_| format!("invalid value for {flag}: `{raw}`"))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut parsed = RunArgs {
        seed: 1,
        seconds: None,
        count: None,
        canary: false,
        out: PathBuf::from("corpus-new"),
        timeout: 30,
        shrink_runs: 400,
        resume: false,
    };
    let mut i = 0;
    while i < args.len() {
        let result = match args[i].as_str() {
            "--seed" => parse_value(args, &mut i, "--seed").map(|v| parsed.seed = v),
            "--seconds" => {
                parse_value(args, &mut i, "--seconds").map(|v| parsed.seconds = Some(v))
            }
            "--count" => parse_value(args, &mut i, "--count").map(|v| parsed.count = Some(v)),
            "--timeout" => parse_value(args, &mut i, "--timeout").map(|v| parsed.timeout = v),
            "--shrink-runs" => {
                parse_value(args, &mut i, "--shrink-runs").map(|v| parsed.shrink_runs = v)
            }
            "--out" => {
                parse_value::<String>(args, &mut i, "--out").map(|v| parsed.out = PathBuf::from(v))
            }
            "--canary" => {
                parsed.canary = true;
                Ok(())
            }
            "--resume" => {
                parsed.resume = true;
                Ok(())
            }
            other => Err(format!("unknown flag `{other}` for run")),
        };
        if let Err(message) = result {
            return fail(message);
        }
        i += 1;
    }
    if parsed.seconds.is_none() && parsed.count.is_none() {
        parsed.seconds = Some(60);
    }
    let config = RunnerConfig {
        timeout: Duration::from_secs(parsed.timeout),
        canary: parsed.canary,
    };
    let mut generator = ScenarioGenerator::new(parsed.seed);
    let started = Instant::now();
    let deadline = parsed.seconds.map(Duration::from_secs);
    let mut executed = 0u64;
    let mut failures = 0u64;
    let mut canary_found = false;
    if parsed.resume {
        match RunJournal::load(&parsed.out) {
            Ok(Some(journal)) => {
                if journal.seed != parsed.seed {
                    return fail(format!(
                        "--resume: journal in {} was written by seed {} but this \
                         run uses seed {} — refusing to mix scenario streams",
                        parsed.out.display(),
                        journal.seed,
                        parsed.seed
                    ));
                }
                // The stream is a pure function of the seed: replaying
                // the generator to the journaled index reproduces the
                // exact position of the killed campaign.
                while generator.position() < journal.next_index {
                    let _ = generator.next_scenario();
                }
                executed = journal.executed;
                failures = journal.failures;
                canary_found = journal.canary_found;
                println!(
                    "hmcfuzz run: resuming at scenario {} ({} executed, {} failures)",
                    journal.next_index, journal.executed, journal.failures
                );
            }
            Ok(None) => println!(
                "hmcfuzz run: no journal in {}: starting fresh",
                parsed.out.display()
            ),
            Err(e) => return fail(e.message),
        }
    }
    println!(
        "hmcfuzz run: seed={} {} canary={}",
        parsed.seed,
        match (parsed.count, parsed.seconds) {
            (Some(n), _) => format!("count={n}"),
            (None, Some(s)) => format!("seconds={s}"),
            (None, None) => unreachable!("defaulted above"),
        },
        parsed.canary
    );
    loop {
        if let Some(count) = parsed.count {
            if executed >= count {
                break;
            }
        }
        if let Some(budget) = deadline {
            if started.elapsed() >= budget {
                break;
            }
        }
        let index = generator.position();
        let scenario = generator.next_scenario();
        let outcome = run_scenario(&scenario, &config);
        executed += 1;
        println!(
            "[{index:>6}] {:<22} kernel={:<8} exec={:?} skip={:?} weight={}",
            outcome.class(),
            scenario.kernel.name(),
            scenario.exec,
            scenario.skip,
            scenario.weight()
        );
        if let hmc_fuzz::runner::Outcome::SetupError { message } = &outcome {
            println!("    setup error: {message}");
        }
        if outcome.is_failure() {
            failures += 1;
            let report = shrink(&scenario, &outcome, &config, parsed.shrink_runs);
            println!(
                "    shrunk weight {} -> {} in {} runs",
                scenario.weight(),
                report.scenario.weight(),
                report.runs
            );
            // Attach a flight-recorder timeline to the reproducer so
            // the failing run can be inspected in ui.perfetto.dev;
            // sides that cannot finish simply carry no timeline.
            let trace_events = capture_trace_events(&report.scenario, config.timeout);
            match save_reproducer(
                &parsed.out,
                &report.scenario,
                &report.outcome,
                trace_events.as_deref(),
            ) {
                Ok(path) => println!("    reproducer: {}", path.display()),
                Err(e) => return fail(format!("cannot save reproducer: {e}")),
            }
            if parsed.canary
                && report.outcome.class() == "mismatch-stats"
                && report.scenario.weight() <= 24
            {
                canary_found = true;
            }
        }
        let journal = RunJournal {
            seed: parsed.seed,
            next_index: generator.position(),
            executed,
            failures,
            canary_found,
        };
        if let Err(e) = journal.save(&parsed.out) {
            return fail(format!("cannot write journal: {e}"));
        }
    }
    println!("hmcfuzz run: {executed} scenarios, {failures} failures");
    if parsed.canary {
        if canary_found {
            println!("canary: found and shrunk to a minimal reproducer (self-test OK)");
            // The canary is an injected defect, not a real failure.
            return ExitCode::SUCCESS;
        }
        return fail(
            "canary divergence was NOT found+shrunk — the fuzz farm itself is broken".into(),
        );
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut timeout = 60u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--corpus" => match parse_value::<String>(args, &mut i, "--corpus") {
                Ok(dir) => match load_corpus_dir(&PathBuf::from(&dir)) {
                    Ok(corpus) => files.extend(corpus.into_iter().map(|(p, _)| p)),
                    Err(e) => return fail(e.message),
                },
                Err(message) => return fail(message),
            },
            "--timeout" => {
                if let Err(message) = parse_value(args, &mut i, "--timeout").map(|v| timeout = v) {
                    return fail(message);
                }
            }
            flag if flag.starts_with("--") => {
                return fail(format!("unknown flag `{flag}` for replay"))
            }
            file => files.push(PathBuf::from(file)),
        }
        i += 1;
    }
    if files.is_empty() {
        return fail("replay needs FILE arguments or --corpus DIR".into());
    }
    let config = RunnerConfig { timeout: Duration::from_secs(timeout), canary: false };
    let mut failed = false;
    for path in files {
        let scenario = match load_scenario_file(&path) {
            Ok(s) => s,
            Err(e) => return fail(e.message),
        };
        let outcome = run_scenario(&scenario, &config);
        println!("{}: {}", path.display(), outcome.class());
        if outcome.is_failure() {
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The canonical seed corpus: deterministic scenarios covering every
/// kernel and every engine axis, kept green in tier-1 CI as standing
/// regression anchors.
fn seed_scenarios() -> Vec<Scenario> {
    let mut generator = ScenarioGenerator::new(0xC0FFEE);
    let mut picked: Vec<Scenario> = Vec::new();
    let mut kernels_seen: Vec<&'static str> = Vec::new();
    // Walk the deterministic stream and keep the first scenario of
    // each kernel kind — a stable, diverse sample.
    while kernels_seen.len() < 6 && generator.position() < 500 {
        let scenario = generator.next_scenario();
        if !kernels_seen.contains(&scenario.kernel.name()) {
            kernels_seen.push(scenario.kernel.name());
            picked.push(scenario);
        }
    }
    // Plus one standing anchor for the tracing axis: the first
    // scenario that attaches the flight recorder to a parallel
    // variant, pinning the recorder's zero-perturbation contract in
    // corpus replay.
    let mut generator = ScenarioGenerator::new(0xC0FFEE);
    while generator.position() < 500 {
        let scenario = generator.next_scenario();
        if scenario.trace && matches!(scenario.exec, hmc_sim::ExecMode::Parallel { .. }) {
            picked.push(scenario);
            break;
        }
    }
    // And one for the timing axis: the first scenario that pairs the
    // row-buffer backend with a refresh plan AND a live fault plan,
    // pinning refresh-aware bank timing under fault injection in
    // corpus replay.
    let mut generator = ScenarioGenerator::new(0xC0FFEE);
    while generator.position() < 500 {
        let scenario = generator.next_scenario();
        if scenario.timing == hmc_sim::TimingSelect::RowBuffer
            && scenario.device.refresh.is_some()
            && !scenario.device.fault.is_none()
        {
            picked.push(scenario);
            break;
        }
    }
    picked
}

fn cmd_seed_corpus(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return fail("seed-corpus needs a target directory".into());
    };
    let dir = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return fail(format!("cannot create {}: {e}", dir.display()));
    }
    for (i, scenario) in seed_scenarios().into_iter().enumerate() {
        let path = dir.join(format!("seed-{:02}-{}.json", i, scenario.kernel.name()));
        // Atomic write: a kill mid-refresh never leaves a torn seed
        // file in the checked-in corpus.
        if let Err(e) = hmc_sim::atomic_write(&path, pretty_render(&scenario).as_bytes()) {
            return fail(format!("cannot write {}: {e}", path.display()));
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
