//! Crash-safe fuzz-campaign journal.
//!
//! A long `hmcfuzz run` is resumable: after every completed scenario
//! the farm atomically rewrites a small journal recording the
//! generator seed and the index of the **next** scenario to run. After
//! a kill, `hmcfuzz run --resume` reloads the journal, fast-forwards
//! the deterministic scenario stream to that index and continues the
//! campaign as if it had never stopped — no scenario is skipped, none
//! is double-counted.
//!
//! The journal is a single JSON object written through
//! [`hmc_sim::atomic_write`] (tmp → fsync → rename → dir fsync), so a
//! crash mid-write leaves the previous journal intact. It lives as
//! `run.journal` — deliberately *not* a `.json` file, so corpus
//! replay (`hmcfuzz replay --corpus`) never mistakes it for a
//! reproducer.

use hmc_sim::jsonv::obj;
use hmc_sim::{Json, JsonError, ObjReader};
use std::io;
use std::path::{Path, PathBuf};

/// Magic string identifying a journal file.
pub const JOURNAL_MAGIC: &str = "hmcfuzz-journal";

/// Journal schema version; bump on incompatible layout changes.
pub const JOURNAL_VERSION: u64 = 1;

/// File name of the journal inside the campaign's `--out` directory.
pub const JOURNAL_FILE: &str = "run.journal";

/// Persistent progress of one fuzz campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunJournal {
    /// Generator seed: a resume against a different seed is refused.
    pub seed: u64,
    /// Scenario-stream index of the next scenario to execute.
    pub next_index: u64,
    /// Scenarios executed so far.
    pub executed: u64,
    /// Failures found so far.
    pub failures: u64,
    /// Whether the `--canary` self-test divergence was already found.
    pub canary_found: bool,
}

impl RunJournal {
    /// The journal's path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    /// Serializes to the (stable) journal JSON text.
    pub fn to_json(&self) -> String {
        obj(vec![
            ("magic", Json::Str(JOURNAL_MAGIC.into())),
            ("schema_version", Json::Int(JOURNAL_VERSION as i128)),
            ("seed", Json::Int(self.seed as i128)),
            ("next_index", Json::Int(self.next_index as i128)),
            ("executed", Json::Int(self.executed as i128)),
            ("failures", Json::Int(self.failures as i128)),
            ("canary_found", Json::Bool(self.canary_found)),
        ])
        .render()
    }

    /// Parses journal JSON. Strict: unknown fields, missing fields,
    /// bad magic and unsupported versions are errors.
    pub fn from_json(text: &str) -> Result<RunJournal, JsonError> {
        let v = Json::parse(text)?;
        let mut r = ObjReader::new("fuzz journal", &v)?;
        let magic = r.str("magic")?;
        if magic != JOURNAL_MAGIC {
            return Err(JsonError { message: format!("fuzz journal: bad magic `{magic}`") });
        }
        let version = r.u64("schema_version")?;
        if version != JOURNAL_VERSION {
            return Err(JsonError {
                message: format!(
                    "fuzz journal: unsupported schema_version {version} \
                     (this build reads {JOURNAL_VERSION})"
                ),
            });
        }
        let journal = RunJournal {
            seed: r.u64("seed")?,
            next_index: r.u64("next_index")?,
            executed: r.u64("executed")?,
            failures: r.u64("failures")?,
            canary_found: r.bool("canary_found")?,
        };
        r.finish()?;
        Ok(journal)
    }

    /// Atomically persists the journal into `dir`.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        hmc_sim::atomic_write(&Self::path_in(dir), self.to_json().as_bytes())
    }

    /// Loads the journal from `dir`; `Ok(None)` if none exists yet.
    /// A present-but-unreadable journal is an error (with the path),
    /// never silently treated as a fresh start.
    pub fn load(dir: &Path) -> Result<Option<RunJournal>, JsonError> {
        let path = Self::path_in(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(JsonError {
                    message: format!("{}: cannot read journal: {e}", path.display()),
                })
            }
        };
        Self::from_json(&text)
            .map(Some)
            .map_err(|e| JsonError { message: format!("{}: {}", path.display(), e.message) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("hmcfuzz-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> RunJournal {
        RunJournal { seed: 42, next_index: 17, executed: 17, failures: 2, canary_found: false }
    }

    #[test]
    fn save_load_round_trips() {
        let dir = temp_dir("roundtrip");
        sample().save(&dir).unwrap();
        assert_eq!(RunJournal::load(&dir).unwrap(), Some(sample()));
        assert!(!dir.join(format!("{JOURNAL_FILE}.tmp")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_a_fresh_start() {
        let dir = temp_dir("missing").join("never-created");
        assert_eq!(RunJournal::load(&dir).unwrap(), None);
    }

    #[test]
    fn corrupt_journal_is_an_error_with_the_path() {
        let dir = temp_dir("corrupt");
        std::fs::write(RunJournal::path_in(&dir), "{\"magic\": \"nope\"}").unwrap();
        let e = RunJournal::load(&dir).unwrap_err();
        assert!(e.message.contains(JOURNAL_FILE), "{}", e.message);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let text = sample().to_json().replace("\"schema_version\":1", "\"schema_version\":9");
        let e = RunJournal::from_json(&text).unwrap_err();
        assert!(e.message.contains("schema_version 9"), "{}", e.message);
    }
}
