//! Delta-debugging shrinker: reduce a failing scenario along every
//! axis while the same failure class keeps reproducing.
//!
//! The algorithm is greedy fixpoint iteration. Each pass proposes a
//! list of candidate reductions ordered from most to least aggressive
//! — swap the kernel for a minimal raw-ops stream, zero the fault
//! plan, drop observers, then walk each numeric knob down by halving
//! and decrementing. A candidate is adopted only if re-running it
//! still produces the *same class* of failure (per
//! [`Outcome::class`]); adoption restarts the pass. The loop ends at
//! a fixpoint or after `max_runs` scenario executions, whichever is
//! first, so shrinking is always bounded.

use crate::runner::{run_scenario, Outcome, RunnerConfig};
use crate::scenario::{FabricTopology, Scenario};
use hmc_sim::{ExecMode, FaultPlan, LinkErrorMode, SkipMode, TimingSelect};
use hmc_workloads::KernelDescriptor;

/// Result of a shrink session.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The smallest scenario that still fails with the original class.
    pub scenario: Scenario,
    /// The outcome of the minimal scenario's final run.
    pub outcome: Outcome,
    /// Scenario executions spent shrinking.
    pub runs: usize,
}

fn half_down(v: u32, floor: u32) -> Option<u32> {
    let halved = (v / 2).max(floor);
    (halved < v).then_some(halved)
}

fn dec(v: u32, floor: u32) -> Option<u32> {
    (v > floor).then(|| v - 1)
}

/// Candidate kernel reductions, most aggressive first.
fn kernel_candidates(kernel: &KernelDescriptor) -> Vec<KernelDescriptor> {
    let mut out = Vec::new();
    let minimal = KernelDescriptor::RawOps { ops: 1, seed: 1, gap: 0, drain: 16 };
    if kernel != &minimal {
        out.push(minimal);
    }
    match *kernel {
        KernelDescriptor::RawOps { ops, seed, gap, drain } => {
            for smaller in [half_down(ops, 1), dec(ops, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::RawOps { ops: smaller, seed, gap, drain });
            }
            if gap > 0 {
                out.push(KernelDescriptor::RawOps { ops, seed, gap: 0, drain });
            }
            for smaller in [half_down(drain, 16), dec(drain, 16)].into_iter().flatten() {
                out.push(KernelDescriptor::RawOps { ops, seed, gap, drain: smaller });
            }
            if seed != 1 {
                out.push(KernelDescriptor::RawOps { ops, seed: 1, gap, drain });
            }
        }
        KernelDescriptor::Counter { threads, increments, cache_rmw } => {
            for t in [half_down(threads, 1), dec(threads, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::Counter { threads: t, increments, cache_rmw });
            }
            for i in [half_down(increments, 1), dec(increments, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::Counter { threads, increments: i, cache_rmw });
            }
            if cache_rmw {
                out.push(KernelDescriptor::Counter { threads, increments, cache_rmw: false });
            }
        }
        KernelDescriptor::Gups { entries_log2, updates, window, rmw, seed } => {
            for u in [half_down(updates, 1), dec(updates, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::Gups { entries_log2, updates: u, window, rmw, seed });
            }
            for w in [half_down(window, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::Gups { entries_log2, updates, window: w, rmw, seed });
            }
            if entries_log2 > 4 {
                out.push(KernelDescriptor::Gups {
                    entries_log2: entries_log2 - 1,
                    updates,
                    window,
                    rmw,
                    seed,
                });
            }
            if seed != 1 {
                out.push(KernelDescriptor::Gups { entries_log2, updates, window, rmw, seed: 1 });
            }
        }
        KernelDescriptor::Triad { elements, chunk_bytes, window, posted_writes } => {
            for e in [half_down(elements, 1), dec(elements, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::Triad {
                    elements: e,
                    chunk_bytes,
                    window,
                    posted_writes,
                });
            }
            for w in [half_down(window, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::Triad {
                    elements,
                    chunk_bytes,
                    window: w,
                    posted_writes,
                });
            }
        }
        KernelDescriptor::Mutex { threads, mechanism } => {
            for t in [half_down(threads, 1), dec(threads, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::Mutex { threads: t, mechanism });
            }
        }
        KernelDescriptor::Barrier { threads, rounds } => {
            for t in [half_down(threads, 1), dec(threads, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::Barrier { threads: t, rounds });
            }
            for r in [half_down(rounds, 1), dec(rounds, 1)].into_iter().flatten() {
                out.push(KernelDescriptor::Barrier { threads, rounds: r });
            }
        }
    }
    out
}

/// Candidate reductions of a full scenario, most aggressive first.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |candidate: Scenario| {
        if candidate != *s && candidate.validate().is_ok() {
            out.push(candidate);
        }
    };
    // Device axis: collapse to the stock evaluation part (fault plan
    // cleared with it), or clear just the fault plan / its components.
    let mut stock = s.clone();
    stock.device = hmc_sim::DeviceConfig::gen2_4link_4gb();
    push(stock);
    // Fabric axis: collapse to a single cube early — most findings
    // won't need the fabric, and one cube removes whole subsystems
    // (routing, transit queues, per-cube horizons) from the repro.
    if s.fabric != FabricTopology::Single {
        let mut c = s.clone();
        c.fabric = FabricTopology::Single;
        push(c);
    }
    if !s.device.fault.is_none() {
        let mut no_fault = s.clone();
        no_fault.device.fault = FaultPlan::none();
        push(no_fault);
        if !s.device.fault.link_schedule.is_empty() {
            let mut c = s.clone();
            c.device.fault.link_schedule.clear();
            push(c);
        }
        if s.device.fault.link_error != LinkErrorMode::None {
            let mut c = s.clone();
            c.device.fault.link_error = LinkErrorMode::None;
            push(c);
        }
        for (clear_poison, clear_vault) in [(true, false), (false, true)] {
            let mut c = s.clone();
            if clear_poison {
                c.device.fault.poison_per_million = 0;
            }
            if clear_vault {
                c.device.fault.vault_error_per_million = 0;
            }
            push(c);
        }
    }
    // Observer axes.
    if s.trace {
        let mut c = s.clone();
        c.trace = false;
        push(c);
    }
    if s.telemetry {
        let mut c = s.clone();
        c.telemetry = false;
        push(c);
    }
    if s.sanitizer {
        let mut c = s.clone();
        c.sanitizer = false;
        push(c);
    }
    // Timing axis: fall back to the fixed backend (clearing refresh
    // with it, since only the row-aware backends react to refresh), or
    // clear just the refresh plan.
    if s.timing != TimingSelect::FixedLatency {
        let mut c = s.clone();
        c.timing = TimingSelect::FixedLatency;
        c.device.refresh = None;
        push(c);
    }
    if s.device.refresh.is_some() {
        let mut c = s.clone();
        c.device.refresh = None;
        push(c);
    }
    // Engine axes.
    if let ExecMode::Parallel { threads } = s.exec {
        let mut c = s.clone();
        c.exec = ExecMode::Sequential;
        push(c);
        if threads > 2 {
            let mut c = s.clone();
            c.exec = ExecMode::Parallel { threads: 2 };
            push(c);
        }
    }
    if s.skip == SkipMode::On {
        let mut c = s.clone();
        c.skip = SkipMode::Off;
        push(c);
    }
    // Kernel axis.
    for kernel in kernel_candidates(&s.kernel) {
        let mut c = s.clone();
        c.kernel = kernel;
        push(c);
    }
    out
}

/// Shrinks `scenario` (whose current outcome must be a failure) to a
/// minimal scenario with the same failure class. Runs at most
/// `max_runs` scenario executions.
pub fn shrink(
    scenario: &Scenario,
    outcome: &Outcome,
    config: &RunnerConfig,
    max_runs: usize,
) -> ShrinkReport {
    let class = outcome.class();
    let mut best = scenario.clone();
    let mut best_outcome = outcome.clone();
    let mut runs = 0;
    'outer: loop {
        for candidate in candidates(&best) {
            if runs >= max_runs {
                break 'outer;
            }
            runs += 1;
            let candidate_outcome = run_scenario(&candidate, config);
            if candidate_outcome.class() == class {
                best = candidate;
                best_outcome = candidate_outcome;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkReport { scenario: best, outcome: best_outcome, runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;

    #[test]
    fn candidates_only_propose_valid_smaller_scenarios() {
        let s = Scenario {
            seed: 3,
            device: {
                let mut d = DeviceConfig::gen2_8link_8gb();
                d.fault = FaultPlan::seeded(4)
                    .with_poison(10_000)
                    .with_vault_errors(20_000)
                    .with_link_event(100, 1, false)
                    .with_link_event(200, 1, true);
                d.refresh = Some(hmc_sim::RefreshConfig { interval: 128, duration: 4 });
                d
            },
            kernel: KernelDescriptor::RawOps { ops: 64, seed: 9, gap: 8, drain: 256 },
            exec: ExecMode::Parallel { threads: 8 },
            skip: SkipMode::On,
            sanitizer: true,
            telemetry: true,
            trace: true,
            timing: TimingSelect::Validated,
            fabric: FabricTopology::Mesh { cols: 2, rows: 2 },
        };
        let cs = candidates(&s);
        assert!(!cs.is_empty());
        for c in &cs {
            c.validate().unwrap();
            assert_ne!(c, &s);
        }
        // The most aggressive candidates must be near the front.
        assert!(cs[0].device.fault.is_none());
    }

    /// The canary divergence only needs `skip == On` plus any traffic,
    /// so the shrinker must reduce a fat scenario to a near-minimal
    /// one (bounded weight), keeping the stats-mismatch class alive.
    #[test]
    fn canary_shrinks_to_minimal_scenario() {
        let fat = Scenario {
            seed: 11,
            device: {
                let mut d = DeviceConfig::gen2_8link_8gb();
                d.fault = FaultPlan::seeded(21).with_poison(9_000).with_vault_errors(11_000);
                d
            },
            kernel: KernelDescriptor::RawOps { ops: 96, seed: 17, gap: 12, drain: 300 },
            exec: ExecMode::Parallel { threads: 8 },
            skip: SkipMode::On,
            sanitizer: true,
            telemetry: true,
            trace: true,
            timing: TimingSelect::RowBuffer,
            fabric: FabricTopology::Ring { cubes: 4 },
        };
        let config = RunnerConfig { canary: true, ..Default::default() };
        let outcome = run_scenario(&fat, &config);
        assert_eq!(outcome.class(), "mismatch-stats");
        let report = shrink(&fat, &outcome, &config, 400);
        assert_eq!(report.outcome.class(), "mismatch-stats");
        assert_eq!(report.scenario.skip, SkipMode::On, "canary requires skip mode");
        assert_eq!(
            report.scenario.fabric,
            FabricTopology::Single,
            "the canary does not need the fabric, so shrinking must collapse it"
        );
        assert!(
            report.scenario.weight() <= 24,
            "shrunk scenario still fat (weight {}): {:?}",
            report.scenario.weight(),
            report.scenario
        );
        assert!(report.scenario.weight() < fat.weight());
    }
}
