//! The differential runner: execute one scenario under the paired
//! engine configurations and classify what happened.
//!
//! Every scenario runs twice:
//!
//! * **reference** — sequential engine, idle-cycle skipping off, no
//!   observers: the configuration every other engine mode is contracted
//!   to be bit-identical to;
//! * **variant** — the scenario's sampled engine axes (parallel
//!   threads, skip mode, sanitizer, telemetry).
//!
//! Each side runs behind `catch_unwind` on a watchdog thread with a
//! wall-clock budget, so a panicking or runaway engine is classified
//! instead of killing the fuzzer. The comparison is the pair of
//! digests: the device-side [`OracleDigest`] (cycle / fingerprint /
//! stats / latency-histogram axes, each hashed separately so the
//! mismatch names its axis) plus the workload digest from
//! [`KernelDescriptor::run`](hmc_workloads::KernelDescriptor::run).

use crate::scenario::Scenario;
use hmc_sim::sanitizer::ViolationKind;
use hmc_sim::{ExecMode, HmcSim, OracleDigest, SanitizerConfig, SkipMode, TelemetryConfig};
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Runner policy knobs.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Wall-clock budget per side per scenario.
    pub timeout: Duration,
    /// Canary mode: inject a known divergence (a stats increment
    /// dropped when the variant runs with [`SkipMode::On`]) into the
    /// variant's observation, to self-test the find-and-shrink loop.
    pub canary: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig { timeout: Duration::from_secs(30), canary: false }
    }
}

/// Everything observable from one side of the differential pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Device-side oracle digest.
    pub oracle: OracleDigest,
    /// Workload digest (host-visible results).
    pub workload: u64,
    /// Sanitizer violations (variant side only; 0 when not attached).
    pub violations: u64,
    /// Violations of kind [`ViolationKind::StallWatchdog`] among those
    /// retained.
    pub watchdog: u64,
}

/// Classified result of one differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Both sides agree on every axis.
    Pass,
    /// A digest axis diverged between reference and variant.
    Mismatch {
        /// Which axis: `cycle`, `fingerprint`, `stats`, `latency` or
        /// `workload`.
        axis: &'static str,
        /// Reference-side value of the axis.
        reference: u64,
        /// Variant-side value of the axis.
        variant: u64,
    },
    /// One side panicked.
    Panic {
        /// `reference` or `variant`.
        side: &'static str,
        /// Panic payload, when it carried a message.
        message: String,
    },
    /// The variant's sanitizer reported invariant violations.
    SanitizerViolation {
        /// Total violations detected.
        total: u64,
    },
    /// The variant's sanitizer stall watchdog fired.
    WatchdogStall {
        /// Total violations detected (watchdog included).
        total: u64,
    },
    /// One side blew the wall-clock budget.
    Timeout {
        /// `reference` or `variant`.
        side: &'static str,
    },
    /// Scenario setup or the kernel run returned an error. The
    /// generator only emits scenarios that pass
    /// [`Scenario::validate`], so this is a finding too: some layer
    /// rejected work it is contracted to handle.
    SetupError {
        /// The error message (shared by both sides, or annotated when
        /// they disagree).
        message: String,
    },
}

impl Outcome {
    /// Stable class label: equal labels mean "the same kind of
    /// failure" for shrinking and corpus file naming.
    pub fn class(&self) -> String {
        match self {
            Outcome::Pass => "pass".into(),
            Outcome::Mismatch { axis, .. } => format!("mismatch-{axis}"),
            Outcome::Panic { side, .. } => format!("panic-{side}"),
            Outcome::SanitizerViolation { .. } => "sanitizer".into(),
            Outcome::WatchdogStall { .. } => "watchdog-stall".into(),
            Outcome::Timeout { side } => format!("timeout-{side}"),
            Outcome::SetupError { .. } => "setup-error".into(),
        }
    }

    /// True for outcomes that should produce a reproducer —
    /// everything except [`Outcome::Pass`].
    pub fn is_failure(&self) -> bool {
        !matches!(self, Outcome::Pass)
    }
}

enum SideFailure {
    Panic(String),
    Error(String),
    Timeout,
}

/// Per-lane flight-recorder capacity used for the fuzzed tracing axis
/// and for reproducer timeline capture.
const FLIGHT_CAPACITY: usize = 2048;

/// Runs one side to completion on a watchdog thread.
fn observe(
    scenario: &Scenario,
    exec: ExecMode,
    skip: SkipMode,
    sanitizer: bool,
    telemetry: bool,
    trace: bool,
    timeout: Duration,
) -> Result<Observation, SideFailure> {
    let scenario = scenario.clone();
    let (tx, rx) = mpsc::channel();
    // The worker is detached on timeout; the fuzzer process carries on
    // and the stuck thread dies with the process.
    thread::spawn(move || {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            // Both sides instantiate the scenario's full fabric, so a
            // topology-dependent divergence shows up on the digest
            // axes, never as a setup asymmetry.
            let mut sim = HmcSim::with_config(scenario.sim_config())
                .map_err(|e| format!("device setup failed: {e}"))?;
            sim.set_exec_mode(exec);
            sim.set_skip_mode(skip);
            // The timing backend is behaviour, not an engine variant:
            // reference and variant both run under the scenario's
            // backend, and the engine axes must stay bit-identical
            // beneath it. Applied explicitly, so an HMCSIM_TIMING set
            // in the fuzzing environment cannot skew one side.
            sim.set_timing_model(scenario.timing);
            if sanitizer {
                sim.enable_sanitizer(SanitizerConfig::report());
            }
            if telemetry {
                sim.enable_telemetry(TelemetryConfig::full());
            }
            if trace {
                sim.enable_flight_recorder(FLIGHT_CAPACITY);
            }
            let workload =
                scenario.kernel.run(&mut sim).map_err(|e| format!("kernel run failed: {e}"))?;
            let report = sim.sanitizer_report();
            let violations = report.map(|r| r.total_violations).unwrap_or(0);
            let watchdog = report
                .map(|r| {
                    r.violations
                        .iter()
                        .filter(|v| v.kind == ViolationKind::StallWatchdog)
                        .count() as u64
                })
                .unwrap_or(0);
            Ok(Observation { oracle: sim.oracle_digest(), workload, violations, watchdog })
        }));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(timeout) {
        Ok(Ok(Ok(obs))) => Ok(obs),
        Ok(Ok(Err(message))) => Err(SideFailure::Error(message)),
        Ok(Err(payload)) => Err(SideFailure::Panic(panic_message(payload.as_ref()))),
        Err(_) => Err(SideFailure::Timeout),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".into()
    }
}

/// Runs the full differential pair for one scenario and classifies
/// the outcome.
pub fn run_scenario(scenario: &Scenario, config: &RunnerConfig) -> Outcome {
    let reference = observe(
        scenario,
        ExecMode::Sequential,
        SkipMode::Off,
        false,
        false,
        false,
        config.timeout,
    );
    let reference = match reference {
        Ok(obs) => obs,
        Err(SideFailure::Panic(message)) => {
            return Outcome::Panic { side: "reference", message }
        }
        Err(SideFailure::Timeout) => return Outcome::Timeout { side: "reference" },
        Err(SideFailure::Error(message)) => {
            // The reference could not even set the scenario up. If the
            // variant fails the same way it is a scenario problem; if
            // the variant *succeeds*, the engines disagree about
            // validity — that is a finding.
            return match observe(
                scenario,
                scenario.exec,
                scenario.skip,
                scenario.sanitizer,
                scenario.telemetry,
                scenario.trace,
                config.timeout,
            ) {
                Err(SideFailure::Error(v_message)) if v_message == message => {
                    Outcome::SetupError { message }
                }
                Err(SideFailure::Error(v_message)) => Outcome::SetupError {
                    message: format!(
                        "sides disagree: reference `{message}` vs variant `{v_message}`"
                    ),
                },
                Err(SideFailure::Panic(message)) => Outcome::Panic { side: "variant", message },
                Err(SideFailure::Timeout) => Outcome::Timeout { side: "variant" },
                Ok(_) => Outcome::Mismatch { axis: "workload", reference: 0, variant: 1 },
            };
        }
    };
    let mut variant = match observe(
        scenario,
        scenario.exec,
        scenario.skip,
        scenario.sanitizer,
        scenario.telemetry,
        scenario.trace,
        config.timeout,
    ) {
        Ok(obs) => obs,
        Err(SideFailure::Panic(message)) => return Outcome::Panic { side: "variant", message },
        Err(SideFailure::Timeout) => return Outcome::Timeout { side: "variant" },
        Err(SideFailure::Error(message)) => {
            return Outcome::SetupError {
                message: format!("variant-only setup failure: {message}"),
            }
        }
    };
    if config.canary && scenario.skip == SkipMode::On {
        // The seeded defect: pretend the skipping engine dropped one
        // stats increment. A correct fuzzer must flag this as a
        // stats-axis mismatch and shrink it.
        variant.oracle.stats = variant.oracle.stats.wrapping_add(1);
    }
    if variant.watchdog > 0 {
        return Outcome::WatchdogStall { total: variant.violations };
    }
    if variant.violations > 0 {
        return Outcome::SanitizerViolation { total: variant.violations };
    }
    let axes: [(&'static str, u64, u64); 5] = [
        ("cycle", reference.oracle.cycle, variant.oracle.cycle),
        ("fingerprint", reference.oracle.fingerprint, variant.oracle.fingerprint),
        ("stats", reference.oracle.stats, variant.oracle.stats),
        ("latency", reference.oracle.latency, variant.oracle.latency),
        ("workload", reference.workload, variant.workload),
    ];
    for (axis, r, v) in axes {
        if r != v {
            return Outcome::Mismatch { axis, reference: r, variant: v };
        }
    }
    Outcome::Pass
}

/// Replays the scenario's variant side with the flight recorder
/// attached and returns the timeline as a Perfetto trace-event JSON
/// array, for embedding into reproducer files. The recorder is
/// zero-perturbation, so this replay exercises the same execution the
/// reproducer pins. Returns `None` when the variant cannot finish
/// (panic, timeout, setup error) — a reproducer is still written, it
/// just carries no timeline.
pub fn capture_trace_events(scenario: &Scenario, timeout: Duration) -> Option<String> {
    let scenario = scenario.clone();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut sim = HmcSim::with_config(scenario.sim_config()).ok()?;
            sim.set_exec_mode(scenario.exec);
            sim.set_skip_mode(scenario.skip);
            sim.set_timing_model(scenario.timing);
            if scenario.sanitizer {
                sim.enable_sanitizer(SanitizerConfig::report());
            }
            if scenario.telemetry {
                sim.enable_telemetry(TelemetryConfig::full());
            }
            sim.enable_flight_recorder(FLIGHT_CAPACITY);
            scenario.kernel.run(&mut sim).ok()?;
            let snap = sim.flight_snapshot()?;
            Some(hmc_sim::perfetto::trace_events(
                &snap,
                &hmc_sim::perfetto::PerfettoOptions::default(),
            ))
        }));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(timeout) {
        Ok(Ok(events)) => events,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_sim::DeviceConfig;
    use hmc_workloads::KernelDescriptor;

    fn scenario(skip: SkipMode) -> Scenario {
        Scenario {
            seed: 1,
            device: DeviceConfig::gen2_4link_4gb(),
            kernel: KernelDescriptor::RawOps { ops: 24, seed: 5, gap: 2, drain: 64 },
            exec: ExecMode::Parallel { threads: 2 },
            skip,
            sanitizer: true,
            telemetry: false,
            trace: true,
            timing: hmc_sim::TimingSelect::RowBuffer,
            fabric: crate::scenario::FabricTopology::Ring { cubes: 4 },
        }
    }

    #[test]
    fn clean_scenario_passes() {
        assert_eq!(run_scenario(&scenario(SkipMode::On), &RunnerConfig::default()), Outcome::Pass);
    }

    #[test]
    fn canary_fires_only_under_skip_mode() {
        let config = RunnerConfig { canary: true, ..Default::default() };
        match run_scenario(&scenario(SkipMode::On), &config) {
            Outcome::Mismatch { axis: "stats", .. } => {}
            other => panic!("canary should be a stats mismatch, got {other:?}"),
        }
        assert_eq!(run_scenario(&scenario(SkipMode::Off), &config), Outcome::Pass);
    }

    #[test]
    fn trace_capture_returns_a_nonempty_timeline() {
        let events = capture_trace_events(&scenario(SkipMode::Off), Duration::from_secs(30))
            .expect("clean scenario yields a timeline");
        assert!(events.starts_with('['), "{events}");
        assert!(events.contains("\"ph\""), "no trace events captured: {events}");
    }

    #[test]
    fn outcome_is_deterministic_across_repeat_runs() {
        let s = scenario(SkipMode::On);
        let config = RunnerConfig::default();
        let first = run_scenario(&s, &config);
        let second = run_scenario(&s, &config);
        assert_eq!(first, second);
    }
}
