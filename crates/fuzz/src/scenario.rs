//! The scenario value: one fully-specified differential experiment.

use hmc_sim::jsonv::obj;
use hmc_sim::scenario::{
    device_config_from_json, device_config_to_json, exec_mode_from_json, exec_mode_to_json,
    skip_mode_from_json, skip_mode_to_json, timing_select_from_json, timing_select_to_json,
};
use hmc_sim::{
    DeviceConfig, ExecMode, Json, JsonError, ObjReader, SimConfig, SkipMode, TimingSelect,
};
use hmc_workloads::KernelDescriptor;

/// The multi-cube fabric a scenario instantiates. Kernels inject all
/// traffic at cube 0, so the extra cubes of a non-[`Single`] fabric
/// run idle — which is exactly the machinery the axis fuzzes: per-cube
/// event horizons, idle-skip over populated-but-quiet devices, and
/// fault delivery on cubes the workload never touches.
///
/// [`Single`]: FabricTopology::Single
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricTopology {
    /// One cube, host-only links (the historic configuration).
    Single,
    /// A daisy chain of `cubes` devices.
    Chain {
        /// Device count (2–16).
        cubes: u8,
    },
    /// A ring of `cubes` devices.
    Ring {
        /// Device count (3–16).
        cubes: u8,
    },
    /// A `cols` × `rows` 2D mesh, row-major.
    Mesh {
        /// Grid width.
        cols: u8,
        /// Grid height.
        rows: u8,
    },
}

impl FabricTopology {
    /// Number of cubes this fabric instantiates.
    pub fn cube_count(&self) -> usize {
        match *self {
            FabricTopology::Single => 1,
            FabricTopology::Chain { cubes } | FabricTopology::Ring { cubes } => cubes as usize,
            FabricTopology::Mesh { cols, rows } => cols as usize * rows as usize,
        }
    }

    /// The simulation configuration for this fabric around `device`
    /// (every cube gets an identical copy, fault plan included).
    pub fn sim_config(&self, device: DeviceConfig) -> SimConfig {
        match *self {
            FabricTopology::Single => SimConfig::single(device),
            FabricTopology::Chain { cubes } => SimConfig::chain(device, cubes as usize),
            FabricTopology::Ring { cubes } => SimConfig::ring(device, cubes as usize),
            FabricTopology::Mesh { cols, rows } => {
                SimConfig::mesh(device, cols as usize, rows as usize)
            }
        }
    }

    fn to_json(self) -> Json {
        match self {
            FabricTopology::Single => obj(vec![("kind", Json::Str("single".into()))]),
            FabricTopology::Chain { cubes } => obj(vec![
                ("kind", Json::Str("chain".into())),
                ("cubes", Json::Int(cubes as i128)),
            ]),
            FabricTopology::Ring { cubes } => obj(vec![
                ("kind", Json::Str("ring".into())),
                ("cubes", Json::Int(cubes as i128)),
            ]),
            FabricTopology::Mesh { cols, rows } => obj(vec![
                ("kind", Json::Str("mesh".into())),
                ("cols", Json::Int(cols as i128)),
                ("rows", Json::Int(rows as i128)),
            ]),
        }
    }

    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new("fabric", value)?;
        let kind = r.str("kind")?.to_string();
        let out = match kind.as_str() {
            "single" => FabricTopology::Single,
            "chain" => FabricTopology::Chain { cubes: r.u64("cubes")? as u8 },
            "ring" => FabricTopology::Ring { cubes: r.u64("cubes")? as u8 },
            "mesh" => {
                FabricTopology::Mesh { cols: r.u64("cols")? as u8, rows: r.u64("rows")? as u8 }
            }
            other => {
                return Err(JsonError {
                    message: format!("fabric: unknown kind `{other}`"),
                })
            }
        };
        r.finish()?;
        Ok(out)
    }
}

/// Version tag written into every scenario file. Bump when the format
/// changes shape; the loader rejects any other value loudly.
pub const SCHEMA_VERSION: u64 = 1;

/// One point in the fuzzed cross-product: a workload kernel, a device
/// configuration (fault plan included), and the variant engine
/// configuration to compare against the sequential reference.
///
/// A scenario is **self-contained**: serialized to JSON it carries
/// everything needed to replay the experiment on a machine that has
/// only this file and the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Generator provenance: the per-scenario seed this was sampled
    /// from (kept for reporting; replay does not depend on it).
    pub seed: u64,
    /// Device configuration, fault plan included.
    pub device: DeviceConfig,
    /// The workload.
    pub kernel: KernelDescriptor,
    /// Variant execution engine (the reference is always sequential).
    pub exec: ExecMode,
    /// Variant idle-cycle skipping (the reference always runs with
    /// skipping off).
    pub skip: SkipMode,
    /// Attach the sanitizer (report policy) to the variant run.
    pub sanitizer: bool,
    /// Attach full telemetry to the variant run.
    pub telemetry: bool,
    /// Attach the flight recorder (structured trace ring) to the
    /// variant run. The recorder is contracted to be zero-perturbation,
    /// so this axis fuzzes that contract differentially.
    pub trace: bool,
    /// Bank-timing backend. Unlike the engine axes, this one affects
    /// behaviour, so it is applied to the reference AND the variant:
    /// the differential contract is that exec/skip/observer axes stay
    /// bit-identical *under every backend*.
    pub timing: TimingSelect,
    /// Multi-cube fabric. Like `timing` this is behaviour, not an
    /// engine variant: both sides instantiate the same fabric, and the
    /// engine axes must stay bit-identical across its idle cubes.
    pub fabric: FabricTopology,
}

impl Scenario {
    /// Cross-axis invariants that individual field parsers cannot
    /// see. Applied by the generator (as an internal check) and by
    /// the corpus loader (so a hand-edited file fails loudly).
    pub fn validate(&self) -> Result<(), JsonError> {
        self.kernel.validate()?;
        if !self.device.fault.link_schedule.is_empty() && !self.kernel.tolerates_link_outage() {
            return Err(JsonError {
                message: format!(
                    "scenario: kernel `{}` does not tolerate scheduled link outages \
                     (only raw_ops may be paired with a fault-plan link_schedule)",
                    self.kernel.name()
                ),
            });
        }
        // The fabric's own preconditions (ring size, full mesh grid,
        // cube cap) live in the simulator's validator; surface them
        // here so a hand-edited corpus file fails at load, not replay.
        self.fabric
            .sim_config(self.device.clone())
            .validate()
            .map_err(|e| JsonError { message: format!("scenario: invalid fabric: {e}") })?;
        Ok(())
    }

    /// The simulation configuration both differential sides run: the
    /// scenario's fabric instantiated around its device config.
    pub fn sim_config(&self) -> SimConfig {
        self.fabric.sim_config(self.device.clone())
    }

    /// A rough size metric used to judge shrink quality (smaller is
    /// better): the sum of the scenario's magnitude-carrying knobs.
    pub fn weight(&self) -> u64 {
        let kernel = match self.kernel {
            KernelDescriptor::RawOps { ops, gap, drain, .. } => {
                ops as u64 + gap as u64 + drain as u64
            }
            KernelDescriptor::Counter { threads, increments, .. } => {
                threads as u64 * increments as u64
            }
            KernelDescriptor::Gups { updates, window, .. } => updates as u64 + window as u64,
            KernelDescriptor::Triad { elements, window, .. } => elements as u64 + window as u64,
            KernelDescriptor::Mutex { threads, .. } => threads as u64 * 8,
            KernelDescriptor::Barrier { threads, rounds } => threads as u64 * rounds as u64,
        };
        let exec = match self.exec {
            ExecMode::Sequential => 0,
            ExecMode::Parallel { threads } => threads as u64,
        };
        let fault = &self.device.fault;
        let fault_weight = (fault.poison_per_million as u64 / 1_000)
            + (fault.vault_error_per_million as u64 / 1_000)
            + fault.link_schedule.len() as u64 * 8;
        let timing = match self.timing {
            TimingSelect::FixedLatency => 0,
            TimingSelect::RowBuffer => 1,
            TimingSelect::Validated => 2,
        };
        // A single cube weighs nothing (the historic shape); every
        // extra cube counts, so shrinking pulls toward Single.
        let fabric = self.fabric.cube_count() as u64 - 1;
        kernel + exec + fault_weight + self.sanitizer as u64 + self.telemetry as u64
            + self.trace as u64 + timing + fabric
    }

    /// Serializes the scenario as a versioned self-contained JSON
    /// object.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("schema_version", Json::Int(SCHEMA_VERSION as i128)),
            ("seed", Json::Int(self.seed as i128)),
            ("device", device_config_to_json(&self.device)),
            ("kernel", self.kernel.to_json()),
            ("exec_threads", exec_mode_to_json(self.exec)),
            ("skip", skip_mode_to_json(self.skip)),
            ("sanitizer", Json::Bool(self.sanitizer)),
            ("telemetry", Json::Bool(self.telemetry)),
            ("trace", Json::Bool(self.trace)),
            ("timing", timing_select_to_json(self.timing)),
            ("fabric", self.fabric.to_json()),
        ])
    }

    /// Deserializes a scenario, enforcing the schema version before
    /// touching any other field and rejecting unknown fields.
    pub fn from_json(value: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new("scenario", value)?;
        let version = r.u64("schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(JsonError {
                message: format!(
                    "scenario: unsupported schema_version {version} (this build reads \
                     version {SCHEMA_VERSION})"
                ),
            });
        }
        let scenario = Scenario {
            seed: r.u64("seed")?,
            device: device_config_from_json(r.required("device")?)?,
            kernel: KernelDescriptor::from_json(r.required("kernel")?)?,
            exec: exec_mode_from_json(r.required("exec_threads")?)?,
            skip: skip_mode_from_json(r.required("skip")?)?,
            sanitizer: r.bool("sanitizer")?,
            telemetry: r.bool("telemetry")?,
            // Older corpus files predate the tracing axis; absent
            // means off.
            trace: match r.optional("trace") {
                None => false,
                Some(v) => v.as_bool().ok_or(JsonError {
                    message: "scenario: field `trace` must be a bool".into(),
                })?,
            },
            // Older corpus files predate the timing axis; absent means
            // the default FixedLatency backend. A present-but-unknown
            // backend name still fails loudly in the parser.
            timing: match r.optional("timing") {
                None => TimingSelect::FixedLatency,
                Some(v) => timing_select_from_json(v)?,
            },
            // Older corpus files predate the fabric axis; absent means
            // the historic single-cube shape.
            fabric: match r.optional("fabric") {
                None => FabricTopology::Single,
                Some(v) => FabricTopology::from_json(v)?,
            },
        };
        // Reproducers may carry an embedded Perfetto timeline
        // alongside the scenario; it is forensic context, not replay
        // input.
        let _ = r.optional("traceEvents");
        r.finish()?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Parses a scenario from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Scenario {
        Scenario {
            seed: 42,
            device: DeviceConfig::gen2_4link_4gb(),
            kernel: KernelDescriptor::Barrier { threads: 4, rounds: 2 },
            exec: ExecMode::Parallel { threads: 4 },
            skip: SkipMode::On,
            sanitizer: true,
            telemetry: false,
            trace: true,
            timing: TimingSelect::RowBuffer,
            fabric: FabricTopology::Chain { cubes: 3 },
        }
    }

    #[test]
    fn scenario_round_trips() {
        let s = sample();
        let text = s.to_json().render();
        assert_eq!(Scenario::from_json_str(&text).unwrap(), s);
    }

    #[test]
    fn unknown_version_is_rejected_with_version_in_message() {
        let mut s = sample().to_json();
        if let Json::Obj(fields) = &mut s {
            fields[0].1 = Json::Int(99);
        }
        let e = Scenario::from_json_str(&s.render()).unwrap_err();
        assert!(e.message.contains("schema_version 99"), "{}", e.message);
        assert!(e.message.contains("version 1"), "{}", e.message);
    }

    #[test]
    fn missing_trace_field_defaults_off_and_trace_events_are_ignored() {
        let mut s = sample().to_json();
        if let Json::Obj(fields) = &mut s {
            fields.retain(|(k, _)| k != "trace");
            fields.push(("traceEvents".into(), Json::Arr(vec![])));
        }
        let loaded = Scenario::from_json_str(&s.render()).unwrap();
        assert!(!loaded.trace, "absent trace field must default to off");
        assert_eq!(Scenario { trace: true, ..loaded }, sample());
    }

    #[test]
    fn missing_timing_field_defaults_fixed_and_unknown_backends_reject() {
        let mut s = sample().to_json();
        if let Json::Obj(fields) = &mut s {
            fields.retain(|(k, _)| k != "timing");
        }
        let loaded = Scenario::from_json_str(&s.render()).unwrap();
        assert_eq!(
            loaded.timing,
            TimingSelect::FixedLatency,
            "absent timing field must default to the fixed backend"
        );

        let mut s = sample().to_json();
        if let Json::Obj(fields) = &mut s {
            for (k, v) in fields.iter_mut() {
                if k == "timing" {
                    *v = Json::Str("warp_drive".into());
                }
            }
        }
        let e = Scenario::from_json_str(&s.render()).unwrap_err();
        assert!(e.message.contains("unknown timing backend"), "{}", e.message);
    }

    #[test]
    fn unknown_top_level_field_is_rejected() {
        let mut s = sample().to_json();
        if let Json::Obj(fields) = &mut s {
            fields.push(("comment".into(), Json::Str("hi".into())));
        }
        let e = Scenario::from_json_str(&s.render()).unwrap_err();
        assert!(e.message.contains("comment"), "{}", e.message);
    }

    #[test]
    fn link_schedule_requires_tolerant_kernel() {
        let mut s = sample();
        s.device.fault = hmc_sim::FaultPlan::seeded(1).with_link_event(100, 0, false);
        assert!(s.validate().is_err());
        s.kernel = KernelDescriptor::RawOps { ops: 8, seed: 1, gap: 0, drain: 32 };
        assert!(s.validate().is_ok());
    }

    #[test]
    fn missing_fabric_field_defaults_single_and_invalid_fabrics_reject() {
        let mut s = sample().to_json();
        if let Json::Obj(fields) = &mut s {
            fields.retain(|(k, _)| k != "fabric");
        }
        let loaded = Scenario::from_json_str(&s.render()).unwrap();
        assert_eq!(
            loaded.fabric,
            FabricTopology::Single,
            "absent fabric field must default to one cube"
        );

        // A two-cube ring fails the simulator's precondition; the
        // loader must refuse it rather than defer the blowup to replay.
        let mut bad = sample();
        bad.fabric = FabricTopology::Ring { cubes: 2 };
        let text = bad.to_json().render();
        let e = Scenario::from_json_str(&text).unwrap_err();
        assert!(e.message.contains("invalid fabric"), "{}", e.message);
    }

    #[test]
    fn fabric_axis_weighs_by_extra_cubes() {
        let single = Scenario { fabric: FabricTopology::Single, ..sample() };
        let mesh = Scenario { fabric: FabricTopology::Mesh { cols: 2, rows: 2 }, ..sample() };
        assert_eq!(mesh.weight() - single.weight(), 3, "three extra cubes");
    }
}
