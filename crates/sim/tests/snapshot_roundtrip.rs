//! Lossless snapshot↔JSON round-trip properties across the full
//! configuration matrix (fault plans × sanitizer × telemetry × skip
//! mode), with live mid-flight traffic in every structure.
//!
//! The contract under test: for ANY reachable machine state `s`,
//! `SimSnapshot::from_json(s.to_json_full())` reproduces `s`
//! **bit-identically** — same fingerprint, same re-rendered bytes, and
//! a device restored from the parsed snapshot continues from exactly
//! the captured state.

use hmc_sim::{
    DeviceConfig, FaultPlan, HmcSim, LinkErrorMode, SanitizerConfig, SimSnapshot, SkipMode,
    TelemetryConfig,
};
use hmc_types::{HmcError, HmcRqst};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct MatrixPoint {
    faults: bool,
    sanitizer: bool,
    telemetry: bool,
    skip: bool,
}

fn arb_point() -> impl Strategy<Value = MatrixPoint> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(faults, sanitizer, telemetry, skip)| MatrixPoint { faults, sanitizer, telemetry, skip },
    )
}

fn build_sim(point: &MatrixPoint, seed: u64) -> HmcSim {
    let mut config = DeviceConfig::gen2_4link_4gb();
    if point.faults {
        config.fault = FaultPlan {
            seed,
            link_error: LinkErrorMode::EveryNth(7),
            poison_per_million: 200_000,
            vault_error_per_million: 100_000,
            link_schedule: Vec::new(),
        };
    }
    let mut sim = HmcSim::new(config).expect("valid config");
    if point.skip {
        sim.set_skip_mode(SkipMode::On);
    }
    if point.sanitizer {
        sim.enable_sanitizer(SanitizerConfig::report());
    }
    if point.telemetry {
        sim.enable_telemetry(TelemetryConfig::with_window(64));
    }
    sim
}

/// Drives mixed traffic and stops mid-flight, so queues, tag pools,
/// in-transit packets and host_rx are all populated when snapshotted.
fn drive(sim: &mut HmcSim, addrs: &[u64]) {
    for (i, &a) in addrs.iter().enumerate() {
        let link = i % 4;
        let cmd = match i % 4 {
            0 => HmcRqst::Rd64,
            1 => HmcRqst::Wr16,
            2 => HmcRqst::Inc8,
            _ => HmcRqst::Rd16,
        };
        let payload: Vec<u64> = match cmd {
            HmcRqst::Wr16 => vec![a ^ 0xDEAD, a],
            _ => vec![],
        };
        match sim.send_simple(0, link, cmd, (a * 16) & !15, payload) {
            Ok(_) => {}
            Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {}
            Err(e) => panic!("unexpected send error: {e}"),
        }
        sim.clock();
    }
    // A couple more cycles so responses are in flight / parked in
    // host_rx, but deliberately NOT drained to quiescence.
    sim.clock();
    sim.clock();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot → JSON → parse is lossless at every matrix point:
    /// identical fingerprint AND byte-identical re-rendered JSON
    /// (the latter also covers sanitizer shadow state, which the
    /// fingerprint deliberately excludes).
    #[test]
    fn json_round_trip_is_lossless(
        point in arb_point(),
        seed in 1u64..u64::MAX,
        addrs in prop::collection::vec(0u64..2048, 8..48),
    ) {
        let mut sim = build_sim(&point, seed);
        drive(&mut sim, &addrs);

        let snap = sim.snapshot();
        let text = snap.to_json_full();
        let parsed = SimSnapshot::from_json(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        prop_assert_eq!(parsed.fingerprint(), snap.fingerprint(), "fingerprint drift");
        prop_assert_eq!(parsed.to_json_full(), text, "re-render is not byte-identical");
    }

    /// A device restored from the *parsed* snapshot is
    /// indistinguishable from the original: same state fingerprint at
    /// the restore point, and bit-identical after running the same
    /// traffic forward on both.
    #[test]
    fn restore_from_parsed_snapshot_continues_identically(
        point in arb_point(),
        seed in 1u64..u64::MAX,
        addrs in prop::collection::vec(0u64..2048, 8..32),
        tail in prop::collection::vec(0u64..2048, 4..16),
    ) {
        let mut sim = build_sim(&point, seed);
        drive(&mut sim, &addrs);

        let snap = sim.snapshot();
        let live_fp = sim.state_fingerprint();
        let parsed = SimSnapshot::from_json(&snap.to_json_full())
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;

        // Perturb the original, then rewind it from the parsed copy.
        drive(&mut sim, &tail);
        sim.restore(&parsed).map_err(|e| TestCaseError::fail(format!("restore: {e}")))?;
        prop_assert_eq!(sim.state_fingerprint(), live_fp, "restore point drifted");

        // Both timelines replay the same tail and must stay identical.
        let mut twin = build_sim(&point, seed);
        twin.restore(&parsed).map_err(|e| TestCaseError::fail(format!("restore: {e}")))?;
        drive(&mut sim, &tail);
        drive(&mut twin, &tail);
        prop_assert_eq!(sim.state_fingerprint(), twin.state_fingerprint());
    }
}

/// The deterministic corner the fuzz matrix rarely hits: a completely
/// fresh device (no traffic at all) round-trips too.
#[test]
fn pristine_device_round_trips() {
    let sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    let snap = sim.snapshot();
    let parsed = SimSnapshot::from_json(&snap.to_json_full()).unwrap();
    assert_eq!(parsed.fingerprint(), snap.fingerprint());
    assert_eq!(parsed.to_json_full(), snap.to_json_full());
}

/// Quiescent-after-drain state (empty queues but populated stats,
/// memory and histograms) round-trips.
#[test]
fn drained_device_round_trips() {
    let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
    drive(&mut sim, &[1, 2, 3, 5, 8, 13, 21, 34]);
    sim.drain(1_000_000);
    let snap = sim.snapshot();
    let parsed = SimSnapshot::from_json(&snap.to_json_full()).unwrap();
    assert_eq!(parsed.fingerprint(), snap.fingerprint());
    assert_eq!(parsed.to_json_full(), snap.to_json_full());
}
