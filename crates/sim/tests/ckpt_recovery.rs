//! Crash-injection tests for the durable checkpoint store.
//!
//! Every failure mode a kill can leave behind — truncation at each
//! byte-boundary class, bit flips in header and body, a stale `.tmp`
//! from a crash before the rename — must be quarantined loudly
//! (renamed `.corrupt`, reported in the [`OpenReport`]) and recovery
//! must always land on the newest generation that still validates.

use hmc_sim::{CheckpointStore, OpenReport};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("hmc-ckpt-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A store with generations 1..=n, each with a distinct body.
fn seeded_store(dir: &Path, n: u64) -> CheckpointStore {
    let mut store = CheckpointStore::open(dir, usize::MAX).unwrap().store;
    for g in 1..=n {
        store.commit(g * 100, g ^ 0xF00D, format!("body of generation {g}").as_bytes()).unwrap();
    }
    store
}

fn open(dir: &Path) -> OpenReport {
    CheckpointStore::open(dir, usize::MAX).unwrap()
}

/// Byte-boundary classes for truncation of a header+body file.
fn truncation_points(data: &[u8]) -> Vec<(usize, &'static str)> {
    let nl = data.iter().position(|&b| b == b'\n').expect("header line");
    vec![
        (0, "empty file"),
        (nl / 2, "mid-header"),
        (nl, "end of header, newline lost"),
        (nl + 1, "header intact, body entirely lost"),
        (nl + 1 + (data.len() - nl - 1) / 2, "mid-body"),
        (data.len() - 1, "final byte lost"),
    ]
}

#[test]
fn truncation_at_every_byte_class_is_quarantined() {
    for class in 0..6 {
        let dir = tmpdir(&format!("trunc-{class}"));
        let store = seeded_store(&dir, 3);
        let victim = store.path_of(3);
        let data = fs::read(&victim).unwrap();
        let (cut, label) = truncation_points(&data)[class];
        fs::write(&victim, &data[..cut]).unwrap();

        let report = open(&dir);
        assert_eq!(
            report.quarantined.len(),
            1,
            "truncation class `{label}` must quarantine exactly the victim"
        );
        assert!(
            report.quarantined[0].path.to_string_lossy().ends_with(".corrupt"),
            "victim must be renamed .corrupt"
        );
        assert!(!victim.exists(), "original victim path must be vacated");
        let latest = report.latest.expect("older generations survive");
        assert_eq!(latest.generation, 2, "recovery lands on the last good generation");
        assert_eq!(latest.body, b"body of generation 2");
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn body_bit_flip_is_a_crc_quarantine() {
    let dir = tmpdir("bitflip-body");
    let store = seeded_store(&dir, 2);
    let victim = store.path_of(2);
    let mut data = fs::read(&victim).unwrap();
    let last = data.len() - 1;
    data[last] ^= 0x01;
    fs::write(&victim, &data).unwrap();

    let report = open(&dir);
    assert_eq!(report.quarantined.len(), 1);
    assert!(
        report.quarantined[0].reason.contains("CRC"),
        "reason names the CRC mismatch: {}",
        report.quarantined[0].reason
    );
    assert_eq!(report.latest.unwrap().generation, 1);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn header_bit_flip_is_quarantined() {
    let dir = tmpdir("bitflip-header");
    let store = seeded_store(&dir, 2);
    let victim = store.path_of(2);
    let mut data = fs::read(&victim).unwrap();
    data[1] ^= 0x04; // inside the first header key
    fs::write(&victim, &data).unwrap();

    let report = open(&dir);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.latest.unwrap().generation, 1);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_magic_and_bad_version_are_quarantined() {
    let dir = tmpdir("magic-version");
    let store = seeded_store(&dir, 1);
    // Hand-craft two invalid generation files alongside the good one.
    fs::write(
        store.path_of(2),
        b"{\"magic\":\"not-a-ckpt\",\"version\":1,\"cycle\":1,\"fingerprint\":1,\
          \"body_len\":1,\"body_crc32\":0}\nX",
    )
    .unwrap();
    fs::write(
        store.path_of(3),
        b"{\"magic\":\"hmc-ckpt\",\"version\":99,\"cycle\":1,\"fingerprint\":1,\
          \"body_len\":1,\"body_crc32\":0}\nX",
    )
    .unwrap();

    let report = open(&dir);
    assert_eq!(report.quarantined.len(), 2);
    let reasons: Vec<&str> = report.quarantined.iter().map(|q| q.reason.as_str()).collect();
    assert!(reasons.iter().any(|r| r.contains("magic")), "{reasons:?}");
    assert!(reasons.iter().any(|r| r.contains("version")), "{reasons:?}");
    assert_eq!(report.latest.unwrap().generation, 1, "only the genuine file is used");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn body_len_mismatch_is_quarantined() {
    let dir = tmpdir("bodylen");
    let store = seeded_store(&dir, 2);
    let victim = store.path_of(2);
    let data = fs::read(&victim).unwrap();
    let mut extended = data.clone();
    extended.extend_from_slice(b"trailing garbage after the declared body");
    fs::write(&victim, &extended).unwrap();

    let report = open(&dir);
    assert_eq!(report.quarantined.len(), 1);
    assert!(
        report.quarantined[0].reason.contains("truncated body")
            || report.quarantined[0].reason.contains("bytes"),
        "{}",
        report.quarantined[0].reason
    );
    assert_eq!(report.latest.unwrap().generation, 1);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_tmp_from_kill_before_rename_is_quarantined() {
    let dir = tmpdir("staletmp");
    let store = seeded_store(&dir, 2);
    // Simulate a kill between the tmp write and the rename: a partial
    // next-generation file with the tmp suffix.
    let tmp = dir.join("ckpt-3.json.tmp");
    fs::write(&tmp, b"{\"magic\":\"hmc-ckpt\",\"ver").unwrap();

    let report = open(&dir);
    assert_eq!(report.quarantined.len(), 1);
    assert!(
        report.quarantined[0].reason.contains("crash before rename"),
        "{}",
        report.quarantined[0].reason
    );
    assert!(!tmp.exists(), "tmp must be renamed aside");
    assert!(dir.join("ckpt-3.json.tmp.corrupt").exists());
    // The good generations are untouched and the newest one wins.
    assert_eq!(report.latest.unwrap().generation, 2);
    // A committed generation after recovery does not collide with
    // anything the crash left behind.
    let mut store2 = CheckpointStore::open(&dir, usize::MAX).unwrap().store;
    store2.commit(300, 3, b"post-recovery").unwrap();
    assert_eq!(open(&dir).latest.unwrap().body, b"post-recovery");
    let _ = store;
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn quarantined_files_are_never_rescanned_or_deleted() {
    let dir = tmpdir("idempotent");
    let store = seeded_store(&dir, 2);
    let victim = store.path_of(2);
    let data = fs::read(&victim).unwrap();
    fs::write(&victim, &data[..data.len() / 2]).unwrap();

    let first = open(&dir);
    assert_eq!(first.quarantined.len(), 1);
    let corrupt_path = first.quarantined[0].path.clone();
    // A second open reports nothing new but keeps the evidence.
    let second = open(&dir);
    assert!(second.quarantined.is_empty(), "already-quarantined files are not re-reported");
    assert!(corrupt_path.exists(), "quarantined evidence is preserved, never deleted");
    assert_eq!(second.latest.unwrap().generation, 1);
    fs::remove_dir_all(&dir).unwrap();
}

#[derive(Debug, Clone)]
enum Damage {
    Truncate(usize),
    FlipBit { offset: usize, bit: u8 },
}

fn arb_damage() -> impl Strategy<Value = Damage> {
    prop_oneof![
        (0usize..10_000).prop_map(Damage::Truncate),
        ((0usize..10_000), (0u8..8)).prop_map(|(offset, bit)| Damage::FlipBit { offset, bit }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever damage a crash inflicts on any suffix of the
    /// generation chain, `open` always recovers the newest UNDAMAGED
    /// generation with its exact body, and quarantines every damaged
    /// file it inspected.
    #[test]
    fn recovery_always_lands_on_the_last_good_generation(
        total in 2u64..6,
        damaged_suffix in 1u64..5,
        damages in prop::collection::vec(arb_damage(), 1..5),
        case in 0u32..1_000_000,
    ) {
        let dir = tmpdir(&format!("prop-{case}-{total}-{damaged_suffix}"));
        let store = seeded_store(&dir, total);
        let first_damaged = total.saturating_sub(damaged_suffix.min(total - 1)) + 1;
        let mut expected_quarantines = 0usize;
        for (i, gen) in (first_damaged..=total).enumerate() {
            let path = store.path_of(gen);
            let mut data = fs::read(&path).unwrap();
            let damage = &damages[i % damages.len()];
            match damage {
                // Any proper-prefix truncation invalidates the file:
                // either the header line is gone or the body is short.
                Damage::Truncate(at) => {
                    let at = *at % data.len();
                    data.truncate(at);
                }
                // Bit flips target the body, where the CRC catches
                // every single-bit error. (A flip inside a header
                // *digit* could yield a different-but-valid header,
                // which is exactly why the fingerprint is re-verified
                // at resume time — see the replay CLI.)
                Damage::FlipBit { offset, bit } => {
                    let nl = data.iter().position(|&b| b == b'\n').unwrap();
                    let body_len = data.len() - nl - 1;
                    let at = nl + 1 + (*offset % body_len);
                    data[at] ^= 1 << bit;
                }
            }
            fs::write(&path, &data).unwrap();
            expected_quarantines += 1;
        }

        let report = open(&dir);
        let last_good = first_damaged - 1;
        prop_assert_eq!(report.quarantined.len(), expected_quarantines,
            "every damaged file is quarantined");
        let latest = report.latest.expect("an undamaged generation remains");
        prop_assert_eq!(latest.generation, last_good);
        prop_assert_eq!(latest.body, format!("body of generation {last_good}").into_bytes());
        fs::remove_dir_all(&dir).unwrap();
    }
}
