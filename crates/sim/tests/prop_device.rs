//! Property tests for the device model: pipeline invariants under
//! random geometry and traffic.

use hmc_sim::{DeviceConfig, HmcSim};
use hmc_types::{HmcError, HmcRqst};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = DeviceConfig> {
    (
        prop::sample::select(vec![2usize, 4, 8]),
        prop::sample::select(vec![32usize, 64, 128, 256]),
        1usize..=4,
        prop::sample::select(vec![2usize, 8, 64]),
        prop::sample::select(vec![4usize, 128]),
    )
        .prop_map(|(links, block, vb, vq, xq)| DeviceConfig {
            links,
            block_size: block,
            vault_bandwidth: vb,
            vault_queue_depth: vq,
            xbar_queue_depth: xq,
            ..DeviceConfig::gen2_4link_4gb()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the geometry, an uncontended read round-trips in
    /// exactly three cycles and returns the written data.
    #[test]
    fn uncontended_round_trip_is_geometry_independent(
        config in arb_config(),
        addr_block in 0u64..4096,
        value in any::<u64>(),
    ) {
        let addr = addr_block * 16;
        let mut sim = HmcSim::new(config).unwrap();
        sim.mem_write_u64(0, addr, value).unwrap();
        let tag = sim.send_simple(0, 0, HmcRqst::Rd16, addr, vec![]).unwrap().unwrap();
        let rsp = sim.run_until_response(0, 0, tag, 100).unwrap();
        prop_assert_eq!(rsp.latency, 3);
        prop_assert_eq!(rsp.rsp.payload[0], value);
    }

    /// Conservation holds under random traffic for every geometry:
    /// accepted non-posted requests == delivered responses.
    #[test]
    fn conservation_over_random_geometry(
        config in arb_config(),
        addrs in prop::collection::vec(0u64..512, 1..80),
    ) {
        let links = config.links;
        let mut sim = HmcSim::new(config).unwrap();
        let mut sent = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            match sim.send_simple(0, i % links, HmcRqst::Inc8, a * 8, vec![]) {
                Ok(_) => sent += 1,
                Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {}
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
            sim.clock();
        }
        sim.drain(1_000_000);
        prop_assert!(sim.is_quiescent());
        let mut got = 0u64;
        for link in 0..links {
            while sim.recv(0, link).is_some() {
                got += 1;
            }
        }
        prop_assert_eq!(got, sent);
    }

    /// Statistics identities: executed = responses + posted +
    /// flow + error-posted adjustments; FLIT counters are nonzero iff
    /// traffic flowed.
    #[test]
    fn stats_identities(
        n_acked in 1usize..30,
        n_posted in 0usize..30,
    ) {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        for i in 0..n_acked {
            let tag = sim
                .send_simple(0, i % 4, HmcRqst::Wr16, (i as u64) * 64, vec![1, 2])
                .unwrap().unwrap();
            sim.run_until_response(0, i % 4, tag, 1000).unwrap();
        }
        for i in 0..n_posted {
            let _ = sim.send_simple(0, i % 4, HmcRqst::PWr16, (i as u64) * 64, vec![3, 4]);
            sim.clock();
        }
        sim.drain(100_000);
        let stats = sim.stats(0).unwrap();
        prop_assert_eq!(stats.writes, n_acked as u64);
        prop_assert_eq!(stats.responses, n_acked as u64);
        prop_assert_eq!(stats.latency.count(), n_acked as u64);
        // Each WR16 = 2 rqst flits; each ack = 1 rsp flit.
        prop_assert_eq!(stats.rqst_flits, 2 * (n_acked + stats.posted_writes as usize) as u64);
        prop_assert_eq!(stats.rsp_flits, n_acked as u64);
    }

    /// The bank row-buffer counters partition all accesses.
    #[test]
    fn row_buffer_counters_partition_accesses(
        addrs in prop::collection::vec(0u64..64, 1..60),
        hit_lat in 0u64..3,
        miss_lat in 0u64..6,
    ) {
        let mut config = DeviceConfig::gen2_4link_4gb();
        config.bank_timing = hmc_sim::BankTiming {
            row_hit: hit_lat,
            row_miss: miss_lat,
            policy: hmc_sim::RowPolicy::OpenPage,
        };
        let mut sim = HmcSim::new(config).unwrap();
        let mut accepted = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            match sim.send_simple(0, i % 4, HmcRqst::Rd16, a * 16, vec![]) {
                Ok(_) => accepted += 1,
                Err(HmcError::Stall) | Err(HmcError::TagsExhausted) => {}
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
            sim.clock();
        }
        sim.drain(1_000_000);
        let (hits, misses) = sim.row_buffer_stats(0).unwrap();
        prop_assert_eq!(hits + misses, accepted, "every access is a hit or a miss");
    }
}
