//! Seeded fault-injection plans (paper §IV-B: "the simulator provides
//! mechanisms to inject transient link errors and observe the retry
//! behaviour of the device").
//!
//! A [`FaultPlan`] is pure configuration data — `Clone + Eq`, embedded
//! in [`DeviceConfig`](crate::config::DeviceConfig) — that drives four
//! independent fault classes:
//!
//! * **link transmission errors** ([`LinkErrorMode`]): a packet is
//!   corrupted in flight, caught by the receive-path CRC-32K check and
//!   replayed from the transmitter's retry buffer after
//!   `retry_latency` cycles;
//! * **packet poisoning**: a read response is delivered with the
//!   data-invalid (`DINV`) bit set, signalling the host that the
//!   payload cannot be trusted;
//! * **vault internal errors**: a request is answered with an ERROR
//!   response carrying a nonzero `ERRSTAT` *instead of* being
//!   executed (so a host-side retry is always safe);
//! * **scheduled link-down / link-up events** ([`LinkEvent`]): a link
//!   goes dark for a window of cycles and the crossbar re-routes its
//!   response traffic through the surviving links.
//!
//! All randomness comes from a dependency-free xorshift64\* PRNG
//! ([`FaultRng`]) seeded from the plan, so every run is exactly
//! reproducible per seed. Probabilities are integer
//! parts-per-million, which keeps the plan `Eq` (no floats) and makes
//! "disabled" (`0`) draw **nothing** from the PRNG — a device with
//! `FaultPlan::none()` is cycle-for-cycle identical to one built
//! before this module existed.

use hmc_types::HmcError;

/// Deterministic xorshift64\* PRNG for fault draws.
///
/// The raw seed is scrambled through SplitMix64 so that small,
/// human-friendly seeds (0, 1, 2, ...) still produce well-mixed
/// streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultRng { state: (z ^ (z >> 31)) | 1 }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// The raw internal PRNG state (checkpoint serialization). The
    /// value is the post-scramble xorshift state, not the user seed —
    /// restore it with [`FaultRng::from_raw_state`], never
    /// [`FaultRng::new`].
    pub(crate) fn raw_state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from [`FaultRng::raw_state`] output,
    /// resuming the stream exactly where the snapshot left it. A zero
    /// state (impossible from `new`, possible from a corrupt
    /// checkpoint) is forced odd to keep xorshift out of its fixed
    /// point.
    pub(crate) fn from_raw_state(state: u64) -> Self {
        FaultRng { state: state | ((state == 0) as u64) }
    }

    /// Bernoulli draw with probability `per_million / 1_000_000`.
    ///
    /// A zero probability returns `false` **without consuming PRNG
    /// state**, so disabled fault classes leave the stream untouched
    /// and enabling one class never perturbs the draws of another
    /// run configuration with that class off.
    pub fn chance(&mut self, per_million: u32) -> bool {
        if per_million == 0 {
            return false;
        }
        self.below(1_000_000) < per_million as u64
    }
}

/// How link transmission errors are injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkErrorMode {
    /// No transmission errors.
    #[default]
    None,
    /// Deterministic: every Nth packet on each link errors (the
    /// behaviour of the legacy `LinkConfig::error_period` knob, which
    /// this mode absorbs).
    EveryNth(u64),
    /// Random: each packet errors with probability
    /// `per_million / 1_000_000`, drawn from the plan's seeded PRNG.
    Random {
        /// Per-packet error probability in parts per million.
        per_million: u32,
    },
}

/// One scheduled link state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    /// Cycle at which the event takes effect.
    pub cycle: u64,
    /// The affected link.
    pub link: usize,
    /// `true` brings the link up, `false` takes it down.
    pub up: bool,
}

/// A complete, reproducible fault schedule for one device.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and is
/// guaranteed not to perturb simulation behaviour in any way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed; runs with equal plans are bit-identical.
    pub seed: u64,
    /// Link transmission-error injection mode.
    pub link_error: LinkErrorMode,
    /// Probability (ppm) that a read response is poisoned (delivered
    /// with the `DINV` bit set).
    pub poison_per_million: u32,
    /// Probability (ppm) that a vault answers a request with an ERROR
    /// response (`ERRSTAT` = [`ERRSTAT_VAULT_FAULT`]) instead of
    /// executing it.
    pub vault_error_per_million: u32,
    /// Scheduled link-down/link-up events, sorted by cycle.
    pub link_schedule: Vec<LinkEvent>,
}

/// `ERRSTAT` value carried by injected vault internal errors.
pub const ERRSTAT_VAULT_FAULT: u8 = 0x30;

/// `ERRSTAT` value synthesized by the host driver when it gives up on
/// a request after exhausting its retry budget (never produced by the
/// device itself).
pub const ERRSTAT_HOST_GIVEUP: u8 = 0x7F;

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, zero perturbation.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            link_error: LinkErrorMode::None,
            poison_per_million: 0,
            vault_error_per_million: 0,
            link_schedule: Vec::new(),
        }
    }

    /// True when the plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.link_error == LinkErrorMode::None
            && self.poison_per_million == 0
            && self.vault_error_per_million == 0
            && self.link_schedule.is_empty()
    }

    /// An empty plan carrying a seed, ready for builder calls.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::none() }
    }

    /// Sets the link transmission-error mode.
    pub fn with_link_errors(mut self, mode: LinkErrorMode) -> Self {
        self.link_error = mode;
        self
    }

    /// Sets the read-response poison probability (ppm).
    pub fn with_poison(mut self, per_million: u32) -> Self {
        self.poison_per_million = per_million;
        self
    }

    /// Sets the vault internal-error probability (ppm).
    pub fn with_vault_errors(mut self, per_million: u32) -> Self {
        self.vault_error_per_million = per_million;
        self
    }

    /// Appends a scheduled link state change.
    pub fn with_link_event(mut self, cycle: u64, link: usize, up: bool) -> Self {
        self.link_schedule.push(LinkEvent { cycle, link, up });
        self
    }

    /// Validates the plan against a device's link count.
    pub fn validate(&self, links: usize) -> Result<(), HmcError> {
        let bad = |why: String| Err(HmcError::MalformedPacket(why));
        if self.poison_per_million > 1_000_000 {
            return bad(format!(
                "poison probability {} ppm exceeds 1_000_000",
                self.poison_per_million
            ));
        }
        if self.vault_error_per_million > 1_000_000 {
            return bad(format!(
                "vault error probability {} ppm exceeds 1_000_000",
                self.vault_error_per_million
            ));
        }
        match self.link_error {
            LinkErrorMode::EveryNth(0) => {
                return bad("link error period 0 (EveryNth requires N >= 1)".into());
            }
            LinkErrorMode::Random { per_million } if per_million > 1_000_000 => {
                return bad(format!(
                    "link error probability {per_million} ppm exceeds 1_000_000"
                ));
            }
            _ => {}
        }
        let mut last_cycle = 0;
        for (i, ev) in self.link_schedule.iter().enumerate() {
            if ev.link >= links {
                return bad(format!(
                    "link schedule event {i} targets link {} of a {links}-link device",
                    ev.link
                ));
            }
            if ev.cycle < last_cycle {
                return bad(format!(
                    "link schedule not sorted: event {i} at cycle {} after cycle {last_cycle}",
                    ev.cycle
                ));
            }
            last_cycle = ev.cycle;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert_eq!(plan, FaultPlan::default());
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::seeded(42)
            .with_link_errors(LinkErrorMode::Random { per_million: 1000 })
            .with_poison(500)
            .with_vault_errors(2000)
            .with_link_event(100, 1, false)
            .with_link_event(200, 1, true);
        assert!(!plan.is_none());
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.link_schedule.len(), 2);
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::seeded(1).with_poison(2_000_000).validate(4).is_err());
        assert!(FaultPlan::seeded(1).with_vault_errors(2_000_000).validate(4).is_err());
        assert!(FaultPlan::seeded(1)
            .with_link_errors(LinkErrorMode::EveryNth(0))
            .validate(4)
            .is_err());
        assert!(FaultPlan::seeded(1)
            .with_link_errors(LinkErrorMode::Random { per_million: 2_000_000 })
            .validate(4)
            .is_err());
        assert!(
            FaultPlan::seeded(1).with_link_event(0, 9, false).validate(4).is_err(),
            "link out of range"
        );
        assert!(
            FaultPlan::seeded(1)
                .with_link_event(200, 0, false)
                .with_link_event(100, 0, true)
                .validate(4)
                .is_err(),
            "unsorted schedule"
        );
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        let mut c = FaultRng::new(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chance_zero_never_draws() {
        let mut rng = FaultRng::new(3);
        let before = rng.clone();
        for _ in 0..100 {
            assert!(!rng.chance(0));
        }
        assert_eq!(rng, before, "chance(0) must not consume PRNG state");
        assert!(rng.chance(1_000_000), "certainty fires");
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut rng = FaultRng::new(99);
        let hits = (0..100_000).filter(|_| rng.chance(10_000)).count(); // 1%
        assert!((500..2_000).contains(&hits), "~1% of 100k, got {hits}");
    }
}
