//! Log2-bucketed mergeable latency histograms.
//!
//! [`Hist`] is the distribution primitive behind every latency and
//! stage-duration metric in the telemetry layer: recording is
//! integer-only (one `leading_zeros`, one array increment — no floats
//! on the hot path), two histograms merge by elementwise addition, and
//! quantiles resolve to a bucket upper bound clamped into the recorded
//! `[min, max]` range, which makes `quantile(p)` monotone in `p` and
//! always bounded by the true extremes.

/// Number of buckets: one for zero plus one per power-of-two range
/// (`[2^k, 2^(k+1))` for `k` in `0..64`).
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `i` (for `i >= 1`) holds
/// values in `[2^(i-1), 2^i - 1]` (the last bucket tops out at
/// `u64::MAX`). Exact count, sum, minimum and maximum ride along, so
/// means and extremes are not subject to bucketing error — only the
/// interior quantiles are, and those are bounded by one bucket width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    count: u64,
    sum: u64,
    /// `u64::MAX` sentinel while empty.
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a value lands in.
    #[inline]
    fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            64.. => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one sample. Integer-only: safe on the simulation hot
    /// path.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Merges another histogram into this one. Elementwise addition
    /// plus min/max combination, so merging is associative and
    /// commutative and parallel shards can be combined in any order.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty). Query-path
    /// only — no float ever touches `record`.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`p` in `[0, 1]`, clamped): the upper bound of
    /// the bucket holding the sample of rank `ceil(p * count)`,
    /// clamped into `[min, max]`. Monotone in `p` and bounded by the
    /// recorded extremes; 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Hist::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// The raw internal state `(count, sum, min, max, buckets)` —
    /// `min` keeps its `u64::MAX` empty sentinel, unlike the lossy
    /// [`Hist::min`] accessor. Checkpoint serialization uses this so a
    /// restored histogram is bit-identical.
    pub(crate) fn raw_parts(&self) -> (u64, u64, u64, u64, &[u64; BUCKETS]) {
        (self.count, self.sum, self.min, self.max, &self.buckets)
    }

    /// Rebuilds a histogram from [`Hist::raw_parts`] output.
    pub(crate) fn from_raw_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; BUCKETS],
    ) -> Self {
        Hist { count, sum, min, max, buckets }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs,
    /// ascending — the exporter's view.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_inert() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn exact_extremes_and_mean() {
        let mut h = Hist::new();
        for v in [6, 10, 2] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 2);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Hist::bucket_index(0), 0);
        assert_eq!(Hist::bucket_index(1), 1);
        assert_eq!(Hist::bucket_index(2), 2);
        assert_eq!(Hist::bucket_index(3), 2);
        assert_eq!(Hist::bucket_index(4), 3);
        assert_eq!(Hist::bucket_index(u64::MAX), 64);
        assert_eq!(Hist::bucket_upper(0), 0);
        assert_eq!(Hist::bucket_upper(2), 3);
        assert_eq!(Hist::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_match_sorted_percentiles_on_small_sets() {
        let mut h = Hist::new();
        h.record(3);
        h.record(5);
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p99(), 5);
        let mut same = Hist::new();
        for _ in 0..100 {
            same.record(7);
        }
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(same.quantile(p), 7);
        }
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        a.record(1);
        a.record(100);
        b.record(50);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.min(), 1);
        assert_eq!(ab.max(), 100);
        assert_eq!(ab.sum(), 151);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = Hist::new();
        for v in [3, 3, 4, 9, 17, 130, 131, 1000] {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= last, "monotone");
            assert!(q >= h.min() && q <= h.max(), "bounded");
            last = q;
        }
    }
}
