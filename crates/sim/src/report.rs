//! End-of-simulation reporting.
//!
//! Renders a device's statistics, queue pressure, link-protocol and
//! power accounting as a human-readable report or a CSV row — the
//! summary HMC-Sim users print after `hmcsim_free`.

use crate::sim::HmcSim;
use hmc_types::HmcError;

/// Renders a full text report for one device.
pub fn text_report(sim: &HmcSim, dev: usize) -> Result<String, HmcError> {
    use std::fmt::Write;
    let stats = sim.stats(dev)?;
    let config = sim.device_config(dev)?;
    let power = sim.power_report(dev)?;
    let (row_hits, row_misses) = sim.row_buffer_stats(dev)?;
    let mut out = String::new();
    let _ = writeln!(out, "=== device {dev} ({}) @ cycle {} ===", config.label(), sim.cycle());
    let _ = writeln!(
        out,
        "requests : {} total ({} rd, {} wr, {} posted-wr, {} atomic, {} cmc, {} mode, {} flow)",
        stats.total_requests(),
        stats.reads,
        stats.writes,
        stats.posted_writes,
        stats.atomics,
        stats.cmc_ops,
        stats.mode_ops,
        stats.flow_packets
    );
    let _ = writeln!(
        out,
        "responses: {} ({} errors); latency min/mean/max = {}/{:.2}/{} cycles",
        stats.responses,
        stats.error_responses,
        stats.latency.min(),
        stats.latency.mean(),
        stats.latency.max()
    );
    if !stats.latency.is_empty() {
        let _ = writeln!(
            out,
            "latency  : p50 {} / p90 {} / p99 {} / p999 {} cycles",
            stats.latency.p50(),
            stats.latency.p90(),
            stats.latency.p99(),
            stats.latency.p999()
        );
        for (class, h) in stats.class_latency.iter() {
            if !h.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:<6} : {} rsp, mean {:.2}, p50 {}, p99 {}",
                    class.name(),
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p99()
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "traffic  : {} rqst FLITs in, {} rsp FLITs out ({} wire bytes)",
        stats.rqst_flits,
        stats.rsp_flits,
        stats.link_bytes()
    );
    let _ = writeln!(
        out,
        "stalls   : {} send, {} xbar, {} vault; vault-queue high water {}",
        stats.send_stalls,
        stats.xbar_stalls,
        stats.vault_stalls,
        sim.vault_queue_high_water(dev)?
    );
    if row_hits + row_misses > 0 {
        let _ = writeln!(
            out,
            "dram     : {row_hits} row hits / {row_misses} row misses ({:.1}% hit rate)",
            100.0 * row_hits as f64 / (row_hits + row_misses) as f64
        );
    }
    let faults = stats.vault_faults
        + stats.poisoned_responses
        + stats.failover_responses
        + stats.abandoned_responses;
    if faults > 0 {
        let _ = writeln!(
            out,
            "faults   : {} vault, {} poisoned, {} failover, {} abandoned",
            stats.vault_faults,
            stats.poisoned_responses,
            stats.failover_responses,
            stats.abandoned_responses
        );
    }
    let mut link_lines = Vec::new();
    for link in 0..config.links {
        let ls = sim.link_stats(dev, link)?;
        if ls.packets_sent > 0 || ls.token_stalls > 0 || ls.retries > 0 {
            let crc = if ls.crc_errors > 0 {
                format!(", {} crc errors", ls.crc_errors)
            } else {
                String::new()
            };
            link_lines.push(format!(
                "  link {link}: {} packets, {} token stalls, {} retries{crc}",
                ls.packets_sent, ls.token_stalls, ls.retries
            ));
        }
    }
    if !link_lines.is_empty() {
        let _ = writeln!(out, "links    :");
        for l in link_lines {
            let _ = writeln!(out, "{l}");
        }
    }
    let _ = writeln!(
        out,
        "power    : {:.1} nJ total (link {:.1}, dram {:.1}, logic {:.1}, idle {:.1}); avg {:.2} mW",
        power.total_pj / 1e3,
        power.link_pj / 1e3,
        power.dram_pj / 1e3,
        power.logic_pj / 1e3,
        power.idle_pj / 1e3,
        power.avg_watts * 1e3
    );
    Ok(out)
}

/// The CSV header matching [`csv_row`].
pub const CSV_HEADER: &str = "device,cycle,total_requests,reads,writes,posted_writes,atomics,\
cmc_ops,responses,error_responses,rqst_flits,rsp_flits,send_stalls,xbar_stalls,vault_stalls,\
lat_min,lat_mean,lat_max,lat_p50,lat_p99,total_pj";

/// Renders one device's statistics as a CSV row (see [`CSV_HEADER`]).
pub fn csv_row(sim: &HmcSim, dev: usize) -> Result<String, HmcError> {
    let s = sim.stats(dev)?;
    let p = sim.power_report(dev)?;
    Ok(format!(
        "{dev},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{},{},{},{:.1}",
        sim.cycle(),
        s.total_requests(),
        s.reads,
        s.writes,
        s.posted_writes,
        s.atomics,
        s.cmc_ops,
        s.responses,
        s.error_responses,
        s.rqst_flits,
        s.rsp_flits,
        s.send_stalls,
        s.xbar_stalls,
        s.vault_stalls,
        s.latency.min(),
        s.latency.mean(),
        s.latency.max(),
        s.latency.p50(),
        s.latency.p99(),
        p.total_pj
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use hmc_types::HmcRqst;

    fn loaded_sim() -> HmcSim {
        let mut sim = HmcSim::new(DeviceConfig::gen2_4link_4gb()).unwrap();
        for i in 0..4u64 {
            let tag = sim
                .send_simple(0, i as usize % 4, HmcRqst::Inc8, 0x40, vec![])
                .unwrap()
                .unwrap();
            sim.run_until_response(0, i as usize % 4, tag, 100).unwrap();
        }
        sim
    }

    #[test]
    fn text_report_contains_key_sections() {
        let sim = loaded_sim();
        let report = text_report(&sim, 0).unwrap();
        assert!(report.contains("4Link-4GB"));
        assert!(report.contains("4 atomic"));
        assert!(report.contains("latency min/mean/max = 3/3.00/3"));
        assert!(report.contains("p50 3 / p90 3 / p99 3"));
        assert!(report.contains("atomic : 4 rsp"), "per-class breakdown: {report}");
        assert!(report.contains("power"));
        assert!(report.contains("link 0: 1 packets"));
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let sim = loaded_sim();
        let row = csv_row(&sim, 0).unwrap();
        assert_eq!(
            row.split(',').count(),
            CSV_HEADER.split(',').count(),
            "row: {row}"
        );
    }

    #[test]
    fn invalid_device_errors() {
        let sim = loaded_sim();
        assert!(text_report(&sim, 5).is_err());
        assert!(csv_row(&sim, 5).is_err());
    }
}
