//! # hmc-sim
//!
//! The HMC-Sim 2.0 device model: a cycle-based simulator for Hybrid
//! Memory Cube Gen2 devices.
//!
//! A [`HmcSim`] context owns one or more [`device::Device`]s. Each
//! device models the Gen2 hardware structure (paper §III):
//!
//! * **links** — 4 or 8 host/chain links, each with a crossbar request
//!   queue and a crossbar response queue (the paper's experiments use
//!   a depth of 128 slots);
//! * **quads / vaults** — 32 vaults in 4 quads, each vault with a
//!   request queue (depth 64 in the paper's experiments) and a
//!   response queue, fronting its DRAM banks;
//! * **banks** — 16 (4 GB parts) or 32 (8 GB parts) banks per vault
//!   with a configurable busy latency;
//! * a **register file** reachable through the simulated JTAG API and
//!   the `MD_RD`/`MD_WR` mode commands;
//! * a **trace subsystem** recording command execution, queue stalls,
//!   latencies and CMC activity;
//! * a **power model** (the paper's §VII future work, implemented
//!   here as an extension).
//!
//! The pipeline gives an uncontended request a three-cycle round
//! trip — host → crossbar → vault (execute) → crossbar → host — so the
//! paper's two-round-trip mutex algorithm completes in six cycles
//! minimum, matching Table VI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod compat;
pub mod config;
pub mod device;
pub mod dram;
pub(crate) mod events;
pub mod export;
pub mod fault;
pub mod hist;
pub mod jsonv;
pub mod link;
pub(crate) mod parallel;
pub mod perfetto;
pub mod power;
pub mod queue;
pub mod regs;
pub mod report;
pub mod sanitizer;
pub mod scenario;
pub mod ckpt;
pub mod sim;
pub mod snapjson;
pub mod snapshot;
pub mod stats;
pub mod telemetry;
pub mod timing;
pub mod topology;
pub mod trace;
pub mod trace_analysis;

pub use addr::AddressMap;
pub use ckpt::{atomic_write, CheckpointRecord, CheckpointStore, OpenReport, QuarantinedFile};
pub use config::{
    Arbitration, DeviceConfig, ExecMode, LinkTopology, SimConfig, SkipMode, SpecRevision,
    EXEC_THREADS_ENV, SKIP_MODE_ENV,
};
pub use device::{TrackedRequest, TrackedResponse};
pub use dram::{BankTiming, RefreshConfig, RowPolicy};
pub use export::{MetricValue, TelemetryReport};
pub use fault::{FaultPlan, FaultRng, LinkErrorMode, LinkEvent};
pub use hist::Hist;
pub use jsonv::{Json, JsonError, ObjReader};
pub use link::{LinkConfig, LinkStats, SendGrant};
pub use power::{PowerConfig, PowerReport};
pub use sanitizer::{
    SanitizerConfig, SanitizerPolicy, SanitizerReport, Violation, ViolationKind,
};
pub use scenario::{Fnv, OracleDigest};
pub use sim::HmcSim;
pub use snapjson::SNAPSHOT_SCHEMA_VERSION;
pub use snapshot::{ForensicDump, SimSnapshot};
pub use stats::{ClassLatency, CmdClass, DeviceStats};
pub use telemetry::{Stage, StageStamps, Telemetry, TelemetryConfig, TimeSeries};
pub use timing::{TimingSelect, TimingSnapshot, TimingStats, TIMING_ENV};
pub use topology::Topology;
pub use perfetto::PerfettoOptions;
pub use trace::{
    CmdRef, FlightLane, FlightLaneSnapshot, FlightRecorder, FlightSnapshot, TraceBuffer,
    TraceKind, TraceLevel, TraceRecord, TraceRing, Tracer,
};
pub use trace_analysis::{TraceEvent, TraceSummary};
