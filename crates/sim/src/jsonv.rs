//! A minimal, dependency-free JSON value type with a strict parser.
//!
//! The snapshot/telemetry layers already *write* JSON with hand-rolled
//! writers; the scenario-fuzzing corpus (see `hmc-fuzz`) also needs to
//! *read* it back. This module provides the shared value type for
//! both directions, with deliberate restrictions that suit
//! machine-written scenario files:
//!
//! * numbers are **integers only** (`i128`, covering the full `u64`
//!   and `i64` ranges exactly) — floats would round-trip lossily and
//!   no scenario field needs them; a float in the input is rejected
//!   with a clear message;
//! * object keys must be unique — a duplicate key is a parse error,
//!   never a silent override;
//! * parse errors carry the byte offset of the offending input.
//!
//! Rendering is deterministic: objects preserve insertion order and
//! produce identical bytes for identical values, which the fuzz
//! corpus relies on for stable round trips.

use std::fmt;

/// A parsed JSON value (integer-only numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without fraction or exponent).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse or extraction error, with human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError { message: message.into() })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail<T>(&self, what: impl fmt::Display) -> Result<T, JsonError> {
        err(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                self.pos -= 1;
                self.fail(format!("expected '{}', found '{}'", b as char, got as char))
            }
            None => self.fail(format!("expected '{}', found end of input", b as char)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.fail(format!("invalid literal (expected `{word}`)"))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return self.fail("unterminated string"),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return self.fail("truncated \\u escape");
                        }
                        let hex = &self.bytes[self.pos..self.pos + 4];
                        let hex = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok());
                        let Some(code) = hex else {
                            return self.fail("invalid \\u escape");
                        };
                        self.pos += 4;
                        // Surrogate pairs are not needed by any writer
                        // in this workspace; reject rather than decode
                        // them wrongly.
                        match char::from_u32(code) {
                            Some(c) => s.push(c),
                            None => return self.fail("unsupported surrogate \\u escape"),
                        }
                    }
                    _ => return self.fail("invalid escape"),
                },
                Some(b) if b < 0x20 => return self.fail("raw control character in string"),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return self.fail("invalid UTF-8 byte in string"),
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return self.fail("truncated UTF-8 sequence");
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(chunk) => {
                            s.push_str(chunk);
                            self.pos = start + len;
                        }
                        Err(_) => return self.fail("invalid UTF-8 sequence in string"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return self.fail("non-integer number (floats are not accepted)");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        match text.parse::<i128>() {
            Ok(v) => Ok(Json::Int(v)),
            Err(_) => self.fail(format!("invalid integer `{text}`")),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > 64 {
            return self.fail("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.fail("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Json::Arr(items)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return self.fail("expected ',' or ']' in array");
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields: Vec<(String, Json)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    if fields.iter().any(|(k, _)| *k == key) {
                        return self.fail(format!("duplicate object key `{key}`"));
                    }
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Json::Obj(fields)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return self.fail("expected ',' or '}' in object");
                        }
                    }
                }
            }
            Some(b) => self.fail(format!("unexpected byte '{}'", b as char)),
        }
    }
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.fail("trailing characters after JSON value");
        }
        Ok(v)
    }

    /// Renders the value as compact deterministic JSON.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => s.push_str(&v.to_string()),
            Json::Str(v) => {
                s.push('"');
                s.push_str(&crate::snapshot::json_escape(v));
                s.push('"');
            }
            Json::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    item.write(s);
                }
                s.push(']');
            }
            Json::Obj(fields) => {
                s.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('"');
                    s.push_str(&crate::snapshot::json_escape(k));
                    s.push_str("\":");
                    v.write(s);
                }
                s.push('}');
            }
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is an integer in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(v) => usize::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a `u32`, if it is an integer in range.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Int(v) => u32::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Strict field-by-field reader over a JSON object.
///
/// Every scenario deserializer in this workspace funnels through this
/// type: each accessor marks its key as consumed, and [`finish`]
/// (`ObjReader::finish`) rejects any key that was never consumed — so
/// a corpus file with an unknown or misspelled field fails loudly
/// instead of silently dropping data.
pub struct ObjReader<'a> {
    ctx: &'a str,
    fields: &'a [(String, Json)],
    consumed: Vec<bool>,
}

impl<'a> ObjReader<'a> {
    /// Wraps `value`, which must be an object; `ctx` names the thing
    /// being parsed in error messages (e.g. `"fault_plan"`).
    pub fn new(ctx: &'a str, value: &'a Json) -> Result<Self, JsonError> {
        match value.as_obj() {
            Some(fields) => {
                Ok(ObjReader { ctx, fields, consumed: vec![false; fields.len()] })
            }
            None => err(format!("{ctx}: expected a JSON object")),
        }
    }

    fn take(&mut self, key: &str) -> Option<&'a Json> {
        let idx = self.fields.iter().position(|(k, _)| k == key)?;
        self.consumed[idx] = true;
        Some(&self.fields[idx].1)
    }

    /// A required field of any type.
    pub fn required(&mut self, key: &str) -> Result<&'a Json, JsonError> {
        match self.take(key) {
            Some(v) => Ok(v),
            None => err(format!("{}: missing field `{key}`", self.ctx)),
        }
    }

    /// An optional field (`None` when absent).
    pub fn optional(&mut self, key: &str) -> Option<&'a Json> {
        self.take(key)
    }

    /// A required `u64` field.
    pub fn u64(&mut self, key: &str) -> Result<u64, JsonError> {
        let ctx = self.ctx;
        self.required(key)?
            .as_u64()
            .ok_or(JsonError { message: format!("{ctx}: field `{key}` must be a u64") })
    }

    /// A required `u32` field.
    pub fn u32(&mut self, key: &str) -> Result<u32, JsonError> {
        let ctx = self.ctx;
        self.required(key)?
            .as_u32()
            .ok_or(JsonError { message: format!("{ctx}: field `{key}` must be a u32") })
    }

    /// A required `usize` field.
    pub fn usize(&mut self, key: &str) -> Result<usize, JsonError> {
        let ctx = self.ctx;
        self.required(key)?
            .as_usize()
            .ok_or(JsonError { message: format!("{ctx}: field `{key}` must be a usize") })
    }

    /// A required `bool` field.
    pub fn bool(&mut self, key: &str) -> Result<bool, JsonError> {
        let ctx = self.ctx;
        self.required(key)?
            .as_bool()
            .ok_or(JsonError { message: format!("{ctx}: field `{key}` must be a bool") })
    }

    /// A required string field.
    pub fn str(&mut self, key: &str) -> Result<&'a str, JsonError> {
        let ctx = self.ctx;
        self.required(key)?
            .as_str()
            .ok_or(JsonError { message: format!("{ctx}: field `{key}` must be a string") })
    }

    /// Rejects unknown fields: errors if any key was never consumed.
    pub fn finish(self) -> Result<(), JsonError> {
        let unknown: Vec<&str> = self
            .fields
            .iter()
            .zip(&self.consumed)
            .filter(|(_, &c)| !c)
            .map(|((k, _), _)| k.as_str())
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            err(format!("{}: unknown field(s): {}", self.ctx, unknown.join(", ")))
        }
    }
}

/// Convenience constructor for object values.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        let v = obj(vec![
            ("a", Json::Int(18_446_744_073_709_551_615i128)), // u64::MAX
            ("b", Json::Bool(true)),
            ("c", Json::Str("hi \"there\"\n".into())),
            ("d", Json::Arr(vec![Json::Int(-3), Json::Null])),
            ("e", obj(vec![("nested", Json::Int(0))])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(&text).unwrap().render(), text, "render is stable");
    }

    #[test]
    fn u64_max_is_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_floats_duplicates_and_garbage() {
        assert!(Json::parse("1.5").unwrap_err().message.contains("float"));
        assert!(Json::parse("1e3").unwrap_err().message.contains("float"));
        assert!(Json::parse("{\"a\":1,\"a\":2}").unwrap_err().message.contains("duplicate"));
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert!(e.message.contains("byte 4"), "{}", e.message);
    }

    #[test]
    fn obj_reader_rejects_unknown_fields() {
        let v = Json::parse("{\"known\":1,\"mystery\":2}").unwrap();
        let mut r = ObjReader::new("test", &v).unwrap();
        assert_eq!(r.u64("known").unwrap(), 1);
        let e = r.finish().unwrap_err();
        assert!(e.message.contains("mystery"), "{}", e.message);
    }

    #[test]
    fn obj_reader_reports_missing_and_mistyped() {
        let v = Json::parse("{\"a\":\"text\"}").unwrap();
        let mut r = ObjReader::new("thing", &v).unwrap();
        assert!(r.u64("a").unwrap_err().message.contains("must be a u64"));
        assert!(r.u64("b").unwrap_err().message.contains("missing field `b`"));
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = Json::parse("\"caf\\u00e9 → ok\"").unwrap();
        assert_eq!(v.as_str(), Some("café → ok"));
    }
}
