//! Per-event energy accounting.
//!
//! The paper's §VII names timing/power resolution as the main future
//! work for HMC-Sim; this module implements it as an extension. The
//! model is deliberately simple and fully parameterized: each link
//! FLIT, DRAM access, logic-layer operation and idle cycle contributes
//! a configurable energy, and [`PowerReport`] converts the total into
//! average power at a configured clock.
//!
//! Default coefficients follow the published HMC energy envelope
//! (~10.48 pJ/bit link+DRAM energy split across SerDes and vault
//! access, Rosenfeld's dissertation figures) but are intentionally
//! round numbers — the model is for *relative* comparisons between
//! command mixes, not absolute silicon validation.

/// Energy coefficients in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Energy to move one FLIT across a link (SerDes + transport).
    pub link_flit_pj: f64,
    /// Energy of one DRAM bank access (activate + column access for a
    /// 16-byte block).
    pub dram_access_pj: f64,
    /// Energy of one logic-layer ALU operation (atomics, CMC).
    pub logic_op_pj: f64,
    /// Static leakage per device cycle.
    pub idle_cycle_pj: f64,
    /// Device clock frequency in Hz (for average-power reporting).
    pub clock_hz: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            link_flit_pj: 1340.0, // 128 bits * ~10.48 pJ/bit
            dram_access_pj: 2200.0,
            logic_op_pj: 150.0,
            idle_cycle_pj: 50.0,
            clock_hz: 1.25e9,
        }
    }
}

/// Accumulated energy for one device.
#[derive(Debug, Clone, Default)]
pub struct PowerModel {
    config: PowerConfig,
    link_flits: u64,
    dram_accesses: u64,
    logic_ops: u64,
    cycles: u64,
}

impl PowerModel {
    /// Creates a model with the given coefficients.
    pub fn new(config: PowerConfig) -> Self {
        PowerModel { config, ..Default::default() }
    }

    /// Records link FLIT transfers.
    pub fn add_link_flits(&mut self, flits: u64) {
        self.link_flits += flits;
    }

    /// Records DRAM bank accesses.
    pub fn add_dram_access(&mut self) {
        self.dram_accesses += 1;
    }

    /// Records a logic-layer operation (atomic or CMC execute).
    pub fn add_logic_op(&mut self) {
        self.logic_ops += 1;
    }

    /// Records elapsed cycles (leakage).
    pub fn add_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Bulk idle advance for the event-horizon engine: `cycles` cycles
    /// in which nothing but leakage happens, folded in as one
    /// closed-form update. Exactly equivalent to `cycles` calls of
    /// `add_cycles(1)` — leakage is linear in elapsed cycles.
    pub fn tick_idle_n(&mut self, cycles: u64) {
        self.add_cycles(cycles);
    }

    /// Folds a shard-local accumulator's event counts into this model
    /// (the delta's coefficients are ignored — the authoritative model
    /// keeps its own). Pure addition, so merge order is irrelevant.
    pub fn merge_counts(&mut self, delta: &PowerModel) {
        self.link_flits += delta.link_flits;
        self.dram_accesses += delta.dram_accesses;
        self.logic_ops += delta.logic_ops;
        self.cycles += delta.cycles;
    }

    /// The model's coefficients.
    pub fn config(&self) -> PowerConfig {
        self.config
    }

    /// The raw event counters `(link_flits, dram_accesses, logic_ops,
    /// cycles)` for checkpoint serialization.
    pub(crate) fn counters(&self) -> (u64, u64, u64, u64) {
        (self.link_flits, self.dram_accesses, self.logic_ops, self.cycles)
    }

    /// Rebuilds a model from checkpointed coefficients and counters.
    pub(crate) fn from_parts(
        config: PowerConfig,
        link_flits: u64,
        dram_accesses: u64,
        logic_ops: u64,
        cycles: u64,
    ) -> Self {
        PowerModel { config, link_flits, dram_accesses, logic_ops, cycles }
    }

    /// Produces the report.
    pub fn report(&self) -> PowerReport {
        let c = &self.config;
        let link = self.link_flits as f64 * c.link_flit_pj;
        let dram = self.dram_accesses as f64 * c.dram_access_pj;
        let logic = self.logic_ops as f64 * c.logic_op_pj;
        let idle = self.cycles as f64 * c.idle_cycle_pj;
        let total = link + dram + logic + idle;
        let seconds = if c.clock_hz > 0.0 { self.cycles as f64 / c.clock_hz } else { 0.0 };
        PowerReport {
            link_pj: link,
            dram_pj: dram,
            logic_pj: logic,
            idle_pj: idle,
            total_pj: total,
            avg_watts: if seconds > 0.0 { total * 1e-12 / seconds } else { 0.0 },
            cycles: self.cycles,
        }
    }
}

/// The energy breakdown for one device over a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Link transport energy (pJ).
    pub link_pj: f64,
    /// DRAM access energy (pJ).
    pub dram_pj: f64,
    /// Logic-layer operation energy (pJ).
    pub logic_pj: f64,
    /// Leakage energy (pJ).
    pub idle_pj: f64,
    /// Total energy (pJ).
    pub total_pj: f64,
    /// Average power over the simulated interval (W).
    pub avg_watts: f64,
    /// Simulated cycles covered by the report.
    pub cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_accumulates_by_class() {
        let mut p = PowerModel::new(PowerConfig {
            link_flit_pj: 10.0,
            dram_access_pj: 100.0,
            logic_op_pj: 1.0,
            idle_cycle_pj: 0.5,
            clock_hz: 1e9,
        });
        p.add_link_flits(4);
        p.add_dram_access();
        p.add_logic_op();
        p.add_cycles(10);
        let r = p.report();
        assert_eq!(r.link_pj, 40.0);
        assert_eq!(r.dram_pj, 100.0);
        assert_eq!(r.logic_pj, 1.0);
        assert_eq!(r.idle_pj, 5.0);
        assert_eq!(r.total_pj, 146.0);
        assert_eq!(r.cycles, 10);
        // 146 pJ over 10 ns = 14.6 mW
        assert!((r.avg_watts - 0.0146).abs() < 1e-9);
    }

    #[test]
    fn empty_model_reports_zero() {
        let r = PowerModel::new(PowerConfig::default()).report();
        assert_eq!(r.total_pj, 0.0);
        assert_eq!(r.avg_watts, 0.0);
    }

    #[test]
    fn amo_beats_cache_rmw_in_link_energy() {
        // Table II in energy form: 12 FLITs vs 2 FLITs.
        let mut cache = PowerModel::new(PowerConfig::default());
        cache.add_link_flits(12);
        let mut hmc = PowerModel::new(PowerConfig::default());
        hmc.add_link_flits(2);
        assert!(cache.report().link_pj / hmc.report().link_pj > 5.9);
    }
}
