//! Telemetry export: the hierarchical metrics registry, the
//! Prometheus text exposition and the JSON report.
//!
//! [`HmcSim::telemetry_report`] snapshots every metric source into a
//! single [`TelemetryReport`] keyed by component path
//! (`dev0/latency/read`, `dev0/link2/retries`,
//! `dev0/stage/vault_wait`, …). The registry is *pull-based*: fault
//! and protocol counters are read from their canonical homes
//! ([`crate::stats::DeviceStats`], [`crate::link::LinkStats`], the
//! `REG_LRLL`/`REG_GRLL` registers, the sanitizer report) at export
//! time, so the exported numbers agree with the registers and the
//! forensic dumps by construction — nothing is double-counted on the
//! hot path.

use crate::hist::Hist;
use crate::regs::{REG_GRLL, REG_LRLL};
use crate::sim::HmcSim;
use crate::snapshot::json_escape;
use crate::telemetry::Stage;
use std::collections::BTreeMap;

/// One registry entry.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time value (register contents, occupancies).
    Gauge(u64),
    /// A log2-bucketed latency histogram (boxed: a [`Hist`] is two
    /// orders of magnitude larger than the scalar variants).
    Histogram(Box<Hist>),
    /// A windowed time series: fixed `window` length plus
    /// `(window start cycle, sum, sample count)` rows.
    Series {
        /// Window length in cycles.
        window: u64,
        /// `(start cycle, sum, samples)` per window.
        points: Vec<(u64, u64, u64)>,
    },
}

impl MetricValue {
    /// The histogram behind this entry, if it is one.
    pub fn as_hist(&self) -> Option<&Hist> {
        match self {
            MetricValue::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// The scalar behind a counter or gauge entry.
    pub fn as_scalar(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }
}

/// A point-in-time export of the whole metrics registry.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Cycle the report was taken at.
    pub cycle: u64,
    /// Metrics keyed by hierarchical component path.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl TelemetryReport {
    /// Looks up one metric by its path.
    pub fn get(&self, path: &str) -> Option<&MetricValue> {
        self.metrics.get(path)
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Path segments with a numeric suffix (`dev0`, `link2`, `vault3`)
    /// become labels; the remaining segments join into the metric name
    /// under the `hmcsim_` prefix, so `dev0/link2/retries` exports as
    /// `hmcsim_link_retries{dev="0",link="2"}`. Histograms use the
    /// native histogram exposition (`_bucket{le=…}` cumulative rows
    /// plus `_sum` and `_count`). Time series have no Prometheus
    /// equivalent (a scraper builds its own) and export their running
    /// total as a counter; the full windows live in the JSON report.
    pub fn to_prometheus(&self) -> String {
        // Group into families first: every sample of one metric name
        // must sit under a single # TYPE header to be valid exposition.
        type Family<'a> = (&'static str, Vec<(String, &'a MetricValue)>);
        let mut families: BTreeMap<String, Family> = BTreeMap::new();
        for (path, value) in &self.metrics {
            let (mut name, labels) = prom_name(path);
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
                MetricValue::Series { .. } => {
                    name.push_str("_total");
                    "counter"
                }
            };
            families
                .entry(name)
                .or_insert_with(|| (kind, Vec::new()))
                .1
                .push((labels, value));
        }
        let mut out = String::with_capacity(4096);
        for (name, (kind, samples)) in &families {
            let help = name.trim_start_matches("hmcsim_").replace('_', " ");
            out.push_str(&format!("# HELP {name} hmcsim {help}\n"));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, value) in samples {
                match value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        out.push_str(&format!("{name}{} {v}\n", braced(labels)));
                    }
                    MetricValue::Series { points, .. } => {
                        let total: u64 = points.iter().map(|&(_, s, _)| s).sum();
                        out.push_str(&format!("{name}{} {total}\n", braced(labels)));
                    }
                    MetricValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (le, count) in h.nonzero_buckets() {
                            cum += count;
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                braced(&join_labels(labels, &format!("le=\"{le}\"")))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            braced(&join_labels(labels, "le=\"+Inf\"")),
                            h.count()
                        ));
                        out.push_str(&format!("{name}_sum{} {}\n", braced(labels), h.sum()));
                        out.push_str(&format!("{name}_count{} {}\n", braced(labels), h.count()));
                    }
                }
            }
        }
        out
    }

    /// Renders the registry as a deterministic JSON object (metrics
    /// sorted by path; histograms carry count/sum/min/max, the
    /// standard quantiles and the non-empty buckets).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(8192);
        s.push_str(&format!("{{\"cycle\":{},\"metrics\":{{", self.cycle));
        for (i, (path, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":", json_escape(path)));
            match value {
                MetricValue::Counter(v) => {
                    s.push_str(&format!("{{\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    s.push_str(&format!("{{\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram(h) => {
                    s.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\
                         \"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.p999()
                    ));
                    for (j, (le, count)) in h.nonzero_buckets().iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!("[{le},{count}]"));
                    }
                    s.push_str("]}");
                }
                MetricValue::Series { window, points } => {
                    s.push_str(&format!(
                        "{{\"type\":\"series\",\"window\":{window},\"points\":["
                    ));
                    for (j, (start, sum, count)) in points.iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!("[{start},{sum},{count}]"));
                    }
                    s.push_str("]}");
                }
            }
        }
        s.push_str("}}");
        s
    }
}

/// Splits a registry path into a Prometheus metric name and labels:
/// segments shaped `<alpha><digits>` become `alpha="digits"` labels.
/// The leading device segment is a pure label; deeper indexed
/// segments also keep their prefix in the metric name so families
/// stay distinguishable (`dev0/link2/retries` →
/// `hmcsim_link_retries{dev="0",link="2"}`).
fn prom_name(path: &str) -> (String, String) {
    let mut parts: Vec<&str> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (pos, seg) in path.split('/').enumerate() {
        let split = seg.find(|c: char| c.is_ascii_digit());
        match split {
            Some(i)
                if i > 0
                    && seg[i..].chars().all(|c| c.is_ascii_digit())
                    && seg[..i].chars().all(|c| c.is_ascii_alphabetic()) =>
            {
                labels.push(format!("{}=\"{}\"", &seg[..i], &seg[i..]));
                if pos > 0 {
                    parts.push(&seg[..i]);
                }
            }
            _ => parts.push(seg),
        }
    }
    (format!("hmcsim_{}", parts.join("_")), labels.join(","))
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn join_labels(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_string()
    } else {
        format!("{labels},{extra}")
    }
}

impl HmcSim {
    /// Builds the metrics registry snapshot, or `None` while telemetry
    /// is disabled (the default — see
    /// [`HmcSim::enable_telemetry`]).
    pub fn telemetry_report(&self) -> Option<TelemetryReport> {
        let tel = self.telemetry.as_deref()?;
        let mut metrics: BTreeMap<String, MetricValue> = BTreeMap::new();
        let mut add = |path: String, v: MetricValue| {
            metrics.insert(path, v);
        };
        for (d, dev) in self.devices.iter().enumerate() {
            let s = dev.stats();
            let p = format!("dev{d}");
            for (name, v) in [
                ("requests/read", s.reads),
                ("requests/write", s.writes),
                ("requests/posted_write", s.posted_writes),
                ("requests/atomic", s.atomics),
                ("requests/cmc", s.cmc_ops),
                ("requests/mode", s.mode_ops),
                ("requests/flow", s.flow_packets),
                ("responses", s.responses),
                ("error_responses", s.error_responses),
                ("forwarded", s.forwarded),
                ("stalls/send", s.send_stalls),
                ("stalls/xbar", s.xbar_stalls),
                ("stalls/vault", s.vault_stalls),
                ("flits/rqst", s.rqst_flits),
                ("flits/rsp", s.rsp_flits),
                ("faults/vault", s.vault_faults),
                ("faults/poisoned", s.poisoned_responses),
                ("faults/failover", s.failover_responses),
                ("faults/abandoned", s.abandoned_responses),
            ] {
                add(format!("{p}/{name}"), MetricValue::Counter(v));
            }
            add(
                format!("{p}/queues/vault_pushes"),
                MetricValue::Counter(dev.vault_rqst_pushes()),
            );
            add(
                format!("{p}/queues/vault_occupancy"),
                MetricValue::Gauge(dev.vault_rqst_occupancy()),
            );
            add(
                format!("{p}/latency/total"),
                MetricValue::Histogram(Box::new(s.latency)),
            );
            for (class, h) in s.class_latency.iter() {
                add(
                    format!("{p}/latency/{}", class.name()),
                    MetricValue::Histogram(Box::new(*h)),
                );
            }
            // Link-protocol counters plus the retry registers they
            // must agree with (REG_LRLL/REG_GRLL — pulled from the
            // same canonical sources the retry path writes).
            let mut crc_total = 0;
            let mut retries_total = 0;
            for (l, link) in self.links[d].iter().enumerate() {
                let ls = &link.stats;
                crc_total += ls.crc_errors;
                retries_total += ls.retries;
                for (name, v) in [
                    ("packets", ls.packets_sent),
                    ("flits", ls.flits_sent),
                    ("token_stalls", ls.token_stalls),
                    ("retries", ls.retries),
                    ("crc_errors", ls.crc_errors),
                ] {
                    add(format!("{p}/link{l}/{name}"), MetricValue::Counter(v));
                }
            }
            add(format!("{p}/faults/crc"), MetricValue::Counter(crc_total));
            add(format!("{p}/faults/retries"), MetricValue::Counter(retries_total));
            add(
                format!("{p}/regs/lrll"),
                MetricValue::Gauge(dev.regs().read(REG_LRLL).unwrap_or(0)),
            );
            add(
                format!("{p}/regs/grll"),
                MetricValue::Gauge(dev.regs().read(REG_GRLL).unwrap_or(0)),
            );
            // Timing-backend observations: per-latency-class service
            // histograms, plus the validated mode's divergence record.
            let ts = dev.timing_stats();
            add(
                format!("{p}/timing/backend/{}", dev.timing_select().name()),
                MetricValue::Gauge(1),
            );
            add(
                format!("{p}/timing/hit_latency"),
                MetricValue::Histogram(Box::new(ts.hit_latency)),
            );
            add(
                format!("{p}/timing/miss_latency"),
                MetricValue::Histogram(Box::new(ts.miss_latency)),
            );
            if dev.timing_select() == crate::timing::TimingSelect::Validated {
                add(
                    format!("{p}/timing/divergence"),
                    MetricValue::Histogram(Box::new(ts.divergence)),
                );
                for (name, v) in [
                    ("shadow_late", ts.shadow_late),
                    ("shadow_early", ts.shadow_early),
                    ("shadow_agree", ts.shadow_agree),
                ] {
                    add(format!("{p}/timing/{name}"), MetricValue::Counter(v));
                }
            }
            // Telemetry-only data: spans and windowed series.
            if let Some(t) = tel.devices.get(d) {
                if tel.config.spans {
                    for (i, stage) in Stage::ALL.iter().enumerate() {
                        add(
                            format!("{p}/stage/{}", stage.name()),
                            MetricValue::Histogram(Box::new(t.stages[i])),
                        );
                    }
                }
                if tel.config.window > 0 {
                    for (l, series) in t.link_flits.iter().enumerate() {
                        add(
                            format!("{p}/link{l}/series/flits"),
                            MetricValue::Series {
                                window: series.window(),
                                points: series.points(),
                            },
                        );
                    }
                    add(
                        format!("{p}/series/vault_occupancy"),
                        MetricValue::Series {
                            window: t.vault_occupancy.window(),
                            points: t.vault_occupancy.points(),
                        },
                    );
                    add(
                        format!("{p}/series/bank_accesses"),
                        MetricValue::Series {
                            window: t.bank_accesses.window(),
                            points: t.bank_accesses.points(),
                        },
                    );
                }
            }
        }
        // Trace-sink health: lines the bounded text buffer dropped at
        // capacity and records evicted from the flight recorder (both
        // 0 when the corresponding sink is not attached).
        add(
            "trace/buffer_dropped".into(),
            MetricValue::Counter(self.tracer.sink_dropped()),
        );
        add(
            "trace/flight_dropped".into(),
            MetricValue::Counter(self.tracer.flight().map_or(0, |f| f.dropped())),
        );
        if let Some(report) = self.sanitizer_report() {
            add(
                "sanitizer/violations".into(),
                MetricValue::Counter(report.total_violations),
            );
            add("sanitizer/recovered".into(), MetricValue::Counter(report.recovered));
            let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
            for v in &report.violations {
                *by_kind.entry(v.kind.name()).or_default() += 1;
            }
            for (kind, n) in by_kind {
                add(format!("sanitizer/violations/{kind}"), MetricValue::Counter(n));
            }
        }
        Some(TelemetryReport { cycle: self.cycle, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CmdClass;

    #[test]
    fn prom_name_splits_indexed_segments_into_labels() {
        let (name, labels) = prom_name("dev0/link2/retries");
        assert_eq!(name, "hmcsim_link_retries");
        assert_eq!(labels, "dev=\"0\",link=\"2\"");
        let (name, labels) = prom_name("dev1/latency/read");
        assert_eq!(name, "hmcsim_latency_read");
        assert_eq!(labels, "dev=\"1\"");
        let (name, labels) = prom_name("sanitizer/violations");
        assert_eq!(name, "hmcsim_sanitizer_violations");
        assert_eq!(labels, "");
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let mut h = Hist::new();
        h.record(3);
        h.record(3);
        h.record(5);
        let report = TelemetryReport {
            cycle: 7,
            metrics: [("dev0/latency/total".to_string(), MetricValue::Histogram(Box::new(h)))]
                .into_iter()
                .collect(),
        };
        let text = report.to_prometheus();
        assert!(text.contains("# TYPE hmcsim_latency_total histogram"));
        assert!(text.contains("hmcsim_latency_total_bucket{dev=\"0\",le=\"3\"} 2"));
        assert!(text.contains("hmcsim_latency_total_bucket{dev=\"0\",le=\"7\"} 3"));
        assert!(text.contains("hmcsim_latency_total_bucket{dev=\"0\",le=\"+Inf\"} 3"));
        assert!(text.contains("hmcsim_latency_total_sum{dev=\"0\"} 11"));
        assert!(text.contains("hmcsim_latency_total_count{dev=\"0\"} 3"));
    }

    #[test]
    fn json_is_deterministic_and_typed() {
        let report = TelemetryReport {
            cycle: 3,
            metrics: [
                ("dev0/responses".to_string(), MetricValue::Counter(4)),
                ("dev0/regs/grll".to_string(), MetricValue::Gauge(1)),
                (
                    "dev0/series/vault_occupancy".to_string(),
                    MetricValue::Series { window: 16, points: vec![(0, 12, 16)] },
                ),
            ]
            .into_iter()
            .collect(),
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"cycle\":3,"));
        assert!(a.contains("\"dev0/responses\":{\"type\":\"counter\",\"value\":4}"));
        assert!(a.contains("\"type\":\"series\",\"window\":16,\"points\":[[0,12,16]]"));
    }

    #[test]
    fn class_name_paths_cover_all_classes() {
        for class in CmdClass::ALL {
            assert!(!class.name().is_empty());
        }
    }
}
