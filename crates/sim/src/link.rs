//! Link-layer flow control and retry.
//!
//! The HMC link protocol flow-controls the transmitter with *tokens*
//! (one per FLIT of receiver input buffer, returned through the RTC
//! field as the receiver drains) and recovers from transmission
//! errors with a *retry* mechanism driven by the FRP/RRP retry
//! pointers and IRTRY flow packets. HMC-Sim 1.0 carried the packet
//! fields; this module models the protocol behaviour:
//!
//! * **Tokens** — a send consumes the packet's FLIT count; tokens
//!   return when the crossbar hands the packet to its vault (the
//!   input buffer slot frees). With the default unlimited pool the
//!   layer is inert, preserving the paper's queue-structural results
//!   ("no simulation perturbation", §IV-A).
//! * **Retry** — an injected transmission error keeps the packet in
//!   the transmitter's retry buffer instead of delivering it; after
//!   `retry_latency` cycles (the IRTRY/StartRetry exchange) the
//!   packet replays. Errors are injected deterministically every
//!   `error_period`-th packet so tests are reproducible.

/// Link-layer configuration (per link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Input-buffer tokens in FLITs. `None` = unlimited (default:
    /// flow control inert, the paper's configuration).
    pub tokens: Option<u32>,
    /// Inject a transmission error on every Nth packet (`None` =
    /// error-free link).
    pub error_period: Option<u64>,
    /// Cycles consumed by the retry exchange before the packet
    /// replays.
    pub retry_latency: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig { tokens: None, error_period: None, retry_latency: 8 }
    }
}

/// Per-link protocol statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted by the link layer.
    pub packets_sent: u64,
    /// FLITs accepted by the link layer (the bandwidth unit — the
    /// telemetry time series reads this for per-window link
    /// throughput).
    pub flits_sent: u64,
    /// Sends rejected for lack of tokens.
    pub token_stalls: u64,
    /// Transmission errors injected (and recovered).
    pub retries: u64,
    /// Corrupted packets caught by the receive-path CRC-32K check.
    pub crc_errors: u64,
    /// Token returns that would have pushed the pool past its
    /// configured size. The pool is still clamped (a protocol
    /// violation must not cascade into free tokens), but the event is
    /// counted so the sanitizer can surface it instead of the clamp
    /// silently masking a reverse token leak.
    pub token_overflows: u64,
}

/// The link layer's acceptance record for one transmitted packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendGrant {
    /// An injected transmission error: the packet must go through the
    /// retry path instead of being delivered.
    pub errored: bool,
    /// The SEQ value assigned to this packet's tail. A retry replays
    /// the packet with this SEQ intact (spec behaviour) — the retry
    /// path never consumes a fresh sequence number.
    pub seq: u8,
}

/// The transmitter-side state of one link.
#[derive(Debug, Clone)]
pub struct LinkControl {
    config: LinkConfig,
    tokens_available: u32,
    packet_counter: u64,
    /// Sequence counter carried in the tail SEQ field.
    seq: u8,
    /// Protocol statistics.
    pub stats: LinkStats,
}

impl LinkControl {
    /// Creates the link state for a configuration.
    pub fn new(config: LinkConfig) -> Self {
        LinkControl {
            tokens_available: config.tokens.unwrap_or(u32::MAX),
            config,
            packet_counter: 0,
            seq: 0,
            stats: LinkStats::default(),
        }
    }

    /// Tokens currently available to the transmitter.
    pub fn tokens_available(&self) -> u32 {
        self.tokens_available
    }

    /// Whether a packet of `flits` can be accepted right now.
    pub fn can_send(&self, flits: u32) -> bool {
        self.tokens_available >= flits
    }

    /// Accounts for a packet entering the link. Returns `Err(())`
    /// when the transmitter is out of tokens (the caller surfaces
    /// `HMC_STALL`), otherwise the [`SendGrant`] carrying the injected
    /// error decision and the SEQ assigned to the packet's tail. A
    /// token stall consumes no SEQ: the packet never entered the link.
    #[allow(clippy::result_unit_err)] // Err carries no data: the caller maps it to HMC_STALL
    pub fn send(&mut self, flits: u32) -> Result<SendGrant, ()> {
        if !self.can_send(flits) {
            self.stats.token_stalls += 1;
            return Err(());
        }
        self.tokens_available -= flits;
        self.packet_counter += 1;
        self.stats.packets_sent += 1;
        self.stats.flits_sent += flits as u64;
        self.seq = (self.seq + 1) & 0x7;
        let errored = self
            .config
            .error_period
            .is_some_and(|n| n > 0 && self.packet_counter.is_multiple_of(n));
        if errored {
            self.stats.retries += 1;
        }
        Ok(SendGrant { errored, seq: self.seq })
    }

    /// The SEQ assigned to the most recently accepted packet.
    pub fn seq(&self) -> u8 {
        self.seq
    }

    /// Returns tokens as the receiver drains `flits` of input buffer
    /// (the RTC return path). An over-return past the configured pool
    /// size is a protocol violation: the pool is clamped and the event
    /// counted in [`LinkStats::token_overflows`] for the sanitizer.
    pub fn return_tokens(&mut self, flits: u32) {
        let cap = self.config.tokens.unwrap_or(u32::MAX);
        let sum = self.tokens_available.saturating_add(flits);
        if sum > cap {
            self.stats.token_overflows += 1;
        }
        self.tokens_available = sum.min(cap);
    }

    /// Forces the token count (sanitizer recovery only: repairs a
    /// pool left inconsistent by a detected over- or under-return).
    pub(crate) fn force_tokens(&mut self, tokens: u32) {
        self.tokens_available = tokens;
    }

    /// The retry delay for an injected error.
    pub fn retry_latency(&self) -> u64 {
        self.config.retry_latency
    }

    /// The link configuration this state was created with.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Packets accepted since creation (the error-injection phase
    /// counter — distinct from `stats.packets_sent` only in intent).
    pub fn packet_counter(&self) -> u64 {
        self.packet_counter
    }

    /// Rebuilds link state from checkpointed parts so a restored link
    /// is `Debug`-identical to the snapshotted one (token pool, error
    /// phase, SEQ and statistics all restored verbatim).
    pub(crate) fn from_parts(
        config: LinkConfig,
        tokens_available: u32,
        packet_counter: u64,
        seq: u8,
        stats: LinkStats,
    ) -> Self {
        LinkControl { config, tokens_available, packet_counter, seq, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_tokens_never_stall() {
        let mut link = LinkControl::new(LinkConfig::default());
        for _ in 0..1000 {
            assert!(!link.send(17).unwrap().errored);
        }
        assert_eq!(link.stats.token_stalls, 0);
        assert_eq!(link.stats.packets_sent, 1000);
    }

    #[test]
    fn token_pool_depletes_and_refills() {
        let mut link = LinkControl::new(LinkConfig {
            tokens: Some(10),
            ..Default::default()
        });
        assert!(!link.send(4).unwrap().errored);
        assert!(!link.send(4).unwrap().errored);
        assert!(!link.can_send(4));
        assert_eq!(link.send(4), Err(()));
        assert_eq!(link.stats.token_stalls, 1);
        link.return_tokens(4);
        assert!(!link.send(4).unwrap().errored);
        assert_eq!(link.tokens_available(), 2);
        assert_eq!(link.stats.token_overflows, 0, "legal return is not an overflow");
    }

    #[test]
    fn token_over_return_clamps_and_is_counted() {
        let mut link = LinkControl::new(LinkConfig {
            tokens: Some(10),
            ..Default::default()
        });
        // An over-return past the pool size still clamps (the old
        // saturating behaviour) but is now counted as the protocol
        // violation it is instead of being silently masked.
        link.return_tokens(1000);
        assert_eq!(link.tokens_available(), 10);
        assert_eq!(link.stats.token_overflows, 1);

        // A legal return after draining does not count.
        link.send(4).unwrap();
        link.return_tokens(4);
        assert_eq!(link.tokens_available(), 10);
        assert_eq!(link.stats.token_overflows, 1);
    }

    #[test]
    fn deterministic_error_injection() {
        let mut link = LinkControl::new(LinkConfig {
            error_period: Some(3),
            ..Default::default()
        });
        let outcomes: Vec<bool> = (0..9).map(|_| link.send(2).unwrap().errored).collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(link.stats.retries, 3);
    }

    #[test]
    fn seq_wraps_at_three_bits() {
        let mut link = LinkControl::new(LinkConfig::default());
        for _ in 0..9 {
            link.send(1).unwrap();
        }
        assert_eq!(link.seq(), 1, "9 mod 8");
    }

    #[test]
    fn errored_sends_keep_their_assigned_seq() {
        // Packet n gets SEQ n & 7 whether or not the transmission
        // errors: the grant pins the SEQ at first transmission so the
        // retry path replays the packet with the original SEQ instead
        // of consuming a fresh one.
        let mut link = LinkControl::new(LinkConfig {
            error_period: Some(3),
            ..Default::default()
        });
        let grants: Vec<SendGrant> = (0..5).map(|_| link.send(1).unwrap()).collect();
        let seqs: Vec<u8> = grants.iter().map(|g| g.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5], "consecutive SEQs, errored or not");
        assert!(grants[2].errored, "third packet errors under period 3");
        assert_eq!(grants[2].seq, 3, "the errored packet owns SEQ 3 for its replay");
        assert_eq!(link.seq(), 5, "no extra SEQ is burned by the retry path");
    }
}
