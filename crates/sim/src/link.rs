//! Link-layer flow control and retry.
//!
//! The HMC link protocol flow-controls the transmitter with *tokens*
//! (one per FLIT of receiver input buffer, returned through the RTC
//! field as the receiver drains) and recovers from transmission
//! errors with a *retry* mechanism driven by the FRP/RRP retry
//! pointers and IRTRY flow packets. HMC-Sim 1.0 carried the packet
//! fields; this module models the protocol behaviour:
//!
//! * **Tokens** — a send consumes the packet's FLIT count; tokens
//!   return when the crossbar hands the packet to its vault (the
//!   input buffer slot frees). With the default unlimited pool the
//!   layer is inert, preserving the paper's queue-structural results
//!   ("no simulation perturbation", §IV-A).
//! * **Retry** — an injected transmission error keeps the packet in
//!   the transmitter's retry buffer instead of delivering it; after
//!   `retry_latency` cycles (the IRTRY/StartRetry exchange) the
//!   packet replays. Errors are injected deterministically every
//!   `error_period`-th packet so tests are reproducible.

/// Link-layer configuration (per link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Input-buffer tokens in FLITs. `None` = unlimited (default:
    /// flow control inert, the paper's configuration).
    pub tokens: Option<u32>,
    /// Inject a transmission error on every Nth packet (`None` =
    /// error-free link).
    pub error_period: Option<u64>,
    /// Cycles consumed by the retry exchange before the packet
    /// replays.
    pub retry_latency: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig { tokens: None, error_period: None, retry_latency: 8 }
    }
}

/// Per-link protocol statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted by the link layer.
    pub packets_sent: u64,
    /// Sends rejected for lack of tokens.
    pub token_stalls: u64,
    /// Transmission errors injected (and recovered).
    pub retries: u64,
    /// Corrupted packets caught by the receive-path CRC-32K check.
    pub crc_errors: u64,
}

/// The transmitter-side state of one link.
#[derive(Debug, Clone)]
pub struct LinkControl {
    config: LinkConfig,
    tokens_available: u32,
    packet_counter: u64,
    /// Sequence counter carried in the tail SEQ field.
    seq: u8,
    /// Protocol statistics.
    pub stats: LinkStats,
}

impl LinkControl {
    /// Creates the link state for a configuration.
    pub fn new(config: LinkConfig) -> Self {
        LinkControl {
            tokens_available: config.tokens.unwrap_or(u32::MAX),
            config,
            packet_counter: 0,
            seq: 0,
            stats: LinkStats::default(),
        }
    }

    /// Tokens currently available to the transmitter.
    pub fn tokens_available(&self) -> u32 {
        self.tokens_available
    }

    /// Whether a packet of `flits` can be accepted right now.
    pub fn can_send(&self, flits: u32) -> bool {
        self.tokens_available >= flits
    }

    /// Accounts for a packet entering the link. Returns `Err(())`
    /// when the transmitter is out of tokens (the caller surfaces
    /// `HMC_STALL`), otherwise `Ok(injected_error)` telling the
    /// caller whether this transmission must go through the retry
    /// path instead of being delivered.
    #[allow(clippy::result_unit_err)] // Err carries no data: the caller maps it to HMC_STALL
    pub fn send(&mut self, flits: u32) -> Result<bool, ()> {
        if !self.can_send(flits) {
            self.stats.token_stalls += 1;
            return Err(());
        }
        self.tokens_available -= flits;
        self.packet_counter += 1;
        self.stats.packets_sent += 1;
        self.seq = (self.seq + 1) & 0x7;
        let errored = self
            .config
            .error_period
            .is_some_and(|n| n > 0 && self.packet_counter.is_multiple_of(n));
        if errored {
            self.stats.retries += 1;
        }
        Ok(errored)
    }

    /// The SEQ value for the next outgoing tail.
    pub fn seq(&self) -> u8 {
        self.seq
    }

    /// Returns tokens as the receiver drains `flits` of input buffer
    /// (the RTC return path).
    pub fn return_tokens(&mut self, flits: u32) {
        self.tokens_available = self
            .tokens_available
            .saturating_add(flits)
            .min(self.config.tokens.unwrap_or(u32::MAX));
    }

    /// The retry delay for an injected error.
    pub fn retry_latency(&self) -> u64 {
        self.config.retry_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_tokens_never_stall() {
        let mut link = LinkControl::new(LinkConfig::default());
        for _ in 0..1000 {
            assert_eq!(link.send(17), Ok(false));
        }
        assert_eq!(link.stats.token_stalls, 0);
        assert_eq!(link.stats.packets_sent, 1000);
    }

    #[test]
    fn token_pool_depletes_and_refills() {
        let mut link = LinkControl::new(LinkConfig {
            tokens: Some(10),
            ..Default::default()
        });
        assert_eq!(link.send(4), Ok(false));
        assert_eq!(link.send(4), Ok(false));
        assert!(!link.can_send(4));
        assert_eq!(link.send(4), Err(()));
        assert_eq!(link.stats.token_stalls, 1);
        link.return_tokens(4);
        assert_eq!(link.send(4), Ok(false));
        assert_eq!(link.tokens_available(), 2);
    }

    #[test]
    fn token_return_saturates_at_pool_size() {
        let mut link = LinkControl::new(LinkConfig {
            tokens: Some(10),
            ..Default::default()
        });
        link.return_tokens(1000);
        assert_eq!(link.tokens_available(), 10);
    }

    #[test]
    fn deterministic_error_injection() {
        let mut link = LinkControl::new(LinkConfig {
            error_period: Some(3),
            ..Default::default()
        });
        let outcomes: Vec<bool> = (0..9).map(|_| link.send(2).unwrap()).collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(link.stats.retries, 3);
    }

    #[test]
    fn seq_wraps_at_three_bits() {
        let mut link = LinkControl::new(LinkConfig::default());
        for _ in 0..9 {
            link.send(1).unwrap();
        }
        assert_eq!(link.seq(), 1, "9 mod 8");
    }
}
