//! The device register file and simulated JTAG access.
//!
//! HMC-Sim 1.0 exposed internal device registers both through the
//! in-band mode commands (`MD_RD`/`MD_WR`) and through an out-of-band
//! simulated JTAG API (paper §II); both paths are carried forward
//! here. Register identifiers follow the HMC-Sim convention.

use hmc_types::HmcError;

/// External data register 0.
pub const REG_EDR0: u32 = 0x2B0;
/// External data register 1.
pub const REG_EDR1: u32 = 0x2B1;
/// External data register 2.
pub const REG_EDR2: u32 = 0x2B2;
/// External data register 3.
pub const REG_EDR3: u32 = 0x2B3;
/// External request register.
pub const REG_ERR: u32 = 0x2B4;
/// Global configuration register.
pub const REG_GC: u32 = 0x280;
/// Link configuration register (per-device aggregate).
pub const REG_LC: u32 = 0x240;
/// Link retry register.
pub const REG_LRLL: u32 = 0x2C0;
/// Global retry register.
pub const REG_GRLL: u32 = 0x2C4;
/// Vault control register.
pub const REG_VCR: u32 = 0x108;
/// Features register (read-only: capacity and link count).
pub const REG_FEAT: u32 = 0x2C8;
/// Revisions and vendor ID register (read-only).
pub const REG_RVID: u32 = 0x2CC;

/// Revision/vendor value reported by [`REG_RVID`]: HMC spec 2.1,
/// vendor field set to the simulator's id.
pub const RVID_VALUE: u64 = 0x0000_0000_0021_0051;

const WRITABLE: &[u32] = &[
    REG_EDR0, REG_EDR1, REG_EDR2, REG_EDR3, REG_ERR, REG_GC, REG_LC, REG_LRLL, REG_GRLL, REG_VCR,
];
const READ_ONLY: &[u32] = &[REG_FEAT, REG_RVID];

/// One device's register file.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    regs: std::collections::BTreeMap<u32, u64>,
}

impl RegisterFile {
    /// Creates the register file with reset values derived from the
    /// device geometry: `FEAT[3:0]` = capacity in GB, `FEAT[7:4]` =
    /// link count.
    pub fn new(capacity_bytes: u64, links: usize) -> Self {
        let mut regs = std::collections::BTreeMap::new();
        for &r in WRITABLE {
            regs.insert(r, 0);
        }
        let feat = (capacity_bytes >> 30) & 0xF | (((links as u64) & 0xF) << 4);
        regs.insert(REG_FEAT, feat);
        regs.insert(REG_RVID, RVID_VALUE);
        RegisterFile { regs }
    }

    /// Reads a register (JTAG or `MD_RD` path).
    pub fn read(&self, reg: u32) -> Result<u64, HmcError> {
        self.regs
            .get(&reg)
            .copied()
            .ok_or(HmcError::InvalidRegister(reg))
    }

    /// Writes a register (JTAG or `MD_WR` path). Read-only registers
    /// reject writes.
    pub fn write(&mut self, reg: u32, value: u64) -> Result<(), HmcError> {
        if READ_ONLY.contains(&reg) {
            return Err(HmcError::InvalidRegister(reg));
        }
        let slot = self
            .regs
            .get_mut(&reg)
            .ok_or(HmcError::InvalidRegister(reg))?;
        *slot = value;
        Ok(())
    }

    /// All register ids, in ascending order.
    pub fn ids(&self) -> Vec<u32> {
        self.regs.keys().copied().collect()
    }

    /// Rebuilds a register file from checkpointed `(id, value)`
    /// entries verbatim — bypasses the read-only write guard, which
    /// would otherwise reject restoring `FEAT`/`RVID`.
    pub(crate) fn from_entries(entries: impl IntoIterator<Item = (u32, u64)>) -> Self {
        RegisterFile { regs: entries.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_values_encode_geometry() {
        let rf = RegisterFile::new(4 << 30, 4);
        assert_eq!(rf.read(REG_FEAT).unwrap(), 0x44);
        let rf8 = RegisterFile::new(8 << 30, 8);
        assert_eq!(rf8.read(REG_FEAT).unwrap(), 0x88);
        assert_eq!(rf8.read(REG_RVID).unwrap(), RVID_VALUE);
    }

    #[test]
    fn write_read_cycle() {
        let mut rf = RegisterFile::new(4 << 30, 4);
        rf.write(REG_EDR0, 0xDEAD).unwrap();
        assert_eq!(rf.read(REG_EDR0).unwrap(), 0xDEAD);
    }

    #[test]
    fn read_only_registers_reject_writes() {
        let mut rf = RegisterFile::new(4 << 30, 4);
        assert!(rf.write(REG_FEAT, 0).is_err());
        assert!(rf.write(REG_RVID, 0).is_err());
    }

    #[test]
    fn unknown_register_rejected() {
        let mut rf = RegisterFile::new(4 << 30, 4);
        assert!(rf.read(0x999).is_err());
        assert!(rf.write(0x999, 1).is_err());
    }

    #[test]
    fn register_inventory() {
        let rf = RegisterFile::new(4 << 30, 4);
        let ids = rf.ids();
        assert_eq!(ids.len(), 12);
        assert!(ids.contains(&REG_VCR));
    }
}
