//! Deterministic parallel vault execution.
//!
//! Stage 3 of the clock (vault execution) dominates cycle cost on
//! saturated workloads, and it is the only stage whose work items are
//! independent: once the per-vault execution *windows* are fixed,
//! each vault's requests touch disjoint device state (its own queues
//! and banks) and — after the planner's conflict sweep — disjoint
//! memory ranges. The engine exploits that with a three-phase split:
//!
//! 1. **Plan** ([`Device::plan_vault_stage`]): a pure pass replays
//!    the sequential head-of-line decision sequence against virtual
//!    bank/queue state, fixing exactly which requests retire this
//!    cycle. Anything order-sensitive (fault RNG draws, mode/CMC
//!    commands, cross-vault overlapping footprints) aborts the plan
//!    and the cycle runs on the sequential reference path instead.
//! 2. **Compute**: the planned [`VaultWork`] units execute on a fixed
//!    worker pool. Each lane runs the same single execution core the
//!    sequential path uses ([`execute_data_request`]), against the
//!    shared sparse store (interior-mutable, sharded locks), but
//!    records responses, stat/power deltas and trace events into
//!    shard-local accumulators — no shared counters, no atomics.
//! 3. **Commit** ([`Device::commit_parallel_vaults`]): the
//!    coordinating thread folds every lane's buffered effects back in
//!    fixed device/vault order. Because merge operands are additive
//!    and the application order is fixed, the committed state is
//!    bit-identical to the sequential path for every thread count —
//!    the property `tests/parallel_determinism.rs` checks
//!    fingerprint-by-fingerprint.
//!
//! The pool itself is plain `std::thread` + mpsc channels (the crate
//! forbids `unsafe`): lane 0 is the coordinating thread, lanes 1..n
//! are persistent named workers that receive whole batches and send
//! back results. Determinism never depends on scheduling — results
//! are re-sorted by `(device, vault)` before commit.

use crate::config::SpecRevision;
use crate::device::{
    execute_data_request, tracked_response, Device, TrackedRequest, TrackedResponse, VaultWork,
};
use crate::power::PowerModel;
use crate::stats::DeviceStats;
use crate::trace::{EventBuffer, TraceKind, TraceLane, TraceLevel, TraceRecord, Tracer};
use hmc_mem::SparseMemory;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One vault's worth of planned work, packaged with everything a
/// worker lane needs to execute it without touching the device.
#[derive(Debug)]
pub(crate) struct WorkUnit {
    pub(crate) dev: usize,
    pub(crate) vault: usize,
    pub(crate) revision: SpecRevision,
    pub(crate) cycle: u64,
    /// Whether trace events must be captured for replay (tracing or
    /// the forensic ring is active).
    pub(crate) capture: bool,
    pub(crate) mem: Arc<SparseMemory>,
    pub(crate) items: Vec<(TrackedRequest, crate::addr::Location)>,
}

/// Everything a lane produced for one vault, buffered for ordered
/// commit on the coordinating thread.
#[derive(Debug)]
pub(crate) struct VaultResult {
    pub(crate) dev: usize,
    pub(crate) vault: usize,
    /// Per planned request, in queue order: `Some` response to push
    /// or `None` for an absorbed (posted/flow) request.
    pub(crate) responses: Vec<Option<TrackedResponse>>,
    /// Shard-local stat delta (kind counters, error responses).
    pub(crate) stats: DeviceStats,
    /// Shard-local power delta (logic ops).
    pub(crate) power: PowerModel,
    /// Deferred trace records, in execution order.
    pub(crate) events: Vec<TraceRecord>,
}

/// Executes one unit on the calling thread. This is the entire
/// compute phase for a vault: the same core as the sequential path,
/// writing into lane-local accumulators.
fn execute_unit(unit: WorkUnit) -> VaultResult {
    let mut stats = DeviceStats::default();
    let mut power = PowerModel::default();
    let mut buffer = EventBuffer::new(unit.capture);
    let mut responses = Vec::with_capacity(unit.items.len());
    for (item, loc) in &unit.items {
        let rsp = {
            let mut lane = TraceLane::Deferred(&mut buffer);
            execute_data_request(
                unit.dev,
                unit.revision,
                item,
                loc,
                &unit.mem,
                &mut stats,
                &mut power,
                unit.cycle,
                &mut lane,
            )
        };
        responses.push(rsp.map(|r| tracked_response(r, item, unit.cycle)));
    }
    VaultResult {
        dev: unit.dev,
        vault: unit.vault,
        responses,
        stats,
        power,
        events: buffer.into_records(),
    }
}

struct Worker {
    tx: mpsc::Sender<Vec<WorkUnit>>,
    rx: mpsc::Receiver<Vec<VaultResult>>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed pool of persistent compute lanes. Lane 0 is the calling
/// thread; lanes `1..threads` are OS threads that live for the pool's
/// lifetime, so per-cycle dispatch costs two channel sends per busy
/// lane and no thread spawns.
pub(crate) struct WorkerPool {
    lanes: usize,
    workers: Vec<Worker>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("lanes", &self.lanes).finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` total lanes (minimum 1; lane 0
    /// is the caller).
    pub(crate) fn new(threads: usize) -> Self {
        let lanes = threads.max(1);
        let workers = (1..lanes)
            .map(|i| {
                let (tx, work_rx) = mpsc::channel::<Vec<WorkUnit>>();
                let (result_tx, rx) = mpsc::channel::<Vec<VaultResult>>();
                let handle = std::thread::Builder::new()
                    .name(format!("hmcsim-vault-{i}"))
                    .spawn(move || {
                        while let Ok(batch) = work_rx.recv() {
                            let results: Vec<VaultResult> =
                                batch.into_iter().map(execute_unit).collect();
                            if result_tx.send(results).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn vault worker");
                Worker { tx, rx, handle: Some(handle) }
            })
            .collect();
        WorkerPool { lanes, workers }
    }

    /// Total lanes, including the coordinating thread.
    #[cfg(test)]
    pub(crate) fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs a batch of units across the lanes and returns the results
    /// sorted by `(device, vault)` — the order the commit phase
    /// consumes them in, independent of thread scheduling.
    pub(crate) fn run(&mut self, units: Vec<WorkUnit>) -> Vec<VaultResult> {
        let mut results: Vec<VaultResult>;
        if self.workers.is_empty() || units.len() <= 1 {
            results = units.into_iter().map(execute_unit).collect();
        } else {
            // Round-robin units across lanes; lane 0 (this thread)
            // executes its own share while the workers run theirs.
            let mut batches: Vec<Vec<WorkUnit>> = (0..self.lanes).map(|_| Vec::new()).collect();
            for (i, unit) in units.into_iter().enumerate() {
                batches[i % self.lanes].push(unit);
            }
            let mut own = Vec::new();
            std::mem::swap(&mut own, &mut batches[0]);
            let mut busy = Vec::new();
            for (w, batch) in self.workers.iter().zip(batches.into_iter().skip(1)) {
                if batch.is_empty() {
                    continue;
                }
                w.tx.send(batch).expect("worker alive");
                busy.push(w);
            }
            results = own.into_iter().map(execute_unit).collect();
            for w in busy {
                results.extend(w.rx.recv().expect("worker alive"));
            }
        }
        results.sort_by_key(|r| (r.dev, r.vault));
        results
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Replacing the sender with a dead channel drops the
            // original, ending the worker's recv loop.
            w.tx = mpsc::channel().0;
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Runs stage 3 for every device through the pool. Devices whose plan
/// aborts (fault injection armed, mode/CMC traffic, conflicting
/// footprints) run the sequential `execute_vaults` at their device
/// position, preserving the global commit order. Returns the absorbed
/// tally per device, in device order.
pub(crate) fn execute_vaults_parallel(
    devices: &mut [Device],
    pool: &mut WorkerPool,
    cycle: u64,
    tracer: &mut Tracer,
) -> Vec<u64> {
    let capture = tracer.captures(TraceLevel::CMD);
    let plans: Vec<_> = devices.iter().map(|d| d.plan_vault_stage(cycle)).collect();
    let mut units = Vec::new();
    for (dev, plan) in devices.iter_mut().zip(&plans) {
        let Some(plan) = plan else { continue };
        let revision = dev.config().revision;
        let id = dev.id();
        let mem = dev.mem_arc();
        for VaultWork { vault, items } in dev.take_parallel_work(cycle, plan) {
            if items.is_empty() {
                continue;
            }
            units.push(WorkUnit {
                dev: id,
                vault,
                revision,
                cycle,
                capture,
                mem: Arc::clone(&mem),
                items,
            });
        }
    }
    let mut results = pool.run(units).into_iter().peekable();
    let mut absorbed = Vec::with_capacity(devices.len());
    // Engine-phase spans are pure observation: they depend only on
    // the per-device plan (never on thread count or scheduling), so
    // the structured stream stays byte-identical across pool widths.
    let engine = tracer.captures(TraceLevel::ENGINE);
    for (idx, dev) in devices.iter_mut().enumerate() {
        match &plans[idx] {
            None => {
                if engine && dev.pending_work() > 0 {
                    tracer.emit(TraceRecord {
                        dev: dev.id() as u16,
                        ..TraceRecord::new(cycle, TraceKind::SerialFallback)
                    });
                }
                absorbed.push(dev.execute_vaults(cycle, tracer));
            }
            Some(plan) => {
                let mut own = Vec::new();
                while results.peek().is_some_and(|r| r.dev == dev.id()) {
                    own.push(results.next().expect("peeked"));
                }
                let committed = own.len() as u64;
                let items: u64 = plan.iter().map(|p| p.take as u64).sum();
                if engine && items > 0 {
                    let vaults = plan.iter().filter(|p| p.take > 0).count() as u64;
                    tracer.emit(TraceRecord {
                        dev: dev.id() as u16,
                        a: vaults,
                        b: items,
                        ..TraceRecord::new(cycle, TraceKind::PlanStage)
                    });
                }
                absorbed.push(dev.commit_parallel_vaults(cycle, plan, own, tracer));
                if engine && items > 0 {
                    tracer.emit(TraceRecord {
                        dev: dev.id() as u16,
                        a: committed,
                        ..TraceRecord::new(cycle, TraceKind::CommitStage)
                    });
                }
            }
        }
    }
    absorbed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_survives_empty_and_unbalanced_batches() {
        let mut pool = WorkerPool::new(4);
        assert_eq!(pool.lanes(), 4);
        assert!(pool.run(Vec::new()).is_empty());
        // Dropping the pool joins the workers without deadlock.
        drop(pool);
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let mut pool = WorkerPool::new(1);
        assert_eq!(pool.lanes(), 1);
        assert!(pool.run(Vec::new()).is_empty());
    }
}
