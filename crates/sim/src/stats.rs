//! Per-device simulation statistics.

use hmc_types::{CmdKind, FLIT_BYTES};

/// Running latency aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Completed (non-posted) requests observed.
    pub count: u64,
    /// Sum of round-trip latencies in cycles.
    pub total: u64,
    /// Minimum observed latency.
    pub min: u64,
    /// Maximum observed latency.
    pub max: u64,
}

impl LatencyStats {
    /// Records one completed request latency.
    pub fn record(&mut self, latency: u64) {
        if self.count == 0 {
            self.min = latency;
            self.max = latency;
        } else {
            self.min = self.min.min(latency);
            self.max = self.max.max(latency);
        }
        self.count += 1;
        self.total += latency;
    }

    /// Mean latency in cycles (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

/// Counters for one device.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Requests executed, by operational class.
    pub reads: u64,
    /// Writes executed (acknowledged).
    pub writes: u64,
    /// Posted writes executed.
    pub posted_writes: u64,
    /// Atomics executed (including posted atomics).
    pub atomics: u64,
    /// CMC operations executed.
    pub cmc_ops: u64,
    /// Mode (register) commands executed.
    pub mode_ops: u64,
    /// Flow packets absorbed.
    pub flow_packets: u64,
    /// Responses generated.
    pub responses: u64,
    /// Error responses generated.
    pub error_responses: u64,
    /// Requests forwarded to a chained neighbour.
    pub forwarded: u64,
    /// Requests that crossed into a remote quad (nonzero only with a
    /// configured `remote_quad_penalty`).
    pub remote_quad_requests: u64,
    /// Send-side stalls surfaced to the host.
    pub send_stalls: u64,
    /// Crossbar → vault routing stalls.
    pub xbar_stalls: u64,
    /// Vault execution stalls (full response queue or busy bank).
    pub vault_stalls: u64,
    /// Request FLITs that entered the device over its links.
    pub rqst_flits: u64,
    /// Response FLITs that left the device over its links.
    pub rsp_flits: u64,
    /// Injected vault internal errors (ERROR responses with
    /// `ERRSTAT` = `ERRSTAT_VAULT_FAULT` that replaced execution).
    pub vault_faults: u64,
    /// Read responses delivered with the poison (`DINV`) bit set.
    pub poisoned_responses: u64,
    /// Responses re-routed through a surviving link because their
    /// entry link was down.
    pub failover_responses: u64,
    /// Responses dropped at delivery because the host had abandoned
    /// the tag (timeout reclamation).
    pub abandoned_responses: u64,
    /// Round-trip latency aggregate (entry to response delivery).
    pub latency: LatencyStats,
}

impl DeviceStats {
    /// Tallies one executed request of the given class.
    pub fn count_kind(&mut self, kind: CmdKind) {
        match kind {
            CmdKind::Read => self.reads += 1,
            CmdKind::Write => self.writes += 1,
            CmdKind::PostedWrite => self.posted_writes += 1,
            CmdKind::Atomic | CmdKind::PostedAtomic => self.atomics += 1,
            CmdKind::Cmc => self.cmc_ops += 1,
            CmdKind::ModeRead | CmdKind::ModeWrite => self.mode_ops += 1,
            CmdKind::Flow => self.flow_packets += 1,
        }
    }

    /// Total requests executed.
    pub fn total_requests(&self) -> u64 {
        self.reads
            + self.writes
            + self.posted_writes
            + self.atomics
            + self.cmc_ops
            + self.mode_ops
            + self.flow_packets
    }

    /// Total link traffic in bytes (requests in + responses out).
    pub fn link_bytes(&self) -> u64 {
        (self.rqst_flits + self.rsp_flits) * FLIT_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_aggregation() {
        let mut l = LatencyStats::default();
        assert_eq!(l.mean(), 0.0);
        l.record(6);
        l.record(10);
        l.record(2);
        assert_eq!(l.min, 2);
        assert_eq!(l.max, 10);
        assert_eq!(l.count, 3);
        assert!((l.mean() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn kind_counting() {
        let mut s = DeviceStats::default();
        s.count_kind(CmdKind::Read);
        s.count_kind(CmdKind::Atomic);
        s.count_kind(CmdKind::PostedAtomic);
        s.count_kind(CmdKind::Cmc);
        assert_eq!(s.reads, 1);
        assert_eq!(s.atomics, 2);
        assert_eq!(s.cmc_ops, 1);
        assert_eq!(s.total_requests(), 4);
    }

    #[test]
    fn link_byte_accounting() {
        let s = DeviceStats { rqst_flits: 1, rsp_flits: 1, ..Default::default() };
        assert_eq!(s.link_bytes(), 32);
    }
}
