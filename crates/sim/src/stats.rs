//! Per-device simulation statistics.

use crate::hist::Hist;
use hmc_types::{CmdKind, FLIT_BYTES};

/// Coarse command classification for per-class latency accounting
/// (the paper's read / write / atomic / CMC operational split).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CmdClass {
    /// Read commands.
    Read,
    /// Writes (acknowledged and posted).
    Write,
    /// Atomics (including posted atomics).
    Atomic,
    /// Custom Memory Cube operations.
    Cmc,
    /// Everything else: mode commands, flow packets, synthesized
    /// error responses.
    #[default]
    Other,
}

impl CmdClass {
    /// Every class, in display order.
    pub const ALL: [CmdClass; 5] = [
        CmdClass::Read,
        CmdClass::Write,
        CmdClass::Atomic,
        CmdClass::Cmc,
        CmdClass::Other,
    ];

    /// Classifies a command kind.
    pub fn of(kind: CmdKind) -> CmdClass {
        match kind {
            CmdKind::Read => CmdClass::Read,
            CmdKind::Write | CmdKind::PostedWrite => CmdClass::Write,
            CmdKind::Atomic | CmdKind::PostedAtomic => CmdClass::Atomic,
            CmdKind::Cmc => CmdClass::Cmc,
            CmdKind::ModeRead | CmdKind::ModeWrite | CmdKind::Flow => CmdClass::Other,
        }
    }

    /// Lower-case label used in reports and metric paths.
    pub fn name(&self) -> &'static str {
        match self {
            CmdClass::Read => "read",
            CmdClass::Write => "write",
            CmdClass::Atomic => "atomic",
            CmdClass::Cmc => "cmc",
            CmdClass::Other => "other",
        }
    }
}

/// Round-trip latency histograms split by command class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassLatency {
    /// Read round trips.
    pub read: Hist,
    /// Write round trips (acknowledged writes only — posted writes
    /// produce no response to time).
    pub write: Hist,
    /// Atomic round trips.
    pub atomic: Hist,
    /// CMC round trips.
    pub cmc: Hist,
    /// Mode commands and synthesized responses.
    pub other: Hist,
}

impl ClassLatency {
    /// The histogram for one class.
    pub fn get(&self, class: CmdClass) -> &Hist {
        match class {
            CmdClass::Read => &self.read,
            CmdClass::Write => &self.write,
            CmdClass::Atomic => &self.atomic,
            CmdClass::Cmc => &self.cmc,
            CmdClass::Other => &self.other,
        }
    }

    /// Records one round trip under its class.
    pub(crate) fn record(&mut self, class: CmdClass, latency: u64) {
        let h = match class {
            CmdClass::Read => &mut self.read,
            CmdClass::Write => &mut self.write,
            CmdClass::Atomic => &mut self.atomic,
            CmdClass::Cmc => &mut self.cmc,
            CmdClass::Other => &mut self.other,
        };
        h.record(latency);
    }

    /// Iterates `(class, histogram)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (CmdClass, &Hist)> {
        CmdClass::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

/// Counters for one device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Requests executed, by operational class.
    pub reads: u64,
    /// Writes executed (acknowledged).
    pub writes: u64,
    /// Posted writes executed.
    pub posted_writes: u64,
    /// Atomics executed (including posted atomics).
    pub atomics: u64,
    /// CMC operations executed.
    pub cmc_ops: u64,
    /// Mode (register) commands executed.
    pub mode_ops: u64,
    /// Flow packets absorbed.
    pub flow_packets: u64,
    /// Responses generated.
    pub responses: u64,
    /// Error responses generated.
    pub error_responses: u64,
    /// Requests forwarded to a chained neighbour.
    pub forwarded: u64,
    /// Requests that crossed into a remote quad (nonzero only with a
    /// configured `remote_quad_penalty`).
    pub remote_quad_requests: u64,
    /// Send-side stalls surfaced to the host.
    pub send_stalls: u64,
    /// Crossbar → vault routing stalls.
    pub xbar_stalls: u64,
    /// Vault execution stalls (full response queue or busy bank).
    pub vault_stalls: u64,
    /// Request FLITs that entered the device over its links.
    pub rqst_flits: u64,
    /// Response FLITs that left the device over its links.
    pub rsp_flits: u64,
    /// Injected vault internal errors (ERROR responses with
    /// `ERRSTAT` = `ERRSTAT_VAULT_FAULT` that replaced execution).
    pub vault_faults: u64,
    /// Read responses delivered with the poison (`DINV`) bit set.
    pub poisoned_responses: u64,
    /// Responses re-routed through a surviving link because their
    /// entry link was down.
    pub failover_responses: u64,
    /// Responses dropped at delivery because the host had abandoned
    /// the tag (timeout reclamation).
    pub abandoned_responses: u64,
    /// Round-trip latency distribution (entry to response delivery).
    pub latency: Hist,
    /// Round-trip latency split by command class.
    pub class_latency: ClassLatency,
}

impl DeviceStats {
    /// Tallies one executed request of the given class.
    pub fn count_kind(&mut self, kind: CmdKind) {
        match kind {
            CmdKind::Read => self.reads += 1,
            CmdKind::Write => self.writes += 1,
            CmdKind::PostedWrite => self.posted_writes += 1,
            CmdKind::Atomic | CmdKind::PostedAtomic => self.atomics += 1,
            CmdKind::Cmc => self.cmc_ops += 1,
            CmdKind::ModeRead | CmdKind::ModeWrite => self.mode_ops += 1,
            CmdKind::Flow => self.flow_packets += 1,
        }
    }

    /// Records one completed round trip in the overall and the
    /// per-class latency histograms.
    pub fn record_latency(&mut self, class: CmdClass, latency: u64) {
        self.latency.record(latency);
        self.class_latency.record(class, latency);
    }

    /// Folds a shard-local accumulator into this one. Every field is
    /// either an additive counter or a mergeable histogram, so merge
    /// order cannot change the result — the property the parallel
    /// engine's commit phase relies on. (In practice the vault-stage
    /// deltas never carry latency samples: round trips are timed at
    /// delivery, on the coordinating thread.)
    pub fn merge(&mut self, delta: &DeviceStats) {
        self.reads += delta.reads;
        self.writes += delta.writes;
        self.posted_writes += delta.posted_writes;
        self.atomics += delta.atomics;
        self.cmc_ops += delta.cmc_ops;
        self.mode_ops += delta.mode_ops;
        self.flow_packets += delta.flow_packets;
        self.responses += delta.responses;
        self.error_responses += delta.error_responses;
        self.forwarded += delta.forwarded;
        self.remote_quad_requests += delta.remote_quad_requests;
        self.send_stalls += delta.send_stalls;
        self.xbar_stalls += delta.xbar_stalls;
        self.vault_stalls += delta.vault_stalls;
        self.rqst_flits += delta.rqst_flits;
        self.rsp_flits += delta.rsp_flits;
        self.vault_faults += delta.vault_faults;
        self.poisoned_responses += delta.poisoned_responses;
        self.failover_responses += delta.failover_responses;
        self.abandoned_responses += delta.abandoned_responses;
        self.latency.merge(&delta.latency);
        self.class_latency.read.merge(&delta.class_latency.read);
        self.class_latency.write.merge(&delta.class_latency.write);
        self.class_latency.atomic.merge(&delta.class_latency.atomic);
        self.class_latency.cmc.merge(&delta.class_latency.cmc);
        self.class_latency.other.merge(&delta.class_latency.other);
    }

    /// Total requests executed.
    pub fn total_requests(&self) -> u64 {
        self.reads
            + self.writes
            + self.posted_writes
            + self.atomics
            + self.cmc_ops
            + self.mode_ops
            + self.flow_packets
    }

    /// Total link traffic in bytes (requests in + responses out).
    pub fn link_bytes(&self) -> u64 {
        (self.rqst_flits + self.rsp_flits) * FLIT_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_aggregation() {
        let mut s = DeviceStats::default();
        assert_eq!(s.latency.mean(), 0.0);
        s.record_latency(CmdClass::Read, 6);
        s.record_latency(CmdClass::Atomic, 10);
        s.record_latency(CmdClass::Read, 2);
        assert_eq!(s.latency.min(), 2);
        assert_eq!(s.latency.max(), 10);
        assert_eq!(s.latency.count(), 3);
        assert!((s.latency.mean() - 6.0).abs() < 1e-9);
        assert_eq!(s.class_latency.read.count(), 2);
        assert_eq!(s.class_latency.atomic.count(), 1);
        assert_eq!(s.class_latency.write.count(), 0);
    }

    #[test]
    fn class_split_merges_back_to_total() {
        let mut s = DeviceStats::default();
        for (class, lat) in [
            (CmdClass::Read, 3),
            (CmdClass::Write, 4),
            (CmdClass::Cmc, 9),
            (CmdClass::Other, 6),
        ] {
            s.record_latency(class, lat);
        }
        let mut merged = Hist::new();
        for (_, h) in s.class_latency.iter() {
            merged.merge(h);
        }
        assert_eq!(merged, s.latency, "per-class hists partition the total");
    }

    #[test]
    fn kind_classification() {
        use hmc_types::CmdKind;
        assert_eq!(CmdClass::of(CmdKind::Read), CmdClass::Read);
        assert_eq!(CmdClass::of(CmdKind::PostedWrite), CmdClass::Write);
        assert_eq!(CmdClass::of(CmdKind::PostedAtomic), CmdClass::Atomic);
        assert_eq!(CmdClass::of(CmdKind::Cmc), CmdClass::Cmc);
        assert_eq!(CmdClass::of(CmdKind::ModeRead), CmdClass::Other);
        assert_eq!(CmdClass::of(CmdKind::Flow), CmdClass::Other);
    }

    #[test]
    fn kind_counting() {
        let mut s = DeviceStats::default();
        s.count_kind(CmdKind::Read);
        s.count_kind(CmdKind::Atomic);
        s.count_kind(CmdKind::PostedAtomic);
        s.count_kind(CmdKind::Cmc);
        assert_eq!(s.reads, 1);
        assert_eq!(s.atomics, 2);
        assert_eq!(s.cmc_ops, 1);
        assert_eq!(s.total_requests(), 4);
    }

    #[test]
    fn shard_merge_is_order_invariant() {
        let mk = |n: u64| {
            let mut s = DeviceStats {
                reads: n,
                responses: 2 * n,
                vault_stalls: n / 2,
                ..Default::default()
            };
            s.record_latency(CmdClass::Read, n + 1);
            s
        };
        let (a, b, c) = (mk(3), mk(7), mk(11));
        let mut fwd = DeviceStats::default();
        for d in [&a, &b, &c] {
            fwd.merge(d);
        }
        let mut rev = DeviceStats::default();
        for d in [&c, &b, &a] {
            rev.merge(d);
        }
        assert_eq!(fwd.reads, rev.reads);
        assert_eq!(fwd.responses, rev.responses);
        assert_eq!(fwd.vault_stalls, rev.vault_stalls);
        assert_eq!(fwd.latency, rev.latency);
        assert_eq!(fwd.reads, 21);
        assert_eq!(fwd.latency.count(), 3);
    }

    #[test]
    fn link_byte_accounting() {
        let s = DeviceStats { rqst_flits: 1, rsp_flits: 1, ..Default::default() };
        assert_eq!(s.link_bytes(), 32);
    }
}
