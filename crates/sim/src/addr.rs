//! Physical address decomposition.
//!
//! Gen2 devices interleave the physical address space across vaults
//! and banks at the configured maximum-block granularity: the low
//! bits select the byte within a block, the next bits select the
//! vault (so consecutive blocks land on consecutive vaults — the
//! stride-friendly layout HMC-Sim models), then the bank within the
//! vault, and the remaining bits the DRAM row.

use crate::config::DeviceConfig;
use hmc_types::HmcError;

/// A decoded physical location within a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Quad index.
    pub quad: u32,
    /// Vault index *within the device* (0..total_vaults).
    pub vault: u32,
    /// Bank index within the vault.
    pub bank: u32,
    /// DRAM row (the remaining upper address bits).
    pub row: u64,
    /// Byte offset within the block.
    pub offset: u32,
}

/// The device's block-interleaved address map.
#[derive(Debug, Clone)]
pub struct AddressMap {
    block_bits: u32,
    vault_bits: u32,
    bank_bits: u32,
    vaults_per_quad: usize,
    capacity: u64,
}

impl AddressMap {
    /// Builds the map for a device configuration.
    pub fn new(config: &DeviceConfig) -> Self {
        AddressMap {
            block_bits: config.block_size.trailing_zeros(),
            vault_bits: config.total_vaults().trailing_zeros(),
            bank_bits: config.banks_per_vault.trailing_zeros(),
            vaults_per_quad: config.vaults_per_quad,
            capacity: config.capacity,
        }
    }

    /// Decomposes a byte address into its physical location.
    pub fn decompose(&self, addr: u64) -> Result<Location, HmcError> {
        if addr >= self.capacity {
            return Err(HmcError::AddressOutOfRange(addr));
        }
        let offset = addr & ((1 << self.block_bits) - 1);
        let vault = (addr >> self.block_bits) & ((1 << self.vault_bits) - 1);
        let bank = (addr >> (self.block_bits + self.vault_bits)) & ((1 << self.bank_bits) - 1);
        let row = addr >> (self.block_bits + self.vault_bits + self.bank_bits);
        Ok(Location {
            quad: (vault as usize / self.vaults_per_quad) as u32,
            vault: vault as u32,
            bank: bank as u32,
            row,
            offset: offset as u32,
        })
    }

    /// Recomposes a location back into a byte address (inverse of
    /// [`AddressMap::decompose`]).
    pub fn recompose(&self, loc: &Location) -> u64 {
        (loc.row << (self.block_bits + self.vault_bits + self.bank_bits))
            | ((loc.bank as u64) << (self.block_bits + self.vault_bits))
            | ((loc.vault as u64) << self.block_bits)
            | loc.offset as u64
    }

    /// The smallest address that maps to the given vault (useful for
    /// steering workloads at a specific vault).
    pub fn vault_base(&self, vault: u32) -> u64 {
        (vault as u64) << self.block_bits
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        1 << self.block_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(&DeviceConfig::gen2_4link_4gb())
    }

    #[test]
    fn consecutive_blocks_interleave_across_vaults() {
        let m = map();
        let a = m.decompose(0).unwrap();
        let b = m.decompose(64).unwrap();
        let c = m.decompose(64 * 31).unwrap();
        let wrap = m.decompose(64 * 32).unwrap();
        assert_eq!(a.vault, 0);
        assert_eq!(b.vault, 1);
        assert_eq!(c.vault, 31);
        assert_eq!(wrap.vault, 0);
        assert_eq!(wrap.bank, 1, "after all vaults, the bank advances");
    }

    #[test]
    fn same_block_same_vault() {
        let m = map();
        let a = m.decompose(0x40).unwrap();
        let b = m.decompose(0x7F).unwrap();
        assert_eq!(a.vault, b.vault);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.offset, 0x3F);
    }

    #[test]
    fn quad_derived_from_vault() {
        let m = map();
        for vault in 0..32u64 {
            let loc = m.decompose(vault * 64).unwrap();
            assert_eq!(loc.quad, (vault / 8) as u32);
        }
    }

    #[test]
    fn decompose_recompose_is_identity() {
        let m = map();
        for addr in [0u64, 1, 63, 64, 0x1234_5678, (4u64 << 30) - 1] {
            let loc = m.decompose(addr).unwrap();
            assert_eq!(m.recompose(&loc), addr, "addr {addr:#x}");
        }
    }

    #[test]
    fn capacity_bound() {
        let m = map();
        assert!(m.decompose(4 << 30).is_err());
        assert!(m.decompose((4 << 30) - 1).is_ok());
    }

    #[test]
    fn vault_base_targets_vault() {
        let m = map();
        for v in 0..32 {
            assert_eq!(m.decompose(m.vault_base(v)).unwrap().vault, v);
        }
    }

    #[test]
    fn eight_gig_part_has_more_banks() {
        let m = AddressMap::new(&DeviceConfig::gen2_8link_8gb());
        // 32 banks/vault -> 5 bank bits; highest bank reachable.
        let addr = (31u64) << (6 + 5); // offset 0, vault 0, bank 31
        let loc = m.decompose(addr).unwrap();
        assert_eq!(loc.bank, 31);
        assert_eq!(m.recompose(&loc), addr);
    }

    #[test]
    fn block_size_respected() {
        let mut cfg = DeviceConfig::gen2_4link_4gb();
        cfg.block_size = 256;
        let m = AddressMap::new(&cfg);
        assert_eq!(m.block_size(), 256);
        assert_eq!(m.decompose(255).unwrap().vault, 0);
        assert_eq!(m.decompose(256).unwrap().vault, 1);
    }
}
