//! Perfetto / Chrome trace-event JSON export of the structured
//! trace stream.
//!
//! [`export`] renders a [`FlightSnapshot`] as a Chrome trace-event
//! JSON document (`{"traceEvents":[...]}`) that opens directly in
//! `ui.perfetto.dev` or `chrome://tracing`. The mapping is:
//!
//! * **process (`pid`)** — the device id;
//! * **track (`tid`)** — the logical [`FlightLane`] (host, link,
//!   vault, bank, engine). Tracks are *cycle-domain* lanes, never OS
//!   worker threads: the parallel engine commits in fixed order, so
//!   the export is byte-identical for every thread count;
//! * **slice (`ph:"X"`)** — one record, `ts` = cycle, `dur` = 1
//!   (idle-skip spans stretch over their compressed extent);
//! * **flows (`ph:"s"/"t"/"f"`)** — packet lifecycles: a host send
//!   starts a flow on its `(device, tag)`, bank service steps it,
//!   delivery (or a zombie drop) finishes it, so clicking a packet in
//!   the UI draws its whole path through the fabric.
//!
//! The exporter is pure over the snapshot: no clocks, no maps with
//! nondeterministic iteration order — identical snapshots render
//! byte-identical JSON.

use crate::snapshot::json_escape;
use crate::trace::{FlightLane, FlightSnapshot, TraceKind, TraceRecord};

/// Options controlling what [`export`] renders.
#[derive(Debug, Clone, Copy)]
pub struct PerfettoOptions {
    /// Include engine-internal spans (plan/commit phases, serial
    /// fallbacks, idle skips, sanitizer audits, checkpoints). Packet
    /// lifecycle events are always included. Disable to compare
    /// packet timelines across engine configurations (skip on/off)
    /// whose internal spans legitimately differ.
    pub engine: bool,
}

impl Default for PerfettoOptions {
    fn default() -> Self {
        PerfettoOptions { engine: true }
    }
}

/// True when the record passes the option filter.
fn included(rec: &TraceRecord, opts: &PerfettoOptions) -> bool {
    opts.engine || !matches!(rec.kind.lane(), FlightLane::Engine)
}

/// A packet-flow phase for a record, if it participates in one.
fn flow_phase(kind: TraceKind) -> Option<char> {
    match kind {
        TraceKind::HostSend => Some('s'),
        TraceKind::Cmd
        | TraceKind::CmcOp
        | TraceKind::XbarToVault
        | TraceKind::Failover
        | TraceKind::HopRqst
        | TraceKind::HopRsp => Some('t'),
        TraceKind::Deliver | TraceKind::Zombie => Some('f'),
        _ => None,
    }
}

/// Renders the `traceEvents` JSON array (brackets included) for a
/// snapshot. [`crate::ForensicDump::to_json`] embeds this directly so
/// forensic dumps open in the Perfetto UI unmodified.
pub fn trace_events(snap: &FlightSnapshot, opts: &PerfettoOptions) -> String {
    let records: Vec<TraceRecord> =
        snap.merged().into_iter().filter(|r| included(r, opts)).collect();

    // Metadata first: name every process (device) and track (lane)
    // the records touch, in sorted order.
    let mut tracks: Vec<(u16, usize)> = Vec::new();
    for r in &records {
        let key = (r.dev, r.kind.lane().index());
        if !tracks.contains(&key) {
            tracks.push(key);
        }
    }
    tracks.sort_unstable();

    let mut out = String::with_capacity(4096 + records.len() * 160);
    out.push('[');
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&ev);
    };

    let mut last_dev = None;
    for &(dev, lane) in &tracks {
        if last_dev != Some(dev) {
            last_dev = Some(dev);
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{dev},\"tid\":0,\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"device {dev}\"}}}}"
                ),
            );
        }
        let name = FlightLane::ALL[lane].name();
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{dev},\"tid\":{lane},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{dev},\"tid\":{lane},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{lane}}}}}"
            ),
        );
    }

    // Flow ids must be unique per packet *instance*: tags recycle, so
    // each host send opens a new generation for its (device, tag).
    // The generation table is keyed by dense (dev, tag) and scanned
    // in record order — fully deterministic.
    let mut generations: std::collections::BTreeMap<(u16, u16), u64> =
        std::collections::BTreeMap::new();

    for r in &records {
        let lane = r.kind.lane().index();
        let dur = match r.kind {
            TraceKind::IdleSkip => r.b.max(1),
            _ => 1,
        };
        let detail = json_escape(&r.render_detail(|idx| snap.resolve(idx)));
        let name = r.kind.name();
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{lane},\"ts\":{},\"dur\":{dur},\
                 \"name\":\"{name}\",\"args\":{{\"detail\":\"{detail}\",\"tag\":{}}}}}",
                r.dev, r.cycle, r.tag
            ),
        );
        if let Some(ph) = flow_phase(r.kind) {
            let key = (r.dev, r.tag);
            if ph == 's' {
                *generations.entry(key).or_insert(0) += 1;
            }
            // A step/finish before any recorded send (ring overflow
            // evicted it) still joins generation 0 consistently.
            let generation = generations.get(&key).copied().unwrap_or(0);
            let id = (generation << 32) | ((r.dev as u64) << 16) | r.tag as u64;
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"{ph}\",\"pid\":{},\"tid\":{lane},\"ts\":{},\
                     \"name\":\"packet\",\"cat\":\"packet\",\"id\":{id}{}}}",
                    r.dev,
                    r.cycle,
                    if ph == 'f' { ",\"bp\":\"e\"" } else { "" }
                ),
            );
        }
    }
    out.push(']');
    out
}

/// Renders a complete Perfetto/Chrome trace JSON document for a
/// snapshot: `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
pub fn export(snap: &FlightSnapshot, opts: &PerfettoOptions) -> String {
    format!(
        "{{\"traceEvents\":{},\"displayTimeUnit\":\"ms\"}}",
        trace_events(snap, opts)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FlightRecorder, Tracer};

    fn sample_snapshot() -> FlightSnapshot {
        let mut t = Tracer::disabled();
        t.attach_flight(FlightRecorder::new(16));
        t.emit(TraceRecord {
            dev: 0,
            link: 1,
            tag: 7,
            a: 1,
            ..TraceRecord::new(3, TraceKind::HostSend)
        });
        t.emit(TraceRecord {
            dev: 0,
            vault: 5,
            bank: 2,
            tag: 7,
            cmd: crate::trace::CmdRef::Rqst(hmc_types::HmcRqst::Rd16),
            a: 0x40,
            ..TraceRecord::new(4, TraceKind::Cmd)
        });
        t.emit(TraceRecord {
            dev: 0,
            link: 1,
            tag: 7,
            a: 3,
            ..TraceRecord::new(5, TraceKind::Deliver)
        });
        t.emit(TraceRecord { a: 6, b: 40, ..TraceRecord::new(6, TraceKind::IdleSkip) });
        t.flight_snapshot().expect("flight attached")
    }

    #[test]
    fn export_is_valid_flow_connected_json() {
        let doc = export(&sample_snapshot(), &PerfettoOptions::default());
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"s\""), "send starts a flow");
        assert!(doc.contains("\"ph\":\"t\""), "command steps the flow");
        assert!(doc.contains("\"ph\":\"f\""), "delivery finishes the flow");
        assert!(doc.contains("\"name\":\"idle_skip\""));
        assert!(doc.contains("\"dur\":40"), "idle skip spans its extent");
        assert!(doc.contains("\"thread_name\""));
        // Balanced quotes and braces — cheap structural sanity.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn engine_filter_drops_engine_lane_only() {
        let snap = sample_snapshot();
        let full = export(&snap, &PerfettoOptions { engine: true });
        let packets = export(&snap, &PerfettoOptions { engine: false });
        assert!(full.contains("idle_skip"));
        assert!(!packets.contains("idle_skip"));
        assert!(packets.contains("\"name\":\"send\""));
    }

    #[test]
    fn tag_reuse_opens_a_fresh_flow_generation() {
        let mut t = Tracer::disabled();
        t.attach_flight(FlightRecorder::new(16));
        for cycle in [1u64, 10] {
            t.emit(TraceRecord {
                tag: 9,
                a: 1,
                ..TraceRecord::new(cycle, TraceKind::HostSend)
            });
            t.emit(TraceRecord {
                tag: 9,
                a: 3,
                ..TraceRecord::new(cycle + 3, TraceKind::Deliver)
            });
        }
        let doc = export(&t.flight_snapshot().unwrap(), &PerfettoOptions::default());
        let id1 = (1u64 << 32) | 9;
        let id2 = (2u64 << 32) | 9;
        assert!(doc.contains(&format!("\"id\":{id1}")));
        assert!(doc.contains(&format!("\"id\":{id2}")), "second send gets a new flow id");
    }

    #[test]
    fn identical_snapshots_render_identical_bytes() {
        let a = export(&sample_snapshot(), &PerfettoOptions::default());
        let b = export(&sample_snapshot(), &PerfettoOptions::default());
        assert_eq!(a, b);
    }
}
