//! Checkpoint snapshots and forensic dumps.
//!
//! A [`SimSnapshot`] deep-copies every piece of dynamic simulation
//! state — device queues, vault contents, memory pages, registers,
//! link-layer flow control, tag pools, in-transit and retry-buffer
//! packets — so that [`HmcSim::restore`] reproduces the exact machine
//! state and re-clocking replays deterministically. Snapshots serve
//! two roles:
//!
//! * **Checkpoints** — taken periodically (the sanitizer's
//!   `checkpoint_every` knob or an explicit [`HmcSim::snapshot`]
//!   call), they bound the replay window after a crash.
//! * **Crash forensics** — on an invariant violation the sanitizer
//!   wraps the end-of-cycle snapshot, the violation list and a
//!   bounded ring of recent trace events into a [`ForensicDump`],
//!   serialized as JSON by a dependency-free writer. The snapshot
//!   carries the sanitizer's *pre-acknowledgement* shadow state, so
//!   restoring it and clocking once re-detects the same violation.
//!
//! Static state (configuration, CMC registrations, the tracer) is not
//! captured: `restore` requires a context with the same geometry and
//! keeps those parts from the live context.

use crate::device::{Device, TrackedRequest, TrackedResponse, Vault};
use crate::link::LinkControl;
use crate::queue::BoundedQueue;
use crate::sanitizer::{SanitizerShadow, Violation};
use crate::sim::{HmcSim, RetryEntry, Transit};
use crate::trace::FlightSnapshot;
use hmc_types::{HmcError, TagPool};
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};

/// Dynamic state of one device (crate-internal payload of
/// [`SimSnapshot`]).
#[derive(Debug, Clone)]
pub struct DeviceSnapshot {
    pub(crate) xbar_rqst: Vec<BoundedQueue<TrackedRequest>>,
    pub(crate) xbar_rsp: Vec<BoundedQueue<TrackedResponse>>,
    pub(crate) vaults: Vec<Vault>,
    pub(crate) mem: hmc_mem::SparseMemory,
    pub(crate) regs: crate::regs::RegisterFile,
    pub(crate) stats: crate::stats::DeviceStats,
    pub(crate) power: crate::power::PowerModel,
    pub(crate) fault_rng: crate::fault::FaultRng,
    pub(crate) link_up: Vec<bool>,
    pub(crate) fault_idx: usize,
    /// Timing-backend state: selection, observation counters and (for
    /// the validated backend) the shadow bank array. Pure observation
    /// apart from `select` — excluded from
    /// [`SimSnapshot::fingerprint`], restored so a resumed run keeps
    /// its backend and its telemetry continues seamlessly.
    pub(crate) timing: crate::timing::TimingSnapshot,
}

/// A deep copy of all dynamic simulation state at one cycle boundary.
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    pub(crate) cycle: u64,
    pub(crate) devices: Vec<DeviceSnapshot>,
    pub(crate) host_rx: Vec<Vec<VecDeque<TrackedResponse>>>,
    pub(crate) tag_pools: Vec<Vec<TagPool>>,
    pub(crate) pool_tags: Vec<Vec<HashSet<u16>>>,
    pub(crate) in_transit: Vec<Transit>,
    pub(crate) links: Vec<Vec<LinkControl>>,
    pub(crate) retry_pending: Vec<RetryEntry>,
    pub(crate) zombie_tags: Vec<HashSet<(usize, u16)>>,
    /// Sanitizer shadow accounting at snapshot time, when a sanitizer
    /// was attached. Restored alongside the machine state so the
    /// conservation counters stay consistent across a replay.
    pub(crate) shadow: Option<SanitizerShadow>,
    /// Flight-recorder timeline at snapshot time, when a recorder was
    /// attached. Pure observation: excluded from [`fingerprint`]
    /// (like the shadow), restored into an attached recorder so a
    /// resumed run carries its pre-crash timeline.
    ///
    /// [`fingerprint`]: SimSnapshot::fingerprint
    pub(crate) flight: Option<FlightSnapshot>,
}

impl SimSnapshot {
    /// The cycle the snapshot was taken at. A snapshot is taken at the
    /// *end* of this cycle's clock (before the cycle counter
    /// advances): restoring it and calling `clock()` re-executes that
    /// boundary, which is what lets a forensic snapshot re-detect its
    /// violation at the same cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// All `(tag, tail-SEQ)` pairs of request packets resident
    /// anywhere for device `dev`: crossbar and vault request queues,
    /// the link-layer retry buffer and inter-device transit. Sorted
    /// for deterministic comparison.
    pub fn request_seqs(&self, dev: usize) -> Vec<(u16, u8)> {
        let mut out = Vec::new();
        if let Some(d) = self.devices.get(dev) {
            for q in &d.xbar_rqst {
                out.extend(q.iter().map(|i| (i.req.head.tag.value(), i.req.tail.seq)));
            }
            for v in &d.vaults {
                out.extend(v.rqst.iter().map(|i| (i.req.head.tag.value(), i.req.tail.seq)));
            }
        }
        out.extend(self.retry_seqs(dev));
        for t in &self.in_transit {
            if let Transit::Rqst { to_dev, item, .. } = t {
                if *to_dev == dev {
                    out.push((item.req.head.tag.value(), item.req.tail.seq));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// `(tag, tail-SEQ)` pairs of packets waiting in device `dev`'s
    /// link-layer retry buffer, sorted.
    pub fn retry_seqs(&self, dev: usize) -> Vec<(u16, u8)> {
        let mut out: Vec<(u16, u8)> = self
            .retry_pending
            .iter()
            .filter(|e| e.dev == dev)
            .map(|e| (e.item.req.head.tag.value(), e.item.req.tail.seq))
            .collect();
        out.sort_unstable();
        out
    }

    /// Packets resident in the fabric (device queues, transit and
    /// retry buffers) across all devices.
    pub fn packets_in_fabric(&self) -> usize {
        let queued: usize = self
            .devices
            .iter()
            .map(|d| {
                d.xbar_rqst.iter().map(BoundedQueue::len).sum::<usize>()
                    + d.xbar_rsp.iter().map(BoundedQueue::len).sum::<usize>()
                    + d.vaults.iter().map(|v| v.rqst.len() + v.rsp.len()).sum::<usize>()
            })
            .sum();
        queued + self.in_transit.len() + self.retry_pending.len()
    }

    /// Serializes the snapshot as a JSON object. Queue listings are
    /// bounded (64 packets per queue, with a `truncated` marker) so a
    /// congested dump stays readable.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"cycle\":");
        s.push_str(&self.cycle.to_string());
        s.push_str(",\"devices\":[");
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            device_json(&mut s, i, d);
        }
        s.push_str("],\"links\":[");
        for (i, dev_links) in self.links.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, l) in dev_links.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let st = l.stats;
                s.push_str(&format!(
                    "{{\"tokens\":{},\"seq\":{},\"packets_sent\":{},\"token_stalls\":{},\
                     \"retries\":{},\"crc_errors\":{},\"token_overflows\":{}}}",
                    l.tokens_available(),
                    l.seq(),
                    st.packets_sent,
                    st.token_stalls,
                    st.retries,
                    st.crc_errors,
                    st.token_overflows
                ));
            }
            s.push(']');
        }
        s.push_str("],\"tag_pools\":[");
        for (i, dev_pools) in self.tag_pools.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, p) in dev_pools.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"capacity\":{},\"in_flight\":{},\"available\":{}}}",
                    p.capacity(),
                    p.in_flight(),
                    p.available()
                ));
            }
            s.push(']');
        }
        s.push_str("],\"pool_tags\":[");
        for (i, dev_sets) in self.pool_tags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, set) in dev_sets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                bounded_u16_set(&mut s, set.iter().copied());
            }
            s.push(']');
        }
        s.push_str("],\"zombie_tags\":[");
        for (i, set) in self.zombie_tags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let mut v: Vec<_> = set.iter().copied().collect();
            v.sort_unstable();
            s.push('[');
            for (j, (link, tag)) in v.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{link},{tag}]"));
            }
            s.push(']');
        }
        s.push_str("],\"retry_pending\":[");
        for (i, e) in self.retry_pending.iter().take(64).enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"dev\":{},\"link\":{},\"ready\":{},\"tag\":{},\"seq\":{}}}",
                e.dev,
                e.link,
                e.ready,
                e.item.req.head.tag.value(),
                e.item.req.tail.seq
            ));
        }
        s.push_str("],\"in_transit\":[");
        for (i, t) in self.in_transit.iter().take(64).enumerate() {
            if i > 0 {
                s.push(',');
            }
            match t {
                Transit::Rqst { from_dev, to_dev, link, item, ready } => s.push_str(&format!(
                    "{{\"kind\":\"rqst\",\"from_dev\":{from_dev},\"to_dev\":{to_dev},\
                     \"link\":{link},\"ready\":{ready},\"tag\":{}}}",
                    item.req.head.tag.value()
                )),
                Transit::Rsp { from_dev, to_dev, link, item, ready } => s.push_str(&format!(
                    "{{\"kind\":\"rsp\",\"from_dev\":{from_dev},\"to_dev\":{to_dev},\
                     \"link\":{link},\"ready\":{ready},\"tag\":{}}}",
                    item.rsp.head.tag.value()
                )),
            }
        }
        s.push_str("],\"host_rx\":[");
        for (i, dev_queues) in self.host_rx.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, q) in dev_queues.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                bounded_u16_set(&mut s, q.iter().map(|r| r.rsp.head.tag.value()));
            }
            s.push(']');
        }
        s.push(']');
        if let Some(shadow) = &self.shadow {
            s.push_str(",\"shadow\":");
            shadow_json(&mut s, shadow);
        }
        if let Some(flight) = &self.flight {
            s.push_str(&format!(
                ",\"flight\":{{\"capacity\":{},\"records\":{},\"dropped\":{}}}",
                flight.capacity,
                flight.len(),
                flight.lanes.iter().map(|l| l.dropped).sum::<u64>()
            ));
        }
        s.push('}');
        s
    }

    /// Deterministic deep fingerprint of the captured state. Two
    /// snapshots of identical machine states — even taken by
    /// different simulation contexts in the same process — produce
    /// identical fingerprints. The sanitizer shadow is excluded so a
    /// sanitizer-on run fingerprints identically to a sanitizer-off
    /// run of the same machine state.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.cycle.hash(&mut h);
        for d in &self.devices {
            format!("{:?}", d.xbar_rqst).hash(&mut h);
            format!("{:?}", d.xbar_rsp).hash(&mut h);
            format!("{:?}", d.vaults).hash(&mut h);
            d.mem.content_digest().hash(&mut h);
            format!("{:?}", d.regs).hash(&mut h);
            format!("{:?}", d.stats).hash(&mut h);
            format!("{:?}", d.power).hash(&mut h);
            format!("{:?}", d.fault_rng).hash(&mut h);
            d.link_up.hash(&mut h);
            d.fault_idx.hash(&mut h);
        }
        for dev_queues in &self.host_rx {
            for q in dev_queues {
                format!("{q:?}").hash(&mut h);
            }
        }
        for dev_pools in &self.tag_pools {
            for p in dev_pools {
                format!("{p:?}").hash(&mut h);
            }
        }
        for dev_sets in &self.pool_tags {
            for set in dev_sets {
                let mut v: Vec<_> = set.iter().copied().collect();
                v.sort_unstable();
                v.hash(&mut h);
            }
        }
        for set in &self.zombie_tags {
            let mut v: Vec<_> = set.iter().copied().collect();
            v.sort_unstable();
            v.hash(&mut h);
        }
        format!("{:?}", self.in_transit).hash(&mut h);
        format!("{:?}", self.retry_pending).hash(&mut h);
        for dev_links in &self.links {
            for l in dev_links {
                format!("{l:?}").hash(&mut h);
            }
        }
        h.finish()
    }
}

/// Escapes a string for embedding in JSON.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes a bounded sorted JSON array of small integers.
fn bounded_u16_set(s: &mut String, items: impl Iterator<Item = u16>) {
    let mut v: Vec<u16> = items.collect();
    v.sort_unstable();
    let truncated = v.len() > 64;
    v.truncate(64);
    s.push('[');
    for (i, t) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&t.to_string());
    }
    if truncated {
        s.push_str(",\"...\"");
    }
    s.push(']');
}

fn rqst_queue_json(s: &mut String, q: &BoundedQueue<TrackedRequest>) {
    s.push_str(&format!("{{\"len\":{},\"depth\":{},\"packets\":[", q.len(), q.depth()));
    for (i, item) in q.iter().take(64).enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"tag\":{},\"cmd\":\"{}\",\"addr\":\"{:#x}\",\"seq\":{},\"issue\":{}}}",
            item.req.head.tag.value(),
            json_escape(&item.req.head.cmd.mnemonic()),
            item.req.head.addr,
            item.req.tail.seq,
            item.issue_cycle
        ));
    }
    if q.len() > 64 {
        s.push_str(",\"...\"");
    }
    s.push_str("]}");
}

fn rsp_queue_json(s: &mut String, q: &BoundedQueue<TrackedResponse>) {
    s.push_str(&format!("{{\"len\":{},\"depth\":{},\"packets\":[", q.len(), q.depth()));
    for (i, item) in q.iter().take(64).enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"tag\":{},\"cmd\":\"{:?}\",\"errstat\":{},\"entry_link\":{}}}",
            item.rsp.head.tag.value(),
            item.rsp.head.cmd,
            item.rsp.tail.errstat,
            item.entry_link
        ));
    }
    if q.len() > 64 {
        s.push_str(",\"...\"");
    }
    s.push_str("]}");
}

fn device_json(s: &mut String, id: usize, d: &DeviceSnapshot) {
    s.push_str(&format!("{{\"id\":{id},\"link_up\":["));
    for (i, up) in d.link_up.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(if *up { "true" } else { "false" });
    }
    s.push_str("],\"xbar_rqst\":[");
    for (i, q) in d.xbar_rqst.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        rqst_queue_json(s, q);
    }
    s.push_str("],\"xbar_rsp\":[");
    for (i, q) in d.xbar_rsp.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        rsp_queue_json(s, q);
    }
    // Only occupied vaults: 32 empty entries per device are noise.
    s.push_str("],\"vaults\":[");
    let mut first = true;
    for (v, vault) in d.vaults.iter().enumerate() {
        if vault.rqst.is_empty() && vault.rsp.is_empty() {
            continue;
        }
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "{{\"vault\":{v},\"rqst\":{},\"rsp\":{}}}",
            vault.rqst.len(),
            vault.rsp.len()
        ));
    }
    let st = &d.stats;
    s.push_str(&format!(
        "],\"stats\":{{\"responses\":{},\"error_responses\":{},\"send_stalls\":{},\
         \"xbar_stalls\":{},\"vault_stalls\":{},\"vault_faults\":{},\"abandoned\":{},\
         \"failover\":{}}},\"resident_pages\":{},\"fault_idx\":{}}}",
        st.responses,
        st.error_responses,
        st.send_stalls,
        st.xbar_stalls,
        st.vault_stalls,
        st.vault_faults,
        st.abandoned_responses,
        st.failover_responses,
        d.mem.resident_pages(),
        d.fault_idx
    ));
}

fn shadow_json(s: &mut String, shadow: &SanitizerShadow) {
    s.push_str(&format!(
        "{{\"injected\":{},\"delivered\":{},\"absorbed\":{},\"zombie_dropped\":{},\
         \"live_tags\":",
        shadow.injected, shadow.delivered, shadow.absorbed, shadow.zombie_dropped
    ));
    let mut v: Vec<_> = shadow.live_tags.iter().copied().collect();
    v.sort_unstable();
    let truncated = v.len() > 64;
    v.truncate(64);
    s.push('[');
    for (i, (dev, link, tag)) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("[{dev},{link},{tag}]"));
    }
    if truncated {
        s.push_str(",\"...\"");
    }
    s.push_str("]}");
}

/// The sanitizer's crash-forensics payload: everything needed to
/// understand and deterministically replay an invariant violation.
#[derive(Debug, Clone)]
pub struct ForensicDump {
    /// Cycle the violations were detected at.
    pub cycle: u64,
    /// The violations detected this cycle.
    pub violations: Vec<Violation>,
    /// End-of-cycle snapshot carrying the sanitizer's
    /// pre-acknowledgement shadow state: `HmcSim::restore` followed by
    /// one `clock()` re-detects the same violations.
    pub snapshot: SimSnapshot,
    /// Recent trace events leading up to the violation, oldest first
    /// (captured by the sanitizer's [`crate::trace::TraceRing`]).
    pub trace: Vec<String>,
    /// Cycle of the last periodic checkpoint, when one exists — the
    /// replay window is `checkpoint_cycle ..= cycle`.
    pub checkpoint_cycle: Option<u64>,
    /// Telemetry registry at violation time, pre-rendered as the JSON
    /// report (`None` when telemetry is disabled).
    pub telemetry_json: Option<String>,
    /// Flight-recorder timeline at violation time (`None` when no
    /// recorder is attached). Serialized as a top-level `traceEvents`
    /// array so the dump file opens directly in `ui.perfetto.dev`.
    pub flight: Option<FlightSnapshot>,
}

impl ForensicDump {
    /// Serializes the dump as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(8192);
        s.push_str("{\"cycle\":");
        s.push_str(&self.cycle.to_string());
        s.push_str(",\"checkpoint_cycle\":");
        match self.checkpoint_cycle {
            Some(c) => s.push_str(&c.to_string()),
            None => s.push_str("null"),
        }
        s.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"cycle\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                v.cycle,
                v.kind.name(),
                json_escape(&v.detail)
            ));
        }
        s.push_str("],\"trace\":[");
        for (i, line) in self.trace.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(&json_escape(line));
            s.push('"');
        }
        s.push_str("],\"telemetry\":");
        match &self.telemetry_json {
            Some(t) => s.push_str(t),
            None => s.push_str("null"),
        }
        // Top-level traceEvents: trace viewers accept extra keys, so
        // the forensic dump itself is a loadable Perfetto trace.
        s.push_str(",\"traceEvents\":");
        match &self.flight {
            Some(f) => s.push_str(&crate::perfetto::trace_events(
                f,
                &crate::perfetto::PerfettoOptions::default(),
            )),
            None => s.push_str("[]"),
        }
        s.push_str(",\"snapshot\":");
        s.push_str(&self.snapshot.to_json());
        s.push('}');
        s
    }

    /// Writes the JSON dump to `path`, creating parent directories.
    /// The write is atomic (tmp → fsync → rename → directory fsync, via
    /// [`crate::ckpt::atomic_write`]) — a crash mid-dump never leaves a
    /// torn forensic file — and every error names the offending path.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::ckpt::atomic_write(path, self.to_json().as_bytes())
    }
}

impl HmcSim {
    /// Captures all dynamic state, pairing it with the given sanitizer
    /// shadow (the public [`HmcSim::snapshot`] passes the live shadow;
    /// the sanitizer passes its pre-acknowledgement copy).
    pub(crate) fn snapshot_with_shadow(&self, shadow: Option<SanitizerShadow>) -> SimSnapshot {
        SimSnapshot {
            cycle: self.cycle,
            devices: self.devices.iter().map(Device::snapshot_state).collect(),
            host_rx: self.host_rx.clone(),
            tag_pools: self.tag_pools.clone(),
            pool_tags: self.pool_tags.clone(),
            // The event heaps flatten to their deterministic
            // `(ready, insertion)` order; concatenating the per-edge
            // queues in commit (edge-id) order keeps the flat form a
            // pure function of simulation state, so two identical
            // states always snapshot (and fingerprint) identically.
            in_transit: self
                .transit_queues
                .iter()
                .flat_map(|q| q.to_sorted_items())
                .collect(),
            links: self.links.clone(),
            retry_pending: self.retry_pending.to_sorted_items(),
            zombie_tags: self.zombie_tags.clone(),
            shadow,
            flight: self.tracer.flight_snapshot(),
        }
    }

    /// Captures a checkpoint of all dynamic simulation state. Restore
    /// it with [`HmcSim::restore`] to replay deterministically from
    /// this point.
    pub fn snapshot(&self) -> SimSnapshot {
        self.snapshot_with_shadow(self.sanitizer.as_ref().map(|s| s.shadow.clone()))
    }

    /// Restores all dynamic state from a snapshot taken on a context
    /// with the same geometry (device count, links, vaults). The
    /// static parts — configuration, CMC registrations, the tracer
    /// and the sanitizer policy — are kept from the live context.
    /// Returns [`HmcError::MalformedPacket`] on a geometry mismatch.
    pub fn restore(&mut self, snap: &SimSnapshot) -> Result<(), HmcError> {
        if snap.devices.len() != self.devices.len() {
            return Err(HmcError::MalformedPacket(format!(
                "snapshot has {} devices, context has {}",
                snap.devices.len(),
                self.devices.len()
            )));
        }
        for (i, (d, s)) in self.devices.iter().zip(&snap.devices).enumerate() {
            if d.config().links != s.link_up.len()
                || d.config().total_vaults() != s.vaults.len()
            {
                return Err(HmcError::MalformedPacket(format!(
                    "snapshot geometry mismatch on device {i}"
                )));
            }
        }
        self.cycle = snap.cycle;
        for (dev, s) in self.devices.iter_mut().zip(&snap.devices) {
            dev.restore_state(s);
        }
        self.host_rx = snap.host_rx.clone();
        self.tag_pools = snap.tag_pools.clone();
        self.pool_tags = snap.pool_tags.clone();
        // Rebuild the per-edge transit heaps from the snapshot's flat
        // form; the renumbered insertion sequence preserves the
        // recorded per-edge order. Pre-fabric snapshots carry no
        // sender (`from_dev == usize::MAX`) — those packets are
        // re-homed onto the lowest-numbered in-edge of their target,
        // which is deterministic and, on a chain, the legacy hop.
        let mut per_edge: Vec<Vec<Transit>> = vec![Vec::new(); self.topology.edge_count()];
        for t in &snap.in_transit {
            let (from, to) = t.edge();
            let edge = self.topology.edge_id(from, to).or_else(|| {
                self.topology
                    .edges()
                    .iter()
                    .position(|&(_, e_to)| e_to as usize == to)
            });
            let Some(edge) = edge else {
                return Err(HmcError::MalformedPacket(format!(
                    "snapshot transit targets device {to}, which has no in-edge \
                     in this topology"
                )));
            };
            let (rehomed_from, _) = self.topology.edges()[edge];
            let mut t = t.clone();
            t.set_from_dev(rehomed_from as usize);
            per_edge[edge].push(t);
        }
        self.transit_queues = per_edge
            .into_iter()
            .map(|v| crate::events::EventHeap::from_ordered(v, Transit::ready))
            .collect();
        self.links = snap.links.clone();
        self.retry_pending = crate::events::EventHeap::from_ordered(
            snap.retry_pending.iter().cloned(),
            |e: &RetryEntry| e.ready,
        );
        self.zombie_tags = snap.zombie_tags.clone();
        // Restored queues may hold packets: force the skip engine to
        // re-scan before compressing.
        self.mark_fabric_busy();
        if let Some(mut san) = self.sanitizer.take() {
            match &snap.shadow {
                Some(shadow) => san.shadow = shadow.clone(),
                // Snapshot from a sanitizer-off run: rebase the shadow
                // accounting to the restored state.
                None => san.rebase(self),
            }
            san.reset_watchdog();
            self.sanitizer = Some(san);
        }
        // An attached telemetry collector keeps running across the
        // restore; its delta baselines must follow the state backwards
        // or the next sample underflows.
        if let Some(mut tel) = self.telemetry.take() {
            tel.rebase(self);
            self.telemetry = Some(tel);
        }
        // An attached flight recorder resumes the snapshot's timeline
        // (no-op when the snapshot carried none or no recorder is
        // attached — the recorder is an observer, never state).
        if let Some(flight) = &snap.flight {
            self.tracer.restore_flight(flight);
        }
        Ok(())
    }

    /// Deterministic deep fingerprint of all dynamic state (see
    /// [`SimSnapshot::fingerprint`]). Intended for replay-equality
    /// assertions, not per-cycle use — it walks every queue and
    /// resident memory page.
    pub fn state_fingerprint(&self) -> u64 {
        self.snapshot_with_shadow(None).fingerprint()
    }
}
