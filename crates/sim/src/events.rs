//! Ready-cycle-ordered event storage for deferred packet movement.
//!
//! The simulation context holds two pools of time-deferred work:
//! inter-device transits (`in_transit`) and link-layer retry replays
//! (`retry_pending`). The original implementation kept both in plain
//! vectors and re-filtered the *entire* pool every cycle — O(n) per
//! cycle even when nothing was due. [`EventHeap`] replaces that with a
//! binary min-heap keyed on `(ready, seq)`:
//!
//! * `ready` orders events by due cycle, so a clock only ever touches
//!   events that are actually due — entries that are not ready are
//!   never moved;
//! * `seq` is a monotonic insertion counter that breaks ties, so
//!   events due on the same cycle pop in exactly the order the old
//!   vector processed them and the simulation stays bit-identical;
//! * [`EventHeap::peek_ready`] exposes the earliest due cycle in O(1),
//!   which is what the event-horizon engine's `next_event_cycle`
//!   consults to decide how far the clock may skip.
//!
//! An event that pops ready but cannot be delivered this cycle (link
//! down, destination queue full) is re-inserted with its *original*
//! `(ready, seq)` key via [`EventHeap::reinsert`], preserving its
//! priority relative to everything behind it.
//!
//! The `Debug` representation prints the items in `(ready, seq)`
//! order *without* the sequence numbers, so two heaps holding the
//! same events — even built through different push/reinsert histories
//! or restored from a snapshot with renumbered sequences — print (and
//! therefore fingerprint) identically.

use std::collections::BinaryHeap;

/// A heap entry: the item plus its ordering key.
#[derive(Clone)]
struct Entry<T> {
    ready: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ready == other.ready && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    /// Reversed on `(ready, seq)` so `BinaryHeap`'s max-heap pops the
    /// earliest event first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.ready, other.seq).cmp(&(self.ready, self.seq))
    }
}

/// The `(ready, seq)` key of a popped event, handed out alongside the
/// item so a failed delivery can re-insert without losing its place
/// in line.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventKey {
    ready: u64,
    seq: u64,
}

/// A min-heap of time-deferred events ordered by `(ready, seq)`.
#[derive(Clone)]
pub(crate) struct EventHeap<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventHeap<T> {
    pub(crate) fn new() -> Self {
        EventHeap { heap: BinaryHeap::new(), next_seq: 0 }
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts an event due at `ready`, behind every event already
    /// inserted for that cycle.
    pub(crate) fn push(&mut self, ready: u64, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { ready, seq, item });
    }

    /// Re-inserts a popped event with its original key (a delivery
    /// that stalled this cycle retries with unchanged priority).
    pub(crate) fn reinsert(&mut self, key: EventKey, item: T) {
        self.heap.push(Entry { ready: key.ready, seq: key.seq, item });
    }

    /// The earliest due cycle, if any event is stored. O(1).
    pub(crate) fn peek_ready(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.ready)
    }

    /// Pops the earliest event if it is due at or before `cycle`.
    pub(crate) fn pop_ready(&mut self, cycle: u64) -> Option<(EventKey, T)> {
        if self.peek_ready()? > cycle {
            return None;
        }
        let e = self.heap.pop().expect("peeked");
        Some((EventKey { ready: e.ready, seq: e.seq }, e.item))
    }

    /// Iterates the stored items in arbitrary order (for
    /// order-independent sums and filters).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.heap.iter().map(|e| &e.item)
    }

    /// The stored items in `(ready, seq)` order — the deterministic
    /// flat form used by snapshots.
    pub(crate) fn to_sorted_items(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().collect();
        entries.sort_unstable_by_key(|e| (e.ready, e.seq));
        entries.into_iter().map(|e| e.item.clone()).collect()
    }

    /// Rebuilds a heap from items already in deterministic order (a
    /// snapshot's flat form): sequence numbers are renumbered 0..n,
    /// preserving the relative order the snapshot recorded.
    pub(crate) fn from_ordered(items: impl IntoIterator<Item = T>, ready_of: impl Fn(&T) -> u64) -> Self {
        let mut heap = EventHeap::new();
        for item in items {
            let ready = ready_of(&item);
            heap.push(ready, item);
        }
        heap
    }
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Prints the items sorted by `(ready, seq)` with the sequence
/// numbers omitted: representation-independent, so restored heaps
/// fingerprint identically to their originals.
impl<T: std::fmt::Debug> std::fmt::Debug for EventHeap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().collect();
        entries.sort_unstable_by_key(|e| (e.ready, e.seq));
        f.debug_list().entries(entries.iter().map(|e| &e.item)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ready_then_insertion_order() {
        let mut h = EventHeap::new();
        h.push(5, "a");
        h.push(3, "b");
        h.push(5, "c");
        h.push(3, "d");
        assert_eq!(h.peek_ready(), Some(3));
        assert_eq!(h.len(), 4);

        // Nothing due before cycle 3.
        assert!(h.pop_ready(2).is_none());

        let order: Vec<&str> =
            std::iter::from_fn(|| h.pop_ready(10).map(|(_, item)| item)).collect();
        assert_eq!(order, ["b", "d", "a", "c"], "ready first, then insertion order");
        assert!(h.is_empty());
    }

    #[test]
    fn pop_ready_leaves_future_events() {
        let mut h = EventHeap::new();
        h.push(1, 10u32);
        h.push(7, 20);
        assert_eq!(h.pop_ready(1).unwrap().1, 10);
        assert!(h.pop_ready(6).is_none(), "event at 7 is not due at 6");
        assert_eq!(h.peek_ready(), Some(7));
    }

    #[test]
    fn reinsert_preserves_priority() {
        let mut h = EventHeap::new();
        h.push(2, "first");
        h.push(2, "second");
        // Pop the head, fail to deliver it, put it back: it must pop
        // before "second" again.
        let (key, item) = h.pop_ready(5).unwrap();
        assert_eq!(item, "first");
        h.reinsert(key, item);
        assert_eq!(h.pop_ready(5).unwrap().1, "first");
        assert_eq!(h.pop_ready(5).unwrap().1, "second");
    }

    #[test]
    fn reinsert_with_replacement_item_keeps_the_key() {
        let mut h = EventHeap::new();
        h.push(4, 1u32);
        h.push(4, 2);
        let (key, _) = h.pop_ready(4).unwrap();
        h.reinsert(key, 99);
        assert_eq!(h.pop_ready(4).unwrap().1, 99, "replacement kept its place");
        assert_eq!(h.pop_ready(4).unwrap().1, 2);
    }

    #[test]
    fn debug_is_order_and_seq_independent() {
        let mut a = EventHeap::new();
        a.push(1, "x");
        a.push(2, "y");
        // Same events arriving through a different history: pushed,
        // popped and re-inserted, with extra seq churn in between.
        let mut b = EventHeap::new();
        b.push(2, "y");
        b.push(1, "x");
        let (key, item) = b.pop_ready(1).unwrap();
        b.reinsert(key, item);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.to_sorted_items(), vec!["x", "y"]);
    }

    #[test]
    fn from_ordered_round_trips_through_sorted_items() {
        let mut h = EventHeap::new();
        h.push(9, (9u64, "late"));
        h.push(1, (1u64, "early"));
        h.push(9, (9u64, "late2"));
        let flat = h.to_sorted_items();
        let rebuilt = EventHeap::from_ordered(flat.clone(), |&(r, _)| r);
        assert_eq!(rebuilt.to_sorted_items(), flat);
        assert_eq!(format!("{h:?}"), format!("{rebuilt:?}"));
    }
}
