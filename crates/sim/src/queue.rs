//! Bounded FIFO queues with occupancy statistics.
//!
//! Every queueing structure in the device (crossbar queues, vault
//! request/response queues) is a [`BoundedQueue`]; a full queue
//! produces [`HmcError::Stall`], the back-pressure signal that shapes
//! the paper's contention results.

use hmc_types::HmcError;
use std::collections::VecDeque;

/// A bounded FIFO with stall accounting and a high-water mark.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    depth: usize,
    high_water: usize,
    stalls: u64,
    pushed: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with `depth` slots.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be nonzero");
        BoundedQueue {
            items: VecDeque::with_capacity(depth),
            depth,
            high_water: 0,
            stalls: 0,
            pushed: 0,
        }
    }

    /// Enqueues an item, or stalls when the queue is full. The item is
    /// handed back by value inside the error, so a stall never loses a
    /// packet — the caller keeps ownership and decides whether to
    /// retry, defer or drop. (An earlier `try_push` variant discarded
    /// the item on stall; it was removed so no call site can silently
    /// lose a packet under back-pressure.)
    pub fn push(&mut self, item: T) -> Result<(), (T, HmcError)> {
        if self.items.len() >= self.depth {
            self.stalls += 1;
            return Err((item, HmcError::Stall));
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        self.pushed += 1;
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Peeks at the `i`-th oldest item (0 = front) without removing
    /// it. The parallel planner uses this to replay the sequential
    /// head-of-line decision sequence non-destructively.
    pub fn peek_at(&self, i: usize) -> Option<&T> {
        self.items.get(i)
    }

    /// Iterates over queued items, oldest first (snapshot/sanitizer
    /// introspection; does not disturb the queue).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.depth
    }

    /// Configured depth in slots.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of rejected pushes.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Cumulative accepted pushes over the queue's lifetime (the
    /// telemetry throughput counter — occupancy tells you *now*, this
    /// tells you *how much has flowed through*).
    pub fn pushes(&self) -> u64 {
        self.pushed
    }

    /// Rebuilds a queue from previously observed parts (checkpoint
    /// restore). `items` must not exceed `depth`; occupancy statistics
    /// are restored verbatim so a restored queue is `Debug`-identical
    /// to the one that was snapshotted.
    pub(crate) fn from_parts(
        items: VecDeque<T>,
        depth: usize,
        high_water: usize,
        stalls: u64,
        pushed: u64,
    ) -> Self {
        assert!(depth > 0, "queue depth must be nonzero");
        assert!(items.len() <= depth, "restored occupancy exceeds queue depth");
        BoundedQueue { items, depth, high_water, stalls, pushed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.peek(), Some(&3));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stall_when_full() {
        let mut q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        let (item, err) = q.push(3).unwrap_err();
        assert_eq!(item, 3, "ownership returned on stall");
        assert!(err.is_stall());
        assert_eq!(q.stalls(), 1);
        q.pop();
        q.push(3).unwrap();
    }

    #[test]
    fn no_item_lost_on_stall() {
        // Regression: a stalled push must never lose the packet. Every
        // item fed through a saturated queue comes out the other side
        // exactly once once the stalls retry.
        let mut q = BoundedQueue::new(3);
        let mut delivered = Vec::new();
        let mut retry = None;
        for i in 0..10 {
            let mut item = Some(i);
            while let Some(v) = retry.take().or_else(|| item.take()) {
                match q.push(v) {
                    Ok(()) => {}
                    Err((v, e)) => {
                        assert!(e.is_stall());
                        retry = Some(v);
                        delivered.push(q.pop().expect("full queue has items"));
                    }
                }
            }
        }
        while let Some(v) = q.pop() {
            delivered.push(v);
        }
        assert_eq!(delivered, (0..10).collect::<Vec<_>>(), "no loss, no reorder");
        assert_eq!(q.pushes(), 10);
        assert!(q.stalls() > 0, "the scenario actually exercised stalls");
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for _ in 0..5 {
            q.pop();
        }
        q.push(9).unwrap();
        assert_eq!(q.high_water(), 5);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pushes(), 6, "cumulative throughput counts every accepted push");
    }

    #[test]
    #[should_panic(expected = "depth must be nonzero")]
    fn zero_depth_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
