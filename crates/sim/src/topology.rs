//! Multi-cube fabric topologies and deterministic routing tables.
//!
//! A [`Topology`] is built once at context construction from the
//! configured [`LinkTopology`] and device count. It precomputes:
//!
//! * a dense **next-hop table** — `next_hop(from, target)` is a table
//!   lookup, replacing the old hard-coded chain walk;
//! * a fixed, lexicographically ordered **directed edge list** — the
//!   engine keeps one transit queue per edge, and committing edges in
//!   list order gives cross-device message delivery a total order
//!   independent of execution mode (see DESIGN.md §19).
//!
//! Routing is shortest-path with deterministic tie-breaking: among
//! equally short first hops the lowest-numbered neighbour wins. The
//! tables are pure functions of `(kind, n)`, so every context built
//! from the same configuration routes identically.

use crate::config::LinkTopology;
use hmc_types::{Cub, HmcError};

/// An immutable routing fabric over `n` devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: LinkTopology,
    n: usize,
    /// `next_hop[from * n + target]` — the neighbour of `from` on a
    /// shortest path to `target` (`from` itself when already there).
    next_hop: Vec<u8>,
    /// Directed edges `(from, to)` in lexicographic order. The index
    /// of an edge in this list is its transit-queue id.
    edges: Vec<(u8, u8)>,
    /// `edge_index[from * n + to]` — the edge id, or `u16::MAX` when
    /// the devices are not neighbours.
    edge_index: Vec<u16>,
}

impl Topology {
    /// Builds the routing tables, validating the topology's
    /// preconditions (ring needs ≥ 3 cubes; a mesh's device count
    /// must be a positive multiple of its column count; everything
    /// is capped at [`Cub::MAX_CUBES`]).
    pub fn new(kind: LinkTopology, n: usize) -> Result<Self, HmcError> {
        if n == 0 || n > Cub::MAX_CUBES {
            return Err(HmcError::InvalidCube(n.min(255) as u8));
        }
        match kind {
            LinkTopology::HostOnly | LinkTopology::Chain => {}
            LinkTopology::Ring => {
                if n < 3 {
                    return Err(HmcError::MalformedPacket(format!(
                        "ring topology needs at least 3 cubes, got {n} (use a chain)"
                    )));
                }
            }
            LinkTopology::Mesh { cols } => {
                if cols == 0 || !n.is_multiple_of(cols) {
                    return Err(HmcError::MalformedPacket(format!(
                        "mesh of {n} cubes is not a full grid of width {cols}"
                    )));
                }
            }
        }
        let neighbours = |i: usize| -> Vec<usize> {
            let mut out = match kind {
                // Host-only devices are islands: no inter-cube wiring.
                LinkTopology::HostOnly => vec![],
                LinkTopology::Chain => {
                    let mut v = vec![];
                    if i > 0 {
                        v.push(i - 1);
                    }
                    if i + 1 < n {
                        v.push(i + 1);
                    }
                    v
                }
                LinkTopology::Ring => vec![(i + n - 1) % n, (i + 1) % n],
                LinkTopology::Mesh { cols } => {
                    let (r, c) = (i / cols, i % cols);
                    let rows = n / cols;
                    let mut v = vec![];
                    if r > 0 {
                        v.push(i - cols);
                    }
                    if c > 0 {
                        v.push(i - 1);
                    }
                    if c + 1 < cols {
                        v.push(i + 1);
                    }
                    if r + 1 < rows {
                        v.push(i + cols);
                    }
                    v
                }
            };
            out.sort_unstable();
            out.dedup();
            out
        };

        // Edge list: ascending (from, to).
        let mut edges = Vec::new();
        let mut edge_index = vec![u16::MAX; n * n];
        for from in 0..n {
            for to in neighbours(from) {
                edge_index[from * n + to] = edges.len() as u16;
                edges.push((from as u8, to as u8));
            }
        }

        // Next-hop table: one BFS per target over the reversed graph
        // (our graphs are symmetric, so the graph itself). dist[i] is
        // the hop count from i to the target; the next hop from a
        // device is its lowest-numbered neighbour that is one step
        // closer.
        let mut next_hop = vec![u8::MAX; n * n];
        for target in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[target] = 0;
            let mut queue = std::collections::VecDeque::from([target]);
            while let Some(u) = queue.pop_front() {
                for v in neighbours(u) {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            for from in 0..n {
                next_hop[from * n + target] = if from == target {
                    from as u8
                } else if dist[from] == usize::MAX {
                    u8::MAX // unreachable (host-only islands)
                } else {
                    neighbours(from)
                        .into_iter()
                        .find(|&v| dist[v] + 1 == dist[from])
                        .expect("a finite-distance node has a closer neighbour")
                        as u8
                };
            }
        }

        Ok(Topology { kind, n, next_hop, edges, edge_index })
    }

    /// The wiring this fabric was built from.
    pub fn kind(&self) -> LinkTopology {
        self.kind
    }

    /// Number of devices in the fabric.
    pub fn device_count(&self) -> usize {
        self.n
    }

    /// The neighbour of `from` on the (deterministic) shortest path
    /// to `target`, or `None` when `target` is unreachable from
    /// `from` (host-only islands) or either id is out of range.
    pub fn next_hop(&self, from: usize, target: usize) -> Option<usize> {
        if from >= self.n || target >= self.n {
            return None;
        }
        match self.next_hop[from * self.n + target] {
            u8::MAX => None,
            hop => Some(hop as usize),
        }
    }

    /// The directed edges of the fabric in commit order.
    pub fn edges(&self) -> &[(u8, u8)] {
        &self.edges
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The transit-queue id of the directed edge `from → to`, or
    /// `None` when the devices are not neighbours.
    pub fn edge_id(&self, from: usize, to: usize) -> Option<usize> {
        if from >= self.n || to >= self.n {
            return None;
        }
        match self.edge_index[from * self.n + to] {
            u16::MAX => None,
            id => Some(id as usize),
        }
    }

    /// Hop count of the routed path from `from` to `target` (0 when
    /// equal, `None` when unreachable). Walks the next-hop table, so
    /// it reflects exactly what the engine will do.
    pub fn route_len(&self, from: usize, target: usize) -> Option<u64> {
        let mut at = from;
        let mut hops = 0u64;
        while at != target {
            at = self.next_hop(at, target)?;
            hops += 1;
            debug_assert!(hops as usize <= self.n, "routing loop");
        }
        Some(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_matches_legacy_walk() {
        let t = Topology::new(LinkTopology::Chain, 5).unwrap();
        assert_eq!(t.next_hop(0, 4), Some(1));
        assert_eq!(t.next_hop(4, 0), Some(3));
        assert_eq!(t.next_hop(2, 2), Some(2));
        assert_eq!(t.route_len(0, 4), Some(4));
        // Edges: (i, i±1) both ways, lexicographic.
        assert_eq!(t.edges()[0], (0, 1));
        assert_eq!(t.edge_count(), 8);
        assert_eq!(t.edge_id(1, 0), Some(1));
        assert_eq!(t.edge_id(0, 2), None);
    }

    #[test]
    fn ring_routes_the_short_way_round() {
        let t = Topology::new(LinkTopology::Ring, 6).unwrap();
        assert_eq!(t.next_hop(0, 5), Some(5), "one hop backwards beats four forwards");
        assert_eq!(t.route_len(0, 5), Some(1));
        assert_eq!(t.route_len(0, 2), Some(2));
        // Antipodal target: both ways are 3 hops; the lowest-numbered
        // neighbour of 0 (device 1) wins deterministically.
        assert_eq!(t.next_hop(0, 3), Some(1));
        assert_eq!(t.edge_count(), 12);
    }

    #[test]
    fn mesh_routes_are_shortest_and_deterministic() {
        // 4×4 mesh, row-major.
        let t = Topology::new(LinkTopology::Mesh { cols: 4 }, 16).unwrap();
        assert_eq!(t.route_len(0, 15), Some(6), "Manhattan distance corner to corner");
        // From 5 (r1,c1) to 10 (r2,c2): north/west neighbours are not
        // closer; the lowest-numbered closer neighbour of 5 is 6.
        assert_eq!(t.next_hop(5, 10), Some(6));
        // Interior node degree 4, corner degree 2: 2*2*4 + 4*3*2(edges
        // per interior-ish)… just count: 2 * (rows*(cols-1) + cols*(rows-1)).
        assert_eq!(t.edge_count(), 2 * (4 * 3 + 4 * 3));
        for from in 0..16 {
            for to in 0..16 {
                let len = t.route_len(from, to).unwrap();
                let manhattan = ((from / 4).abs_diff(to / 4) + (from % 4).abs_diff(to % 4)) as u64;
                assert_eq!(len, manhattan, "{from}->{to}");
            }
        }
    }

    #[test]
    fn host_only_has_no_routes() {
        let t = Topology::new(LinkTopology::HostOnly, 3).unwrap();
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.next_hop(0, 1), None);
        assert_eq!(t.next_hop(1, 1), Some(1));
    }

    #[test]
    fn invalid_topologies_rejected() {
        assert!(Topology::new(LinkTopology::Ring, 2).is_err());
        assert!(Topology::new(LinkTopology::Mesh { cols: 3 }, 4).is_err());
        assert!(Topology::new(LinkTopology::Mesh { cols: 0 }, 4).is_err());
        assert!(Topology::new(LinkTopology::Chain, 0).is_err());
        assert!(Topology::new(LinkTopology::Chain, 17).is_err());
    }

    #[test]
    fn tables_are_pure_functions_of_config() {
        let a = Topology::new(LinkTopology::Mesh { cols: 2 }, 8).unwrap();
        let b = Topology::new(LinkTopology::Mesh { cols: 2 }, 8).unwrap();
        assert_eq!(a, b);
    }
}
