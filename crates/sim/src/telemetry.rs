//! Cycle-accurate telemetry: request lifecycle spans, per-stage
//! latency histograms and windowed time series.
//!
//! Telemetry is an optional observer, exactly like the sanitizer: a
//! context without one pays a single `Option` check per cycle, and an
//! attached telemetry collector never influences simulation state —
//! `tests/no_perturbation.rs` pins a bit-identical state fingerprint
//! with it enabled.
//!
//! Two kinds of data feed the exported registry
//! ([`crate::export::TelemetryReport`]):
//!
//! * **Always-on aggregates** — counters and per-class latency
//!   histograms in [`crate::stats::DeviceStats`] and
//!   [`crate::link::LinkStats`]. These are part of the core model and
//!   are recorded unconditionally (they are deterministic, so they
//!   cannot perturb anything).
//! * **Telemetry-only data** — per-stage span histograms and windowed
//!   time series, recorded only while a collector is attached.
//!
//! # Request lifecycle spans
//!
//! Every packet carries [`StageStamps`]: the pipeline stages stamp
//! cycle numbers as the packet moves (crossbar → vault queue at
//! routing, vault execution, vault → crossbar on the return path,
//! response egress). At host delivery the stamps resolve into
//! per-stage durations recorded under [`Stage`]:
//!
//! ```text
//! host inject ──xbar_rqst──▶ vault queue ──vault_wait──▶ execute
//!      ──bank──▶ leaves vault ──xbar_rsp──▶ egress ──delivery──▶ host
//! ```

use crate::device::TrackedResponse;
use crate::hist::Hist;
use crate::sim::HmcSim;

/// Telemetry collector configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch: `false` (the default) attaches nothing and
    /// guarantees zero perturbation and zero overhead beyond one
    /// `Option` check per cycle.
    pub enabled: bool,
    /// Record request lifecycle spans into per-stage histograms.
    pub spans: bool,
    /// Time-series window length in cycles (`0` disables the windowed
    /// series).
    pub window: u64,
    /// Maximum windows retained per series; when exceeded, adjacent
    /// windows merge pairwise and the window length doubles, so memory
    /// stays bounded on arbitrarily long runs.
    pub max_windows: usize,
}

impl TelemetryConfig {
    /// Telemetry off (the default).
    pub fn disabled() -> Self {
        TelemetryConfig { enabled: false, spans: true, window: 1024, max_windows: 256 }
    }

    /// Counters and per-class histograms only: no span recording, no
    /// time series — the cheapest attached mode.
    pub fn counters_only() -> Self {
        TelemetryConfig { enabled: true, spans: false, window: 0, ..Self::disabled() }
    }

    /// Everything on: spans plus windowed time series.
    pub fn full() -> Self {
        TelemetryConfig { enabled: true, ..Self::disabled() }
    }

    /// Full collection with a specific time-series window.
    pub fn with_window(window: u64) -> Self {
        TelemetryConfig { window, ..Self::full() }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Pipeline stage cycle stamps carried by every tracked packet.
///
/// The stamps are written unconditionally by the pipeline stages —
/// they are deterministic annotations, identical whether or not a
/// telemetry collector is attached, so they cannot perturb the
/// simulation. They only *cost* anything (histogram recording) when
/// spans are enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStamps {
    /// Cycle the request left the crossbar for its vault queue.
    pub vault_enq: u64,
    /// Cycle the vault executed the request.
    pub exec: u64,
    /// Cycle the response left the vault for the crossbar.
    pub rsp_route: u64,
    /// Cycle the response drained from the crossbar toward the host.
    pub egress: u64,
}

/// One stage of the request lifecycle (see the module docs for the
/// timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Host inject → request leaves the crossbar (link ingress plus
    /// crossbar residency).
    XbarRqst,
    /// Crossbar → vault execution starts (vault-queue wait, including
    /// any remote-quad crossing penalty).
    VaultWait,
    /// Execution → response leaves the vault (bank service plus vault
    /// response-queue residency).
    Bank,
    /// Vault → response egress (crossbar response-queue residency).
    XbarRsp,
    /// Egress → host delivery.
    Delivery,
}

impl Stage {
    /// Every stage in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::XbarRqst,
        Stage::VaultWait,
        Stage::Bank,
        Stage::XbarRsp,
        Stage::Delivery,
    ];

    /// Metric-path label.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::XbarRqst => "xbar_rqst",
            Stage::VaultWait => "vault_wait",
            Stage::Bank => "bank",
            Stage::XbarRsp => "xbar_rsp",
            Stage::Delivery => "delivery",
        }
    }
}

/// A fixed-window time series with bounded memory.
///
/// Samples accumulate into `(sum, count)` windows of `window` cycles.
/// When a sample lands past `max_windows`, adjacent windows merge
/// pairwise and the window doubles — deterministic coarsening, so two
/// identical runs always produce identical series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    window: u64,
    max_windows: usize,
    points: Vec<(u64, u64)>,
}

impl TimeSeries {
    /// Creates a series with the given window length and retention.
    pub fn new(window: u64, max_windows: usize) -> Self {
        TimeSeries { window, max_windows: max_windows.max(2), points: Vec::new() }
    }

    /// Records `value` at `cycle`.
    pub fn record(&mut self, cycle: u64, value: u64) {
        if self.window == 0 {
            return;
        }
        let mut idx = (cycle / self.window) as usize;
        while idx >= self.max_windows {
            self.coarsen();
            idx = (cycle / self.window) as usize;
        }
        if self.points.len() <= idx {
            self.points.resize(idx + 1, (0, 0));
        }
        self.points[idx].0 += value;
        self.points[idx].1 += 1;
    }

    /// Records `value` at each of the `n` consecutive cycles starting
    /// at `start` — bit-identical to `n` calls of [`TimeSeries::record`]
    /// but O(windows touched), not O(n). The event-horizon engine uses
    /// this to append a whole skipped idle region (value 0) at once.
    pub fn record_n(&mut self, start: u64, n: u64, value: u64) {
        if self.window == 0 {
            return;
        }
        let mut cycle = start;
        let mut remaining = n;
        while remaining > 0 {
            let mut idx = (cycle / self.window) as usize;
            while idx >= self.max_windows {
                self.coarsen();
                idx = (cycle / self.window) as usize;
            }
            // Stay inside the current window; coarsening cannot occur
            // mid-run because `idx` only grows at window boundaries.
            let run = remaining.min((idx as u64 + 1) * self.window - cycle);
            if self.points.len() <= idx {
                self.points.resize(idx + 1, (0, 0));
            }
            self.points[idx].0 += value * run;
            self.points[idx].1 += run;
            cycle += run;
            remaining -= run;
        }
    }

    fn coarsen(&mut self) {
        let merged: Vec<(u64, u64)> = self
            .points
            .chunks(2)
            .map(|pair| {
                let (s0, c0) = pair[0];
                let (s1, c1) = pair.get(1).copied().unwrap_or((0, 0));
                (s0 + s1, c0 + c1)
            })
            .collect();
        self.points = merged;
        self.window *= 2;
    }

    /// The current window length in cycles (grows under coarsening).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The series as `(window start cycle, sum, sample count)` rows.
    pub fn points(&self) -> Vec<(u64, u64, u64)> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, &(sum, count))| (i as u64 * self.window, sum, count))
            .collect()
    }

    /// Sum over the whole series.
    pub fn total(&self) -> u64 {
        self.points.iter().map(|&(s, _)| s).sum()
    }
}

/// Per-device telemetry state.
#[derive(Debug, Clone)]
pub(crate) struct DeviceTelemetry {
    /// Per-stage span histograms, indexed in [`Stage::ALL`] order.
    pub(crate) stages: [Hist; 5],
    /// Per-link FLITs sent per window (link bandwidth).
    pub(crate) link_flits: Vec<TimeSeries>,
    /// Vault request-queue occupancy, sampled each cycle.
    pub(crate) vault_occupancy: TimeSeries,
    /// DRAM bank accesses per window (bank utilization).
    pub(crate) bank_accesses: TimeSeries,
    last_link_flits: Vec<u64>,
    last_bank_accesses: u64,
}

/// The attached telemetry collector (see [`TelemetryConfig`]).
#[derive(Debug, Clone)]
pub struct Telemetry {
    pub(crate) config: TelemetryConfig,
    pub(crate) devices: Vec<DeviceTelemetry>,
}

impl Telemetry {
    pub(crate) fn new(config: TelemetryConfig, sim: &HmcSim) -> Self {
        let devices = sim
            .devices
            .iter()
            .map(|d| {
                let links = d.config().links;
                DeviceTelemetry {
                    stages: [Hist::new(); 5],
                    link_flits: (0..links)
                        .map(|_| TimeSeries::new(config.window, config.max_windows))
                        .collect(),
                    vault_occupancy: TimeSeries::new(config.window, config.max_windows),
                    bank_accesses: TimeSeries::new(config.window, config.max_windows),
                    last_link_flits: vec![0; links],
                    last_bank_accesses: 0,
                }
            })
            .collect();
        Telemetry { config, devices }
    }

    /// Resolves a delivered response's stage stamps into per-stage
    /// durations. Called from the delivery path in `clock()`.
    pub(crate) fn record_response(&mut self, dev: usize, rsp: &TrackedResponse) {
        if !self.config.spans {
            return;
        }
        let Some(d) = self.devices.get_mut(dev) else { return };
        let s = rsp.stages;
        let durations = [
            s.vault_enq.saturating_sub(rsp.issue_cycle),
            s.exec.saturating_sub(s.vault_enq),
            s.rsp_route.saturating_sub(s.exec),
            s.egress.saturating_sub(s.rsp_route),
            rsp.complete_cycle.saturating_sub(s.egress),
        ];
        for (h, v) in d.stages.iter_mut().zip(durations) {
            h.record(v);
        }
    }

    /// The span histogram for one stage of one device.
    pub fn stage_hist(&self, dev: usize, stage: Stage) -> Option<&Hist> {
        let idx = Stage::ALL.iter().position(|s| *s == stage)?;
        self.devices.get(dev).map(|d| &d.stages[idx])
    }

    /// Re-bases the delta baselines (the `last_*` counters) on `sim`'s
    /// current state. Called by [`HmcSim::restore`]: the restored
    /// device counters may be *behind* the collector's recorded
    /// baselines, and without a rebase the next [`Telemetry::sample`]
    /// delta would underflow.
    pub(crate) fn rebase(&mut self, sim: &HmcSim) {
        for (dev, t) in self.devices.iter_mut().enumerate() {
            for link in 0..t.last_link_flits.len() {
                t.last_link_flits[link] = sim.links[dev][link].stats.flits_sent;
            }
            let (hits, misses) = sim.devices[dev].row_buffer_stats();
            t.last_bank_accesses = hits + misses;
        }
    }

    /// Per-cycle sampling of the windowed series. Read-only over the
    /// simulation state; called via take/put from `clock()`.
    pub(crate) fn sample(&mut self, sim: &HmcSim, cycle: u64) {
        if self.config.window == 0 {
            return;
        }
        for (dev, t) in self.devices.iter_mut().enumerate() {
            for link in 0..t.last_link_flits.len() {
                let now = sim.links[dev][link].stats.flits_sent;
                let delta = now - t.last_link_flits[link];
                t.link_flits[link].record(cycle, delta);
                t.last_link_flits[link] = now;
            }
            t.vault_occupancy
                .record(cycle, sim.devices[dev].vault_rqst_occupancy());
            let (hits, misses) = sim.devices[dev].row_buffer_stats();
            let accesses = hits + misses;
            t.bank_accesses
                .record(cycle, accesses - t.last_bank_accesses);
            t.last_bank_accesses = accesses;
        }
    }

    /// Bulk sampling of a provably-idle region of `k` cycles starting
    /// at `start`. The first cycle takes a regular [`Telemetry::sample`]
    /// (a collector attached mid-run may still hold stale `last_*`
    /// counters whose first delta is nonzero); the remaining `k - 1`
    /// cycles are guaranteed zero-delta, zero-occupancy samples and
    /// append in closed form via [`TimeSeries::record_n`].
    pub(crate) fn sample_idle(&mut self, sim: &HmcSim, start: u64, k: u64) {
        if k == 0 {
            return;
        }
        self.sample(sim, start);
        if k == 1 || self.config.window == 0 {
            return;
        }
        for t in self.devices.iter_mut() {
            for series in t.link_flits.iter_mut() {
                series.record_n(start + 1, k - 1, 0);
            }
            t.vault_occupancy.record_n(start + 1, k - 1, 0);
            t.bank_accesses.record_n(start + 1, k - 1, 0);
        }
    }
}

impl HmcSim {
    /// Attaches a telemetry collector. Enabling mid-run is legal: the
    /// series and span histograms start from the current cycle, while
    /// the always-on aggregates already cover the whole run.
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        let mut config = config;
        config.enabled = true;
        let tel = Box::new(Telemetry::new(config, self));
        self.telemetry = Some(tel);
    }

    /// Detaches the telemetry collector, returning the final report.
    pub fn disable_telemetry(&mut self) -> Option<crate::export::TelemetryReport> {
        let report = self.telemetry_report();
        self.telemetry = None;
        report
    }

    /// True when a telemetry collector is attached.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// End-of-cycle sampling hook. The collector is taken out of the
    /// context for the call (the same take/put dance as the
    /// sanitizer) so it can read the whole simulation state.
    pub(crate) fn run_telemetry(&mut self, cycle: u64) {
        let Some(mut tel) = self.telemetry.take() else { return };
        tel.sample(self, cycle);
        self.telemetry = Some(tel);
    }

    /// Bulk hook for a skipped idle region: samples cycles
    /// `start..start + k` in one closed-form update.
    pub(crate) fn run_telemetry_idle(&mut self, start: u64, k: u64) {
        let Some(mut tel) = self.telemetry.take() else { return };
        tel.sample_idle(self, start, k);
        self.telemetry = Some(tel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        assert!(!TelemetryConfig::default().enabled);
        assert!(TelemetryConfig::full().enabled);
        assert!(TelemetryConfig::counters_only().enabled);
        assert!(!TelemetryConfig::counters_only().spans);
    }

    #[test]
    fn time_series_windows_accumulate() {
        let mut ts = TimeSeries::new(10, 8);
        ts.record(0, 5);
        ts.record(9, 3);
        ts.record(10, 7);
        let points = ts.points();
        assert_eq!(points[0], (0, 8, 2));
        assert_eq!(points[1], (10, 7, 1));
        assert_eq!(ts.total(), 15);
    }

    #[test]
    fn time_series_coarsens_deterministically() {
        let mut ts = TimeSeries::new(1, 4);
        for cycle in 0..16u64 {
            ts.record(cycle, 1);
        }
        assert!(ts.points().len() <= 4);
        assert_eq!(ts.total(), 16, "coarsening loses no mass");
        assert!(ts.window() > 1);

        let mut again = TimeSeries::new(1, 4);
        for cycle in 0..16u64 {
            again.record(cycle, 1);
        }
        assert_eq!(ts, again, "deterministic");
    }

    #[test]
    fn zero_window_series_is_inert() {
        let mut ts = TimeSeries::new(0, 4);
        ts.record(100, 42);
        assert!(ts.points().is_empty());
        ts.record_n(100, 50, 42);
        assert!(ts.points().is_empty());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        // Differential check across window boundaries, coarsening and
        // nonzero values: one bulk append must be bit-identical to the
        // per-cycle loop.
        for (window, max_windows, start, n, value) in [
            (10, 8, 0, 25, 0u64),
            (10, 8, 7, 25, 3),
            (1, 4, 0, 64, 1),   // forces repeated coarsening
            (5, 2, 12, 33, 2),  // tiny retention, offset start
            (10, 8, 95, 1, 9),  // single-cycle run
            (10, 8, 42, 0, 9),  // empty run is a no-op
        ] {
            let mut bulk = TimeSeries::new(window, max_windows);
            bulk.record_n(start, n, value);
            let mut scalar = TimeSeries::new(window, max_windows);
            for cycle in start..start + n {
                scalar.record(cycle, value);
            }
            assert_eq!(bulk, scalar, "window={window} start={start} n={n}");
        }
    }

    #[test]
    fn record_n_composes_with_record() {
        // Interleaving bulk and scalar appends behaves like one scalar
        // stream (the skip engine alternates idle runs with real
        // samples).
        let mut mixed = TimeSeries::new(10, 8);
        mixed.record(0, 4);
        mixed.record_n(1, 30, 0);
        mixed.record(31, 6);
        let mut scalar = TimeSeries::new(10, 8);
        scalar.record(0, 4);
        for cycle in 1..31 {
            scalar.record(cycle, 0);
        }
        scalar.record(31, 6);
        assert_eq!(mixed, scalar);
    }
}
