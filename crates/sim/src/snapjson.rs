//! Lossless, versioned JSON serialization for [`SimSnapshot`].
//!
//! The original [`SimSnapshot::to_json`] writer is a *forensic* view:
//! bounded queue listings, digests instead of memory pages — readable,
//! but not restorable. This module is the *durable* codec: every field
//! that [`SimSnapshot::fingerprint`] observes is serialized exactly, so
//!
//! ```text
//! snapshot → to_json_full → from_json → restore → state_fingerprint
//! ```
//!
//! round-trips **bit-identically**. That property is what lets the
//! [`crate::ckpt::CheckpointStore`] verify a restored checkpoint
//! against the fingerprint recorded in its header.
//!
//! The schema is versioned (`schema_version`, currently
//! [`SNAPSHOT_SCHEMA_VERSION`]): a parser never guesses at a future
//! layout, it rejects it loudly. Parsing is strict throughout — every
//! object goes through [`ObjReader`] and unknown or missing fields are
//! errors, never silently dropped.
//!
//! Notable encoding choices:
//!
//! * integers only (the `jsonv` contract): `f64` power coefficients
//!   are stored as [`f64::to_bits`] so they restore bit-exactly;
//! * memory pages are hex strings keyed by page id, covering **every**
//!   resident page (even all-zero ones — residency itself is part of
//!   the fingerprint);
//! * packet command codes carry an explicit `cmc` flag, because the
//!   wire code alone cannot distinguish `HmcRqst::Cmc(code)` from the
//!   standard command sharing that code (and response code 0 means
//!   [`hmc_types::HmcResponse::RspNone`], which `from_code` rejects);
//! * ordered collections (queue contents, tag-pool free lists, event
//!   lists) keep their order; unordered sets are sorted on write and
//!   rebuilt on read.

use crate::device::{TrackedRequest, TrackedResponse, Vault};
use crate::trace::{CmdRef, FlightLaneSnapshot, FlightSnapshot, TraceKind, TraceRecord};
use crate::dram::Bank;
use crate::fault::FaultRng;
use crate::hist::{Hist, BUCKETS};
use crate::jsonv::{obj, Json, JsonError, ObjReader};
use crate::link::{LinkConfig, LinkControl, LinkStats};
use crate::power::{PowerConfig, PowerModel};
use crate::queue::BoundedQueue;
use crate::regs::RegisterFile;
use crate::sanitizer::{SanitizerShadow, Violation, ViolationKind};
use crate::sim::{RetryEntry, Transit};
use crate::snapshot::{DeviceSnapshot, SimSnapshot};
use crate::stats::{ClassLatency, DeviceStats};
use crate::telemetry::StageStamps;
use hmc_mem::store::PAGE_BYTES;
use hmc_mem::SparseMemory;
use hmc_types::{
    Cub, HmcResponse, HmcRqst, ReqHead, ReqTail, Request, Response, RspHead, RspTail, Slid, Tag,
    TagPool,
};
use std::collections::{HashSet, VecDeque};

/// Version number written into (and required from) the durable
/// snapshot schema. Bump on any incompatible layout change.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

fn jerr<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError { message: message.into() })
}

fn int(v: u64) -> Json {
    Json::Int(v as i128)
}

fn int_usize(v: usize) -> Json {
    Json::Int(v as i128)
}

fn opt_u64_json(v: Option<u64>) -> Json {
    match v {
        Some(v) => int(v),
        None => Json::Null,
    }
}

fn opt_u32_json(v: Option<u32>) -> Json {
    match v {
        Some(v) => Json::Int(v as i128),
        None => Json::Null,
    }
}

fn read_opt_u64(r: &mut ObjReader<'_>, key: &str, ctx: &str) -> Result<Option<u64>, JsonError> {
    match r.required(key)? {
        Json::Null => Ok(None),
        v => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => jerr(format!("{ctx}: field `{key}` must be a u64 or null")),
        },
    }
}

fn read_opt_u32(r: &mut ObjReader<'_>, key: &str, ctx: &str) -> Result<Option<u32>, JsonError> {
    match r.required(key)? {
        Json::Null => Ok(None),
        v => match v.as_u32() {
            Some(n) => Ok(Some(n)),
            None => jerr(format!("{ctx}: field `{key}` must be a u32 or null")),
        },
    }
}

fn read_u8(r: &mut ObjReader<'_>, key: &str, ctx: &str) -> Result<u8, JsonError> {
    let v = r.u32(key)?;
    u8::try_from(v).map_err(|_| JsonError {
        message: format!("{ctx}: field `{key}` value {v} exceeds u8"),
    })
}

fn u64_list(values: impl Iterator<Item = u64>) -> Json {
    Json::Arr(values.map(int).collect())
}

fn read_u64_list(v: &Json, ctx: &str) -> Result<Vec<u64>, JsonError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| JsonError { message: format!("{ctx}: expected an array") })?;
    arr.iter()
        .map(|item| {
            item.as_u64()
                .ok_or_else(|| JsonError { message: format!("{ctx}: expected u64 entries") })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Hex page encoding
// ---------------------------------------------------------------------------

fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xF) as usize] as char);
    }
    s
}

fn hex_decode(s: &str, ctx: &str) -> Result<Vec<u8>, JsonError> {
    if !s.len().is_multiple_of(2) {
        return jerr(format!("{ctx}: odd-length hex string"));
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        match (digit(pair[0]), digit(pair[1])) {
            (Some(hi), Some(lo)) => out.push((hi << 4) | lo),
            _ => return jerr(format!("{ctx}: invalid hex digit")),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Packets
// ---------------------------------------------------------------------------

fn request_json(req: &Request) -> Json {
    obj(vec![
        ("cmd", Json::Int(req.head.cmd.code() as i128)),
        ("cmc", Json::Bool(matches!(req.head.cmd, HmcRqst::Cmc(_)))),
        ("lng", Json::Int(req.head.lng as i128)),
        ("tag", Json::Int(req.head.tag.value() as i128)),
        ("addr", int(req.head.addr)),
        ("cub", Json::Int(req.head.cub.value() as i128)),
        ("payload", u64_list(req.payload.as_slice().iter().copied())),
        ("rrp", Json::Int(req.tail.rrp as i128)),
        ("frp", Json::Int(req.tail.frp as i128)),
        ("seq", Json::Int(req.tail.seq as i128)),
        ("pb", Json::Bool(req.tail.pb)),
        ("slid", Json::Int(req.tail.slid.value() as i128)),
        ("rtc", Json::Int(req.tail.rtc as i128)),
        ("crc", Json::Int(req.tail.crc as i128)),
    ])
}

fn request_from_json(v: &Json) -> Result<Request, JsonError> {
    const CTX: &str = "request";
    let mut r = ObjReader::new(CTX, v)?;
    let code = read_u8(&mut r, "cmd", CTX)?;
    let cmc = r.bool("cmc")?;
    let cmd = if cmc {
        HmcRqst::Cmc(code)
    } else {
        HmcRqst::from_code(code)
            .map_err(|e| JsonError { message: format!("{CTX}: bad command code {code}: {e}") })?
    };
    let lng = read_u8(&mut r, "lng", CTX)?;
    let tag = Tag::new(r.u32("tag")?)
        .map_err(|e| JsonError { message: format!("{CTX}: bad tag: {e}") })?;
    let addr = r.u64("addr")?;
    let cub = Cub::new(read_u8(&mut r, "cub", CTX)?)
        .map_err(|e| JsonError { message: format!("{CTX}: bad cub: {e}") })?;
    let payload = read_u64_list(r.required("payload")?, "request payload")?;
    let rrp = read_u8(&mut r, "rrp", CTX)?;
    let frp = read_u8(&mut r, "frp", CTX)?;
    let seq = read_u8(&mut r, "seq", CTX)?;
    let pb = r.bool("pb")?;
    let slid = Slid::new(read_u8(&mut r, "slid", CTX)?)
        .map_err(|e| JsonError { message: format!("{CTX}: bad slid: {e}") })?;
    let rtc = read_u8(&mut r, "rtc", CTX)?;
    let crc = r.u32("crc")?;
    r.finish()?;
    Ok(Request {
        head: ReqHead { cmd, lng, tag, addr, cub },
        payload: hmc_types::PayloadBuf::from_slice(&payload),
        tail: ReqTail { rrp, frp, seq, pb, slid, rtc, crc },
    })
}

fn response_json(rsp: &Response) -> Json {
    obj(vec![
        ("cmd", Json::Int(rsp.head.cmd.code() as i128)),
        ("cmc", Json::Bool(matches!(rsp.head.cmd, HmcResponse::RspCmc(_)))),
        ("lng", Json::Int(rsp.head.lng as i128)),
        ("tag", Json::Int(rsp.head.tag.value() as i128)),
        ("af", Json::Bool(rsp.head.af)),
        ("slid", Json::Int(rsp.head.slid.value() as i128)),
        ("cub", Json::Int(rsp.head.cub.value() as i128)),
        ("payload", u64_list(rsp.payload.as_slice().iter().copied())),
        ("rrp", Json::Int(rsp.tail.rrp as i128)),
        ("frp", Json::Int(rsp.tail.frp as i128)),
        ("seq", Json::Int(rsp.tail.seq as i128)),
        ("dinv", Json::Bool(rsp.tail.dinv)),
        ("errstat", Json::Int(rsp.tail.errstat as i128)),
        ("rtc", Json::Int(rsp.tail.rtc as i128)),
        ("crc", Json::Int(rsp.tail.crc as i128)),
    ])
}

fn response_from_json(v: &Json) -> Result<Response, JsonError> {
    const CTX: &str = "response";
    let mut r = ObjReader::new(CTX, v)?;
    let code = read_u8(&mut r, "cmd", CTX)?;
    let cmc = r.bool("cmc")?;
    let cmd = if cmc {
        HmcResponse::RspCmc(code)
    } else if code == 0 {
        HmcResponse::RspNone
    } else {
        HmcResponse::from_code(code)
            .map_err(|e| JsonError { message: format!("{CTX}: bad response code {code}: {e}") })?
    };
    let lng = read_u8(&mut r, "lng", CTX)?;
    let tag = Tag::new(r.u32("tag")?)
        .map_err(|e| JsonError { message: format!("{CTX}: bad tag: {e}") })?;
    let af = r.bool("af")?;
    let slid = Slid::new(read_u8(&mut r, "slid", CTX)?)
        .map_err(|e| JsonError { message: format!("{CTX}: bad slid: {e}") })?;
    let cub = Cub::new(read_u8(&mut r, "cub", CTX)?)
        .map_err(|e| JsonError { message: format!("{CTX}: bad cub: {e}") })?;
    let payload = read_u64_list(r.required("payload")?, "response payload")?;
    let rrp = read_u8(&mut r, "rrp", CTX)?;
    let frp = read_u8(&mut r, "frp", CTX)?;
    let seq = read_u8(&mut r, "seq", CTX)?;
    let dinv = r.bool("dinv")?;
    let errstat = read_u8(&mut r, "errstat", CTX)?;
    let rtc = read_u8(&mut r, "rtc", CTX)?;
    let crc = r.u32("crc")?;
    r.finish()?;
    Ok(Response {
        head: RspHead { cmd, lng, tag, af, slid, cub },
        payload: hmc_types::PayloadBuf::from_slice(&payload),
        tail: RspTail { rrp, frp, seq, dinv, errstat, rtc, crc },
    })
}

// ---------------------------------------------------------------------------
// Tracked packets
// ---------------------------------------------------------------------------

fn tracked_request_json(t: &TrackedRequest) -> Json {
    obj(vec![
        ("req", request_json(&t.req)),
        ("entry_device", int_usize(t.entry_device)),
        ("entry_link", int_usize(t.entry_link)),
        ("issue_cycle", int(t.issue_cycle)),
        ("hops", Json::Int(t.hops as i128)),
        ("ready_cycle", int(t.ready_cycle)),
        ("vault_enq_cycle", int(t.vault_enq_cycle)),
    ])
}

fn tracked_request_from_json(v: &Json) -> Result<TrackedRequest, JsonError> {
    let mut r = ObjReader::new("tracked_request", v)?;
    let req = request_from_json(r.required("req")?)?;
    let out = TrackedRequest {
        req,
        entry_device: r.usize("entry_device")?,
        entry_link: r.usize("entry_link")?,
        issue_cycle: r.u64("issue_cycle")?,
        hops: r.u32("hops")?,
        ready_cycle: r.u64("ready_cycle")?,
        vault_enq_cycle: r.u64("vault_enq_cycle")?,
    };
    r.finish()?;
    Ok(out)
}

fn class_name(class: crate::stats::CmdClass) -> &'static str {
    class.name()
}

fn class_from_name(name: &str) -> Result<crate::stats::CmdClass, JsonError> {
    use crate::stats::CmdClass;
    Ok(match name {
        "read" => CmdClass::Read,
        "write" => CmdClass::Write,
        "atomic" => CmdClass::Atomic,
        "cmc" => CmdClass::Cmc,
        "other" => CmdClass::Other,
        other => return jerr(format!("unknown command class `{other}`")),
    })
}

fn tracked_response_json(t: &TrackedResponse) -> Json {
    obj(vec![
        ("rsp", response_json(&t.rsp)),
        ("issue_cycle", int(t.issue_cycle)),
        ("complete_cycle", int(t.complete_cycle)),
        ("latency", int(t.latency)),
        ("entry_device", int_usize(t.entry_device)),
        ("entry_link", int_usize(t.entry_link)),
        ("class", Json::Str(class_name(t.class).to_string())),
        ("vault_enq", int(t.stages.vault_enq)),
        ("exec", int(t.stages.exec)),
        ("rsp_route", int(t.stages.rsp_route)),
        ("egress", int(t.stages.egress)),
    ])
}

fn tracked_response_from_json(v: &Json) -> Result<TrackedResponse, JsonError> {
    let mut r = ObjReader::new("tracked_response", v)?;
    let rsp = response_from_json(r.required("rsp")?)?;
    let out = TrackedResponse {
        rsp,
        issue_cycle: r.u64("issue_cycle")?,
        complete_cycle: r.u64("complete_cycle")?,
        latency: r.u64("latency")?,
        entry_device: r.usize("entry_device")?,
        entry_link: r.usize("entry_link")?,
        class: class_from_name(r.str("class")?)?,
        stages: StageStamps {
            vault_enq: r.u64("vault_enq")?,
            exec: r.u64("exec")?,
            rsp_route: r.u64("rsp_route")?,
            egress: r.u64("egress")?,
        },
    };
    r.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Queues
// ---------------------------------------------------------------------------

fn queue_json<T>(q: &BoundedQueue<T>, item: impl Fn(&T) -> Json) -> Json {
    obj(vec![
        ("depth", int_usize(q.depth())),
        ("high_water", int_usize(q.high_water())),
        ("stalls", int(q.stalls())),
        ("pushes", int(q.pushes())),
        ("items", Json::Arr(q.iter().map(item).collect())),
    ])
}

fn queue_from_json<T>(
    v: &Json,
    ctx: &str,
    item: impl Fn(&Json) -> Result<T, JsonError>,
) -> Result<BoundedQueue<T>, JsonError> {
    let mut r = ObjReader::new("queue", v)?;
    let depth = r.usize("depth")?;
    let high_water = r.usize("high_water")?;
    let stalls = r.u64("stalls")?;
    let pushes = r.u64("pushes")?;
    let raw = r
        .required("items")?
        .as_arr()
        .ok_or_else(|| JsonError { message: format!("{ctx}: queue items must be an array") })?;
    r.finish()?;
    if depth == 0 {
        return jerr(format!("{ctx}: queue depth must be nonzero"));
    }
    let mut items = VecDeque::with_capacity(raw.len());
    for entry in raw {
        items.push_back(item(entry)?);
    }
    if items.len() > depth {
        return jerr(format!(
            "{ctx}: queue holds {} items but depth is {depth}",
            items.len()
        ));
    }
    Ok(BoundedQueue::from_parts(items, depth, high_water, stalls, pushes))
}

// ---------------------------------------------------------------------------
// Histograms and statistics
// ---------------------------------------------------------------------------

fn hist_json(h: &Hist) -> Json {
    let (count, sum, min, max, buckets) = h.raw_parts();
    let sparse: Vec<Json> = buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| Json::Arr(vec![int_usize(i), int(n)]))
        .collect();
    obj(vec![
        ("count", int(count)),
        ("sum", int(sum)),
        ("min", int(min)),
        ("max", int(max)),
        ("buckets", Json::Arr(sparse)),
    ])
}

fn hist_from_json(v: &Json) -> Result<Hist, JsonError> {
    let mut r = ObjReader::new("hist", v)?;
    let count = r.u64("count")?;
    let sum = r.u64("sum")?;
    let min = r.u64("min")?;
    let max = r.u64("max")?;
    let sparse = r
        .required("buckets")?
        .as_arr()
        .ok_or_else(|| JsonError { message: "hist: buckets must be an array".into() })?;
    r.finish()?;
    let mut buckets = [0u64; BUCKETS];
    for pair in sparse {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| JsonError { message: "hist: bucket entry must be [idx, n]".into() })?;
        let idx = pair[0]
            .as_usize()
            .filter(|&i| i < BUCKETS)
            .ok_or_else(|| JsonError { message: "hist: bucket index out of range".into() })?;
        let n = pair[1]
            .as_u64()
            .ok_or_else(|| JsonError { message: "hist: bucket count must be a u64".into() })?;
        buckets[idx] = n;
    }
    Ok(Hist::from_raw_parts(count, sum, min, max, buckets))
}

fn stats_json(s: &DeviceStats) -> Json {
    obj(vec![
        ("reads", int(s.reads)),
        ("writes", int(s.writes)),
        ("posted_writes", int(s.posted_writes)),
        ("atomics", int(s.atomics)),
        ("cmc_ops", int(s.cmc_ops)),
        ("mode_ops", int(s.mode_ops)),
        ("flow_packets", int(s.flow_packets)),
        ("responses", int(s.responses)),
        ("error_responses", int(s.error_responses)),
        ("forwarded", int(s.forwarded)),
        ("remote_quad_requests", int(s.remote_quad_requests)),
        ("send_stalls", int(s.send_stalls)),
        ("xbar_stalls", int(s.xbar_stalls)),
        ("vault_stalls", int(s.vault_stalls)),
        ("rqst_flits", int(s.rqst_flits)),
        ("rsp_flits", int(s.rsp_flits)),
        ("vault_faults", int(s.vault_faults)),
        ("poisoned_responses", int(s.poisoned_responses)),
        ("failover_responses", int(s.failover_responses)),
        ("abandoned_responses", int(s.abandoned_responses)),
        ("latency", hist_json(&s.latency)),
        ("class_read", hist_json(&s.class_latency.read)),
        ("class_write", hist_json(&s.class_latency.write)),
        ("class_atomic", hist_json(&s.class_latency.atomic)),
        ("class_cmc", hist_json(&s.class_latency.cmc)),
        ("class_other", hist_json(&s.class_latency.other)),
    ])
}

fn stats_from_json(v: &Json) -> Result<DeviceStats, JsonError> {
    let mut r = ObjReader::new("stats", v)?;
    let out = DeviceStats {
        reads: r.u64("reads")?,
        writes: r.u64("writes")?,
        posted_writes: r.u64("posted_writes")?,
        atomics: r.u64("atomics")?,
        cmc_ops: r.u64("cmc_ops")?,
        mode_ops: r.u64("mode_ops")?,
        flow_packets: r.u64("flow_packets")?,
        responses: r.u64("responses")?,
        error_responses: r.u64("error_responses")?,
        forwarded: r.u64("forwarded")?,
        remote_quad_requests: r.u64("remote_quad_requests")?,
        send_stalls: r.u64("send_stalls")?,
        xbar_stalls: r.u64("xbar_stalls")?,
        vault_stalls: r.u64("vault_stalls")?,
        rqst_flits: r.u64("rqst_flits")?,
        rsp_flits: r.u64("rsp_flits")?,
        vault_faults: r.u64("vault_faults")?,
        poisoned_responses: r.u64("poisoned_responses")?,
        failover_responses: r.u64("failover_responses")?,
        abandoned_responses: r.u64("abandoned_responses")?,
        latency: hist_from_json(r.required("latency")?)?,
        class_latency: ClassLatency {
            read: hist_from_json(r.required("class_read")?)?,
            write: hist_from_json(r.required("class_write")?)?,
            atomic: hist_from_json(r.required("class_atomic")?)?,
            cmc: hist_from_json(r.required("class_cmc")?)?,
            other: hist_from_json(r.required("class_other")?)?,
        },
    };
    r.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Power, memory, registers, banks
// ---------------------------------------------------------------------------

fn power_json(p: &PowerModel) -> Json {
    let c = p.config();
    let (link_flits, dram_accesses, logic_ops, cycles) = p.counters();
    obj(vec![
        ("link_flit_pj_bits", int(c.link_flit_pj.to_bits())),
        ("dram_access_pj_bits", int(c.dram_access_pj.to_bits())),
        ("logic_op_pj_bits", int(c.logic_op_pj.to_bits())),
        ("idle_cycle_pj_bits", int(c.idle_cycle_pj.to_bits())),
        ("clock_hz_bits", int(c.clock_hz.to_bits())),
        ("link_flits", int(link_flits)),
        ("dram_accesses", int(dram_accesses)),
        ("logic_ops", int(logic_ops)),
        ("cycles", int(cycles)),
    ])
}

fn power_from_json(v: &Json) -> Result<PowerModel, JsonError> {
    let mut r = ObjReader::new("power", v)?;
    let config = PowerConfig {
        link_flit_pj: f64::from_bits(r.u64("link_flit_pj_bits")?),
        dram_access_pj: f64::from_bits(r.u64("dram_access_pj_bits")?),
        logic_op_pj: f64::from_bits(r.u64("logic_op_pj_bits")?),
        idle_cycle_pj: f64::from_bits(r.u64("idle_cycle_pj_bits")?),
        clock_hz: f64::from_bits(r.u64("clock_hz_bits")?),
    };
    let link_flits = r.u64("link_flits")?;
    let dram_accesses = r.u64("dram_accesses")?;
    let logic_ops = r.u64("logic_ops")?;
    let cycles = r.u64("cycles")?;
    r.finish()?;
    Ok(PowerModel::from_parts(config, link_flits, dram_accesses, logic_ops, cycles))
}

fn mem_json(mem: &SparseMemory) -> Json {
    let pages: Vec<Json> = mem
        .export_pages()
        .into_iter()
        .map(|(id, bytes)| Json::Arr(vec![int(id), Json::Str(hex_encode(&bytes[..]))]))
        .collect();
    obj(vec![("capacity", int(mem.capacity())), ("pages", Json::Arr(pages))])
}

fn mem_from_json(v: &Json) -> Result<SparseMemory, JsonError> {
    let mut r = ObjReader::new("mem", v)?;
    let capacity = r.u64("capacity")?;
    let pages = r
        .required("pages")?
        .as_arr()
        .ok_or_else(|| JsonError { message: "mem: pages must be an array".into() })?;
    r.finish()?;
    let mem = SparseMemory::new(capacity);
    for page in pages {
        let pair = page
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| JsonError { message: "mem: page entry must be [id, hex]".into() })?;
        let id = pair[0]
            .as_u64()
            .ok_or_else(|| JsonError { message: "mem: page id must be a u64".into() })?;
        let hex = pair[1]
            .as_str()
            .ok_or_else(|| JsonError { message: "mem: page bytes must be a hex string".into() })?;
        let bytes = hex_decode(hex, "mem page")?;
        let arr: &[u8; PAGE_BYTES] = bytes.as_slice().try_into().map_err(|_| JsonError {
            message: format!("mem: page {id} holds {} bytes, expected {PAGE_BYTES}", bytes.len()),
        })?;
        mem.insert_page(id, arr)
            .map_err(|e| JsonError { message: format!("mem: page {id} rejected: {e}") })?;
    }
    Ok(mem)
}

fn regs_json(regs: &RegisterFile) -> Json {
    let entries: Vec<Json> = regs
        .ids()
        .into_iter()
        .map(|id| {
            let value = regs.read(id).expect("id came from ids()");
            Json::Arr(vec![Json::Int(id as i128), int(value)])
        })
        .collect();
    Json::Arr(entries)
}

fn regs_from_json(v: &Json) -> Result<RegisterFile, JsonError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| JsonError { message: "regs: expected an array".into() })?;
    let mut entries = Vec::with_capacity(arr.len());
    for entry in arr {
        let pair = entry
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| JsonError { message: "regs: entry must be [id, value]".into() })?;
        let id = pair[0]
            .as_u32()
            .ok_or_else(|| JsonError { message: "regs: id must be a u32".into() })?;
        let value = pair[1]
            .as_u64()
            .ok_or_else(|| JsonError { message: "regs: value must be a u64".into() })?;
        entries.push((id, value));
    }
    Ok(RegisterFile::from_entries(entries))
}

fn bank_json(bank: &Bank) -> Json {
    let (busy_until, open_row) = bank.dynamic_state();
    obj(vec![
        ("busy_until", int(busy_until)),
        ("open_row", opt_u64_json(open_row)),
        ("row_hits", int(bank.row_hits)),
        ("row_misses", int(bank.row_misses)),
    ])
}

fn bank_from_json(v: &Json) -> Result<Bank, JsonError> {
    let mut r = ObjReader::new("bank", v)?;
    let busy_until = r.u64("busy_until")?;
    let open_row = read_opt_u64(&mut r, "open_row", "bank")?;
    let row_hits = r.u64("row_hits")?;
    let row_misses = r.u64("row_misses")?;
    r.finish()?;
    Ok(Bank::from_parts(busy_until, open_row, row_hits, row_misses))
}

// ---------------------------------------------------------------------------
// Links and tag pools
// ---------------------------------------------------------------------------

fn link_json(l: &LinkControl) -> Json {
    let c = l.config();
    let st = l.stats;
    obj(vec![
        ("tokens", opt_u32_json(c.tokens)),
        ("error_period", opt_u64_json(c.error_period)),
        ("retry_latency", int(c.retry_latency)),
        ("tokens_available", Json::Int(l.tokens_available() as i128)),
        ("packet_counter", int(l.packet_counter())),
        ("seq", Json::Int(l.seq() as i128)),
        ("packets_sent", int(st.packets_sent)),
        ("flits_sent", int(st.flits_sent)),
        ("token_stalls", int(st.token_stalls)),
        ("retries", int(st.retries)),
        ("crc_errors", int(st.crc_errors)),
        ("token_overflows", int(st.token_overflows)),
    ])
}

fn link_from_json(v: &Json) -> Result<LinkControl, JsonError> {
    const CTX: &str = "link";
    let mut r = ObjReader::new(CTX, v)?;
    let config = LinkConfig {
        tokens: read_opt_u32(&mut r, "tokens", CTX)?,
        error_period: read_opt_u64(&mut r, "error_period", CTX)?,
        retry_latency: r.u64("retry_latency")?,
    };
    let tokens_available = r.u32("tokens_available")?;
    let packet_counter = r.u64("packet_counter")?;
    let seq = read_u8(&mut r, "seq", CTX)?;
    let stats = LinkStats {
        packets_sent: r.u64("packets_sent")?,
        flits_sent: r.u64("flits_sent")?,
        token_stalls: r.u64("token_stalls")?,
        retries: r.u64("retries")?,
        crc_errors: r.u64("crc_errors")?,
        token_overflows: r.u64("token_overflows")?,
    };
    r.finish()?;
    Ok(LinkControl::from_parts(config, tokens_available, packet_counter, seq, stats))
}

fn tag_pool_json(p: &TagPool) -> Json {
    obj(vec![
        ("capacity", Json::Int(p.capacity() as i128)),
        ("free", Json::Arr(p.free_tags().map(|t| Json::Int(t.value() as i128)).collect())),
    ])
}

fn tag_pool_from_json(v: &Json) -> Result<TagPool, JsonError> {
    let mut r = ObjReader::new("tag_pool", v)?;
    let capacity = r.u32("capacity")?;
    let raw = r
        .required("free")?
        .as_arr()
        .ok_or_else(|| JsonError { message: "tag_pool: free must be an array".into() })?;
    r.finish()?;
    let mut free = Vec::with_capacity(raw.len());
    for t in raw {
        let value = t
            .as_u32()
            .ok_or_else(|| JsonError { message: "tag_pool: free entries must be u32".into() })?;
        free.push(
            Tag::new(value)
                .map_err(|e| JsonError { message: format!("tag_pool: bad tag: {e}") })?,
        );
    }
    TagPool::from_free_list(capacity, free)
        .map_err(|e| JsonError { message: format!("tag_pool: {e}") })
}

// ---------------------------------------------------------------------------
// Transit, retry, shadow
// ---------------------------------------------------------------------------

fn transit_json(t: &Transit) -> Json {
    match t {
        Transit::Rqst { from_dev, to_dev, link, item, ready } => obj(vec![
            ("kind", Json::Str("rqst".into())),
            ("from_dev", int_usize(*from_dev)),
            ("to_dev", int_usize(*to_dev)),
            ("link", int_usize(*link)),
            ("ready", int(*ready)),
            ("item", tracked_request_json(item)),
        ]),
        Transit::Rsp { from_dev, to_dev, link, item, ready } => obj(vec![
            ("kind", Json::Str("rsp".into())),
            ("from_dev", int_usize(*from_dev)),
            ("to_dev", int_usize(*to_dev)),
            ("link", int_usize(*link)),
            ("ready", int(*ready)),
            ("item", tracked_response_json(item)),
        ]),
    }
}

fn transit_from_json(v: &Json) -> Result<Transit, JsonError> {
    let mut r = ObjReader::new("transit", v)?;
    let kind = r.str("kind")?.to_string();
    let to_dev = r.usize("to_dev")?;
    // Pre-fabric snapshots carry no sender; restore() re-derives the
    // edge deterministically when the field is absent.
    let from_dev = match r.optional("from_dev") {
        Some(v) => v
            .as_usize()
            .ok_or_else(|| JsonError { message: "transit: field `from_dev` must be a usize".into() })?,
        None => usize::MAX,
    };
    let link = r.usize("link")?;
    let ready = r.u64("ready")?;
    let item = r.required("item")?;
    let out = match kind.as_str() {
        "rqst" => {
            Transit::Rqst { from_dev, to_dev, link, item: tracked_request_from_json(item)?, ready }
        }
        "rsp" => {
            Transit::Rsp { from_dev, to_dev, link, item: tracked_response_from_json(item)?, ready }
        }
        other => return jerr(format!("transit: unknown kind `{other}`")),
    };
    r.finish()?;
    Ok(out)
}

fn retry_json(e: &RetryEntry) -> Json {
    obj(vec![
        ("dev", int_usize(e.dev)),
        ("link", int_usize(e.link)),
        ("ready", int(e.ready)),
        ("item", tracked_request_json(&e.item)),
    ])
}

fn retry_from_json(v: &Json) -> Result<RetryEntry, JsonError> {
    let mut r = ObjReader::new("retry_entry", v)?;
    let dev = r.usize("dev")?;
    let link = r.usize("link")?;
    let ready = r.u64("ready")?;
    let item = tracked_request_from_json(r.required("item")?)?;
    r.finish()?;
    Ok(RetryEntry { dev, link, item, ready })
}

fn shadow_json(s: &SanitizerShadow) -> Json {
    let mut live: Vec<(usize, usize, u16)> = s.live_tags.iter().copied().collect();
    live.sort_unstable();
    obj(vec![
        ("injected", int(s.injected)),
        ("delivered", int(s.delivered)),
        ("absorbed", int(s.absorbed)),
        ("zombie_dropped", int(s.zombie_dropped)),
        (
            "live_tags",
            Json::Arr(
                live.into_iter()
                    .map(|(d, l, t)| {
                        Json::Arr(vec![int_usize(d), int_usize(l), Json::Int(t as i128)])
                    })
                    .collect(),
            ),
        ),
        (
            "seen_token_overflows",
            Json::Arr(
                s.seen_token_overflows
                    .iter()
                    .map(|dev| u64_list(dev.iter().copied()))
                    .collect(),
            ),
        ),
        (
            "pending",
            Json::Arr(
                s.pending
                    .iter()
                    .map(|v| {
                        obj(vec![
                            ("cycle", int(v.cycle)),
                            ("kind", Json::Str(v.kind.name().to_string())),
                            ("detail", Json::Str(v.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn shadow_from_json(v: &Json) -> Result<SanitizerShadow, JsonError> {
    let mut r = ObjReader::new("shadow", v)?;
    let injected = r.u64("injected")?;
    let delivered = r.u64("delivered")?;
    let absorbed = r.u64("absorbed")?;
    let zombie_dropped = r.u64("zombie_dropped")?;
    let mut live_tags = HashSet::new();
    for entry in r
        .required("live_tags")?
        .as_arr()
        .ok_or_else(|| JsonError { message: "shadow: live_tags must be an array".into() })?
    {
        let triple = entry
            .as_arr()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| JsonError {
                message: "shadow: live_tags entry must be [dev, link, tag]".into(),
            })?;
        let dev = triple[0]
            .as_usize()
            .ok_or_else(|| JsonError { message: "shadow: live tag dev must be usize".into() })?;
        let link = triple[1]
            .as_usize()
            .ok_or_else(|| JsonError { message: "shadow: live tag link must be usize".into() })?;
        let tag = triple[2]
            .as_u32()
            .and_then(|t| u16::try_from(t).ok())
            .ok_or_else(|| JsonError { message: "shadow: live tag value must be u16".into() })?;
        live_tags.insert((dev, link, tag));
    }
    let mut seen_token_overflows = Vec::new();
    for dev in r
        .required("seen_token_overflows")?
        .as_arr()
        .ok_or_else(|| JsonError {
            message: "shadow: seen_token_overflows must be an array".into(),
        })?
    {
        seen_token_overflows.push(read_u64_list(dev, "shadow seen_token_overflows")?);
    }
    let mut pending = Vec::new();
    for entry in r
        .required("pending")?
        .as_arr()
        .ok_or_else(|| JsonError { message: "shadow: pending must be an array".into() })?
    {
        let mut vr = ObjReader::new("violation", entry)?;
        let cycle = vr.u64("cycle")?;
        let kind_name = vr.str("kind")?;
        let kind = ViolationKind::from_name(kind_name).ok_or_else(|| JsonError {
            message: format!("violation: unknown kind `{kind_name}`"),
        })?;
        let detail = vr.str("detail")?.to_string();
        vr.finish()?;
        pending.push(Violation { cycle, kind, detail });
    }
    r.finish()?;
    Ok(SanitizerShadow {
        injected,
        delivered,
        absorbed,
        zombie_dropped,
        live_tags,
        seen_token_overflows,
        pending,
    })
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One [`TraceRecord`] as a 12-element integer array:
/// `[cycle, kind, dev, link, quad, vault, bank, tag, cmd_kind,
/// cmd_value, a, b]` — compact enough that a full flight ring stays a
/// small fraction of the snapshot. `cmd_kind` disambiguates the
/// [`CmdRef`] variants (0 none, 1 standard request, 2 CMC request,
/// 3 interned name, 4 inactive CMC) because the wire code alone
/// cannot (mirroring the request codec's `cmc` flag).
fn trace_record_json(t: &TraceRecord) -> Json {
    let (cmd_kind, cmd_value): (u64, u64) = match t.cmd {
        CmdRef::None => (0, 0),
        CmdRef::Rqst(HmcRqst::Cmc(code)) => (2, code as u64),
        CmdRef::Rqst(cmd) => (1, cmd.code() as u64),
        CmdRef::Name(idx) => (3, idx as u64),
        CmdRef::Inactive(code) => (4, code as u64),
    };
    Json::Arr(vec![
        int(t.cycle),
        int(t.kind.code() as u64),
        int(t.dev as u64),
        int(t.link as u64),
        int(t.quad as u64),
        int(t.vault as u64),
        int(t.bank as u64),
        int(t.tag as u64),
        int(cmd_kind),
        int(cmd_value),
        int(t.a),
        int(t.b),
    ])
}

fn trace_record_from_json(v: &Json) -> Result<TraceRecord, JsonError> {
    const CTX: &str = "flight record";
    let arr = v
        .as_arr()
        .filter(|a| a.len() == 12)
        .ok_or_else(|| JsonError { message: format!("{CTX}: expected a 12-element array") })?;
    let word = |i: usize| -> Result<u64, JsonError> {
        arr[i]
            .as_u64()
            .ok_or_else(|| JsonError { message: format!("{CTX}: element {i} must be a u64") })
    };
    let narrow = |i: usize, max: u64| -> Result<u64, JsonError> {
        let v = word(i)?;
        if v > max {
            return Err(JsonError { message: format!("{CTX}: element {i} out of range") });
        }
        Ok(v)
    };
    let kind = TraceKind::from_code(narrow(1, u8::MAX as u64)? as u8)
        .ok_or_else(|| JsonError { message: format!("{CTX}: unknown kind code") })?;
    let cmd_value = word(9)?;
    let cmd = match word(8)? {
        0 => CmdRef::None,
        1 => CmdRef::Rqst(
            HmcRqst::from_code(u8::try_from(cmd_value).map_err(|_| JsonError {
                message: format!("{CTX}: command code out of range"),
            })?)
            .map_err(|e| JsonError { message: format!("{CTX}: bad command code: {e}") })?,
        ),
        2 => CmdRef::Rqst(HmcRqst::Cmc(u8::try_from(cmd_value).map_err(|_| JsonError {
            message: format!("{CTX}: cmc code out of range"),
        })?)),
        3 => CmdRef::Name(u16::try_from(cmd_value).map_err(|_| JsonError {
            message: format!("{CTX}: name index out of range"),
        })?),
        4 => CmdRef::Inactive(u8::try_from(cmd_value).map_err(|_| JsonError {
            message: format!("{CTX}: inactive code out of range"),
        })?),
        k => return Err(JsonError { message: format!("{CTX}: unknown cmd kind {k}") }),
    };
    Ok(TraceRecord {
        cycle: word(0)?,
        kind,
        dev: narrow(2, u16::MAX as u64)? as u16,
        link: narrow(3, u8::MAX as u64)? as u8,
        quad: narrow(4, u8::MAX as u64)? as u8,
        vault: narrow(5, u16::MAX as u64)? as u16,
        bank: narrow(6, u16::MAX as u64)? as u16,
        tag: narrow(7, u16::MAX as u64)? as u16,
        cmd,
        a: word(10)?,
        b: word(11)?,
    })
}

fn flight_json(f: &FlightSnapshot) -> Json {
    obj(vec![
        ("capacity", int_usize(f.capacity)),
        ("names", Json::Arr(f.names.iter().map(|n| Json::Str(n.clone())).collect())),
        (
            "lanes",
            Json::Arr(
                f.lanes
                    .iter()
                    .map(|l| {
                        obj(vec![
                            ("name", Json::Str(l.name.clone())),
                            ("dropped", int(l.dropped)),
                            (
                                "records",
                                Json::Arr(l.records.iter().map(trace_record_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn flight_from_json(v: &Json) -> Result<FlightSnapshot, JsonError> {
    let mut r = ObjReader::new("flight", v)?;
    let capacity = r.usize("capacity")?;
    let mut names = Vec::new();
    for n in r
        .required("names")?
        .as_arr()
        .ok_or_else(|| JsonError { message: "flight: names must be an array".into() })?
    {
        names.push(
            n.as_str()
                .ok_or_else(|| JsonError { message: "flight: name must be a string".into() })?
                .to_string(),
        );
    }
    let mut lanes = Vec::new();
    for lane in r
        .required("lanes")?
        .as_arr()
        .ok_or_else(|| JsonError { message: "flight: lanes must be an array".into() })?
    {
        let mut lr = ObjReader::new("flight lane", lane)?;
        let name = lr.str("name")?.to_string();
        let dropped = lr.u64("dropped")?;
        let mut records = Vec::new();
        for rec in lr
            .required("records")?
            .as_arr()
            .ok_or_else(|| JsonError { message: "flight lane: records must be an array".into() })?
        {
            records.push(trace_record_from_json(rec)?);
        }
        lr.finish()?;
        lanes.push(FlightLaneSnapshot { name, records, dropped });
    }
    r.finish()?;
    Ok(FlightSnapshot { capacity, lanes, names })
}

// ---------------------------------------------------------------------------
// Timing backend
// ---------------------------------------------------------------------------

fn timing_json(t: &crate::timing::TimingSnapshot) -> Json {
    obj(vec![
        ("select", Json::Str(t.select.name().to_string())),
        ("hit_latency", hist_json(&t.stats.hit_latency)),
        ("miss_latency", hist_json(&t.stats.miss_latency)),
        ("divergence", hist_json(&t.stats.divergence)),
        ("shadow_late", int(t.stats.shadow_late)),
        ("shadow_early", int(t.stats.shadow_early)),
        ("shadow_agree", int(t.stats.shadow_agree)),
        ("shadow", Json::Arr(t.shadow.iter().map(bank_json).collect())),
    ])
}

fn timing_from_json(v: &Json) -> Result<crate::timing::TimingSnapshot, JsonError> {
    let mut r = ObjReader::new("timing", v)?;
    let select = crate::timing::TimingSelect::from_name(r.str("select")?)
        .map_err(|e| JsonError { message: format!("timing: {e}") })?;
    let stats = crate::timing::TimingStats {
        hit_latency: hist_from_json(r.required("hit_latency")?)?,
        miss_latency: hist_from_json(r.required("miss_latency")?)?,
        divergence: hist_from_json(r.required("divergence")?)?,
        shadow_late: r.u64("shadow_late")?,
        shadow_early: r.u64("shadow_early")?,
        shadow_agree: r.u64("shadow_agree")?,
    };
    let shadow = json_vec(r.required("shadow")?, "timing shadow", bank_from_json)?;
    r.finish()?;
    Ok(crate::timing::TimingSnapshot { select, stats, shadow })
}

// ---------------------------------------------------------------------------
// Device and top level
// ---------------------------------------------------------------------------

fn device_json(d: &DeviceSnapshot) -> Json {
    obj(vec![
        (
            "xbar_rqst",
            Json::Arr(d.xbar_rqst.iter().map(|q| queue_json(q, tracked_request_json)).collect()),
        ),
        (
            "xbar_rsp",
            Json::Arr(d.xbar_rsp.iter().map(|q| queue_json(q, tracked_response_json)).collect()),
        ),
        (
            "vaults",
            Json::Arr(
                d.vaults
                    .iter()
                    .map(|v| {
                        obj(vec![
                            ("rqst", queue_json(&v.rqst, tracked_request_json)),
                            ("rsp", queue_json(&v.rsp, tracked_response_json)),
                            ("banks", Json::Arr(v.banks.iter().map(bank_json).collect())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("mem", mem_json(&d.mem)),
        ("regs", regs_json(&d.regs)),
        ("stats", stats_json(&d.stats)),
        ("power", power_json(&d.power)),
        ("fault_rng", int(d.fault_rng.raw_state())),
        ("link_up", Json::Arr(d.link_up.iter().map(|&b| Json::Bool(b)).collect())),
        ("fault_idx", int_usize(d.fault_idx)),
        ("timing", timing_json(&d.timing)),
    ])
}

fn device_from_json(v: &Json) -> Result<DeviceSnapshot, JsonError> {
    let mut r = ObjReader::new("device", v)?;
    let xbar_rqst = json_vec(r.required("xbar_rqst")?, "device xbar_rqst", |q| {
        queue_from_json(q, "xbar_rqst", tracked_request_from_json)
    })?;
    let xbar_rsp = json_vec(r.required("xbar_rsp")?, "device xbar_rsp", |q| {
        queue_from_json(q, "xbar_rsp", tracked_response_from_json)
    })?;
    let vaults = json_vec(r.required("vaults")?, "device vaults", |v| {
        let mut vr = ObjReader::new("vault", v)?;
        let rqst = queue_from_json(vr.required("rqst")?, "vault rqst", tracked_request_from_json)?;
        let rsp = queue_from_json(vr.required("rsp")?, "vault rsp", tracked_response_from_json)?;
        let banks = json_vec(vr.required("banks")?, "vault banks", bank_from_json)?;
        vr.finish()?;
        Ok(Vault { rqst, rsp, banks })
    })?;
    let mem = mem_from_json(r.required("mem")?)?;
    let regs = regs_from_json(r.required("regs")?)?;
    let stats = stats_from_json(r.required("stats")?)?;
    let power = power_from_json(r.required("power")?)?;
    let fault_rng = FaultRng::from_raw_state(r.u64("fault_rng")?);
    let link_up = r
        .required("link_up")?
        .as_arr()
        .ok_or_else(|| JsonError { message: "device: link_up must be an array".into() })?
        .iter()
        .map(|b| {
            b.as_bool()
                .ok_or_else(|| JsonError { message: "device: link_up entries must be bools".into() })
        })
        .collect::<Result<Vec<bool>, _>>()?;
    let fault_idx = r.usize("fault_idx")?;
    // Legacy snapshots (schema ≤ the pre-timing-backend era) carry no
    // "timing" field: default to a fresh FixedLatency record, matching
    // the behaviour those snapshots were produced under.
    let timing = match r.optional("timing") {
        Some(v) => timing_from_json(v)?,
        None => crate::timing::TimingSnapshot::default(),
    };
    r.finish()?;
    Ok(DeviceSnapshot {
        xbar_rqst,
        xbar_rsp,
        vaults,
        mem,
        regs,
        stats,
        power,
        fault_rng,
        link_up,
        fault_idx,
        timing,
    })
}

fn json_vec<T>(
    v: &Json,
    ctx: &str,
    item: impl Fn(&Json) -> Result<T, JsonError>,
) -> Result<Vec<T>, JsonError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| JsonError { message: format!("{ctx}: expected an array") })?;
    arr.iter().map(&item).collect()
}

impl SimSnapshot {
    /// Serializes the snapshot into a lossless, versioned [`Json`]
    /// value (the durable form; contrast [`SimSnapshot::to_json`],
    /// the bounded forensic view).
    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("schema_version", int(SNAPSHOT_SCHEMA_VERSION)),
            ("cycle", int(self.cycle)),
            ("devices", Json::Arr(self.devices.iter().map(device_json).collect())),
            (
                "host_rx",
                Json::Arr(
                    self.host_rx
                        .iter()
                        .map(|dev| {
                            Json::Arr(
                                dev.iter()
                                    .map(|q| {
                                        Json::Arr(q.iter().map(tracked_response_json).collect())
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "tag_pools",
                Json::Arr(
                    self.tag_pools
                        .iter()
                        .map(|dev| Json::Arr(dev.iter().map(tag_pool_json).collect()))
                        .collect(),
                ),
            ),
            (
                "pool_tags",
                Json::Arr(
                    self.pool_tags
                        .iter()
                        .map(|dev| {
                            Json::Arr(
                                dev.iter()
                                    .map(|set| {
                                        let mut v: Vec<u16> = set.iter().copied().collect();
                                        v.sort_unstable();
                                        Json::Arr(
                                            v.into_iter()
                                                .map(|t| Json::Int(t as i128))
                                                .collect(),
                                        )
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            ("in_transit", Json::Arr(self.in_transit.iter().map(transit_json).collect())),
            (
                "links",
                Json::Arr(
                    self.links
                        .iter()
                        .map(|dev| Json::Arr(dev.iter().map(link_json).collect()))
                        .collect(),
                ),
            ),
            (
                "retry_pending",
                Json::Arr(self.retry_pending.iter().map(retry_json).collect()),
            ),
            (
                "zombie_tags",
                Json::Arr(
                    self.zombie_tags
                        .iter()
                        .map(|set| {
                            let mut v: Vec<(usize, u16)> = set.iter().copied().collect();
                            v.sort_unstable();
                            Json::Arr(
                                v.into_iter()
                                    .map(|(l, t)| {
                                        Json::Arr(vec![int_usize(l), Json::Int(t as i128)])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "shadow",
                match &self.shadow {
                    Some(s) => shadow_json(s),
                    None => Json::Null,
                },
            ),
            (
                "flight",
                match &self.flight {
                    Some(f) => flight_json(f),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Renders the lossless durable form as a JSON string.
    pub fn to_json_full(&self) -> String {
        self.to_json_value().render()
    }

    /// Parses a [`SimSnapshot::to_json_value`] document back into a
    /// snapshot. Strict: unknown fields, missing fields, out-of-range
    /// values and unsupported schema versions are all errors.
    pub fn from_json_value(v: &Json) -> Result<SimSnapshot, JsonError> {
        let mut r = ObjReader::new("snapshot", v)?;
        let version = r.u64("schema_version")?;
        if version != SNAPSHOT_SCHEMA_VERSION {
            return jerr(format!(
                "snapshot: unsupported schema version {version} (expected \
                 {SNAPSHOT_SCHEMA_VERSION})"
            ));
        }
        let cycle = r.u64("cycle")?;
        let devices = json_vec(r.required("devices")?, "snapshot devices", device_from_json)?;
        let host_rx = json_vec(r.required("host_rx")?, "snapshot host_rx", |dev| {
            json_vec(dev, "host_rx device", |q| {
                Ok(json_vec(q, "host_rx queue", tracked_response_from_json)?
                    .into_iter()
                    .collect::<VecDeque<_>>())
            })
        })?;
        let tag_pools = json_vec(r.required("tag_pools")?, "snapshot tag_pools", |dev| {
            json_vec(dev, "tag_pools device", tag_pool_from_json)
        })?;
        let pool_tags = json_vec(r.required("pool_tags")?, "snapshot pool_tags", |dev| {
            json_vec(dev, "pool_tags device", |set| {
                let mut out = HashSet::new();
                for t in set
                    .as_arr()
                    .ok_or_else(|| JsonError { message: "pool_tags: expected an array".into() })?
                {
                    let value = t.as_u32().and_then(|v| u16::try_from(v).ok()).ok_or_else(
                        || JsonError { message: "pool_tags: entries must be u16".into() },
                    )?;
                    out.insert(value);
                }
                Ok(out)
            })
        })?;
        let in_transit =
            json_vec(r.required("in_transit")?, "snapshot in_transit", transit_from_json)?;
        let links = json_vec(r.required("links")?, "snapshot links", |dev| {
            json_vec(dev, "links device", link_from_json)
        })?;
        let retry_pending =
            json_vec(r.required("retry_pending")?, "snapshot retry_pending", retry_from_json)?;
        let zombie_tags = json_vec(r.required("zombie_tags")?, "snapshot zombie_tags", |set| {
            let mut out = HashSet::new();
            for entry in set
                .as_arr()
                .ok_or_else(|| JsonError { message: "zombie_tags: expected an array".into() })?
            {
                let pair = entry.as_arr().filter(|p| p.len() == 2).ok_or_else(|| JsonError {
                    message: "zombie_tags: entry must be [link, tag]".into(),
                })?;
                let link = pair[0].as_usize().ok_or_else(|| JsonError {
                    message: "zombie_tags: link must be usize".into(),
                })?;
                let tag = pair[1].as_u32().and_then(|v| u16::try_from(v).ok()).ok_or_else(
                    || JsonError { message: "zombie_tags: tag must be u16".into() },
                )?;
                out.insert((link, tag));
            }
            Ok(out)
        })?;
        let shadow = match r.required("shadow")? {
            Json::Null => None,
            v => Some(shadow_from_json(v)?),
        };
        // Optional for compatibility: schema-v1 snapshots written
        // before the flight recorder existed have no `flight` key.
        let flight = match r.optional("flight") {
            None | Some(Json::Null) => None,
            Some(v) => Some(flight_from_json(v)?),
        };
        r.finish()?;
        Ok(SimSnapshot {
            cycle,
            devices,
            host_rx,
            tag_pools,
            pool_tags,
            in_transit,
            links,
            retry_pending,
            zombie_tags,
            shadow,
            flight,
        })
    }

    /// Parses a [`SimSnapshot::to_json_full`] string back into a
    /// snapshot (see [`SimSnapshot::from_json_value`]).
    pub fn from_json(text: &str) -> Result<SimSnapshot, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex_decode(&hex, "t").unwrap(), bytes);
        assert!(hex_decode("0", "t").is_err(), "odd length");
        assert!(hex_decode("zz", "t").is_err(), "bad digit");
    }

    #[test]
    fn hist_codec_keeps_empty_sentinel() {
        let empty = Hist::new();
        let back = hist_from_json(&hist_json(&empty)).unwrap();
        assert_eq!(back, empty, "u64::MAX min sentinel survives");
        let mut h = Hist::new();
        h.record(0);
        h.record(77);
        h.record(u64::MAX);
        assert_eq!(hist_from_json(&hist_json(&h)).unwrap(), h);
    }

    #[test]
    fn cmc_request_with_standard_code_round_trips() {
        // HmcRqst::from_code maps standard codes to standard variants;
        // only the explicit cmc flag can reconstruct Cmc(standard).
        let req = Request::new_cmc(
            hmc_types::HmcRqst::Rd16.code(),
            2,
            Tag::new(5).unwrap(),
            0x40,
            Cub::new(0).unwrap(),
            vec![1, 2],
        )
        .unwrap();
        let back = request_from_json(&request_json(&req)).unwrap();
        assert_eq!(format!("{back:?}"), format!("{req:?}"));
        assert!(matches!(back.head.cmd, HmcRqst::Cmc(_)));
    }

    #[test]
    fn rsp_none_round_trips() {
        let rsp = Response {
            head: RspHead {
                cmd: HmcResponse::RspNone,
                lng: 1,
                tag: Tag::new(0).unwrap(),
                af: false,
                slid: Slid::new(0).unwrap(),
                cub: Cub::new(0).unwrap(),
            },
            payload: hmc_types::PayloadBuf::new(),
            tail: RspTail::default(),
        };
        let back = response_from_json(&response_json(&rsp)).unwrap();
        assert_eq!(back.head.cmd, HmcResponse::RspNone);
        assert_eq!(format!("{back:?}"), format!("{rsp:?}"));
    }

    #[test]
    fn unsupported_schema_version_rejected() {
        let text = r#"{"schema_version":999,"cycle":0}"#;
        let err = SimSnapshot::from_json(text).unwrap_err();
        assert!(err.message.contains("unsupported schema version"), "{}", err.message);
    }
}
