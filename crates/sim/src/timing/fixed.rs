//! The paper's flat-latency bank model as a timing backend.

use crate::config::DeviceConfig;
use crate::dram::{Bank, BankTiming};
use crate::timing::{banks_horizon, TimingModel, TimingSelect, TimingStats};

/// Every access occupies the bank for exactly `bank_latency` cycles.
///
/// The per-config row-hit/row-miss knobs are deliberately inert here:
/// both latency classes collapse to the flat `bank_latency`, which is
/// precisely the pre-trait engine's behaviour for every configuration
/// the fingerprint pins cover (their row knobs are zero). The row
/// *policy* is kept, so the bank's open-row bookkeeping and hit/miss
/// counters — which the state fingerprint observes — evolve exactly as
/// they always did.
#[derive(Debug, Clone)]
pub struct FixedLatency {
    timing: BankTiming,
    pub(crate) stats: TimingStats,
}

impl FixedLatency {
    /// Builds the backend from a device configuration.
    pub(crate) fn new(config: &DeviceConfig) -> Self {
        FixedLatency {
            timing: BankTiming {
                row_hit: config.bank_latency,
                row_miss: config.bank_latency,
                policy: config.bank_timing.policy,
            },
            stats: TimingStats::default(),
        }
    }

    /// The effective (flattened) bank timing — the [`Validated`]
    /// backend drives its primary through this directly.
    ///
    /// [`Validated`]: crate::timing::Validated
    pub(crate) fn timing(&self) -> &BankTiming {
        &self.timing
    }
}

impl TimingModel for FixedLatency {
    fn select(&self) -> TimingSelect {
        TimingSelect::FixedLatency
    }

    fn plan_serve(&self, bank: &mut Bank, cycle: u64, row: u64, _global_bank: u64) {
        bank.access(cycle, row, &self.timing);
    }

    fn serve(&mut self, bank: &mut Bank, cycle: u64, row: u64, _global_bank: u64) -> u64 {
        let hit = bank.would_hit(row, &self.timing);
        let latency = bank.access(cycle, row, &self.timing);
        self.stats.record_access(hit, latency);
        latency
    }

    fn next_event_cycle(
        &self,
        banks: &mut dyn Iterator<Item = &Bank>,
        cycle: u64,
    ) -> Option<u64> {
        banks_horizon(banks, cycle)
    }

    fn stats(&self) -> &TimingStats {
        &self.stats
    }
}
