//! The accuracy-validation backend: two models in lockstep.

use crate::config::DeviceConfig;
use crate::dram::Bank;
use crate::timing::{
    banks_horizon, FixedLatency, RowBuffer, TimingModel, TimingSelect, TimingStats,
};

/// Runs a primary [`FixedLatency`] model and a shadow [`RowBuffer`]
/// model over the same access stream.
///
/// The primary drives *every* simulation decision — bank availability,
/// stall choices, busy windows — so a `Validated` run is bit-identical
/// to a `FixedLatency` run and passes every determinism matrix
/// unchanged. The shadow maintains its own bank array (one [`Bank`]
/// per global bank, fingerprint-blind) and answers the question the
/// Ramulator 2.0 re-evaluation study asks of every abstract model:
/// *when would this access have completed under the detailed timing?*
/// Each access is served on the shadow at the earliest legal cycle —
/// no earlier than the primary issued it, the shadow bank's own busy
/// window, and the end of any refresh window in force — and the
/// completion-time divergence is recorded into
/// [`TimingStats::divergence`].
#[derive(Debug, Clone)]
pub struct Validated {
    primary: FixedLatency,
    shadow_model: RowBuffer,
    /// Shadow bank state, indexed by global bank id.
    pub(crate) shadow: Vec<Bank>,
    pub(crate) stats: TimingStats,
}

impl Validated {
    /// Builds the backend from a device configuration.
    pub(crate) fn new(config: &DeviceConfig) -> Self {
        let total_banks = config.total_vaults() * config.banks_per_vault;
        Validated {
            primary: FixedLatency::new(config),
            shadow_model: RowBuffer::new(config),
            shadow: vec![Bank::default(); total_banks],
            stats: TimingStats::default(),
        }
    }
}

impl TimingModel for Validated {
    fn select(&self) -> TimingSelect {
        TimingSelect::Validated
    }

    fn plan_serve(&self, bank: &mut Bank, cycle: u64, row: u64, global_bank: u64) {
        // Only the primary touches fingerprinted state; the plan stage
        // must predict exactly that.
        self.primary.plan_serve(bank, cycle, row, global_bank);
    }

    fn serve(&mut self, bank: &mut Bank, cycle: u64, row: u64, global_bank: u64) -> u64 {
        let hit = bank.would_hit(row, self.primary.timing());
        let latency = bank.access(cycle, row, self.primary.timing());
        self.stats.record_access(hit, latency);
        // Shadow service: start at the earliest cycle that is legal
        // under the detailed model, then serve through the row-buffer
        // timing (including refresh-closed rows).
        let shadow_bank = &mut self.shadow[global_bank as usize];
        let start = self
            .shadow_model
            .earliest_start(cycle.max(shadow_bank.busy_horizon()), global_bank);
        let shadow_latency = self.shadow_model.serve_shadow(shadow_bank, start, row, global_bank);
        self.stats.record_divergence(cycle + latency, start + shadow_latency);
        latency
    }

    fn next_event_cycle(
        &self,
        banks: &mut dyn Iterator<Item = &Bank>,
        cycle: u64,
    ) -> Option<u64> {
        // Conservative: fold the shadow banks' busy windows in, so a
        // skip never jumps a shadow release either.
        let live = banks_horizon(banks, cycle);
        let shadow = banks_horizon(&mut self.shadow.iter(), cycle);
        match (live, shadow) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn stats(&self) -> &TimingStats {
        &self.stats
    }
}
