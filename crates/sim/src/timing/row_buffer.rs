//! The open/closed-page row-buffer model as a first-class backend.

use crate::config::DeviceConfig;
use crate::dram::{Bank, BankTiming, RefreshConfig};
use crate::timing::{banks_horizon, TimingModel, TimingSelect, TimingStats};

/// Row-buffer timing: hits cost `bank_latency + row_hit` cycles, misses
/// `bank_latency + row_miss`, governed by the configured page policy.
///
/// The staggered refresh model is promoted with it: besides the stall
/// window the execute stage already enforces (a bank in its tRFC window
/// accepts no access — identical across backends), a refresh *closes
/// the open row* of the bank it refreshed. Whether a refresh happened
/// between two accesses is decided arithmetically: the bank's previous
/// busy window ended at `busy_until`, so the row is closed iff any
/// refresh window for that bank starts in `[busy_until, cycle]` (see
/// [`RefreshConfig::starts_in`]). No extra per-bank state is needed,
/// which keeps the fingerprinted bank layout unchanged.
#[derive(Debug, Clone)]
pub struct RowBuffer {
    timing: BankTiming,
    refresh: Option<RefreshConfig>,
    total_banks: u64,
    pub(crate) stats: TimingStats,
}

impl RowBuffer {
    /// Builds the backend from a device configuration, folding the flat
    /// `bank_latency` into both latency classes (exactly the fold the
    /// pre-trait engine applied).
    pub(crate) fn new(config: &DeviceConfig) -> Self {
        RowBuffer {
            timing: BankTiming {
                row_hit: config.bank_timing.row_hit + config.bank_latency,
                row_miss: config.bank_timing.row_miss + config.bank_latency,
                policy: config.bank_timing.policy,
            },
            refresh: config.refresh,
            total_banks: (config.total_vaults() * config.banks_per_vault) as u64,
            stats: TimingStats::default(),
        }
    }

    /// Closes `bank`'s open row when a refresh window for `global_bank`
    /// started since the bank's previous busy window ended.
    #[inline]
    fn apply_refresh(&self, bank: &mut Bank, cycle: u64, global_bank: u64) {
        if let Some(refresh) = &self.refresh {
            if refresh.starts_in(bank.busy_horizon(), cycle, global_bank, self.total_banks) {
                bank.close_row();
            }
        }
    }

    /// The earliest cycle at or after `from` where `global_bank` is not
    /// inside a refresh window (the shadow-service start used by the
    /// [`Validated`] backend).
    ///
    /// [`Validated`]: crate::timing::Validated
    pub(crate) fn earliest_start(&self, from: u64, global_bank: u64) -> u64 {
        match &self.refresh {
            None => from,
            Some(r) => r.next_unblocked(from, global_bank, self.total_banks),
        }
    }

    /// Serves one access on a shadow bank at `start` (which the caller
    /// has already legalised via [`RowBuffer::earliest_start`]) and
    /// returns the latency. Identical bank evolution to
    /// [`TimingModel::serve`], but records nothing — the [`Validated`]
    /// wrapper owns the bookkeeping.
    ///
    /// [`Validated`]: crate::timing::Validated
    pub(crate) fn serve_shadow(
        &self,
        bank: &mut Bank,
        start: u64,
        row: u64,
        global_bank: u64,
    ) -> u64 {
        self.apply_refresh(bank, start, global_bank);
        bank.access(start, row, &self.timing)
    }
}

impl TimingModel for RowBuffer {
    fn select(&self) -> TimingSelect {
        TimingSelect::RowBuffer
    }

    fn plan_serve(&self, bank: &mut Bank, cycle: u64, row: u64, global_bank: u64) {
        self.apply_refresh(bank, cycle, global_bank);
        bank.access(cycle, row, &self.timing);
    }

    fn serve(&mut self, bank: &mut Bank, cycle: u64, row: u64, global_bank: u64) -> u64 {
        self.apply_refresh(bank, cycle, global_bank);
        let hit = bank.would_hit(row, &self.timing);
        let latency = bank.access(cycle, row, &self.timing);
        self.stats.record_access(hit, latency);
        latency
    }

    fn next_event_cycle(
        &self,
        banks: &mut dyn Iterator<Item = &Bank>,
        cycle: u64,
    ) -> Option<u64> {
        banks_horizon(banks, cycle)
    }

    fn stats(&self) -> &TimingStats {
        &self.stats
    }
}
